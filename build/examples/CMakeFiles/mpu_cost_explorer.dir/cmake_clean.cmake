file(REMOVE_RECURSE
  "CMakeFiles/mpu_cost_explorer.dir/mpu_cost_explorer.cpp.o"
  "CMakeFiles/mpu_cost_explorer.dir/mpu_cost_explorer.cpp.o.d"
  "mpu_cost_explorer"
  "mpu_cost_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpu_cost_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
