# Empty compiler generated dependencies file for mpu_cost_explorer.
# This may be replaced when dependencies are built.
