file(REMOVE_RECURSE
  "CMakeFiles/fabline_monte_carlo.dir/fabline_monte_carlo.cpp.o"
  "CMakeFiles/fabline_monte_carlo.dir/fabline_monte_carlo.cpp.o.d"
  "fabline_monte_carlo"
  "fabline_monte_carlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabline_monte_carlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
