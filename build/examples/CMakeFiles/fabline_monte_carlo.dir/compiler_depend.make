# Empty compiler generated dependencies file for fabline_monte_carlo.
# This may be replaced when dependencies are built.
