file(REMOVE_RECURSE
  "CMakeFiles/regular_fabric_study.dir/regular_fabric_study.cpp.o"
  "CMakeFiles/regular_fabric_study.dir/regular_fabric_study.cpp.o.d"
  "regular_fabric_study"
  "regular_fabric_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regular_fabric_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
