# Empty compiler generated dependencies file for regular_fabric_study.
# This may be replaced when dependencies are built.
