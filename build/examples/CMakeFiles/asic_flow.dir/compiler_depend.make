# Empty compiler generated dependencies file for asic_flow.
# This may be replaced when dependencies are built.
