# Empty dependencies file for economics_ext_test.
# This may be replaced when dependencies are built.
