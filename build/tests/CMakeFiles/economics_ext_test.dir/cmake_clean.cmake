file(REMOVE_RECURSE
  "CMakeFiles/economics_ext_test.dir/economics_ext_test.cpp.o"
  "CMakeFiles/economics_ext_test.dir/economics_ext_test.cpp.o.d"
  "economics_ext_test"
  "economics_ext_test.pdb"
  "economics_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economics_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
