
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/property_test.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timing/CMakeFiles/nanocost_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/nanocost_process.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/nanocost_route.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/nanocost_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/nanocost_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/nanocost_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nanocost_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nanocost_core.dir/DependInfo.cmake"
  "/root/repo/build/src/regularity/CMakeFiles/nanocost_regularity.dir/DependInfo.cmake"
  "/root/repo/build/src/roadmap/CMakeFiles/nanocost_roadmap.dir/DependInfo.cmake"
  "/root/repo/build/src/fabsim/CMakeFiles/nanocost_fabsim.dir/DependInfo.cmake"
  "/root/repo/build/src/yield/CMakeFiles/nanocost_yield.dir/DependInfo.cmake"
  "/root/repo/build/src/defect/CMakeFiles/nanocost_defect.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/nanocost_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/nanocost_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/nanocost_report.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/nanocost_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/units/CMakeFiles/nanocost_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
