# Empty compiler generated dependencies file for fabsim_test.
# This may be replaced when dependencies are built.
