file(REMOVE_RECURSE
  "CMakeFiles/fabsim_test.dir/fabsim_test.cpp.o"
  "CMakeFiles/fabsim_test.dir/fabsim_test.cpp.o.d"
  "fabsim_test"
  "fabsim_test.pdb"
  "fabsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
