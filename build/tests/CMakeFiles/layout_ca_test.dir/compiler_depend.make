# Empty compiler generated dependencies file for layout_ca_test.
# This may be replaced when dependencies are built.
