file(REMOVE_RECURSE
  "CMakeFiles/layout_ca_test.dir/layout_ca_test.cpp.o"
  "CMakeFiles/layout_ca_test.dir/layout_ca_test.cpp.o.d"
  "layout_ca_test"
  "layout_ca_test.pdb"
  "layout_ca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_ca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
