file(REMOVE_RECURSE
  "CMakeFiles/window_sweep_test.dir/window_sweep_test.cpp.o"
  "CMakeFiles/window_sweep_test.dir/window_sweep_test.cpp.o.d"
  "window_sweep_test"
  "window_sweep_test.pdb"
  "window_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
