file(REMOVE_RECURSE
  "CMakeFiles/flow_ext_test.dir/flow_ext_test.cpp.o"
  "CMakeFiles/flow_ext_test.dir/flow_ext_test.cpp.o.d"
  "flow_ext_test"
  "flow_ext_test.pdb"
  "flow_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
