# Empty dependencies file for flow_ext_test.
# This may be replaced when dependencies are built.
