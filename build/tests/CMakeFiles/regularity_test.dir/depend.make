# Empty dependencies file for regularity_test.
# This may be replaced when dependencies are built.
