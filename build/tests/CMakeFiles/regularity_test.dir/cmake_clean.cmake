file(REMOVE_RECURSE
  "CMakeFiles/regularity_test.dir/regularity_test.cpp.o"
  "CMakeFiles/regularity_test.dir/regularity_test.cpp.o.d"
  "regularity_test"
  "regularity_test.pdb"
  "regularity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regularity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
