# Empty dependencies file for radial_yield_test.
# This may be replaced when dependencies are built.
