file(REMOVE_RECURSE
  "CMakeFiles/radial_yield_test.dir/radial_yield_test.cpp.o"
  "CMakeFiles/radial_yield_test.dir/radial_yield_test.cpp.o.d"
  "radial_yield_test"
  "radial_yield_test.pdb"
  "radial_yield_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radial_yield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
