file(REMOVE_RECURSE
  "CMakeFiles/style_advisor_test.dir/style_advisor_test.cpp.o"
  "CMakeFiles/style_advisor_test.dir/style_advisor_test.cpp.o.d"
  "style_advisor_test"
  "style_advisor_test.pdb"
  "style_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/style_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
