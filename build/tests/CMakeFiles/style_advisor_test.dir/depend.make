# Empty dependencies file for style_advisor_test.
# This may be replaced when dependencies are built.
