file(REMOVE_RECURSE
  "CMakeFiles/respin_test.dir/respin_test.cpp.o"
  "CMakeFiles/respin_test.dir/respin_test.cpp.o.d"
  "respin_test"
  "respin_test.pdb"
  "respin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/respin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
