# Empty compiler generated dependencies file for respin_test.
# This may be replaced when dependencies are built.
