file(REMOVE_RECURSE
  "../bench/product_planner"
  "../bench/product_planner.pdb"
  "CMakeFiles/product_planner.dir/product_planner.cpp.o"
  "CMakeFiles/product_planner.dir/product_planner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
