# Empty compiler generated dependencies file for product_planner.
# This may be replaced when dependencies are built.
