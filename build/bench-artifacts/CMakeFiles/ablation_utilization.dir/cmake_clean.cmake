file(REMOVE_RECURSE
  "../bench/ablation_utilization"
  "../bench/ablation_utilization.pdb"
  "CMakeFiles/ablation_utilization.dir/ablation_utilization.cpp.o"
  "CMakeFiles/ablation_utilization.dir/ablation_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
