# Empty compiler generated dependencies file for table_a1.
# This may be replaced when dependencies are built.
