file(REMOVE_RECURSE
  "../bench/table_a1"
  "../bench/table_a1.pdb"
  "CMakeFiles/table_a1.dir/table_a1.cpp.o"
  "CMakeFiles/table_a1.dir/table_a1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_a1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
