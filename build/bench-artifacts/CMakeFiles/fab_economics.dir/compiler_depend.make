# Empty compiler generated dependencies file for fab_economics.
# This may be replaced when dependencies are built.
