file(REMOVE_RECURSE
  "../bench/fab_economics"
  "../bench/fab_economics.pdb"
  "CMakeFiles/fab_economics.dir/fab_economics.cpp.o"
  "CMakeFiles/fab_economics.dir/fab_economics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fab_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
