file(REMOVE_RECURSE
  "../bench/ablation_empirical_eq6"
  "../bench/ablation_empirical_eq6.pdb"
  "CMakeFiles/ablation_empirical_eq6.dir/ablation_empirical_eq6.cpp.o"
  "CMakeFiles/ablation_empirical_eq6.dir/ablation_empirical_eq6.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_empirical_eq6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
