# Empty dependencies file for ablation_empirical_eq6.
# This may be replaced when dependencies are built.
