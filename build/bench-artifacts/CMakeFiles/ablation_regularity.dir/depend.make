# Empty dependencies file for ablation_regularity.
# This may be replaced when dependencies are built.
