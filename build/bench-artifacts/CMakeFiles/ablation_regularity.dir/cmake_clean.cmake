file(REMOVE_RECURSE
  "../bench/ablation_regularity"
  "../bench/ablation_regularity.pdb"
  "CMakeFiles/ablation_regularity.dir/ablation_regularity.cpp.o"
  "CMakeFiles/ablation_regularity.dir/ablation_regularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
