file(REMOVE_RECURSE
  "../bench/ablation_time_to_market"
  "../bench/ablation_time_to_market.pdb"
  "CMakeFiles/ablation_time_to_market.dir/ablation_time_to_market.cpp.o"
  "CMakeFiles/ablation_time_to_market.dir/ablation_time_to_market.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_time_to_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
