# Empty dependencies file for ablation_time_to_market.
# This may be replaced when dependencies are built.
