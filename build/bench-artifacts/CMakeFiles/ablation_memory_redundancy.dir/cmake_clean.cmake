file(REMOVE_RECURSE
  "../bench/ablation_memory_redundancy"
  "../bench/ablation_memory_redundancy.pdb"
  "CMakeFiles/ablation_memory_redundancy.dir/ablation_memory_redundancy.cpp.o"
  "CMakeFiles/ablation_memory_redundancy.dir/ablation_memory_redundancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
