# Empty dependencies file for ablation_volume_crossover.
# This may be replaced when dependencies are built.
