file(REMOVE_RECURSE
  "../bench/ablation_volume_crossover"
  "../bench/ablation_volume_crossover.pdb"
  "CMakeFiles/ablation_volume_crossover.dir/ablation_volume_crossover.cpp.o"
  "CMakeFiles/ablation_volume_crossover.dir/ablation_volume_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_volume_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
