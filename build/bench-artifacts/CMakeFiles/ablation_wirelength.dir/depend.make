# Empty dependencies file for ablation_wirelength.
# This may be replaced when dependencies are built.
