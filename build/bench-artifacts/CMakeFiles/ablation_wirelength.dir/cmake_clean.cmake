file(REMOVE_RECURSE
  "../bench/ablation_wirelength"
  "../bench/ablation_wirelength.pdb"
  "CMakeFiles/ablation_wirelength.dir/ablation_wirelength.cpp.o"
  "CMakeFiles/ablation_wirelength.dir/ablation_wirelength.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wirelength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
