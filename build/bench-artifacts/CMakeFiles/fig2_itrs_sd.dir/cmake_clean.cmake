file(REMOVE_RECURSE
  "../bench/fig2_itrs_sd"
  "../bench/fig2_itrs_sd.pdb"
  "CMakeFiles/fig2_itrs_sd.dir/fig2_itrs_sd.cpp.o"
  "CMakeFiles/fig2_itrs_sd.dir/fig2_itrs_sd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_itrs_sd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
