# Empty compiler generated dependencies file for fig2_itrs_sd.
# This may be replaced when dependencies are built.
