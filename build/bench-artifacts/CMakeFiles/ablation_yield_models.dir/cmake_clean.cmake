file(REMOVE_RECURSE
  "../bench/ablation_yield_models"
  "../bench/ablation_yield_models.pdb"
  "CMakeFiles/ablation_yield_models.dir/ablation_yield_models.cpp.o"
  "CMakeFiles/ablation_yield_models.dir/ablation_yield_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_yield_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
