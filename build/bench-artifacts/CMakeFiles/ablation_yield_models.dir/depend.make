# Empty dependencies file for ablation_yield_models.
# This may be replaced when dependencies are built.
