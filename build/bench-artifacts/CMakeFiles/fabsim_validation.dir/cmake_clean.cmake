file(REMOVE_RECURSE
  "../bench/fabsim_validation"
  "../bench/fabsim_validation.pdb"
  "CMakeFiles/fabsim_validation.dir/fabsim_validation.cpp.o"
  "CMakeFiles/fabsim_validation.dir/fabsim_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
