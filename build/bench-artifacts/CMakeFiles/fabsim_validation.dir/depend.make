# Empty dependencies file for fabsim_validation.
# This may be replaced when dependencies are built.
