# Empty dependencies file for ablation_risk.
# This may be replaced when dependencies are built.
