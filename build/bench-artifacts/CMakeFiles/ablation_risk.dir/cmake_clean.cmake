file(REMOVE_RECURSE
  "../bench/ablation_risk"
  "../bench/ablation_risk.pdb"
  "CMakeFiles/ablation_risk.dir/ablation_risk.cpp.o"
  "CMakeFiles/ablation_risk.dir/ablation_risk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
