file(REMOVE_RECURSE
  "../bench/ablation_design_styles"
  "../bench/ablation_design_styles.pdb"
  "CMakeFiles/ablation_design_styles.dir/ablation_design_styles.cpp.o"
  "CMakeFiles/ablation_design_styles.dir/ablation_design_styles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_design_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
