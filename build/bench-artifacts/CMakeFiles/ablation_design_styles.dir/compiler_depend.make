# Empty compiler generated dependencies file for ablation_design_styles.
# This may be replaced when dependencies are built.
