# Empty dependencies file for ablation_physical_flow.
# This may be replaced when dependencies are built.
