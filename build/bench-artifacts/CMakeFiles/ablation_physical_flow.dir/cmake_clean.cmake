file(REMOVE_RECURSE
  "../bench/ablation_physical_flow"
  "../bench/ablation_physical_flow.pdb"
  "CMakeFiles/ablation_physical_flow.dir/ablation_physical_flow.cpp.o"
  "CMakeFiles/ablation_physical_flow.dir/ablation_physical_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_physical_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
