# Empty dependencies file for fig4_cost_tradeoff.
# This may be replaced when dependencies are built.
