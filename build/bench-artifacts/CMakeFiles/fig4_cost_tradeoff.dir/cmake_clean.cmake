file(REMOVE_RECURSE
  "../bench/fig4_cost_tradeoff"
  "../bench/fig4_cost_tradeoff.pdb"
  "CMakeFiles/fig4_cost_tradeoff.dir/fig4_cost_tradeoff.cpp.o"
  "CMakeFiles/fig4_cost_tradeoff.dir/fig4_cost_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cost_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
