# Empty dependencies file for fig1_industrial_sd.
# This may be replaced when dependencies are built.
