file(REMOVE_RECURSE
  "../bench/fig1_industrial_sd"
  "../bench/fig1_industrial_sd.pdb"
  "CMakeFiles/fig1_industrial_sd.dir/fig1_industrial_sd.cpp.o"
  "CMakeFiles/fig1_industrial_sd.dir/fig1_industrial_sd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_industrial_sd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
