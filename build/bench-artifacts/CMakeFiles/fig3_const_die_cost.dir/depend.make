# Empty dependencies file for fig3_const_die_cost.
# This may be replaced when dependencies are built.
