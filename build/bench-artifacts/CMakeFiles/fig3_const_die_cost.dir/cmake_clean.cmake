file(REMOVE_RECURSE
  "../bench/fig3_const_die_cost"
  "../bench/fig3_const_die_cost.pdb"
  "CMakeFiles/fig3_const_die_cost.dir/fig3_const_die_cost.cpp.o"
  "CMakeFiles/fig3_const_die_cost.dir/fig3_const_die_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_const_die_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
