file(REMOVE_RECURSE
  "CMakeFiles/nanocost_cost.dir/design_cost.cpp.o"
  "CMakeFiles/nanocost_cost.dir/design_cost.cpp.o.d"
  "CMakeFiles/nanocost_cost.dir/fab_capex.cpp.o"
  "CMakeFiles/nanocost_cost.dir/fab_capex.cpp.o.d"
  "CMakeFiles/nanocost_cost.dir/mask_cost.cpp.o"
  "CMakeFiles/nanocost_cost.dir/mask_cost.cpp.o.d"
  "CMakeFiles/nanocost_cost.dir/respin.cpp.o"
  "CMakeFiles/nanocost_cost.dir/respin.cpp.o.d"
  "CMakeFiles/nanocost_cost.dir/test_cost.cpp.o"
  "CMakeFiles/nanocost_cost.dir/test_cost.cpp.o.d"
  "CMakeFiles/nanocost_cost.dir/time_to_market.cpp.o"
  "CMakeFiles/nanocost_cost.dir/time_to_market.cpp.o.d"
  "CMakeFiles/nanocost_cost.dir/wafer_cost.cpp.o"
  "CMakeFiles/nanocost_cost.dir/wafer_cost.cpp.o.d"
  "libnanocost_cost.a"
  "libnanocost_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
