# Empty dependencies file for nanocost_cost.
# This may be replaced when dependencies are built.
