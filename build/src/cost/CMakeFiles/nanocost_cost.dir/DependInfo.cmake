
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/design_cost.cpp" "src/cost/CMakeFiles/nanocost_cost.dir/design_cost.cpp.o" "gcc" "src/cost/CMakeFiles/nanocost_cost.dir/design_cost.cpp.o.d"
  "/root/repo/src/cost/fab_capex.cpp" "src/cost/CMakeFiles/nanocost_cost.dir/fab_capex.cpp.o" "gcc" "src/cost/CMakeFiles/nanocost_cost.dir/fab_capex.cpp.o.d"
  "/root/repo/src/cost/mask_cost.cpp" "src/cost/CMakeFiles/nanocost_cost.dir/mask_cost.cpp.o" "gcc" "src/cost/CMakeFiles/nanocost_cost.dir/mask_cost.cpp.o.d"
  "/root/repo/src/cost/respin.cpp" "src/cost/CMakeFiles/nanocost_cost.dir/respin.cpp.o" "gcc" "src/cost/CMakeFiles/nanocost_cost.dir/respin.cpp.o.d"
  "/root/repo/src/cost/test_cost.cpp" "src/cost/CMakeFiles/nanocost_cost.dir/test_cost.cpp.o" "gcc" "src/cost/CMakeFiles/nanocost_cost.dir/test_cost.cpp.o.d"
  "/root/repo/src/cost/time_to_market.cpp" "src/cost/CMakeFiles/nanocost_cost.dir/time_to_market.cpp.o" "gcc" "src/cost/CMakeFiles/nanocost_cost.dir/time_to_market.cpp.o.d"
  "/root/repo/src/cost/wafer_cost.cpp" "src/cost/CMakeFiles/nanocost_cost.dir/wafer_cost.cpp.o" "gcc" "src/cost/CMakeFiles/nanocost_cost.dir/wafer_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/units/CMakeFiles/nanocost_units.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/nanocost_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
