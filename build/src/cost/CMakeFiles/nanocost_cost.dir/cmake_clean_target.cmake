file(REMOVE_RECURSE
  "libnanocost_cost.a"
)
