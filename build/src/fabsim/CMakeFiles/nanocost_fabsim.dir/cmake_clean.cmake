file(REMOVE_RECURSE
  "CMakeFiles/nanocost_fabsim.dir/binning.cpp.o"
  "CMakeFiles/nanocost_fabsim.dir/binning.cpp.o.d"
  "CMakeFiles/nanocost_fabsim.dir/economics.cpp.o"
  "CMakeFiles/nanocost_fabsim.dir/economics.cpp.o.d"
  "CMakeFiles/nanocost_fabsim.dir/simulator.cpp.o"
  "CMakeFiles/nanocost_fabsim.dir/simulator.cpp.o.d"
  "libnanocost_fabsim.a"
  "libnanocost_fabsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_fabsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
