
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabsim/binning.cpp" "src/fabsim/CMakeFiles/nanocost_fabsim.dir/binning.cpp.o" "gcc" "src/fabsim/CMakeFiles/nanocost_fabsim.dir/binning.cpp.o.d"
  "/root/repo/src/fabsim/economics.cpp" "src/fabsim/CMakeFiles/nanocost_fabsim.dir/economics.cpp.o" "gcc" "src/fabsim/CMakeFiles/nanocost_fabsim.dir/economics.cpp.o.d"
  "/root/repo/src/fabsim/simulator.cpp" "src/fabsim/CMakeFiles/nanocost_fabsim.dir/simulator.cpp.o" "gcc" "src/fabsim/CMakeFiles/nanocost_fabsim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/units/CMakeFiles/nanocost_units.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/nanocost_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/defect/CMakeFiles/nanocost_defect.dir/DependInfo.cmake"
  "/root/repo/build/src/yield/CMakeFiles/nanocost_yield.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/nanocost_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/nanocost_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
