file(REMOVE_RECURSE
  "libnanocost_fabsim.a"
)
