# Empty compiler generated dependencies file for nanocost_fabsim.
# This may be replaced when dependencies are built.
