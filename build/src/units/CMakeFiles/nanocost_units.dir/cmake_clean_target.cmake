file(REMOVE_RECURSE
  "libnanocost_units.a"
)
