file(REMOVE_RECURSE
  "CMakeFiles/nanocost_units.dir/format.cpp.o"
  "CMakeFiles/nanocost_units.dir/format.cpp.o.d"
  "libnanocost_units.a"
  "libnanocost_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
