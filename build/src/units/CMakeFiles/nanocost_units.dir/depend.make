# Empty dependencies file for nanocost_units.
# This may be replaced when dependencies are built.
