file(REMOVE_RECURSE
  "libnanocost_process.a"
)
