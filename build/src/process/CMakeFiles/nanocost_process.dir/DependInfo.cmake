
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/process/design_rules.cpp" "src/process/CMakeFiles/nanocost_process.dir/design_rules.cpp.o" "gcc" "src/process/CMakeFiles/nanocost_process.dir/design_rules.cpp.o.d"
  "/root/repo/src/process/drc.cpp" "src/process/CMakeFiles/nanocost_process.dir/drc.cpp.o" "gcc" "src/process/CMakeFiles/nanocost_process.dir/drc.cpp.o.d"
  "/root/repo/src/process/interconnect.cpp" "src/process/CMakeFiles/nanocost_process.dir/interconnect.cpp.o" "gcc" "src/process/CMakeFiles/nanocost_process.dir/interconnect.cpp.o.d"
  "/root/repo/src/process/prediction.cpp" "src/process/CMakeFiles/nanocost_process.dir/prediction.cpp.o" "gcc" "src/process/CMakeFiles/nanocost_process.dir/prediction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/units/CMakeFiles/nanocost_units.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/nanocost_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/nanocost_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/nanocost_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
