# Empty dependencies file for nanocost_process.
# This may be replaced when dependencies are built.
