file(REMOVE_RECURSE
  "CMakeFiles/nanocost_process.dir/design_rules.cpp.o"
  "CMakeFiles/nanocost_process.dir/design_rules.cpp.o.d"
  "CMakeFiles/nanocost_process.dir/drc.cpp.o"
  "CMakeFiles/nanocost_process.dir/drc.cpp.o.d"
  "CMakeFiles/nanocost_process.dir/interconnect.cpp.o"
  "CMakeFiles/nanocost_process.dir/interconnect.cpp.o.d"
  "CMakeFiles/nanocost_process.dir/prediction.cpp.o"
  "CMakeFiles/nanocost_process.dir/prediction.cpp.o.d"
  "libnanocost_process.a"
  "libnanocost_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
