file(REMOVE_RECURSE
  "CMakeFiles/nanocost_layout.dir/cell.cpp.o"
  "CMakeFiles/nanocost_layout.dir/cell.cpp.o.d"
  "CMakeFiles/nanocost_layout.dir/counting.cpp.o"
  "CMakeFiles/nanocost_layout.dir/counting.cpp.o.d"
  "CMakeFiles/nanocost_layout.dir/density.cpp.o"
  "CMakeFiles/nanocost_layout.dir/density.cpp.o.d"
  "CMakeFiles/nanocost_layout.dir/design.cpp.o"
  "CMakeFiles/nanocost_layout.dir/design.cpp.o.d"
  "CMakeFiles/nanocost_layout.dir/generators.cpp.o"
  "CMakeFiles/nanocost_layout.dir/generators.cpp.o.d"
  "CMakeFiles/nanocost_layout.dir/io.cpp.o"
  "CMakeFiles/nanocost_layout.dir/io.cpp.o.d"
  "CMakeFiles/nanocost_layout.dir/stats.cpp.o"
  "CMakeFiles/nanocost_layout.dir/stats.cpp.o.d"
  "CMakeFiles/nanocost_layout.dir/types.cpp.o"
  "CMakeFiles/nanocost_layout.dir/types.cpp.o.d"
  "libnanocost_layout.a"
  "libnanocost_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
