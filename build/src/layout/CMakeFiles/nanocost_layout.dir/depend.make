# Empty dependencies file for nanocost_layout.
# This may be replaced when dependencies are built.
