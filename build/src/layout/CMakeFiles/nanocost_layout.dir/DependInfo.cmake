
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/cell.cpp" "src/layout/CMakeFiles/nanocost_layout.dir/cell.cpp.o" "gcc" "src/layout/CMakeFiles/nanocost_layout.dir/cell.cpp.o.d"
  "/root/repo/src/layout/counting.cpp" "src/layout/CMakeFiles/nanocost_layout.dir/counting.cpp.o" "gcc" "src/layout/CMakeFiles/nanocost_layout.dir/counting.cpp.o.d"
  "/root/repo/src/layout/density.cpp" "src/layout/CMakeFiles/nanocost_layout.dir/density.cpp.o" "gcc" "src/layout/CMakeFiles/nanocost_layout.dir/density.cpp.o.d"
  "/root/repo/src/layout/design.cpp" "src/layout/CMakeFiles/nanocost_layout.dir/design.cpp.o" "gcc" "src/layout/CMakeFiles/nanocost_layout.dir/design.cpp.o.d"
  "/root/repo/src/layout/generators.cpp" "src/layout/CMakeFiles/nanocost_layout.dir/generators.cpp.o" "gcc" "src/layout/CMakeFiles/nanocost_layout.dir/generators.cpp.o.d"
  "/root/repo/src/layout/io.cpp" "src/layout/CMakeFiles/nanocost_layout.dir/io.cpp.o" "gcc" "src/layout/CMakeFiles/nanocost_layout.dir/io.cpp.o.d"
  "/root/repo/src/layout/stats.cpp" "src/layout/CMakeFiles/nanocost_layout.dir/stats.cpp.o" "gcc" "src/layout/CMakeFiles/nanocost_layout.dir/stats.cpp.o.d"
  "/root/repo/src/layout/types.cpp" "src/layout/CMakeFiles/nanocost_layout.dir/types.cpp.o" "gcc" "src/layout/CMakeFiles/nanocost_layout.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/units/CMakeFiles/nanocost_units.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
