file(REMOVE_RECURSE
  "libnanocost_layout.a"
)
