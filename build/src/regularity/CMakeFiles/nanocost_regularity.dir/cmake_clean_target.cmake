file(REMOVE_RECURSE
  "libnanocost_regularity.a"
)
