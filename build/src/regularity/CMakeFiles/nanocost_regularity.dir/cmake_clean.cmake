file(REMOVE_RECURSE
  "CMakeFiles/nanocost_regularity.dir/extractor.cpp.o"
  "CMakeFiles/nanocost_regularity.dir/extractor.cpp.o.d"
  "CMakeFiles/nanocost_regularity.dir/hierarchy.cpp.o"
  "CMakeFiles/nanocost_regularity.dir/hierarchy.cpp.o.d"
  "CMakeFiles/nanocost_regularity.dir/reuse.cpp.o"
  "CMakeFiles/nanocost_regularity.dir/reuse.cpp.o.d"
  "CMakeFiles/nanocost_regularity.dir/window_sweep.cpp.o"
  "CMakeFiles/nanocost_regularity.dir/window_sweep.cpp.o.d"
  "libnanocost_regularity.a"
  "libnanocost_regularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_regularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
