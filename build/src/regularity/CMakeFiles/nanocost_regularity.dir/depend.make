# Empty dependencies file for nanocost_regularity.
# This may be replaced when dependencies are built.
