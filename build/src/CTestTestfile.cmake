# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("units")
subdirs("geometry")
subdirs("defect")
subdirs("process")
subdirs("yield")
subdirs("layout")
subdirs("netlist")
subdirs("regularity")
subdirs("place")
subdirs("timing")
subdirs("route")
subdirs("floorplan")
subdirs("roadmap")
subdirs("data")
subdirs("cost")
subdirs("core")
subdirs("fabsim")
subdirs("report")
