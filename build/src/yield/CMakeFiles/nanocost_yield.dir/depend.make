# Empty dependencies file for nanocost_yield.
# This may be replaced when dependencies are built.
