
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yield/composite.cpp" "src/yield/CMakeFiles/nanocost_yield.dir/composite.cpp.o" "gcc" "src/yield/CMakeFiles/nanocost_yield.dir/composite.cpp.o.d"
  "/root/repo/src/yield/learning.cpp" "src/yield/CMakeFiles/nanocost_yield.dir/learning.cpp.o" "gcc" "src/yield/CMakeFiles/nanocost_yield.dir/learning.cpp.o.d"
  "/root/repo/src/yield/models.cpp" "src/yield/CMakeFiles/nanocost_yield.dir/models.cpp.o" "gcc" "src/yield/CMakeFiles/nanocost_yield.dir/models.cpp.o.d"
  "/root/repo/src/yield/parametric.cpp" "src/yield/CMakeFiles/nanocost_yield.dir/parametric.cpp.o" "gcc" "src/yield/CMakeFiles/nanocost_yield.dir/parametric.cpp.o.d"
  "/root/repo/src/yield/radial.cpp" "src/yield/CMakeFiles/nanocost_yield.dir/radial.cpp.o" "gcc" "src/yield/CMakeFiles/nanocost_yield.dir/radial.cpp.o.d"
  "/root/repo/src/yield/redundancy.cpp" "src/yield/CMakeFiles/nanocost_yield.dir/redundancy.cpp.o" "gcc" "src/yield/CMakeFiles/nanocost_yield.dir/redundancy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/units/CMakeFiles/nanocost_units.dir/DependInfo.cmake"
  "/root/repo/build/src/defect/CMakeFiles/nanocost_defect.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/nanocost_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/nanocost_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
