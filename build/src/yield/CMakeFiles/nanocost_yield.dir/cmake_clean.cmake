file(REMOVE_RECURSE
  "CMakeFiles/nanocost_yield.dir/composite.cpp.o"
  "CMakeFiles/nanocost_yield.dir/composite.cpp.o.d"
  "CMakeFiles/nanocost_yield.dir/learning.cpp.o"
  "CMakeFiles/nanocost_yield.dir/learning.cpp.o.d"
  "CMakeFiles/nanocost_yield.dir/models.cpp.o"
  "CMakeFiles/nanocost_yield.dir/models.cpp.o.d"
  "CMakeFiles/nanocost_yield.dir/parametric.cpp.o"
  "CMakeFiles/nanocost_yield.dir/parametric.cpp.o.d"
  "CMakeFiles/nanocost_yield.dir/radial.cpp.o"
  "CMakeFiles/nanocost_yield.dir/radial.cpp.o.d"
  "CMakeFiles/nanocost_yield.dir/redundancy.cpp.o"
  "CMakeFiles/nanocost_yield.dir/redundancy.cpp.o.d"
  "libnanocost_yield.a"
  "libnanocost_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
