file(REMOVE_RECURSE
  "libnanocost_yield.a"
)
