file(REMOVE_RECURSE
  "libnanocost_timing.a"
)
