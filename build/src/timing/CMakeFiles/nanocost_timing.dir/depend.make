# Empty dependencies file for nanocost_timing.
# This may be replaced when dependencies are built.
