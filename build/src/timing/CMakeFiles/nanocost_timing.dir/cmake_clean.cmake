file(REMOVE_RECURSE
  "CMakeFiles/nanocost_timing.dir/sta.cpp.o"
  "CMakeFiles/nanocost_timing.dir/sta.cpp.o.d"
  "libnanocost_timing.a"
  "libnanocost_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
