file(REMOVE_RECURSE
  "libnanocost_core.a"
)
