
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/generalized_cost.cpp" "src/core/CMakeFiles/nanocost_core.dir/generalized_cost.cpp.o" "gcc" "src/core/CMakeFiles/nanocost_core.dir/generalized_cost.cpp.o.d"
  "/root/repo/src/core/itrs_analysis.cpp" "src/core/CMakeFiles/nanocost_core.dir/itrs_analysis.cpp.o" "gcc" "src/core/CMakeFiles/nanocost_core.dir/itrs_analysis.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/nanocost_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/nanocost_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/nanocost_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/nanocost_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/regularity_link.cpp" "src/core/CMakeFiles/nanocost_core.dir/regularity_link.cpp.o" "gcc" "src/core/CMakeFiles/nanocost_core.dir/regularity_link.cpp.o.d"
  "/root/repo/src/core/risk.cpp" "src/core/CMakeFiles/nanocost_core.dir/risk.cpp.o" "gcc" "src/core/CMakeFiles/nanocost_core.dir/risk.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/nanocost_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/nanocost_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/style_advisor.cpp" "src/core/CMakeFiles/nanocost_core.dir/style_advisor.cpp.o" "gcc" "src/core/CMakeFiles/nanocost_core.dir/style_advisor.cpp.o.d"
  "/root/repo/src/core/transistor_cost.cpp" "src/core/CMakeFiles/nanocost_core.dir/transistor_cost.cpp.o" "gcc" "src/core/CMakeFiles/nanocost_core.dir/transistor_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/units/CMakeFiles/nanocost_units.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/nanocost_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/defect/CMakeFiles/nanocost_defect.dir/DependInfo.cmake"
  "/root/repo/build/src/yield/CMakeFiles/nanocost_yield.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/nanocost_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/regularity/CMakeFiles/nanocost_regularity.dir/DependInfo.cmake"
  "/root/repo/build/src/roadmap/CMakeFiles/nanocost_roadmap.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/nanocost_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
