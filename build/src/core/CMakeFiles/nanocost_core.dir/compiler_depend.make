# Empty compiler generated dependencies file for nanocost_core.
# This may be replaced when dependencies are built.
