file(REMOVE_RECURSE
  "CMakeFiles/nanocost_core.dir/generalized_cost.cpp.o"
  "CMakeFiles/nanocost_core.dir/generalized_cost.cpp.o.d"
  "CMakeFiles/nanocost_core.dir/itrs_analysis.cpp.o"
  "CMakeFiles/nanocost_core.dir/itrs_analysis.cpp.o.d"
  "CMakeFiles/nanocost_core.dir/optimizer.cpp.o"
  "CMakeFiles/nanocost_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/nanocost_core.dir/planner.cpp.o"
  "CMakeFiles/nanocost_core.dir/planner.cpp.o.d"
  "CMakeFiles/nanocost_core.dir/regularity_link.cpp.o"
  "CMakeFiles/nanocost_core.dir/regularity_link.cpp.o.d"
  "CMakeFiles/nanocost_core.dir/risk.cpp.o"
  "CMakeFiles/nanocost_core.dir/risk.cpp.o.d"
  "CMakeFiles/nanocost_core.dir/sensitivity.cpp.o"
  "CMakeFiles/nanocost_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/nanocost_core.dir/style_advisor.cpp.o"
  "CMakeFiles/nanocost_core.dir/style_advisor.cpp.o.d"
  "CMakeFiles/nanocost_core.dir/transistor_cost.cpp.o"
  "CMakeFiles/nanocost_core.dir/transistor_cost.cpp.o.d"
  "libnanocost_core.a"
  "libnanocost_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
