file(REMOVE_RECURSE
  "CMakeFiles/nanocost_floorplan.dir/slicing.cpp.o"
  "CMakeFiles/nanocost_floorplan.dir/slicing.cpp.o.d"
  "libnanocost_floorplan.a"
  "libnanocost_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
