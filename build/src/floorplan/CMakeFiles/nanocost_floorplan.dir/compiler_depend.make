# Empty compiler generated dependencies file for nanocost_floorplan.
# This may be replaced when dependencies are built.
