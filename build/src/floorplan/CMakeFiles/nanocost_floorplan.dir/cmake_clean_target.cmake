file(REMOVE_RECURSE
  "libnanocost_floorplan.a"
)
