# Empty compiler generated dependencies file for nanocost_geometry.
# This may be replaced when dependencies are built.
