file(REMOVE_RECURSE
  "CMakeFiles/nanocost_geometry.dir/die.cpp.o"
  "CMakeFiles/nanocost_geometry.dir/die.cpp.o.d"
  "CMakeFiles/nanocost_geometry.dir/reticle.cpp.o"
  "CMakeFiles/nanocost_geometry.dir/reticle.cpp.o.d"
  "CMakeFiles/nanocost_geometry.dir/wafer.cpp.o"
  "CMakeFiles/nanocost_geometry.dir/wafer.cpp.o.d"
  "CMakeFiles/nanocost_geometry.dir/wafer_map.cpp.o"
  "CMakeFiles/nanocost_geometry.dir/wafer_map.cpp.o.d"
  "libnanocost_geometry.a"
  "libnanocost_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
