file(REMOVE_RECURSE
  "libnanocost_geometry.a"
)
