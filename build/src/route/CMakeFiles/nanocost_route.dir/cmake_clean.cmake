file(REMOVE_RECURSE
  "CMakeFiles/nanocost_route.dir/router.cpp.o"
  "CMakeFiles/nanocost_route.dir/router.cpp.o.d"
  "libnanocost_route.a"
  "libnanocost_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
