# Empty compiler generated dependencies file for nanocost_route.
# This may be replaced when dependencies are built.
