file(REMOVE_RECURSE
  "libnanocost_route.a"
)
