# Empty dependencies file for nanocost_roadmap.
# This may be replaced when dependencies are built.
