file(REMOVE_RECURSE
  "libnanocost_roadmap.a"
)
