file(REMOVE_RECURSE
  "CMakeFiles/nanocost_roadmap.dir/roadmap.cpp.o"
  "CMakeFiles/nanocost_roadmap.dir/roadmap.cpp.o.d"
  "libnanocost_roadmap.a"
  "libnanocost_roadmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
