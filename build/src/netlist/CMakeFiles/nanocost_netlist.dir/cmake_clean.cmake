file(REMOVE_RECURSE
  "CMakeFiles/nanocost_netlist.dir/estimate.cpp.o"
  "CMakeFiles/nanocost_netlist.dir/estimate.cpp.o.d"
  "CMakeFiles/nanocost_netlist.dir/generator.cpp.o"
  "CMakeFiles/nanocost_netlist.dir/generator.cpp.o.d"
  "CMakeFiles/nanocost_netlist.dir/netlist.cpp.o"
  "CMakeFiles/nanocost_netlist.dir/netlist.cpp.o.d"
  "libnanocost_netlist.a"
  "libnanocost_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
