# Empty compiler generated dependencies file for nanocost_netlist.
# This may be replaced when dependencies are built.
