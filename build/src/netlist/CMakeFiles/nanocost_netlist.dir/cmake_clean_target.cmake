file(REMOVE_RECURSE
  "libnanocost_netlist.a"
)
