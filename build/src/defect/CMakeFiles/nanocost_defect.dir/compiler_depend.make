# Empty compiler generated dependencies file for nanocost_defect.
# This may be replaced when dependencies are built.
