
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defect/critical_area.cpp" "src/defect/CMakeFiles/nanocost_defect.dir/critical_area.cpp.o" "gcc" "src/defect/CMakeFiles/nanocost_defect.dir/critical_area.cpp.o.d"
  "/root/repo/src/defect/layout_critical_area.cpp" "src/defect/CMakeFiles/nanocost_defect.dir/layout_critical_area.cpp.o" "gcc" "src/defect/CMakeFiles/nanocost_defect.dir/layout_critical_area.cpp.o.d"
  "/root/repo/src/defect/size_distribution.cpp" "src/defect/CMakeFiles/nanocost_defect.dir/size_distribution.cpp.o" "gcc" "src/defect/CMakeFiles/nanocost_defect.dir/size_distribution.cpp.o.d"
  "/root/repo/src/defect/spatial.cpp" "src/defect/CMakeFiles/nanocost_defect.dir/spatial.cpp.o" "gcc" "src/defect/CMakeFiles/nanocost_defect.dir/spatial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/units/CMakeFiles/nanocost_units.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/nanocost_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/nanocost_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
