file(REMOVE_RECURSE
  "CMakeFiles/nanocost_defect.dir/critical_area.cpp.o"
  "CMakeFiles/nanocost_defect.dir/critical_area.cpp.o.d"
  "CMakeFiles/nanocost_defect.dir/layout_critical_area.cpp.o"
  "CMakeFiles/nanocost_defect.dir/layout_critical_area.cpp.o.d"
  "CMakeFiles/nanocost_defect.dir/size_distribution.cpp.o"
  "CMakeFiles/nanocost_defect.dir/size_distribution.cpp.o.d"
  "CMakeFiles/nanocost_defect.dir/spatial.cpp.o"
  "CMakeFiles/nanocost_defect.dir/spatial.cpp.o.d"
  "libnanocost_defect.a"
  "libnanocost_defect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_defect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
