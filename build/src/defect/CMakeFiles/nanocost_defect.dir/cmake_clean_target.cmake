file(REMOVE_RECURSE
  "libnanocost_defect.a"
)
