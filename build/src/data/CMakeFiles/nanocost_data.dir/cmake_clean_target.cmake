file(REMOVE_RECURSE
  "libnanocost_data.a"
)
