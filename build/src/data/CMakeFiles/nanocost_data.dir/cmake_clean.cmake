file(REMOVE_RECURSE
  "CMakeFiles/nanocost_data.dir/stats.cpp.o"
  "CMakeFiles/nanocost_data.dir/stats.cpp.o.d"
  "CMakeFiles/nanocost_data.dir/table_a1.cpp.o"
  "CMakeFiles/nanocost_data.dir/table_a1.cpp.o.d"
  "libnanocost_data.a"
  "libnanocost_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
