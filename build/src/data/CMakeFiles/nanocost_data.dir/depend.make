# Empty dependencies file for nanocost_data.
# This may be replaced when dependencies are built.
