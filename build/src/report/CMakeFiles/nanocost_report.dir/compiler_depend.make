# Empty compiler generated dependencies file for nanocost_report.
# This may be replaced when dependencies are built.
