file(REMOVE_RECURSE
  "libnanocost_report.a"
)
