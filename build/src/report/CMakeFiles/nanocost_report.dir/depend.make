# Empty dependencies file for nanocost_report.
# This may be replaced when dependencies are built.
