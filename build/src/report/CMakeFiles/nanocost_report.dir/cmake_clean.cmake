file(REMOVE_RECURSE
  "CMakeFiles/nanocost_report.dir/chart.cpp.o"
  "CMakeFiles/nanocost_report.dir/chart.cpp.o.d"
  "CMakeFiles/nanocost_report.dir/table.cpp.o"
  "CMakeFiles/nanocost_report.dir/table.cpp.o.d"
  "CMakeFiles/nanocost_report.dir/wafer_view.cpp.o"
  "CMakeFiles/nanocost_report.dir/wafer_view.cpp.o.d"
  "libnanocost_report.a"
  "libnanocost_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
