file(REMOVE_RECURSE
  "CMakeFiles/nanocost_place.dir/placer.cpp.o"
  "CMakeFiles/nanocost_place.dir/placer.cpp.o.d"
  "CMakeFiles/nanocost_place.dir/synthesis.cpp.o"
  "CMakeFiles/nanocost_place.dir/synthesis.cpp.o.d"
  "libnanocost_place.a"
  "libnanocost_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocost_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
