# Empty dependencies file for nanocost_place.
# This may be replaced when dependencies are built.
