file(REMOVE_RECURSE
  "libnanocost_place.a"
)
