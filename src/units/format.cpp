#include "nanocost/units/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace nanocost::units {

namespace {

std::string printf_to_string(const char* fmt, double v) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), fmt, v);
  return std::string(buf.data());
}

std::string printf_to_string2(const char* fmt, double v, const char* s) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), fmt, v, s);
  return std::string(buf.data());
}

}  // namespace

std::string format_fixed(double v, int digits) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", digits, v);
  return std::string(buf.data());
}

std::string format_sci(double v, int digits) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*e", digits, v);
  return std::string(buf.data());
}

std::string format_si(double v) {
  struct Scale {
    double threshold;
    double divisor;
    const char* suffix;
  };
  static constexpr std::array<Scale, 4> kScales{{
      {1e12, 1e12, "T"},
      {1e9, 1e9, "G"},
      {1e6, 1e6, "M"},
      {1e3, 1e3, "k"},
  }};
  const double mag = std::fabs(v);
  for (const auto& s : kScales) {
    if (mag >= s.threshold) {
      return printf_to_string2("%.3g%s", v / s.divisor, s.suffix);
    }
  }
  return printf_to_string("%.4g", v);
}

std::string format_money(Money m) {
  const double v = m.value();
  const double mag = std::fabs(v);
  if (mag >= 1e3) return "$" + format_si(v);
  if (mag >= 0.01 || v == 0.0) return printf_to_string("$%.2f", v);
  // Sub-cent values (per-transistor costs) need scientific notation.
  return printf_to_string("$%.3e", v);
}

std::string format_feature_size(Micrometers lambda) {
  if (lambda.value() < 1.0) {
    return printf_to_string("%.0f nm", lambda.to_nanometers().value());
  }
  return printf_to_string("%.2f um", lambda.value());
}

std::string format_area(SquareCentimeters a) {
  return printf_to_string("%.3g cm^2", a.value());
}

std::string format_percent(Probability p) {
  return printf_to_string("%.1f%%", p.value() * 100.0);
}

}  // namespace nanocost::units
