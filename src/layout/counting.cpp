#include "nanocost/layout/counting.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace nanocost::layout {

namespace {

/// Uniform spatial hash over diffusion rectangles; poly rectangles query
/// it.  Tile size adapts to the geometry so the expected bucket load is
/// O(1) for grid-like layouts.
class DiffusionIndex final {
 public:
  explicit DiffusionIndex(const std::vector<Rect>& diffusion) : rects_(diffusion) {
    if (rects_.empty()) return;
    Coord min_x = rects_[0].x0, max_x = rects_[0].x1;
    Coord min_y = rects_[0].y0, max_y = rects_[0].y1;
    double total_w = 0.0;
    for (const Rect& r : rects_) {
      min_x = std::min(min_x, r.x0);
      max_x = std::max(max_x, r.x1);
      min_y = std::min(min_y, r.y0);
      max_y = std::max(max_y, r.y1);
      total_w += static_cast<double>(std::max(r.width(), r.height()));
    }
    origin_x_ = min_x;
    origin_y_ = min_y;
    const double mean_extent = total_w / static_cast<double>(rects_.size());
    tile_ = std::max<Coord>(1, static_cast<Coord>(std::llround(mean_extent * 2.0)));
    (void)max_x;
    (void)max_y;
    buckets_.reserve(rects_.size() * 2);
    for (std::size_t i = 0; i < rects_.size(); ++i) {
      visit_tiles(rects_[i], [&](std::int64_t key) { buckets_[key].push_back(i); });
    }
    visited_.assign(rects_.size(), 0);
  }

  /// Counts diffusion rects overlapping `poly` with positive area.
  [[nodiscard]] std::int64_t count_overlaps(const Rect& poly) {
    if (rects_.empty()) return 0;
    ++stamp_;
    std::int64_t count = 0;
    visit_tiles(poly, [&](std::int64_t key) {
      const auto it = buckets_.find(key);
      if (it == buckets_.end()) return;
      for (const std::size_t i : it->second) {
        if (visited_[i] == stamp_) continue;
        visited_[i] = stamp_;
        if (poly.intersects(rects_[i])) ++count;
      }
    });
    return count;
  }

 private:
  template <typename Fn>
  void visit_tiles(const Rect& r, Fn&& fn) const {
    const std::int64_t tx0 = (r.x0 - origin_x_) / tile_;
    const std::int64_t tx1 = (r.x1 - 1 - origin_x_) / tile_;
    const std::int64_t ty0 = (r.y0 - origin_y_) / tile_;
    const std::int64_t ty1 = (r.y1 - 1 - origin_y_) / tile_;
    for (std::int64_t ty = ty0; ty <= ty1; ++ty) {
      for (std::int64_t tx = tx0; tx <= tx1; ++tx) {
        fn(ty * 1000003 + tx);  // large prime stride mixes rows
      }
    }
  }

  std::vector<Rect> rects_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> buckets_;
  std::vector<std::uint64_t> visited_;
  std::uint64_t stamp_ = 0;
  Coord origin_x_ = 0;
  Coord origin_y_ = 0;
  Coord tile_ = 1;
};

}  // namespace

std::int64_t count_gate_overlaps(const std::vector<Rect>& rects) {
  std::vector<Rect> diffusion;
  std::vector<Rect> poly;
  for (const Rect& r : rects) {
    if (r.layer == Layer::kDiffusion) diffusion.push_back(r);
    else if (r.layer == Layer::kPoly) poly.push_back(r);
  }
  DiffusionIndex index(diffusion);
  std::int64_t count = 0;
  for (const Rect& p : poly) count += index.count_overlaps(p);
  return count;
}

std::int64_t count_transistors_flat(const Cell& top) {
  std::vector<Rect> rects;
  rects.reserve(static_cast<std::size_t>(top.flat_rect_count()));
  for_each_flat_rect(top, Transform{}, [&](const Rect& r) {
    if (r.layer == Layer::kDiffusion || r.layer == Layer::kPoly) rects.push_back(r);
  });
  return count_gate_overlaps(rects);
}

namespace {

std::int64_t count_hier(const Cell& cell,
                        std::unordered_map<const Cell*, std::int64_t>& memo) {
  const auto it = memo.find(&cell);
  if (it != memo.end()) return it->second;
  std::int64_t n = count_gate_overlaps(cell.rects());
  for (const Instance& inst : cell.instances()) {
    n += inst.count() * count_hier(*inst.cell, memo);
  }
  memo.emplace(&cell, n);
  return n;
}

}  // namespace

std::int64_t count_transistors_hierarchical(const Cell& top) {
  std::unordered_map<const Cell*, std::int64_t> memo;
  return count_hier(top, memo);
}

}  // namespace nanocost::layout
