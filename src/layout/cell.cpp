#include "nanocost/layout/cell.hpp"

#include <algorithm>
#include <stdexcept>

namespace nanocost::layout {

void Cell::add_rect(const Rect& r) {
  if (!r.valid()) {
    throw std::invalid_argument("degenerate rectangle added to cell " + name_);
  }
  rects_.push_back(r);
}

void Cell::add_instance(const Instance& inst) {
  if (inst.cell == nullptr) {
    throw std::invalid_argument("null instance added to cell " + name_);
  }
  if (inst.nx < 1 || inst.ny < 1) {
    throw std::invalid_argument("instance array counts must be >= 1 in cell " + name_);
  }
  if ((inst.nx > 1 && inst.pitch_x == 0) || (inst.ny > 1 && inst.pitch_y == 0)) {
    throw std::invalid_argument("arrayed instance needs a nonzero pitch in cell " + name_);
  }
  instances_.push_back(inst);
}

namespace {

void extend(Rect& box, const Rect& r, bool& any) {
  if (!any) {
    box = r;
    any = true;
    return;
  }
  box.x0 = std::min(box.x0, r.x0);
  box.y0 = std::min(box.y0, r.y0);
  box.x1 = std::max(box.x1, r.x1);
  box.y1 = std::max(box.y1, r.y1);
}

}  // namespace

Rect Cell::bounding_box() const {
  Rect box{};
  bool any = false;
  for (const Rect& r : rects_) extend(box, r, any);
  for (const Instance& inst : instances_) {
    const Rect child = inst.cell->bounding_box();
    if (!child.valid()) continue;
    // Array steps are pure translations, so the union's bounding box is
    // the union of the first and last placements' boxes.
    const Rect first = inst.transform.apply(child);
    const Rect last = first.translated((inst.nx - 1) * inst.pitch_x,
                                       (inst.ny - 1) * inst.pitch_y);
    extend(box, first, any);
    extend(box, last, any);
  }
  return any ? box : Rect{};
}

std::int64_t Cell::flat_rect_count() const {
  std::int64_t n = static_cast<std::int64_t>(rects_.size());
  for (const Instance& inst : instances_) {
    n += inst.count() * inst.cell->flat_rect_count();
  }
  return n;
}

Cell& Library::create_cell(const std::string& name) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("duplicate cell name: " + name);
  }
  cells_.push_back(std::make_unique<Cell>(name));
  Cell* cell = cells_.back().get();
  by_name_.emplace(name, cell);
  return *cell;
}

const Cell* Library::find(const std::string& name) const noexcept {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Cell* Library::find(const std::string& name) noexcept {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

void for_each_flat_rect(const Cell& cell, const Transform& transform,
                        const std::function<void(const Rect&)>& fn) {
  for (const Rect& r : cell.rects()) {
    fn(transform.apply(r));
  }
  for (const Instance& inst : cell.instances()) {
    for (std::int32_t iy = 0; iy < inst.ny; ++iy) {
      for (std::int32_t ix = 0; ix < inst.nx; ++ix) {
        // Orientation first (inst.transform), then the array step in the
        // parent's coordinates, then the parent's transform.
        Transform step = inst.transform;
        step.dx += ix * inst.pitch_x;
        step.dy += iy * inst.pitch_y;
        for_each_flat_rect(*inst.cell, transform.compose(step), fn);
      }
    }
  }
}

}  // namespace nanocost::layout
