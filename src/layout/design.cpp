#include "nanocost/layout/design.hpp"

#include <stdexcept>

#include "nanocost/layout/counting.hpp"
#include "nanocost/units/quantity.hpp"

namespace nanocost::layout {

Design::Design(std::shared_ptr<Library> library, const Cell* top, units::Micrometers lambda)
    : library_(std::move(library)), top_(top),
      lambda_(units::require_positive(lambda, "lambda")) {
  if (!library_ || top_ == nullptr) {
    throw std::invalid_argument("design requires a library and a top cell");
  }
}

units::SquareCentimeters Design::area() const {
  const Rect box = top_->bounding_box();
  if (!box.valid()) return units::SquareCentimeters{0.0};
  const double unit_um = lambda_.value() / static_cast<double>(kUnitsPerLambda);
  const double w_um = static_cast<double>(box.width()) * unit_um;
  const double h_um = static_cast<double>(box.height()) * unit_um;
  return units::SquareMicrometers{w_um * h_um}.to_square_centimeters();
}

std::int64_t Design::transistor_count() const {
  if (cached_transistors_ < 0) {
    cached_transistors_ = count_transistors_hierarchical(*top_);
  }
  return cached_transistors_;
}

DensityMetrics Design::density() const {
  return density_metrics(area(), static_cast<double>(transistor_count()), lambda_);
}

}  // namespace nanocost::layout
