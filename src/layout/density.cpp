#include "nanocost/layout/density.hpp"

#include "nanocost/units/quantity.hpp"

namespace nanocost::layout {

double decompression_index(units::SquareCentimeters area, double transistor_count,
                           units::Micrometers lambda) {
  units::require_positive(area, "chip area");
  units::require_positive(transistor_count, "transistor count");
  units::require_positive(lambda, "lambda");
  const double area_um2 = area.to_square_micrometers().value();
  const double lambda2 = lambda.value() * lambda.value();
  return area_um2 / (transistor_count * lambda2);
}

DensityMetrics density_metrics(units::SquareCentimeters area, double transistor_count,
                               units::Micrometers lambda) {
  DensityMetrics m;
  m.decompression_index = decompression_index(area, transistor_count, lambda);
  m.density_index = 1.0 / m.decompression_index;
  m.transistors_per_cm2 = transistor_count / area.value();
  return m;
}

units::SquareCentimeters area_for(double transistor_count, double s_d,
                                  units::Micrometers lambda) {
  units::require_positive(transistor_count, "transistor count");
  units::require_positive(s_d, "s_d");
  units::require_positive(lambda, "lambda");
  const double area_um2 = transistor_count * s_d * lambda.value() * lambda.value();
  return units::SquareMicrometers{area_um2}.to_square_centimeters();
}

}  // namespace nanocost::layout
