#include "nanocost/layout/generators.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace nanocost::layout {

namespace {

/// Library cell names must be unique; generators may be called many
/// times on one library, so suffix a counter on collision.
std::string unique_name(const Library& lib, const std::string& base) {
  if (lib.find(base) == nullptr) return base;
  for (int i = 2;; ++i) {
    const std::string candidate = base + "_" + std::to_string(i);
    if (lib.find(candidate) == nullptr) return candidate;
  }
}

/// One MOS transistor: a 3x2-lambda diffusion island crossed by a
/// 1x4-lambda poly gate, centered at (cx, cy) in half-lambda units.
/// Footprint fits in an 8x10-unit (4x5 lambda) site.
void add_transistor(Cell& cell, Coord cx, Coord cy) {
  cell.add_rect(Rect{Layer::kDiffusion, cx - 3, cy - 2, cx + 3, cy + 2});
  cell.add_rect(Rect{Layer::kPoly, cx - 1, cy - 4, cx + 1, cy + 4});
}

}  // namespace

const Cell* make_sram_array(Library& lib, std::int32_t rows, std::int32_t cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("SRAM array needs rows >= 1 and cols >= 1");
  }
  // 6T bitcell, 24 x 30 units = 12 x 15 lambda = 180 lambda^2 -> s_d = 30.
  Cell& bitcell = lib.create_cell(unique_name(lib, "sram_bitcell"));
  for (const Coord cx : {4, 12, 20}) {
    for (const Coord cy : {8, 22}) {
      add_transistor(bitcell, cx, cy);
    }
  }
  // Bit lines (metal1, vertical) and word line (metal2, horizontal).
  bitcell.add_rect(Rect{Layer::kMetal1, 0, 0, 2, 30});
  bitcell.add_rect(Rect{Layer::kMetal1, 22, 0, 24, 30});
  bitcell.add_rect(Rect{Layer::kMetal2, 0, 14, 24, 16});

  Cell& top =
      lib.create_cell(unique_name(lib, "sram_" + std::to_string(rows) + "x" + std::to_string(cols)));
  Instance array;
  array.cell = &bitcell;
  array.nx = cols;
  array.ny = rows;
  array.pitch_x = 24;
  array.pitch_y = 30;
  top.add_instance(array);
  return &top;
}

namespace {

/// Builds the four standard cells used by the block generator.  All are
/// 32 units (16 lambda) tall; transistor slots sit at x = 8, 16, ... on
/// the NMOS row (y = 8) and PMOS row (y = 24).
struct StdCellSet {
  const Cell* inv;
  const Cell* nand2;
  const Cell* nor2;
  const Cell* dff;
};

const Cell* make_stdcell(Library& lib, const std::string& base, Coord width,
                         std::int32_t slot_columns) {
  Cell& cell = lib.create_cell(unique_name(lib, base));
  // 16-unit (8-lambda) slot pitch: real standard cells are porous --
  // contacts, intra-cell routing and well ties spread the gates out,
  // which is what puts placed-and-routed ASICs at s_d of several
  // hundred rather than the bare-transistor packing limit.
  for (std::int32_t i = 0; i < slot_columns; ++i) {
    const Coord cx = 8 + 16 * i;
    add_transistor(cell, cx, 8);
    add_transistor(cell, cx, 24);
  }
  // Power rails.
  cell.add_rect(Rect{Layer::kMetal1, 0, 0, width, 2});
  cell.add_rect(Rect{Layer::kMetal1, 0, 30, width, 32});
  return &cell;
}

StdCellSet make_stdcell_set(Library& lib) {
  StdCellSet set{};
  set.inv = make_stdcell(lib, "inv", 24, 1);
  set.nand2 = make_stdcell(lib, "nand2", 40, 2);
  set.nor2 = make_stdcell(lib, "nor2", 40, 2);
  set.dff = make_stdcell(lib, "dff", 168, 10);
  return set;
}

Coord stdcell_width(const Cell* cell) {
  return cell->bounding_box().width();
}

}  // namespace

StdCellMasters make_stdcell_masters(Library& lib) {
  const StdCellSet set = make_stdcell_set(lib);
  return StdCellMasters{set.inv, set.nand2, set.nor2, set.dff};
}

const Cell* make_stdcell_block(Library& lib, const StdCellBlockParams& params) {
  if (params.rows < 1 || params.row_width_lambda < 32) {
    throw std::invalid_argument("std-cell block needs rows >= 1 and row width >= 32 lambda");
  }
  if (!(params.placement_utilization > 0.0 && params.placement_utilization <= 1.0)) {
    throw std::invalid_argument("placement utilization must be in (0, 1]");
  }
  if (params.routing_channel_ratio < 0.0) {
    throw std::invalid_argument("routing channel ratio must be >= 0");
  }

  const StdCellSet set = make_stdcell_set(lib);
  const Cell* choices[] = {set.inv, set.inv, set.nand2, set.nor2, set.dff};
  std::mt19937_64 rng(params.seed);
  std::uniform_int_distribution<int> pick(0, 4);

  const Coord row_width = static_cast<Coord>(params.row_width_lambda) * kUnitsPerLambda;
  const Coord row_height = 32;
  const Coord channel = static_cast<Coord>(std::llround(params.routing_channel_ratio * 32.0));
  const Coord row_pitch = row_height + channel;
  const Coord fill_target = static_cast<Coord>(std::llround(
      params.placement_utilization * static_cast<double>(row_width)));

  Cell& top = lib.create_cell(
      unique_name(lib, "stdcell_block_" + std::to_string(params.rows) + "r"));

  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (std::int32_t row = 0; row < params.rows; ++row) {
    const Coord y0 = row * row_pitch;
    const bool flipped = (row % 2) == 1;  // P&R-style alternating rows
    Coord x = 0;
    while (true) {
      const Cell* cell = choices[pick(rng)];
      const Coord w = stdcell_width(cell);
      if (x + w > fill_target) break;
      Instance inst;
      inst.cell = cell;
      inst.transform.orientation = flipped ? Orientation::kMX : Orientation::kR0;
      inst.transform.dx = x;
      // MX maps the cell's [0, 32] vertical extent to [-32, 0].
      inst.transform.dy = flipped ? y0 + row_height : y0;
      top.add_instance(inst);
      x += w;
    }
    // Routing-channel metal: a few metal2 tracks spanning the row plus
    // random metal3 jumpers, so channels are not empty space.
    if (channel >= 8) {
      const Coord ch0 = y0 + row_height;
      for (Coord t = ch0 + 2; t + 2 <= ch0 + channel; t += 8) {
        top.add_rect(Rect{Layer::kMetal2, 0, t, row_width, t + 2});
      }
      const int jumpers = static_cast<int>(row_width / 128);
      for (int j = 0; j < jumpers; ++j) {
        // Snapped to an 8-unit routing grid so jumpers keep legal
        // metal3 spacing no matter where the RNG lands.
        Coord jx = static_cast<Coord>(uni(rng) * static_cast<double>(row_width - 8));
        jx -= jx % 8;
        top.add_rect(Rect{Layer::kMetal3, jx, ch0, jx + 4, ch0 + channel});
      }
    }
  }
  // Stretch the block outline to the nominal row width with boundary
  // power straps so area reflects the placed region, not just cells.
  const Coord total_height = params.rows * row_pitch;
  top.add_rect(Rect{Layer::kMetal4, 0, 0, row_width, 4});
  top.add_rect(Rect{Layer::kMetal4, 0, total_height - 4, row_width, total_height});
  return &top;
}

const Cell* make_datapath(Library& lib, std::int32_t bits, std::int32_t stages) {
  if (bits < 1 || stages < 1) {
    throw std::invalid_argument("datapath needs bits >= 1 and stages >= 1");
  }
  // One bit-slice stage: 8 transistors in a 64 x 32 unit tile plus
  // through-metal, the hand-crafted regular style (s_d ~ 64).
  Cell& slice = lib.create_cell(unique_name(lib, "dp_slice"));
  for (std::int32_t i = 0; i < 4; ++i) {
    const Coord cx = 8 + 16 * i;
    add_transistor(slice, cx, 8);
    add_transistor(slice, cx, 24);
  }
  slice.add_rect(Rect{Layer::kMetal1, 0, 0, 64, 2});
  slice.add_rect(Rect{Layer::kMetal1, 0, 30, 64, 32});
  slice.add_rect(Rect{Layer::kMetal2, 0, 14, 64, 18});
  slice.add_rect(Rect{Layer::kMetal3, 30, 0, 34, 32});

  Cell& top = lib.create_cell(
      unique_name(lib, "datapath_" + std::to_string(bits) + "b" + std::to_string(stages) + "s"));
  Instance array;
  array.cell = &slice;
  array.nx = stages;
  array.ny = bits;
  array.pitch_x = 64;
  array.pitch_y = 32;
  top.add_instance(array);
  return &top;
}

const Cell* make_gate_array(Library& lib, std::int32_t rows, std::int32_t cols,
                            double utilization, std::uint64_t seed) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("gate array needs rows >= 1 and cols >= 1");
  }
  if (!(utilization >= 0.0 && utilization <= 1.0)) {
    throw std::invalid_argument("gate-array utilization must be in [0, 1]");
  }
  // Base site: two transistors in a 16 x 40 unit tile (sparse: s_d = 80).
  Cell& site = lib.create_cell(unique_name(lib, "ga_site"));
  add_transistor(site, 8, 10);
  add_transistor(site, 8, 30);
  // Personalized site: same transistors plus connecting metal.
  Cell& used = lib.create_cell(unique_name(lib, "ga_site_used"));
  add_transistor(used, 8, 10);
  add_transistor(used, 8, 30);
  used.add_rect(Rect{Layer::kMetal1, 6, 6, 10, 34});
  used.add_rect(Rect{Layer::kMetal2, 0, 18, 16, 22});

  Cell& top = lib.create_cell(
      unique_name(lib, "gate_array_" + std::to_string(rows) + "x" + std::to_string(cols)));
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      Instance inst;
      inst.cell = (uni(rng) < utilization) ? &used : &site;
      inst.transform.dx = c * 16;
      inst.transform.dy = r * 40;
      top.add_instance(inst);
    }
  }
  return &top;
}

const Cell* make_random_custom(Library& lib, std::int64_t transistor_count, double s_d_target,
                               std::uint64_t seed) {
  if (transistor_count < 1) {
    throw std::invalid_argument("random custom block needs at least one transistor");
  }
  if (s_d_target < 20.0) {
    throw std::invalid_argument("s_d target below the physical packing limit (~20)");
  }
  // One transistor per p x p lambda grid cell gives s_d ~ p^2; jitter
  // the position inside each cell to destroy regularity.
  const Coord pitch =
      static_cast<Coord>(std::llround(std::sqrt(s_d_target))) * kUnitsPerLambda;
  const auto side = static_cast<Coord>(
      std::ceil(std::sqrt(static_cast<double>(transistor_count))));
  Cell& top = lib.create_cell(
      unique_name(lib, "custom_" + std::to_string(transistor_count) + "t"));

  std::mt19937_64 rng(seed);
  // Keep a 5x6-unit transistor footprint plus jitter inside the cell.
  const Coord jitter_range = std::max<Coord>(1, pitch / 2 - 6);
  std::uniform_int_distribution<Coord> jitter(0, jitter_range);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  std::int64_t placed = 0;
  for (Coord gy = 0; gy < side && placed < transistor_count; ++gy) {
    for (Coord gx = 0; gx < side && placed < transistor_count; ++gx) {
      const Coord cx = gx * pitch + 4 + jitter(rng);
      const Coord cy = gy * pitch + 5 + jitter(rng);
      add_transistor(top, cx, cy);
      // Random local interconnect, different every site.
      if (uni(rng) < 0.6) {
        const Coord wx = gx * pitch + jitter(rng);
        const Coord wy = gy * pitch + jitter(rng);
        const bool horizontal = uni(rng) < 0.5;
        const Coord len = 4 + jitter(rng);
        if (horizontal) {
          top.add_rect(Rect{Layer::kMetal1, wx, wy, wx + len + 2, wy + 2});
        } else {
          top.add_rect(Rect{Layer::kMetal1, wx, wy, wx + 2, wy + len + 2});
        }
      }
      ++placed;
    }
  }
  return &top;
}

}  // namespace nanocost::layout
