#include "nanocost/layout/types.hpp"

#include <algorithm>

namespace nanocost::layout {

std::string layer_name(Layer layer) {
  switch (layer) {
    case Layer::kDiffusion: return "diffusion";
    case Layer::kPoly: return "poly";
    case Layer::kContact: return "contact";
    case Layer::kMetal1: return "metal1";
    case Layer::kVia1: return "via1";
    case Layer::kMetal2: return "metal2";
    case Layer::kVia2: return "via2";
    case Layer::kMetal3: return "metal3";
    case Layer::kVia3: return "via3";
    case Layer::kMetal4: return "metal4";
    case Layer::kVia4: return "via4";
    case Layer::kMetal5: return "metal5";
    case Layer::kVia5: return "via5";
    case Layer::kMetal6: return "metal6";
  }
  return "unknown";
}

namespace {

struct Matrix {
  int a, b, c, d;  // (x,y) -> (a x + b y, c x + d y)
};

constexpr Matrix kMatrices[kOrientationCount] = {
    {1, 0, 0, 1},    // R0
    {0, -1, 1, 0},   // R90
    {-1, 0, 0, -1},  // R180
    {0, 1, -1, 0},   // R270
    {1, 0, 0, -1},   // MX
    {-1, 0, 0, 1},   // MY
    {0, 1, 1, 0},    // MXR90: mirror about x, then rotate 90
    {0, -1, -1, 0},  // MYR90: mirror about y, then rotate 90
};

constexpr Matrix multiply(const Matrix& m, const Matrix& n) {
  // (m * n)(v) = m(n(v))
  return Matrix{m.a * n.a + m.b * n.c, m.a * n.b + m.b * n.d, m.c * n.a + m.d * n.c,
                m.c * n.b + m.d * n.d};
}

constexpr bool same(const Matrix& m, const Matrix& n) {
  return m.a == n.a && m.b == n.b && m.c == n.c && m.d == n.d;
}

}  // namespace

Orientation compose(Orientation outer, Orientation inner) noexcept {
  const Matrix product =
      multiply(kMatrices[static_cast<int>(outer)], kMatrices[static_cast<int>(inner)]);
  for (int i = 0; i < kOrientationCount; ++i) {
    if (same(product, kMatrices[i])) return static_cast<Orientation>(i);
  }
  return Orientation::kR0;  // unreachable: the eight matrices form a group
}

Point Transform::apply(Point p) const noexcept {
  const Matrix& m = kMatrices[static_cast<int>(orientation)];
  return Point{m.a * p.x + m.b * p.y + dx, m.c * p.x + m.d * p.y + dy};
}

Rect Transform::apply(const Rect& r) const noexcept {
  const Point p = apply(Point{r.x0, r.y0});
  const Point q = apply(Point{r.x1, r.y1});
  Rect out;
  out.layer = r.layer;
  out.x0 = std::min(p.x, q.x);
  out.x1 = std::max(p.x, q.x);
  out.y0 = std::min(p.y, q.y);
  out.y1 = std::max(p.y, q.y);
  return out;
}

Transform Transform::compose(const Transform& inner) const noexcept {
  Transform out;
  out.orientation = layout::compose(orientation, inner.orientation);
  const Point d = apply(Point{inner.dx, inner.dy});
  out.dx = d.x;
  out.dy = d.y;
  return out;
}

}  // namespace nanocost::layout
