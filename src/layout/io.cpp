#include "nanocost/layout/io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace nanocost::layout {

namespace {

constexpr const char* kMagic = "nanocost-layout";
constexpr const char* kVersion = "v1";

const char* kOrientationNames[kOrientationCount] = {"R0",  "R90",   "R180",  "R270",
                                                    "MX",  "MY",    "MXR90", "MYR90"};

Layer parse_layer(const std::string& name, int line) {
  for (int i = 0; i < kLayerCount; ++i) {
    if (layer_name(static_cast<Layer>(i)) == name) return static_cast<Layer>(i);
  }
  throw std::runtime_error("layout parse error at line " + std::to_string(line) +
                           ": unknown layer '" + name + "'");
}

void emit_cell(std::ostream& out, const Cell& cell,
               std::unordered_set<const Cell*>& emitted) {
  if (emitted.contains(&cell)) return;
  // Children first: the format requires definition before use.
  for (const Instance& inst : cell.instances()) {
    emit_cell(out, *inst.cell, emitted);
  }
  emitted.insert(&cell);
  out << "cell " << cell.name() << "\n";
  for (const Rect& r : cell.rects()) {
    out << "  rect " << layer_name(r.layer) << ' ' << r.x0 << ' ' << r.y0 << ' ' << r.x1
        << ' ' << r.y1 << "\n";
  }
  for (const Instance& inst : cell.instances()) {
    out << "  inst " << inst.cell->name() << ' '
        << orientation_name(inst.transform.orientation) << ' ' << inst.transform.dx << ' '
        << inst.transform.dy;
    if (inst.nx != 1 || inst.ny != 1) {
      out << ' ' << inst.nx << ' ' << inst.ny << ' ' << inst.pitch_x << ' ' << inst.pitch_y;
    }
    out << "\n";
  }
  out << "endcell\n";
}

}  // namespace

std::string orientation_name(Orientation o) {
  return kOrientationNames[static_cast<int>(o)];
}

Orientation parse_orientation(const std::string& name) {
  for (int i = 0; i < kOrientationCount; ++i) {
    if (name == kOrientationNames[i]) return static_cast<Orientation>(i);
  }
  throw std::runtime_error("unknown orientation '" + name + "'");
}

void save_design(std::ostream& out, const Design& design) {
  out << kMagic << ' ' << kVersion << "\n";
  out << "lambda_um " << design.lambda().value() << "\n";
  std::unordered_set<const Cell*> emitted;
  emit_cell(out, design.top(), emitted);
  out << "top " << design.top().name() << "\n";
  if (!out) {
    throw std::runtime_error("layout write failed");
  }
}

void save_design_file(const std::string& path, const Design& design) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  save_design(out, design);
}

Design load_design(std::istream& in) {
  auto lib = std::make_shared<Library>();
  std::string line;
  int line_no = 0;
  const auto fail = [&](const std::string& msg) -> std::runtime_error {
    return std::runtime_error("layout parse error at line " + std::to_string(line_no) +
                              ": " + msg);
  };

  if (!std::getline(in, line)) throw fail("empty input");
  ++line_no;
  {
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    if (magic != kMagic || version != kVersion) {
      throw fail("bad header '" + line + "'");
    }
  }

  double lambda_um = 0.0;
  Cell* current = nullptr;
  const Cell* top = nullptr;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ss(line);
    std::string keyword;
    if (!(ss >> keyword)) continue;  // blank line
    if (keyword == "lambda_um") {
      if (!(ss >> lambda_um)) throw fail("bad lambda_um");
    } else if (keyword == "cell") {
      if (current != nullptr) throw fail("nested cell definition");
      std::string name;
      if (!(ss >> name)) throw fail("cell needs a name");
      current = &lib->create_cell(name);
    } else if (keyword == "rect") {
      if (current == nullptr) throw fail("rect outside a cell");
      std::string layer;
      Rect r;
      if (!(ss >> layer >> r.x0 >> r.y0 >> r.x1 >> r.y1)) throw fail("bad rect");
      r.layer = parse_layer(layer, line_no);
      if (!r.valid()) throw fail("degenerate rect");
      current->add_rect(r);
    } else if (keyword == "inst") {
      if (current == nullptr) throw fail("inst outside a cell");
      std::string ref, orient;
      Instance inst;
      if (!(ss >> ref >> orient >> inst.transform.dx >> inst.transform.dy)) {
        throw fail("bad inst");
      }
      inst.transform.orientation = parse_orientation(orient);
      // Optional array tail.
      if (ss >> inst.nx) {
        if (!(ss >> inst.ny >> inst.pitch_x >> inst.pitch_y)) throw fail("bad inst array");
      }
      inst.cell = lib->find(ref);
      if (inst.cell == nullptr) throw fail("inst references undefined cell '" + ref + "'");
      if (inst.cell == current) throw fail("cell instantiates itself");
      current->add_instance(inst);
    } else if (keyword == "endcell") {
      if (current == nullptr) throw fail("endcell outside a cell");
      current = nullptr;
    } else if (keyword == "top") {
      std::string name;
      if (!(ss >> name)) throw fail("top needs a name");
      top = lib->find(name);
      if (top == nullptr) throw fail("top references undefined cell '" + name + "'");
    } else {
      throw fail("unknown keyword '" + keyword + "'");
    }
  }
  if (current != nullptr) throw fail("unterminated cell definition");
  if (top == nullptr) throw fail("missing top statement");
  if (!(lambda_um > 0.0)) throw fail("missing or invalid lambda_um");
  return Design{std::move(lib), top, units::Micrometers{lambda_um}};
}

Design load_design_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "' for reading");
  }
  return load_design(in);
}

}  // namespace nanocost::layout
