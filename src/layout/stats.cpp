#include "nanocost/layout/stats.hpp"

#include <algorithm>

namespace nanocost::layout {

double LayoutStats::layer_coverage(Layer l) const noexcept {
  if (!bounding_box.valid()) return 0.0;
  const double box = static_cast<double>(bounding_box.area());
  return static_cast<double>(layer(l).area_units2) / box;
}

double LayoutStats::interconnect_share() const noexcept {
  std::int64_t metal = 0, all = 0;
  for (int i = 0; i < kLayerCount; ++i) {
    const auto l = static_cast<Layer>(i);
    all += layers[static_cast<std::size_t>(i)].area_units2;
    if (l >= Layer::kMetal1) {
      metal += layers[static_cast<std::size_t>(i)].area_units2;
    }
  }
  return all > 0 ? static_cast<double>(metal) / static_cast<double>(all) : 0.0;
}

units::Micrometers LayoutStats::total_wire_length(units::Micrometers lambda) const {
  std::int64_t units_total = 0;
  for (int i = 0; i < kLayerCount; ++i) {
    const auto l = static_cast<Layer>(i);
    if (l >= Layer::kMetal1) {
      units_total += layers[static_cast<std::size_t>(i)].wire_length_units;
    }
  }
  const double unit_um = lambda.value() / static_cast<double>(kUnitsPerLambda);
  return units::Micrometers{static_cast<double>(units_total) * unit_um};
}

LayoutStats collect_stats(const Cell& top) {
  LayoutStats stats;
  bool any = false;
  for_each_flat_rect(top, Transform{}, [&](const Rect& r) {
    LayerStats& ls = stats.layers[static_cast<std::size_t>(r.layer)];
    ls.rect_count += 1;
    ls.area_units2 += r.area();
    ls.wire_length_units += std::max(r.width(), r.height());
    stats.total_rects += 1;
    if (!any) {
      stats.bounding_box = r;
      any = true;
    } else {
      stats.bounding_box.x0 = std::min(stats.bounding_box.x0, r.x0);
      stats.bounding_box.y0 = std::min(stats.bounding_box.y0, r.y0);
      stats.bounding_box.x1 = std::max(stats.bounding_box.x1, r.x1);
      stats.bounding_box.y1 = std::max(stats.bounding_box.y1, r.y1);
    }
  });
  return stats;
}

}  // namespace nanocost::layout
