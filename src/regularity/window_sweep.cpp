#include "nanocost/regularity/window_sweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "nanocost/exec/parallel.hpp"

namespace nanocost::regularity {

std::vector<WindowSweepPoint> sweep_windows(const layout::Cell& top,
                                            layout::Coord min_window, int steps,
                                            bool orientation_invariant,
                                            exec::ThreadPool* pool) {
  if (min_window <= 0 || steps < 1) {
    throw std::invalid_argument("window sweep needs min_window > 0 and steps >= 1");
  }
  // Flatten once; the extractor re-tiles the same geometry per size.
  std::vector<layout::Rect> rects;
  rects.reserve(static_cast<std::size_t>(top.flat_rect_count()));
  layout::for_each_flat_rect(top, layout::Transform{},
                             [&](const layout::Rect& r) { rects.push_back(r); });

  std::vector<layout::Coord> windows(static_cast<std::size_t>(steps));
  layout::Coord window = min_window;
  for (int i = 0; i < steps; ++i, window *= 2) {
    windows[static_cast<std::size_t>(i)] = window;
  }

  // One extraction per ladder rung; rungs are independent and the
  // extractor is pure over (rects, params).
  std::vector<WindowSweepPoint> out(windows.size());
  exec::parallel_for(pool, steps, 1, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      ExtractorParams params;
      params.window = windows[static_cast<std::size_t>(i)];
      params.orientation_invariant = orientation_invariant;
      const RegularityReport report = extract_patterns(rects, params);
      WindowSweepPoint point;
      point.window = params.window;
      point.total_windows = report.total_windows;
      point.unique_patterns = report.unique_patterns;
      point.regularity_index = report.regularity_index();
      out[static_cast<std::size_t>(i)] = point;
    }
  });
  return out;
}

WindowSweepPoint characteristic_scale(const std::vector<WindowSweepPoint>& sweep,
                                      double tolerance) {
  if (sweep.empty()) {
    throw std::invalid_argument("characteristic scale needs a non-empty sweep");
  }
  if (!(tolerance >= 0.0 && tolerance < 1.0)) {
    throw std::invalid_argument("tolerance must be in [0, 1)");
  }
  double best = 0.0;
  for (const WindowSweepPoint& p : sweep) best = std::max(best, p.regularity_index);
  // Largest window still within tolerance of the best regularity.
  const WindowSweepPoint* chosen = &sweep.front();
  for (const WindowSweepPoint& p : sweep) {
    if (p.regularity_index >= best - tolerance && p.window >= chosen->window) {
      chosen = &p;
    }
  }
  return *chosen;
}

}  // namespace nanocost::regularity
