#include "nanocost/regularity/window_sweep.hpp"

#include <algorithm>
#include <stdexcept>

namespace nanocost::regularity {

std::vector<WindowSweepPoint> sweep_windows(const layout::Cell& top,
                                            layout::Coord min_window, int steps,
                                            bool orientation_invariant) {
  if (min_window <= 0 || steps < 1) {
    throw std::invalid_argument("window sweep needs min_window > 0 and steps >= 1");
  }
  // Flatten once; the extractor re-tiles the same geometry per size.
  std::vector<layout::Rect> rects;
  rects.reserve(static_cast<std::size_t>(top.flat_rect_count()));
  layout::for_each_flat_rect(top, layout::Transform{},
                             [&](const layout::Rect& r) { rects.push_back(r); });

  std::vector<WindowSweepPoint> out;
  layout::Coord window = min_window;
  for (int i = 0; i < steps; ++i, window *= 2) {
    ExtractorParams params;
    params.window = window;
    params.orientation_invariant = orientation_invariant;
    const RegularityReport report = extract_patterns(rects, params);
    WindowSweepPoint point;
    point.window = window;
    point.total_windows = report.total_windows;
    point.unique_patterns = report.unique_patterns;
    point.regularity_index = report.regularity_index();
    out.push_back(point);
  }
  return out;
}

WindowSweepPoint characteristic_scale(const std::vector<WindowSweepPoint>& sweep,
                                      double tolerance) {
  if (sweep.empty()) {
    throw std::invalid_argument("characteristic scale needs a non-empty sweep");
  }
  if (!(tolerance >= 0.0 && tolerance < 1.0)) {
    throw std::invalid_argument("tolerance must be in [0, 1)");
  }
  double best = 0.0;
  for (const WindowSweepPoint& p : sweep) best = std::max(best, p.regularity_index);
  // Largest window still within tolerance of the best regularity.
  const WindowSweepPoint* chosen = &sweep.front();
  for (const WindowSweepPoint& p : sweep) {
    if (p.regularity_index >= best - tolerance && p.window >= chosen->window) {
      chosen = &p;
    }
  }
  return *chosen;
}

}  // namespace nanocost::regularity
