#include "nanocost/regularity/reuse.hpp"

#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::regularity {

units::Money characterization_cost(const RegularityReport& report,
                                   units::Money cost_per_pattern) {
  units::require_non_negative(cost_per_pattern, "cost per pattern");
  return cost_per_pattern * static_cast<double>(report.unique_patterns);
}

double design_effort_scale(const RegularityReport& report, double min_scale) {
  if (!(min_scale > 0.0 && min_scale <= 1.0)) {
    throw std::domain_error("min_scale must be in (0, 1]");
  }
  if (report.total_windows <= 0) return 1.0;
  const double unique_fraction = static_cast<double>(report.unique_patterns) /
                                 static_cast<double>(report.total_windows);
  return min_scale + (1.0 - min_scale) * unique_fraction;
}

double effective_volume_multiplier(const RegularityReport& report, int products_sharing) {
  if (products_sharing < 1) {
    throw std::domain_error("at least one product must use the pattern library");
  }
  if (products_sharing == 1 || report.total_windows <= 0) return 1.0;
  // Only the *reused* (regular) share of the design amortizes across the
  // family; the unique remainder is paid per product.
  const double regular_share = report.regularity_index();
  const double unique_share = 1.0 - regular_share;
  // Per-product effort falls from 1 to unique_share + regular/N; the
  // effective volume multiplier is its inverse.
  const double per_product =
      unique_share + regular_share / static_cast<double>(products_sharing);
  return 1.0 / per_product;
}

}  // namespace nanocost::regularity
