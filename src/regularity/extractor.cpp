#include "nanocost/regularity/extractor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace nanocost::regularity {

using layout::Coord;
using layout::Rect;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void hash_value(std::uint64_t& h, std::int64_t v) {
  auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    h ^= (u >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
}

std::uint64_t hash_rects(std::vector<Rect>& rects) {
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    return std::tie(a.layer, a.x0, a.y0, a.x1, a.y1) <
           std::tie(b.layer, b.x0, b.y0, b.x1, b.y1);
  });
  std::uint64_t h = kFnvOffset;
  for (const Rect& r : rects) {
    hash_value(h, static_cast<std::int64_t>(r.layer));
    hash_value(h, r.x0);
    hash_value(h, r.y0);
    hash_value(h, r.x1);
    hash_value(h, r.y1);
  }
  return h;
}

/// Maps a window-relative rect under one of the eight orientations of
/// the square window [0,w]^2 back onto [0,w]^2.
Rect orient_in_window(const Rect& r, layout::Orientation o, Coord w) {
  layout::Transform t;
  t.orientation = o;
  Rect out = t.apply(r);
  // Post-orientation offset that returns the window to [0,w]^2.
  static constexpr int kOffsets[layout::kOrientationCount][2] = {
      {0, 0},  // R0
      {1, 0},  // R90
      {1, 1},  // R180
      {0, 1},  // R270
      {0, 1},  // MX
      {1, 0},  // MY
      {0, 0},  // MXR90
      {1, 1},  // MYR90
  };
  const auto idx = static_cast<int>(o);
  return out.translated(kOffsets[idx][0] * w, kOffsets[idx][1] * w);
}

std::uint64_t fingerprint_window(const std::vector<Rect>& rel_rects, Coord window,
                                 bool orientation_invariant) {
  std::vector<Rect> scratch = rel_rects;
  if (!orientation_invariant) {
    return hash_rects(scratch);
  }
  std::uint64_t best = ~0ULL;
  for (int o = 0; o < layout::kOrientationCount; ++o) {
    scratch.clear();
    for (const Rect& r : rel_rects) {
      scratch.push_back(orient_in_window(r, static_cast<layout::Orientation>(o), window));
    }
    best = std::min(best, hash_rects(scratch));
  }
  return best;
}

}  // namespace

double RegularityReport::regularity_index() const noexcept {
  if (total_windows <= 0) return 0.0;
  return 1.0 - static_cast<double>(unique_patterns) / static_cast<double>(total_windows);
}

double RegularityReport::top_k_coverage(std::int64_t k) const noexcept {
  if (total_windows <= 0 || k <= 0) return 0.0;
  std::int64_t covered = 0;
  for (std::size_t i = 0; i < census.size() && static_cast<std::int64_t>(i) < k; ++i) {
    covered += census[i].occurrences;
  }
  return static_cast<double>(covered) / static_cast<double>(total_windows);
}

double RegularityReport::pattern_entropy_bits() const noexcept {
  if (total_windows <= 0) return 0.0;
  double h = 0.0;
  const double n = static_cast<double>(total_windows);
  for (const PatternClass& pc : census) {
    const double p = static_cast<double>(pc.occurrences) / n;
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

RegularityReport extract_patterns(const std::vector<Rect>& rects, const ExtractorParams& params) {
  if (params.window <= 0) {
    throw std::invalid_argument("extractor window must be positive");
  }
  RegularityReport report;
  if (rects.empty()) return report;

  Coord min_x = rects[0].x0, min_y = rects[0].y0;
  Coord max_x = rects[0].x1, max_y = rects[0].y1;
  for (const Rect& r : rects) {
    min_x = std::min(min_x, r.x0);
    min_y = std::min(min_y, r.y0);
    max_x = std::max(max_x, r.x1);
    max_y = std::max(max_y, r.y1);
  }
  const Coord w = params.window;
  const std::int64_t nx = (max_x - min_x + w - 1) / w;
  const std::int64_t ny = (max_y - min_y + w - 1) / w;

  // Distribute clipped, window-relative rectangles into windows.
  std::unordered_map<std::int64_t, std::vector<Rect>> windows;
  for (const Rect& r : rects) {
    const std::int64_t wx0 = (r.x0 - min_x) / w;
    const std::int64_t wx1 = (r.x1 - 1 - min_x) / w;
    const std::int64_t wy0 = (r.y0 - min_y) / w;
    const std::int64_t wy1 = (r.y1 - 1 - min_y) / w;
    for (std::int64_t wy = wy0; wy <= wy1; ++wy) {
      for (std::int64_t wx = wx0; wx <= wx1; ++wx) {
        const Coord ox = min_x + wx * w;
        const Coord oy = min_y + wy * w;
        const Rect window_box{r.layer, ox, oy, ox + w, oy + w};
        Rect clipped = r.intersection(window_box);
        clipped = clipped.translated(-ox, -oy);
        windows[wy * nx + wx].push_back(clipped);
      }
    }
  }

  // Fingerprint census.
  std::unordered_map<std::uint64_t, PatternClass> census;
  for (auto& [key, rel_rects] : windows) {
    (void)key;
    const std::uint64_t fp =
        fingerprint_window(rel_rects, w, params.orientation_invariant);
    PatternClass& pc = census[fp];
    pc.fingerprint = fp;
    pc.occurrences += 1;
    pc.rect_count = static_cast<std::int32_t>(rel_rects.size());
  }

  const std::int64_t occupied = static_cast<std::int64_t>(windows.size());
  report.empty_windows = nx * ny - occupied;
  report.total_windows = params.ignore_empty_windows ? occupied : nx * ny;
  if (!params.ignore_empty_windows && report.empty_windows > 0) {
    PatternClass empty;
    empty.fingerprint = 0;
    empty.occurrences = report.empty_windows;
    empty.rect_count = 0;
    census[0] = empty;
  }
  report.unique_patterns = static_cast<std::int64_t>(census.size());
  report.census.reserve(census.size());
  for (const auto& [fp, pc] : census) {
    (void)fp;
    report.census.push_back(pc);
  }
  std::sort(report.census.begin(), report.census.end(),
            [](const PatternClass& a, const PatternClass& b) {
              if (a.occurrences != b.occurrences) return a.occurrences > b.occurrences;
              return a.fingerprint < b.fingerprint;
            });
  return report;
}

RegularityReport extract_patterns(const layout::Cell& top, const ExtractorParams& params) {
  std::vector<Rect> rects;
  rects.reserve(static_cast<std::size_t>(top.flat_rect_count()));
  layout::for_each_flat_rect(top, layout::Transform{},
                             [&](const Rect& r) { rects.push_back(r); });
  return extract_patterns(rects, params);
}

}  // namespace nanocost::regularity
