#include "nanocost/regularity/hierarchy.hpp"

#include <unordered_map>
#include <unordered_set>

namespace nanocost::regularity {

namespace {

/// Placements of each master when `cell` is placed `multiplier` times.
void count_placements(const layout::Cell& cell, std::int64_t multiplier,
                      std::unordered_map<const layout::Cell*, std::int64_t>& placements) {
  placements[&cell] += multiplier;
  for (const layout::Instance& inst : cell.instances()) {
    count_placements(*inst.cell, multiplier * inst.count(), placements);
  }
}

}  // namespace

HierarchyReport analyze_hierarchy(const layout::Cell& top) {
  std::unordered_map<const layout::Cell*, std::int64_t> placements;
  count_placements(top, 1, placements);

  HierarchyReport report;
  report.unique_cells = static_cast<std::int64_t>(placements.size());
  for (const auto& [cell, count] : placements) {
    report.total_placements += count;
    report.master_rects += static_cast<std::int64_t>(cell->rects().size());
    report.flat_rects += count * static_cast<std::int64_t>(cell->rects().size());
  }
  return report;
}

}  // namespace nanocost::regularity
