#include "nanocost/cost/respin.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::cost {

RespinModel::RespinModel(RespinParams params) : params_(params) {
  if (!(params_.verification_coverage > 0.0 && params_.verification_coverage < 1.0)) {
    throw std::invalid_argument("verification coverage must be in (0, 1)");
  }
  units::require_positive(params_.bugs_per_mtr, "bugs per Mtr");
  units::require_positive(params_.size_exponent, "size exponent");
}

double RespinModel::escaped_bugs(double transistors) const {
  units::require_positive(transistors, "transistor count");
  const double bugs =
      params_.bugs_per_mtr * std::pow(transistors / 1e6, params_.size_exponent);
  return bugs * (1.0 - params_.verification_coverage);
}

units::Probability RespinModel::first_silicon_success(double transistors) const {
  return units::Probability::clamped(std::exp(-escaped_bugs(transistors)));
}

double RespinModel::expected_respins(double transistors) const {
  // After each spin, the remaining escape population shrinks by the
  // verification coverage (silicon debug is part of "verification" of
  // the next spin); a spin is needed whenever any escapes remain.
  // E[respins] = sum_k P(escapes remain after k spins).
  double escapes = escaped_bugs(transistors);
  double expected = 0.0;
  for (int spin = 0; spin < 16; ++spin) {
    const double p_need_spin = 1.0 - std::exp(-escapes);
    expected += p_need_spin;
    if (p_need_spin < 1e-9) break;
    escapes *= (1.0 - params_.verification_coverage);
  }
  return expected;
}

units::Money RespinModel::expected_mask_nre(const MaskCostModel& masks,
                                            double transistors) const {
  return masks.set_cost() * (1.0 + expected_respins(transistors));
}

}  // namespace nanocost::cost
