#include "nanocost/cost/test_cost.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::cost {

TestCostModel::TestCostModel(TestCostParams params) : params_(params) {
  units::require_positive(params_.tester_cost_per_second, "tester cost per second");
  units::require_positive(params_.base_seconds_per_mtr, "base test time");
  units::require_positive(params_.size_exponent, "test size exponent");
  if (!(params_.base_coverage > 0.0 && params_.base_coverage < 1.0)) {
    throw std::invalid_argument("base coverage must be in (0, 1)");
  }
}

double TestCostModel::test_seconds(double transistors, double coverage) const {
  units::require_positive(transistors, "transistor count");
  if (!(coverage > 0.0 && coverage < 1.0)) {
    throw std::domain_error("coverage must be in (0, 1)");
  }
  const double size_factor = std::pow(transistors / 1e6, params_.size_exponent);
  // Each additional "nine" of coverage multiplies time by a constant:
  // time ~ log(1 - coverage) normalized at the base coverage.
  const double coverage_factor =
      std::log(1.0 - coverage) / std::log(1.0 - params_.base_coverage);
  return params_.base_seconds_per_mtr * size_factor * std::max(coverage_factor, 0.0);
}

units::Money TestCostModel::cost_per_die(double transistors, double coverage) const {
  return params_.tester_cost_per_second * test_seconds(transistors, coverage);
}

units::Probability TestCostModel::defect_level(units::Probability yield,
                                               double coverage) const {
  if (!(coverage > 0.0 && coverage <= 1.0)) {
    throw std::domain_error("coverage must be in (0, 1]");
  }
  // Williams-Brown: DL = 1 - Y^(1-T).
  const double dl = 1.0 - std::pow(yield.value(), 1.0 - coverage);
  return units::Probability::clamped(dl);
}

}  // namespace nanocost::cost
