#include "nanocost/cost/fab_capex.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::cost {

namespace {
constexpr double kAnchorLambdaUm = 0.18;
constexpr double kShrinkPerNode = 0.7;
}  // namespace

std::vector<ToolGroup> reference_tool_set() {
  // A 1999-class logic fab at 20k wafer starts/month lands near $1.5B,
  // ~35% of it lithography -- the classic breakdown.
  return {
      ToolGroup{"lithography", units::Money{12e6}, 460.0, 1.6},
      ToolGroup{"deposition", units::Money{4e6}, 215.0, 1.3},
      ToolGroup{"etch", units::Money{3e6}, 270.0, 1.25},
      ToolGroup{"implant", units::Money{4e6}, 670.0, 1.2},
      ToolGroup{"cmp", units::Money{2.5e6}, 480.0, 1.25},
      ToolGroup{"metrology", units::Money{2e6}, 270.0, 1.4},
  };
}

FabModel::FabModel(units::Micrometers lambda, double wafer_starts_per_month,
                   std::vector<ToolGroup> tools)
    : lambda_(units::require_positive(lambda, "lambda")),
      capacity_(units::require_positive(wafer_starts_per_month, "fab capacity")),
      tools_(std::move(tools)) {
  if (tools_.empty()) {
    throw std::invalid_argument("fab needs at least one tool group");
  }
  for (const ToolGroup& t : tools_) {
    units::require_positive(t.unit_price, "tool price");
    units::require_positive(t.wafers_per_month_per_tool, "tool throughput");
    units::require_positive(t.escalation_per_node, "tool escalation");
  }
  nodes_below_anchor_ =
      std::log(kAnchorLambdaUm / lambda_.value()) / std::log(1.0 / kShrinkPerNode);
}

int FabModel::tool_count(const ToolGroup& group) const {
  return static_cast<int>(std::ceil(capacity_ / group.wafers_per_month_per_tool));
}

units::Money FabModel::total_capex() const {
  units::Money total{};
  for (const ToolGroup& t : tools_) {
    const double escalation = std::pow(t.escalation_per_node, nodes_below_anchor_);
    total += t.unit_price * (tool_count(t) * escalation);
  }
  return total;
}

units::Money FabModel::monthly_fixed_cost(double depreciation_years,
                                          double facilities_overhead) const {
  units::require_positive(depreciation_years, "depreciation years");
  units::require_non_negative(facilities_overhead, "facilities overhead");
  const units::Money capex = total_capex();
  const units::Money depreciation = capex / (depreciation_years * 12.0);
  const units::Money facilities = capex * (facilities_overhead / 12.0);
  return depreciation + facilities;
}

WaferCostParams FabModel::derive_wafer_cost_params(WaferCostParams base) const {
  // WaferCostModel escalates its fixed cost internally with the node,
  // so hand it the *anchor-node* fixed cost: rebuild this fab's bill at
  // 180 nm prices (same capacity, same tool counts).
  const FabModel anchor{units::Micrometers{kAnchorLambdaUm}, capacity_, tools_};
  base.fab_fixed_per_month = anchor.monthly_fixed_cost();
  base.full_capacity_wafers_per_month = capacity_;
  return base;
}

}  // namespace nanocost::cost
