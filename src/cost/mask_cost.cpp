#include "nanocost/cost/mask_cost.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::cost {

namespace {
constexpr double kReferenceLambdaUm = 0.18;
constexpr double kShrinkPerNode = 0.7;
}  // namespace

MaskCostModel::MaskCostModel(units::Micrometers lambda, int mask_count, MaskCostParams params)
    : lambda_(units::require_positive(lambda, "lambda")), mask_count_(mask_count),
      params_(params) {
  if (mask_count_ < 1) {
    throw std::invalid_argument("mask count must be >= 1");
  }
  units::require_positive(params_.base_cost_per_mask, "base cost per mask");
  units::require_positive(params_.escalation_per_node, "mask cost escalation");
  if (!(params_.non_critical_fraction > 0.0 && params_.non_critical_fraction <= 1.0)) {
    throw std::invalid_argument("non-critical fraction must be in (0, 1]");
  }
  if (!(params_.critical_share >= 0.0 && params_.critical_share <= 1.0)) {
    throw std::invalid_argument("critical share must be in [0, 1]");
  }
}

units::Money MaskCostModel::set_cost() const {
  const double nodes_below =
      std::log(kReferenceLambdaUm / lambda_.value()) / std::log(1.0 / kShrinkPerNode);
  const double escalation = std::pow(params_.escalation_per_node, nodes_below);
  const double critical = params_.critical_share * mask_count_;
  const double non_critical = mask_count_ - critical;
  const double equivalent_masks = critical + non_critical * params_.non_critical_fraction;
  return params_.base_cost_per_mask * equivalent_masks * escalation;
}

units::Money MaskCostModel::total_cost(int respins) const {
  if (respins < 0) {
    throw std::invalid_argument("respin count must be >= 0");
  }
  return set_cost() * static_cast<double>(1 + respins);
}

}  // namespace nanocost::cost
