#include "nanocost/cost/design_cost.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "nanocost/units/quantity.hpp"

namespace nanocost::cost {

DesignCostModel::DesignCostModel(DesignCostParams params) : params_(params) {
  units::require_positive(params_.a0, "A0");
  units::require_positive(params_.p1, "p1");
  units::require_positive(params_.p2, "p2");
  units::require_positive(params_.s_d0, "s_d0");
}

units::Money DesignCostModel::cost(double transistors, double s_d) const {
  units::require_positive(transistors, "transistor count");
  if (!(s_d > params_.s_d0)) {
    throw std::domain_error("eq. (6) requires s_d > s_d0 = " + std::to_string(params_.s_d0) +
                            ", got s_d = " + std::to_string(s_d));
  }
  const double numerator = params_.a0 * std::pow(transistors, params_.p1);
  const double denominator = std::pow(s_d - params_.s_d0, params_.p2);
  return units::Money{numerator / denominator};
}

double DesignCostModel::densest_affordable_sd(double transistors, units::Money budget) const {
  units::require_positive(transistors, "transistor count");
  units::require_positive(budget, "design budget");
  const double numerator = params_.a0 * std::pow(transistors, params_.p1);
  return params_.s_d0 + std::pow(numerator / budget.value(), 1.0 / params_.p2);
}

double DesignCostModel::implied_iterations(double transistors, double s_d,
                                           units::Money cost_per_iteration) const {
  units::require_positive(cost_per_iteration, "cost per iteration");
  return cost(transistors, s_d).value() / cost_per_iteration.value();
}

DesignCostModel DesignCostModel::calibrated(double transistors, double s_d,
                                            units::Money observed, DesignCostParams base) {
  units::require_positive(transistors, "transistor count");
  units::require_positive(observed, "observed cost");
  if (!(s_d > base.s_d0)) {
    throw std::domain_error("calibration point must satisfy s_d > s_d0");
  }
  DesignCostParams params = base;
  params.a0 = observed.value() * std::pow(s_d - base.s_d0, base.p2) /
              std::pow(transistors, base.p1);
  return DesignCostModel{params};
}

}  // namespace nanocost::cost
