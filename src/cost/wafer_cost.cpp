#include "nanocost/cost/wafer_cost.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::cost {

namespace {
constexpr double kReferenceLambdaUm = 0.18;   // 180 nm anchor node
constexpr double kReferenceWaferMm = 200.0;
constexpr double kShrinkPerNode = 0.7;
}  // namespace

WaferCostModel::WaferCostModel(units::Micrometers lambda, geometry::WaferSpec wafer,
                               int mask_count, WaferCostParams params)
    : lambda_(units::require_positive(lambda, "lambda")), wafer_(wafer),
      mask_count_(mask_count), params_(params) {
  if (mask_count_ < 1) {
    throw std::invalid_argument("mask count must be >= 1");
  }
  units::require_positive(params_.base_cost_per_layer, "base cost per layer");
  units::require_positive(params_.layer_cost_escalation, "layer cost escalation");
  units::require_non_negative(params_.fab_fixed_per_month, "fab fixed cost");
  units::require_positive(params_.full_capacity_wafers_per_month, "fab capacity");
  units::require_positive(params_.run_months, "run months");
  if (!(params_.maturity_discount >= 0.0 && params_.maturity_discount < 1.0)) {
    throw std::invalid_argument("maturity discount must be in [0, 1)");
  }
  // Continuous node position below the 180 nm anchor; negative above it.
  const double nodes_below =
      std::log(kReferenceLambdaUm / lambda_.value()) / std::log(1.0 / kShrinkPerNode);
  node_escalation_ = std::pow(params_.layer_cost_escalation, nodes_below);
  const double d = wafer_.diameter().value() / kReferenceWaferMm;
  area_scale_ = d * d;
}

units::Money WaferCostModel::processing_cost(double maturity) const {
  if (!(maturity >= 0.0 && maturity <= 1.0)) {
    throw std::domain_error("maturity must be in [0, 1]");
  }
  // Per-layer cost scales with node escalation; with wafer area it
  // scales sublinearly (the economy that pulled the industry to 300 mm).
  const double area_factor = std::pow(area_scale_, 0.7);
  const double maturity_factor = 1.0 - params_.maturity_discount * maturity;
  return params_.base_cost_per_layer * static_cast<double>(mask_count_) * node_escalation_ *
         area_factor * maturity_factor;
}

units::Money WaferCostModel::fixed_cost_per_wafer(double n_wafers) const {
  units::require_positive(n_wafers, "wafer count");
  // Fab fixed costs (dominated by equipment depreciation) grow faster
  // than per-layer costs as nodes shrink: escalation squared.
  const units::Money monthly = params_.fab_fixed_per_month * (node_escalation_ * node_escalation_);
  const double starts_needed = n_wafers / params_.run_months;
  const double starts = std::min(params_.full_capacity_wafers_per_month, starts_needed);
  return monthly / starts;
}

units::Money WaferCostModel::wafer_cost(double n_wafers, double maturity) const {
  return processing_cost(maturity) + fixed_cost_per_wafer(n_wafers);
}

units::CostPerArea WaferCostModel::cost_per_cm2(double n_wafers, double maturity) const {
  return wafer_cost(n_wafers, maturity) / wafer_.area();
}

}  // namespace nanocost::cost
