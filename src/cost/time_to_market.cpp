#include "nanocost/cost/time_to_market.hpp"

#include <algorithm>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::cost {

MarketWindowModel::MarketWindowModel(double window_months, units::Money total_market_revenue,
                                     double share_at_launch)
    : window_(units::require_positive(window_months, "market window")),
      total_revenue_(units::require_positive(total_market_revenue, "market revenue")),
      share_(share_at_launch) {
  if (!(share_ > 0.0 && share_ <= 1.0)) {
    throw std::invalid_argument("launch share must be in (0, 1]");
  }
}

units::Money MarketWindowModel::revenue(double entry_month) const {
  units::require_non_negative(entry_month, "entry month");
  const double t = std::min(entry_month, window_);
  // Triangular market density, peak at window/2, unit area; the CDF of
  // market volume already transacted by month t:
  double transacted;
  const double half = window_ / 2.0;
  if (t <= half) {
    transacted = 2.0 * t * t / (window_ * window_);
  } else {
    const double tail = window_ - t;
    transacted = 1.0 - 2.0 * tail * tail / (window_ * window_);
  }
  return total_revenue_ * (share_ * (1.0 - transacted));
}

units::Money MarketWindowModel::delay_cost(double entry_month) const {
  return revenue(0.0) - revenue(entry_month);
}

double ScheduleModel::months_for(units::Money design_cost) const {
  units::require_non_negative(design_cost, "design cost");
  units::require_positive(engineers, "engineers");
  units::require_positive(loaded_cost_per_engineer_month.value(), "engineer rate");
  const double burn = engineers * loaded_cost_per_engineer_month.value();
  return std::max(minimum_months, design_cost.value() / burn);
}

TimeToMarketPoint time_to_market_cost(const TimeToMarketInputs& inputs, double s_d) {
  units::require_positive(inputs.shipped_transistors, "shipped transistors");
  TimeToMarketPoint point;
  point.s_d = s_d;
  point.design_cost = inputs.design_model.cost(inputs.transistors, s_d);
  point.schedule_months = inputs.schedule.months_for(point.design_cost);
  // The clock starts when the market window opens; the first
  // minimum-schedule months are "free" (every competitor needs them).
  const double delay = point.schedule_months - inputs.schedule.minimum_months;
  point.forfeited_revenue = inputs.market.delay_cost(delay);
  point.opportunity_per_transistor =
      point.forfeited_revenue / inputs.shipped_transistors;
  return point;
}

}  // namespace nanocost::cost
