#include "nanocost/core/risk_campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nanocost/exec/parallel.hpp"
#include "nanocost/exec/seed.hpp"
#include "nanocost/robust/finite_guard.hpp"

namespace nanocost::core {

namespace {

double bits_to_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

std::uint64_t double_to_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

RiskCampaign::RiskCampaign(const UncertainInputs& inputs, double s_d, std::int64_t samples,
                           std::uint64_t seed, double die_budget)
    : inputs_(inputs), s_d_(s_d), samples_(samples), seed_(seed), die_budget_(die_budget) {
  if (samples < 10) {
    throw std::invalid_argument("risk campaign needs at least 10 samples");
  }
}

std::uint64_t RiskCampaign::config_fingerprint() const {
  std::uint64_t h = exec::splitmix64(seed_);
  h = exec::splitmix64(h ^ double_to_bits(s_d_));
  h = exec::splitmix64(h ^ double_to_bits(inputs_.nominal.transistors_per_chip));
  h = exec::splitmix64(h ^ double_to_bits(inputs_.nominal.n_wafers));
  h = exec::splitmix64(h ^ double_to_bits(inputs_.volume_sigma_rel));
  h = exec::splitmix64(h ^ double_to_bits(die_budget_));
  return h;
}

void RiskCampaign::run_chunk(std::int64_t begin, std::int64_t end,
                             std::vector<std::uint8_t>& blob) const {
  std::vector<double> costs(static_cast<std::size_t>(end - begin));
  for (std::int64_t i = begin; i < end; ++i) {
    costs[static_cast<std::size_t>(i - begin)] =
        risk_sample_cost(inputs_, s_d_, seed_, static_cast<std::uint64_t>(i));
  }
  // A NaN here (model escape or injected poison) fails the chunk, which
  // the engine retries or quarantines -- never serialized.
  robust::check_finite_range(costs.data(), costs.size(), "risk.sample_chunk");
  blob.reserve(costs.size() * 8);
  for (const double c : costs) {
    const std::uint64_t u = double_to_bits(c);
    for (int b = 0; b < 8; ++b) blob.push_back(static_cast<std::uint8_t>(u >> (8 * b)));
  }
}

PartialRisk RiskCampaign::assemble(const robust::CampaignResult& result) const {
  PartialRisk out;
  std::vector<double> costs;
  costs.reserve(static_cast<std::size_t>(result.completed_units));
  for (std::size_t c = 0; c < result.chunks.size(); ++c) {
    const auto& blob = result.chunks[c];
    if (blob.empty()) continue;
    if (blob.size() % 8 != 0) {
      throw std::runtime_error("risk campaign blob has a torn sample");
    }
    for (std::size_t pos = 0; pos < blob.size(); pos += 8) {
      std::uint64_t u = 0;
      for (int b = 0; b < 8; ++b) u |= static_cast<std::uint64_t>(blob[pos + b]) << (8 * b);
      costs.push_back(bits_to_double(u));
    }
  }
  out.completed_samples = static_cast<std::int64_t>(costs.size());
  out.completeness = result.completeness();
  out.failed_samples = result.failed_units();
  out.cancelled = result.expired;
  for (const auto& blob : result.chunks) {
    if (!blob.empty()) {
      ++out.frontier_chunks;
    } else {
      break;
    }
  }
  out.result = summarize_cost_samples(std::move(costs), inputs_, die_budget_);
  const double n = static_cast<double>(out.completed_samples);
  const double half_width = 1.96 * out.result.stddev / std::sqrt(n);
  out.mean_ci_lo = out.result.mean - half_width;
  out.mean_ci_hi = out.result.mean + half_width;
  return out;
}

PartialRisk monte_carlo_cost_partial(const UncertainInputs& inputs, double s_d, int samples,
                                     std::uint64_t seed, double die_budget,
                                     exec::ThreadPool* pool) {
  if (samples < 10) {
    throw std::invalid_argument("risk analysis needs at least 10 samples");
  }
  const robust::CancelToken token = robust::current_cancel_token();
  std::vector<double> costs(static_cast<std::size_t>(samples));
  const exec::LoopStatus status = exec::parallel_for_cancellable(
      pool, samples, RiskCampaign::kGrain, token,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          costs[static_cast<std::size_t>(i)] =
              risk_sample_cost(inputs, s_d, seed, static_cast<std::uint64_t>(i));
        }
      });

  PartialRisk out;
  // Samples at/after the frontier may have run out of order; only the
  // contiguous prefix is summarized, so the result is a pure function
  // of the frontier.
  const std::int64_t completed = std::min<std::int64_t>(
      samples, status.frontier * RiskCampaign::kGrain);
  costs.resize(static_cast<std::size_t>(completed));
  robust::check_finite_range(costs.data(), costs.size(), "risk.samples");
  out.completed_samples = completed;
  out.completeness = status.completeness();
  out.frontier_chunks = status.frontier;
  out.cancelled = status.cancelled;
  if (completed >= 2) {
    out.result = summarize_cost_samples(std::move(costs), inputs, die_budget);
    const double n = static_cast<double>(completed);
    const double half_width = 1.96 * out.result.stddev / std::sqrt(n);
    out.mean_ci_lo = out.result.mean - half_width;
    out.mean_ci_hi = out.result.mean + half_width;
  }
  return out;
}

}  // namespace nanocost::core
