#include "nanocost/core/transistor_cost.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::core {

namespace {

/// lambda^2 in cm^2 -- the unit Cm_sq/Cd_sq multiply against.
double lambda_squared_cm2(units::Micrometers lambda) {
  const double l_cm = lambda.to_centimeters().value();
  return l_cm * l_cm;
}

void require_yield_positive(units::Probability y, const char* what) {
  // Negated comparison so NaN (for which y > 0 is false) also throws.
  if (!(std::isfinite(y.value()) && y.value() > 0.0)) {
    throw std::domain_error(std::string(what) + " must be finite and > 0");
  }
}

}  // namespace

units::Money cost_per_transistor_eq1(units::Money wafer_cost, double transistors_per_chip,
                                     double chips_per_wafer, units::Probability yield) {
  units::require_positive(wafer_cost, "wafer cost");
  units::require_positive(transistors_per_chip, "transistors per chip");
  units::require_positive(chips_per_wafer, "chips per wafer");
  require_yield_positive(yield, "yield");
  return units::Money{wafer_cost.value() /
                      (transistors_per_chip * chips_per_wafer * yield.value())};
}

units::Money cost_per_transistor_eq3(units::CostPerArea manufacturing_cost,
                                     units::Micrometers lambda, double s_d,
                                     units::Probability yield) {
  units::require_positive(manufacturing_cost, "manufacturing cost per cm^2");
  units::require_positive(lambda, "lambda");
  units::require_positive(s_d, "s_d");
  require_yield_positive(yield, "yield");
  return units::Money{manufacturing_cost.value() * lambda_squared_cm2(lambda) * s_d /
                      yield.value()};
}

units::CostPerArea design_cost_per_area_eq5(units::Money mask_cost, units::Money design_cost,
                                            double n_wafers,
                                            units::SquareCentimeters wafer_area) {
  units::require_non_negative(mask_cost, "mask cost");
  units::require_non_negative(design_cost, "design cost");
  units::require_positive(n_wafers, "wafer count");
  units::require_positive(wafer_area, "wafer area");
  return (mask_cost + design_cost) / (wafer_area * n_wafers);
}

double sd_for_die_cost(units::Money die_cost_budget, units::Probability yield,
                       units::CostPerArea manufacturing_cost, double transistors_per_chip,
                       units::Micrometers lambda) {
  units::require_positive(die_cost_budget, "die cost budget");
  require_yield_positive(yield, "yield");
  units::require_positive(manufacturing_cost, "manufacturing cost per cm^2");
  units::require_positive(transistors_per_chip, "transistors per chip");
  units::require_positive(lambda, "lambda");
  // Per-die cost under eq. (3): C_die = C_sq * A_ch / Y with
  // A_ch = N_tr * s_d * lambda^2; solve for s_d.
  return die_cost_budget.value() * yield.value() /
         (manufacturing_cost.value() * transistors_per_chip * lambda_squared_cm2(lambda));
}

Eq4Breakdown cost_per_transistor_eq4(const Eq4Inputs& inputs, double s_d) {
  units::require_positive(s_d, "s_d");
  units::require_positive(inputs.lambda, "lambda");
  units::require_positive(inputs.manufacturing_cost, "manufacturing cost per cm^2");
  units::require_positive(inputs.transistors_per_chip, "transistors per chip");
  require_yield_positive(inputs.yield, "yield");
  require_yield_positive(inputs.utilization, "utilization");

  const units::Money c_de = inputs.design_model.cost(inputs.transistors_per_chip, s_d);
  const units::CostPerArea cd_sq =
      design_cost_per_area_eq5(inputs.mask_cost, c_de, inputs.n_wafers, inputs.wafer_area);

  const double l2 = lambda_squared_cm2(inputs.lambda);
  const double uy = inputs.utilization.value() * inputs.yield.value();
  Eq4Breakdown out;
  out.design_nre = c_de;
  out.cd_sq = cd_sq;
  out.manufacturing = units::Money{l2 * s_d * inputs.manufacturing_cost.value() / uy};
  out.design = units::Money{l2 * s_d * cd_sq.value() / uy};
  out.total = out.manufacturing + out.design;
  out.per_die = out.total * inputs.transistors_per_chip;
  return out;
}

}  // namespace nanocost::core
