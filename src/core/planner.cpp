#include "nanocost/core/planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nanocost/layout/density.hpp"

namespace nanocost::core {

namespace {

/// Mask sets roughly double per 0.7x node (see cost::MaskCostModel).
double mask_scale(units::Micrometers lambda) {
  const double nodes_below = std::log(0.18 / lambda.value()) / std::log(1.0 / 0.7);
  return std::pow(1.8, nodes_below);
}

}  // namespace

Plan plan_product(const ProductSpec& spec, const roadmap::Roadmap& roadmap) {
  if (spec.styles.empty()) {
    throw std::invalid_argument("planner needs at least one style");
  }
  units::require_positive(spec.transistors, "transistor count");
  units::require_positive(spec.n_wafers, "wafer count");

  // The largest die a period reticle accommodates.
  const units::SquareCentimeters max_die{2.5 * 3.2};

  Plan plan;
  for (const roadmap::TechnologyNode& node : roadmap.nodes()) {
    Eq4Inputs base;
    base.transistors_per_chip = spec.transistors;
    base.lambda = node.lambda();
    base.yield = spec.yield;
    base.n_wafers = spec.n_wafers;
    base.manufacturing_cost = node.cost_per_cm2;
    base.mask_cost = spec.mask_cost_180nm * mask_scale(node.lambda());
    const geometry::WaferSpec wafer{node.wafer_diameter, units::Millimeters{3.0},
                                    units::Millimeters{0.1}};
    base.wafer_area = wafer.area();

    for (const StyleProfile& style : spec.styles) {
      Eq4Inputs inputs = base;
      inputs.utilization = units::Probability{style.utilization};
      inputs.mask_cost = base.mask_cost * style.mask_cost_share;
      cost::DesignCostParams dparams = base.design_model.params();
      dparams.a0 *= style.design_effort_scale;
      inputs.design_model = cost::DesignCostModel{dparams};

      double s_d = style.typical_sd;
      if (style.style == DesignStyle::kFullCustom) {
        // Custom teams choose their density; give them the optimum.
        s_d = optimal_sd_eq4(inputs).s_d;
      }
      const units::SquareCentimeters die_area =
          layout::area_for(spec.transistors, s_d, node.lambda());
      if (die_area > max_die) continue;  // does not fit the reticle

      const Eq4Breakdown cost = cost_per_transistor_eq4(inputs, s_d);
      PlanCandidate candidate;
      candidate.year = node.year;
      candidate.node = node.name;
      candidate.style = style.style;
      candidate.s_d = s_d;
      candidate.cost_per_transistor = cost.total;
      candidate.cost_per_die = cost.per_die;
      candidate.design_nre = cost.design_nre;
      candidate.die_area = die_area;
      plan.candidates.push_back(candidate);
    }
  }
  if (plan.candidates.empty()) {
    throw std::domain_error("no (node, style) candidate fits the reticle for this product");
  }
  std::sort(plan.candidates.begin(), plan.candidates.end(),
            [](const PlanCandidate& a, const PlanCandidate& b) {
              return a.cost_per_transistor < b.cost_per_transistor;
            });
  return plan;
}

}  // namespace nanocost::core
