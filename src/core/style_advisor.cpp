#include "nanocost/core/style_advisor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nanocost::core {

std::string style_name(DesignStyle style) {
  switch (style) {
    case DesignStyle::kFullCustom: return "full custom";
    case DesignStyle::kStandardCell: return "standard cell";
    case DesignStyle::kGateArray: return "gate array";
    case DesignStyle::kFpga: return "FPGA";
  }
  return "unknown";
}

std::vector<StyleProfile> standard_styles() {
  // Densities follow the Table-A1 habitats (custom MPUs ~130, ASICs
  // 300-500); effort scales follow the flow-automation ladder; the
  // FPGA wastes half its fabric but designs in a weekend.
  return {
      StyleProfile{DesignStyle::kFullCustom, 130.0, 1.0, 1.0, 1.0},
      StyleProfile{DesignStyle::kStandardCell, 350.0, 0.5, 1.0, 1.0},
      StyleProfile{DesignStyle::kGateArray, 500.0, 0.15, 0.85, 0.3},
      StyleProfile{DesignStyle::kFpga, 700.0, 0.02, 0.5, 0.0},
  };
}

std::vector<StyleEvaluation> advise(const Eq4Inputs& base,
                                    const std::vector<StyleProfile>& styles) {
  if (styles.empty()) {
    throw std::invalid_argument("style advisor needs at least one style");
  }
  std::vector<StyleEvaluation> out;
  out.reserve(styles.size());
  for (const StyleProfile& profile : styles) {
    Eq4Inputs inputs = base;
    inputs.utilization = units::Probability{profile.utilization};
    inputs.mask_cost = base.mask_cost * profile.mask_cost_share;
    cost::DesignCostParams params = base.design_model.params();
    params.a0 *= profile.design_effort_scale;
    inputs.design_model = cost::DesignCostModel{params};

    StyleEvaluation eval;
    eval.profile = profile;
    eval.breakdown = cost_per_transistor_eq4(inputs, profile.typical_sd);
    out.push_back(eval);
  }
  std::sort(out.begin(), out.end(), [](const StyleEvaluation& a, const StyleEvaluation& b) {
    return a.breakdown.total < b.breakdown.total;
  });
  return out;
}

std::vector<VolumeCrossover> volume_crossovers(const Eq4Inputs& base, double min_wafers,
                                               double max_wafers, int steps,
                                               const std::vector<StyleProfile>& styles) {
  if (!(min_wafers > 0.0 && min_wafers < max_wafers) || steps < 2) {
    throw std::invalid_argument("volume sweep needs 0 < min < max and steps >= 2");
  }
  std::vector<VolumeCrossover> out;
  const double ratio = std::log(max_wafers / min_wafers) / (steps - 1);
  for (int i = 0; i < steps; ++i) {
    Eq4Inputs inputs = base;
    inputs.n_wafers = min_wafers * std::exp(ratio * i);
    const auto evals = advise(inputs, styles);
    VolumeCrossover point;
    point.n_wafers = inputs.n_wafers;
    point.winner = evals.front().profile.style;
    point.winning_cost = evals.front().breakdown.total;
    out.push_back(point);
  }
  return out;
}

}  // namespace nanocost::core
