#include "nanocost/core/regularity_link.hpp"

#include "nanocost/regularity/reuse.hpp"

namespace nanocost::core {

Eq4Inputs apply_regularity(const Eq4Inputs& inputs,
                           const regularity::RegularityReport& report,
                           const RegularityAdjustment& adjustment) {
  Eq4Inputs out = inputs;

  // Effort scale on the iteration-cost constant A0 of eq. (6).
  cost::DesignCostParams p = inputs.design_model.params();
  p.a0 *= regularity::design_effort_scale(report, adjustment.min_effort_scale);
  out.design_model = cost::DesignCostModel{p};

  // Effective volume for NRE amortization in eq. (5).
  out.n_wafers = inputs.n_wafers *
                 regularity::effective_volume_multiplier(report, adjustment.products_sharing);
  return out;
}

}  // namespace nanocost::core
