#include "nanocost/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace nanocost::core {

namespace {

/// d ln f / d ln x by central differences: f is evaluated at x*(1 +- step).
double elasticity_of(const std::function<double(double)>& f, double step) {
  const double up = f(1.0 + step);
  const double down = f(1.0 - step);
  return (std::log(up) - std::log(down)) / (std::log(1.0 + step) - std::log(1.0 - step));
}

}  // namespace

std::vector<Elasticity> eq4_elasticities(const Eq4Inputs& inputs, double s_d, double step) {
  if (!(step > 0.0 && step < 0.5)) {
    throw std::invalid_argument("sensitivity step must be in (0, 0.5)");
  }
  const auto total = [&](const Eq4Inputs& in) {
    return cost_per_transistor_eq4(in, s_d).total.value();
  };

  std::vector<Elasticity> out;
  const auto add = [&](const char* name, const std::function<double(double)>& f) {
    out.push_back(Elasticity{name, elasticity_of(f, step)});
  };

  add("lambda", [&](double k) {
    Eq4Inputs in = inputs;
    in.lambda = inputs.lambda * k;
    return total(in);
  });
  add("yield", [&](double k) {
    Eq4Inputs in = inputs;
    in.yield = units::Probability::clamped(inputs.yield.value() * k);
    return total(in);
  });
  add("Cm_sq", [&](double k) {
    Eq4Inputs in = inputs;
    in.manufacturing_cost = inputs.manufacturing_cost * k;
    return total(in);
  });
  add("N_w", [&](double k) {
    Eq4Inputs in = inputs;
    in.n_wafers = inputs.n_wafers * k;
    return total(in);
  });
  add("C_MA", [&](double k) {
    Eq4Inputs in = inputs;
    in.mask_cost = inputs.mask_cost * k;
    return total(in);
  });
  add("A0", [&](double k) {
    Eq4Inputs in = inputs;
    cost::DesignCostParams p = inputs.design_model.params();
    p.a0 *= k;
    in.design_model = cost::DesignCostModel{p};
    return total(in);
  });
  add("N_tr", [&](double k) {
    Eq4Inputs in = inputs;
    in.transistors_per_chip = inputs.transistors_per_chip * k;
    return total(in);
  });
  add("s_d", [&](double k) {
    return cost_per_transistor_eq4(inputs, s_d * k).total.value();
  });

  std::sort(out.begin(), out.end(), [](const Elasticity& a, const Elasticity& b) {
    return std::fabs(a.elasticity) > std::fabs(b.elasticity);
  });
  return out;
}

}  // namespace nanocost::core
