#include "nanocost/core/risk.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "nanocost/exec/parallel.hpp"
#include "nanocost/exec/seed.hpp"
#include "nanocost/robust/fault_injection.hpp"
#include "nanocost/robust/finite_guard.hpp"

namespace nanocost::core {

namespace {

/// Injection site evaluated once per Monte-Carlo scenario; the unit
/// index is the sample index.  NaN faults poison the sampled cost,
/// which the risk.samples FiniteGuard then catches by name.
constexpr robust::FaultSite kSampleFaultSite{"risk.sample"};

double percentile(std::vector<double>& sorted, double q) {
  const double idx = q * (static_cast<double>(sorted.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - t) + sorted[hi] * t;
}

/// Samples per parallel chunk; the chunk grid depends only on the
/// sample count, so results are thread-count invariant.
constexpr std::int64_t kSampleGrain = 128;

std::vector<double> sample_costs(const UncertainInputs& inputs, double s_d, int samples,
                                 std::uint64_t seed, exec::ThreadPool* pool) {
  if (samples < 10) {
    throw std::invalid_argument("risk analysis needs at least 10 samples");
  }
  std::vector<double> costs(static_cast<std::size_t>(samples));
  exec::parallel_for(pool, samples, kSampleGrain, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      costs[static_cast<std::size_t>(i)] =
          risk_sample_cost(inputs, s_d, seed, static_cast<std::uint64_t>(i));
    }
  });
  return costs;
}

}  // namespace

double risk_sample_cost(const UncertainInputs& inputs, double s_d, std::uint64_t seed,
                        std::uint64_t index) {
  // One RNG per scenario, derived from the sample index: scenario i
  // is the same no matter which thread (or grid point) evaluates it.
  std::mt19937_64 rng(exec::SeedSequence::for_task(seed, index));
  std::normal_distribution<double> gauss(0.0, 1.0);

  Eq4Inputs draw = inputs.nominal;
  const double y = inputs.nominal.yield.value() + inputs.yield_sigma * gauss(rng);
  draw.yield = units::Probability::clamped(std::max(y, 0.01));
  draw.manufacturing_cost =
      inputs.nominal.manufacturing_cost * std::exp(inputs.cm_sq_sigma_rel * gauss(rng));
  draw.n_wafers = inputs.nominal.n_wafers * std::exp(inputs.volume_sigma_rel * gauss(rng));
  cost::DesignCostParams params = inputs.nominal.design_model.params();
  params.a0 *= std::exp(inputs.design_cost_sigma_rel * gauss(rng));
  draw.design_model = cost::DesignCostModel{params};

  return robust::observe(kSampleFaultSite, index,
                         cost_per_transistor_eq4(draw, s_d).total.value());
}

RiskResult summarize_cost_samples(std::vector<double> costs, const UncertainInputs& inputs,
                                  double die_budget) {
  if (costs.size() < 2) {
    throw std::invalid_argument("risk summary needs at least 2 cost samples");
  }
  RiskResult result;
  double sum = 0.0;
  int over = 0;
  for (const double c : costs) {
    sum += c;
    if (die_budget > 0.0 &&
        c * inputs.nominal.transistors_per_chip > die_budget) {
      ++over;
    }
  }
  result.mean = sum / static_cast<double>(costs.size());
  double ss = 0.0;
  for (const double c : costs) ss += (c - result.mean) * (c - result.mean);
  result.stddev = std::sqrt(ss / static_cast<double>(costs.size() - 1));
  std::sort(costs.begin(), costs.end());
  result.p10 = percentile(costs, 0.10);
  result.p50 = percentile(costs, 0.50);
  result.p90 = percentile(costs, 0.90);
  result.prob_over_budget =
      die_budget > 0.0 ? static_cast<double>(over) / static_cast<double>(costs.size())
                       : 0.0;
  return result;
}

RiskResult monte_carlo_cost(const UncertainInputs& inputs, double s_d, int samples,
                            std::uint64_t seed, double die_budget,
                            exec::ThreadPool* pool) {
  std::vector<double> costs = sample_costs(inputs, s_d, samples, seed, pool);
  // risk -> consumer boundary: a NaN sample (model escape or injected
  // poison) must surface as a named diagnostic, not as a NaN mean that
  // silently corrupts every quantile and optimizer decision downstream.
  robust::check_finite_range(costs.data(), costs.size(), "risk.samples");
  return summarize_cost_samples(std::move(costs), inputs, die_budget);
}

namespace {

struct SweepOutcome {
  RobustOptimum best;
  exec::LoopStatus status;
};

SweepOutcome robust_sd_impl(const UncertainInputs& inputs, double quantile, double lo,
                            double hi, int steps, int samples, std::uint64_t seed,
                            exec::ThreadPool* pool, const robust::CancelToken& token) {
  if (!(quantile > 0.0 && quantile < 1.0)) {
    throw std::invalid_argument("quantile must be in (0, 1)");
  }
  if (!(lo > 0.0 && lo < hi) || steps < 2) {
    throw std::invalid_argument("robust sweep needs 0 < lo < hi and steps >= 2");
  }
  const double ratio = std::log(hi / lo) / (steps - 1);
  std::vector<double> grid(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) grid[static_cast<std::size_t>(i)] = lo * std::exp(ratio * i);

  // Grid points are independent and run in parallel; common random
  // numbers hold because scenario seeds derive from (seed, sample
  // index) only -- every grid point prices the identical scenario set.
  // The nested sample_costs loop runs inline on the worker lane.
  std::vector<double> quantile_cost(grid.size());
  const exec::LoopStatus status = exec::parallel_for_cancellable(
      pool, steps, 1, token, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          std::vector<double> costs =
              sample_costs(inputs, grid[static_cast<std::size_t>(i)], samples, seed, pool);
          std::sort(costs.begin(), costs.end());
          quantile_cost[static_cast<std::size_t>(i)] = percentile(costs, quantile);
        }
      });

  // risk -> optimizer boundary: the sweep must not pick an optimum off
  // a poisoned quantile.  Only the completed prefix is trusted.
  robust::check_finite_range(quantile_cost.data(),
                             static_cast<std::size_t>(status.frontier), "risk.quantile");

  SweepOutcome out;
  out.status = status;
  if (status.frontier > 0) {
    out.best.quantile_cost = 1e300;
    for (std::int64_t i = 0; i < status.frontier; ++i) {
      if (quantile_cost[static_cast<std::size_t>(i)] < out.best.quantile_cost) {
        out.best.quantile_cost = quantile_cost[static_cast<std::size_t>(i)];
        out.best.s_d = grid[static_cast<std::size_t>(i)];
      }
    }
  }
  return out;
}

}  // namespace

RobustOptimum robust_sd(const UncertainInputs& inputs, double quantile, double lo,
                        double hi, int steps, int samples, std::uint64_t seed,
                        exec::ThreadPool* pool) {
  // An invalid token never cancels: the loop delegates to the plain
  // parallel_for and the frontier always spans the whole grid.
  return robust_sd_impl(inputs, quantile, lo, hi, steps, samples, seed, pool,
                        robust::CancelToken{})
      .best;
}

PartialSweep robust_sd_partial(const UncertainInputs& inputs, double quantile, double lo,
                               double hi, int steps, int samples, std::uint64_t seed,
                               exec::ThreadPool* pool) {
  const SweepOutcome o = robust_sd_impl(inputs, quantile, lo, hi, steps, samples, seed,
                                        pool, robust::current_cancel_token());
  PartialSweep out;
  out.optimum = o.best;
  out.completed_steps = static_cast<int>(o.status.frontier);
  out.completeness = o.status.completeness();
  out.frontier_chunks = o.status.frontier;
  out.cancelled = o.status.cancelled;
  return out;
}

}  // namespace nanocost::core
