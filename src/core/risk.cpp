#include "nanocost/core/risk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "nanocost/exec/parallel.hpp"
#include "nanocost/exec/rng.hpp"
#include "nanocost/exec/rng_batch.hpp"
#include "nanocost/exec/seed.hpp"
#include "nanocost/robust/fault_injection.hpp"
#include "nanocost/robust/finite_guard.hpp"

namespace nanocost::core {

namespace {

/// Injection site evaluated once per Monte-Carlo scenario; the unit
/// index is the sample index.  NaN faults poison the sampled cost,
/// which the risk.samples FiniteGuard then catches by name.
constexpr robust::FaultSite kSampleFaultSite{"risk.sample"};

double percentile(std::vector<double>& sorted, double q) {
  const double idx = q * (static_cast<double>(sorted.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - t) + sorted[hi] * t;
}

/// Samples per parallel chunk; the chunk grid depends only on the
/// sample count, so results are thread-count invariant.
constexpr std::int64_t kSampleGrain = 128;

std::vector<double> sample_costs(const UncertainInputs& inputs, double s_d, int samples,
                                 std::uint64_t seed, exec::ThreadPool* pool) {
  if (samples < 10) {
    throw std::invalid_argument("risk analysis needs at least 10 samples");
  }
  std::vector<double> costs(static_cast<std::size_t>(samples));
  exec::parallel_for(pool, samples, kSampleGrain, [&](std::int64_t begin, std::int64_t end) {
    risk_sample_cost_batch(inputs, s_d, seed, static_cast<std::uint64_t>(begin),
                           static_cast<std::size_t>(end - begin),
                           costs.data() + begin);
  });
  return costs;
}

}  // namespace

double risk_sample_cost(const UncertainInputs& inputs, double s_d, std::uint64_t seed,
                        std::uint64_t index) {
  // One RNG per scenario, derived from the sample index: scenario i
  // is the same no matter which thread (or grid point) evaluates it.
  // SplitMix64 + Box-Muller rather than mt19937_64 +
  // normal_distribution: the scenario needs exactly four Gaussians, and
  // the mt19937_64 *construction* (312-word state expansion) cost more
  // than the whole pricing; the fixed-consumption stream is also what
  // lets risk_sample_cost_batch reproduce this function bitwise.
  exec::SplitMix64 rng(exec::SeedSequence::for_task(seed, index));
  const exec::GaussPair g12 = exec::gauss_pair(rng);
  const exec::GaussPair g34 = exec::gauss_pair(rng);

  Eq4Inputs draw = inputs.nominal;
  const double y = inputs.nominal.yield.value() + inputs.yield_sigma * g12.z0;
  draw.yield = units::Probability::clamped(std::max(y, 0.01));
  draw.manufacturing_cost =
      inputs.nominal.manufacturing_cost * std::exp(inputs.cm_sq_sigma_rel * g12.z1);
  draw.n_wafers = inputs.nominal.n_wafers * std::exp(inputs.volume_sigma_rel * g34.z0);
  cost::DesignCostParams params = inputs.nominal.design_model.params();
  params.a0 *= std::exp(inputs.design_cost_sigma_rel * g34.z1);
  draw.design_model = cost::DesignCostModel{params};

  return robust::observe(kSampleFaultSite, index,
                         cost_per_transistor_eq4(draw, s_d).total.value());
}

void risk_sample_cost_batch_at(exec::SimdLevel level, const UncertainInputs& inputs,
                               double s_d, std::uint64_t seed, std::uint64_t index0,
                               std::size_t n, double* out) {
  const Eq4Inputs& nom = inputs.nominal;
  const cost::DesignCostParams& params = nom.design_model.params();

  // Everything the scalar kernel validates per sample that does not
  // depend on the draws is checked once here; a violation routes the
  // whole batch through the scalar kernel so the exact per-sample
  // exception (and its message) fires unchanged.
  const bool nominal_ok =
      std::isfinite(s_d) && s_d > 0.0 && std::isfinite(nom.lambda.value()) &&
      nom.lambda.value() > 0.0 && std::isfinite(nom.manufacturing_cost.value()) &&
      nom.manufacturing_cost.value() > 0.0 && std::isfinite(nom.transistors_per_chip) &&
      nom.transistors_per_chip > 0.0 && std::isfinite(nom.yield.value()) &&
      nom.utilization.value() > 0.0 && std::isfinite(nom.mask_cost.value()) &&
      nom.mask_cost.value() >= 0.0 && std::isfinite(nom.wafer_area.value()) &&
      nom.wafer_area.value() > 0.0 && s_d > params.s_d0;
  if (!nominal_ok) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = risk_sample_cost(inputs, s_d, seed, index0 + i);
    }
    return;
  }

  // Constants of the eq.-4/eq.-6 evaluation that the scalar kernel
  // recomputes per scenario: the two pow() terms (by far its hottest
  // libm calls), lambda^2, and the clamp bound.  Reused verbatim, the
  // batched arithmetic below stays bitwise equal to the scalar chain.
  const double pow_t = std::pow(nom.transistors_per_chip, params.p1);
  const double pow_den = std::pow(s_d - params.s_d0, params.p2);
  const double l_cm = nom.lambda.to_centimeters().value();
  const double l2 = l_cm * l_cm;
  const double util = nom.utilization.value();
  const double nominal_yield = nom.yield.value();
  const double nominal_mc = nom.manufacturing_cost.value();
  const double nominal_nw = nom.n_wafers;
  const double nominal_a0 = params.a0;
  const double mask = nom.mask_cost.value();
  const double area = nom.wafer_area.value();

  constexpr std::size_t kTile = 128;
  std::uint64_t seeds[kTile];
  std::uint64_t col[kTile];
  double u1a[kTile], u2a[kTile], u1b[kTile], u2b[kTile];

  for (std::size_t t0 = 0; t0 < n; t0 += kTile) {
    const std::size_t tn = n - t0 < kTile ? n - t0 : kTile;
    // Columns: output j of every scenario's stream at once.  Outputs
    // 1/3 feed the (0,1] u1 mapping of the two gauss_pair calls,
    // outputs 2/4 the [0,1) u2 mapping -- the identical bits the
    // scalar kernel consumes.
    exec::for_task_batch_at(level, seed, index0 + t0, seeds, tn);
    exec::mix_add_batch_at(level, seeds, 1 * exec::kGoldenGamma, col, tn);
    exec::u53_to_unit_pos_batch_at(level, col, u1a, tn);
    exec::mix_add_batch_at(level, seeds, 2 * exec::kGoldenGamma, col, tn);
    exec::u53_to_unit_batch_at(level, col, u2a, tn);
    exec::mix_add_batch_at(level, seeds, 3 * exec::kGoldenGamma, col, tn);
    exec::u53_to_unit_pos_batch_at(level, col, u1b, tn);
    exec::mix_add_batch_at(level, seeds, 4 * exec::kGoldenGamma, col, tn);
    exec::u53_to_unit_batch_at(level, col, u2b, tn);

    for (std::size_t i = 0; i < tn; ++i) {
      const std::uint64_t index = index0 + t0 + i;
      // Box-Muller exactly as exec::gauss_pair spells it.
      const double r1 = std::sqrt(-2.0 * std::log(u1a[i]));
      const double t1 = exec::kTwoPi * u2a[i];
      const double g_yield = r1 * std::cos(t1);
      const double g_mc = r1 * std::sin(t1);
      const double r2 = std::sqrt(-2.0 * std::log(u1b[i]));
      const double t2 = exec::kTwoPi * u2b[i];
      const double g_nw = r2 * std::cos(t2);
      const double g_a0 = r2 * std::sin(t2);

      // std::max(y, 0.01) then Probability::clamped, written out.
      const double y = nominal_yield + inputs.yield_sigma * g_yield;
      const double y_floored = y < 0.01 ? 0.01 : y;
      const double mc = nominal_mc * std::exp(inputs.cm_sq_sigma_rel * g_mc);
      const double nw = nominal_nw * std::exp(inputs.volume_sigma_rel * g_nw);
      const double a0 = nominal_a0 * std::exp(inputs.design_cost_sigma_rel * g_a0);
      const double c_de = a0 * pow_t / pow_den;
      // A draw the validators would reject (NaN sigma, exp overflow to
      // inf, underflow to zero) goes back through the scalar kernel so
      // its exception surfaces identically.
      if (!(y_floored > 0.0) || !(std::isfinite(mc) && mc > 0.0) ||
          !(std::isfinite(nw) && nw > 0.0) || !(std::isfinite(a0) && a0 > 0.0) ||
          !std::isfinite(c_de)) {
        out[t0 + i] = risk_sample_cost(inputs, s_d, seed, index);
        continue;
      }
      const double yield_v = y_floored > 1.0 ? 1.0 : y_floored;
      const double cd_sq = (mask + c_de) / (area * nw);  // eq. (5)
      const double uy = util * yield_v;
      const double manufacturing = l2 * s_d * mc / uy;  // eq. (4)
      const double design = l2 * s_d * cd_sq / uy;
      out[t0 + i] = robust::observe(kSampleFaultSite, index, manufacturing + design);
    }
  }
}

void risk_sample_cost_batch(const UncertainInputs& inputs, double s_d, std::uint64_t seed,
                            std::uint64_t index0, std::size_t n, double* out) {
  risk_sample_cost_batch_at(exec::simd_level(), inputs, s_d, seed, index0, n, out);
}

RiskResult summarize_cost_samples(std::vector<double> costs, const UncertainInputs& inputs,
                                  double die_budget) {
  if (costs.size() < 2) {
    throw std::invalid_argument("risk summary needs at least 2 cost samples");
  }
  RiskResult result;
  double sum = 0.0;
  int over = 0;
  for (const double c : costs) {
    sum += c;
    if (die_budget > 0.0 &&
        c * inputs.nominal.transistors_per_chip > die_budget) {
      ++over;
    }
  }
  result.mean = sum / static_cast<double>(costs.size());
  double ss = 0.0;
  for (const double c : costs) ss += (c - result.mean) * (c - result.mean);
  result.stddev = std::sqrt(ss / static_cast<double>(costs.size() - 1));
  std::sort(costs.begin(), costs.end());
  result.p10 = percentile(costs, 0.10);
  result.p50 = percentile(costs, 0.50);
  result.p90 = percentile(costs, 0.90);
  result.prob_over_budget =
      die_budget > 0.0 ? static_cast<double>(over) / static_cast<double>(costs.size())
                       : 0.0;
  return result;
}

RiskResult monte_carlo_cost(const UncertainInputs& inputs, double s_d, int samples,
                            std::uint64_t seed, double die_budget,
                            exec::ThreadPool* pool) {
  std::vector<double> costs = sample_costs(inputs, s_d, samples, seed, pool);
  // risk -> consumer boundary: a NaN sample (model escape or injected
  // poison) must surface as a named diagnostic, not as a NaN mean that
  // silently corrupts every quantile and optimizer decision downstream.
  robust::check_finite_range(costs.data(), costs.size(), "risk.samples");
  return summarize_cost_samples(std::move(costs), inputs, die_budget);
}

namespace {

struct SweepOutcome {
  RobustOptimum best;
  exec::LoopStatus status;
};

SweepOutcome robust_sd_impl(const UncertainInputs& inputs, double quantile, double lo,
                            double hi, int steps, int samples, std::uint64_t seed,
                            exec::ThreadPool* pool, const robust::CancelToken& token) {
  if (!(quantile > 0.0 && quantile < 1.0)) {
    throw std::invalid_argument("quantile must be in (0, 1)");
  }
  if (!(lo > 0.0 && lo < hi) || steps < 2) {
    throw std::invalid_argument("robust sweep needs 0 < lo < hi and steps >= 2");
  }
  const double ratio = std::log(hi / lo) / (steps - 1);
  std::vector<double> grid(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) grid[static_cast<std::size_t>(i)] = lo * std::exp(ratio * i);

  // Grid points are independent and run in parallel; common random
  // numbers hold because scenario seeds derive from (seed, sample
  // index) only -- every grid point prices the identical scenario set.
  // The nested sample_costs loop runs inline on the worker lane.
  std::vector<double> quantile_cost(grid.size());
  const exec::LoopStatus status = exec::parallel_for_cancellable(
      pool, steps, 1, token, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          std::vector<double> costs =
              sample_costs(inputs, grid[static_cast<std::size_t>(i)], samples, seed, pool);
          std::sort(costs.begin(), costs.end());
          quantile_cost[static_cast<std::size_t>(i)] = percentile(costs, quantile);
        }
      });

  // risk -> optimizer boundary: the sweep must not pick an optimum off
  // a poisoned quantile.  Only the completed prefix is trusted.
  robust::check_finite_range(quantile_cost.data(),
                             static_cast<std::size_t>(status.frontier), "risk.quantile");

  SweepOutcome out;
  out.status = status;
  if (status.frontier > 0) {
    out.best.quantile_cost = 1e300;
    for (std::int64_t i = 0; i < status.frontier; ++i) {
      if (quantile_cost[static_cast<std::size_t>(i)] < out.best.quantile_cost) {
        out.best.quantile_cost = quantile_cost[static_cast<std::size_t>(i)];
        out.best.s_d = grid[static_cast<std::size_t>(i)];
      }
    }
  }
  return out;
}

}  // namespace

RobustOptimum robust_sd(const UncertainInputs& inputs, double quantile, double lo,
                        double hi, int steps, int samples, std::uint64_t seed,
                        exec::ThreadPool* pool) {
  // An invalid token never cancels: the loop delegates to the plain
  // parallel_for and the frontier always spans the whole grid.
  return robust_sd_impl(inputs, quantile, lo, hi, steps, samples, seed, pool,
                        robust::CancelToken{})
      .best;
}

PartialSweep robust_sd_partial(const UncertainInputs& inputs, double quantile, double lo,
                               double hi, int steps, int samples, std::uint64_t seed,
                               exec::ThreadPool* pool) {
  const SweepOutcome o = robust_sd_impl(inputs, quantile, lo, hi, steps, samples, seed,
                                        pool, robust::current_cancel_token());
  PartialSweep out;
  out.optimum = o.best;
  out.completed_steps = static_cast<int>(o.status.frontier);
  out.completeness = o.status.completeness();
  out.frontier_chunks = o.status.frontier;
  out.cancelled = o.status.cancelled;
  return out;
}

}  // namespace nanocost::core
