#include "nanocost/core/risk.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace nanocost::core {

namespace {

double percentile(std::vector<double>& sorted, double q) {
  const double idx = q * (static_cast<double>(sorted.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - t) + sorted[hi] * t;
}

std::vector<double> sample_costs(const UncertainInputs& inputs, double s_d, int samples,
                                 std::uint64_t seed) {
  if (samples < 10) {
    throw std::invalid_argument("risk analysis needs at least 10 samples");
  }
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);

  std::vector<double> costs;
  costs.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    Eq4Inputs draw = inputs.nominal;
    const double y =
        inputs.nominal.yield.value() + inputs.yield_sigma * gauss(rng);
    draw.yield = units::Probability::clamped(std::max(y, 0.01));
    draw.manufacturing_cost =
        inputs.nominal.manufacturing_cost * std::exp(inputs.cm_sq_sigma_rel * gauss(rng));
    draw.n_wafers =
        inputs.nominal.n_wafers * std::exp(inputs.volume_sigma_rel * gauss(rng));
    cost::DesignCostParams params = inputs.nominal.design_model.params();
    params.a0 *= std::exp(inputs.design_cost_sigma_rel * gauss(rng));
    draw.design_model = cost::DesignCostModel{params};

    costs.push_back(cost_per_transistor_eq4(draw, s_d).total.value());
  }
  return costs;
}

}  // namespace

RiskResult monte_carlo_cost(const UncertainInputs& inputs, double s_d, int samples,
                            std::uint64_t seed, double die_budget) {
  std::vector<double> costs = sample_costs(inputs, s_d, samples, seed);

  RiskResult result;
  double sum = 0.0;
  int over = 0;
  for (const double c : costs) {
    sum += c;
    if (die_budget > 0.0 &&
        c * inputs.nominal.transistors_per_chip > die_budget) {
      ++over;
    }
  }
  result.mean = sum / static_cast<double>(costs.size());
  double ss = 0.0;
  for (const double c : costs) ss += (c - result.mean) * (c - result.mean);
  result.stddev = std::sqrt(ss / static_cast<double>(costs.size() - 1));
  std::sort(costs.begin(), costs.end());
  result.p10 = percentile(costs, 0.10);
  result.p50 = percentile(costs, 0.50);
  result.p90 = percentile(costs, 0.90);
  result.prob_over_budget =
      die_budget > 0.0 ? static_cast<double>(over) / static_cast<double>(costs.size())
                       : 0.0;
  return result;
}

RobustOptimum robust_sd(const UncertainInputs& inputs, double quantile, double lo,
                        double hi, int steps, int samples, std::uint64_t seed) {
  if (!(quantile > 0.0 && quantile < 1.0)) {
    throw std::invalid_argument("quantile must be in (0, 1)");
  }
  if (!(lo > 0.0 && lo < hi) || steps < 2) {
    throw std::invalid_argument("robust sweep needs 0 < lo < hi and steps >= 2");
  }
  RobustOptimum best;
  best.quantile_cost = 1e300;
  const double ratio = std::log(hi / lo) / (steps - 1);
  for (int i = 0; i < steps; ++i) {
    const double s_d = lo * std::exp(ratio * i);
    // Common random numbers across grid points: same seed.
    std::vector<double> costs = sample_costs(inputs, s_d, samples, seed);
    std::sort(costs.begin(), costs.end());
    const double q = percentile(costs, quantile);
    if (q < best.quantile_cost) {
      best.quantile_cost = q;
      best.s_d = s_d;
    }
  }
  return best;
}

}  // namespace nanocost::core
