#include "nanocost/core/generalized_cost.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/defect/critical_area.hpp"
#include "nanocost/geometry/die.hpp"
#include "nanocost/geometry/wafer_map.hpp"
#include "nanocost/layout/density.hpp"
#include "nanocost/robust/finite_guard.hpp"
#include "nanocost/units/quantity.hpp"

namespace nanocost::core {

GeneralizedCostModel::GeneralizedCostModel(ProductScenario scenario)
    : scenario_(std::move(scenario)),
      wafer_model_(scenario_.lambda, scenario_.wafer, scenario_.mask_count,
                   scenario_.wafer_cost),
      mask_model_(scenario_.lambda, scenario_.mask_count, scenario_.mask_cost),
      design_model_(scenario_.design_cost) {
  units::require_positive(scenario_.transistors, "transistor count");
  units::require_positive(scenario_.n_wafers, "wafer count");
  units::require_non_negative(scenario_.defect_density, "defect density");
  units::require_positive(scenario_.reference_sd, "reference s_d");
  if (scenario_.measured_critical_area_ratio) {
    units::require_non_negative(*scenario_.measured_critical_area_ratio,
                                "measured critical area ratio");
  }
  if (scenario_.utilization.value() <= 0.0) {
    throw std::domain_error("utilization must be > 0");
  }
  if (scenario_.mask_respins < 0) {
    throw std::domain_error("mask respins must be >= 0");
  }
  if (!scenario_.yield_model) {
    scenario_.yield_model = std::make_shared<yield::NegativeBinomialYield>(2.0);
  }
}

CostEvaluation GeneralizedCostModel::evaluate(double s_d) const {
  CostEvaluation out;
  out.s_d = s_d;

  // Die geometry from density: A_ch = N_tr * s_d * lambda^2.
  out.die_area = layout::area_for(scenario_.transistors, s_d, scenario_.lambda);
  const geometry::DieSize die = geometry::DieSize::square_of_area(out.die_area);
  out.dies_per_wafer = geometry::gross_die_per_wafer(scenario_.wafer, die);
  if (out.dies_per_wafer < 1) {
    throw std::domain_error("die does not fit on the wafer at s_d = " + std::to_string(s_d));
  }

  // Yield: defect density (possibly run-averaged over the learning
  // curve) times density-dependent critical area.
  const double density = scenario_.learning
                             ? scenario_.learning->average_density_over(scenario_.n_wafers)
                             : scenario_.defect_density;
  if (scenario_.measured_critical_area_ratio) {
    out.critical_area_ratio = *scenario_.measured_critical_area_ratio;
  } else if (scenario_.density_dependent_yield) {
    out.critical_area_ratio = defect::density_scaled_critical_area_ratio(
        s_d, scenario_.reference_sd, scenario_.lambda);
  } else {
    out.critical_area_ratio = 1.0;
  }
  out.yield = scenario_.yield_model->yield_for_die(out.die_area, density,
                                                   out.critical_area_ratio);
  // yield -> cost boundary: a pluggable yield model must not push NaN
  // into the eq.-7 assembly below.
  robust::check_finite(out.yield.value(), "yield.cost");
  if (out.yield.value() <= 0.0) {
    throw std::domain_error("yield collapsed to zero at s_d = " + std::to_string(s_d));
  }

  // Manufacturing: Cm_sq(A_w, lambda, N_w) from the wafer cost model.
  out.wafer_cost = wafer_model_.wafer_cost(scenario_.n_wafers);
  out.cm_sq = wafer_model_.cost_per_cm2(scenario_.n_wafers);

  // NRE: Cd_sq(A_w, lambda, N_w, N_tr, s_d0) from mask + design models.
  out.mask_nre = mask_model_.total_cost(scenario_.mask_respins);
  out.design_nre = design_model_.cost(scenario_.transistors, s_d);
  const units::SquareCentimeters amortization_area =
      scenario_.wafer.area() * scenario_.n_wafers;
  out.cd_sq = (out.mask_nre + out.design_nre) / amortization_area;

  // Eq. (7) assembly.
  const double l_cm = scenario_.lambda.to_centimeters().value();
  const double l2 = l_cm * l_cm;
  const double uy = scenario_.utilization.value() * out.yield.value();
  out.manufacturing_per_transistor = units::Money{l2 * s_d * out.cm_sq.value() / uy};
  out.design_per_transistor = units::Money{l2 * s_d * out.cd_sq.value() / uy};
  out.cost_per_transistor = out.manufacturing_per_transistor + out.design_per_transistor;
  out.cost_per_die = out.cost_per_transistor * scenario_.transistors;
  out.good_dies_per_wafer = static_cast<double>(out.dies_per_wafer) * out.yield.value();
  return out;
}

double GeneralizedCostModel::max_feasible_sd() const {
  // The largest square die that fits within the usable radius has a
  // half-diagonal equal to that radius.
  const double r_mm = scenario_.wafer.usable_radius().value();
  const double edge_mm = r_mm * std::sqrt(2.0);
  const double area_cm2 = edge_mm * edge_mm / 100.0;
  const double l_cm = scenario_.lambda.to_centimeters().value();
  return area_cm2 / (scenario_.transistors * l_cm * l_cm);
}

}  // namespace nanocost::core
