#include "nanocost/core/itrs_analysis.hpp"

#include "nanocost/core/transistor_cost.hpp"

namespace nanocost::core {

std::vector<ItrsSdPoint> itrs_implied_sd(const roadmap::Roadmap& roadmap) {
  std::vector<ItrsSdPoint> out;
  for (const roadmap::TechnologyNode& node : roadmap.nodes()) {
    ItrsSdPoint p;
    p.year = node.year;
    p.lambda = node.lambda();
    p.implied_sd = node.implied_decompression_index();
    out.push_back(p);
  }
  return out;
}

std::vector<ConstantDieCostPoint> constant_die_cost_sd(
    const roadmap::Roadmap& roadmap, const ConstantDieCostAssumptions& assumptions) {
  std::vector<ConstantDieCostPoint> out;
  for (const roadmap::TechnologyNode& node : roadmap.nodes()) {
    ConstantDieCostPoint p;
    p.year = node.year;
    p.lambda = node.lambda();
    p.itrs_sd = node.implied_decompression_index();
    p.required_sd =
        sd_for_die_cost(assumptions.max_die_cost, assumptions.yield,
                        assumptions.manufacturing_cost, node.mpu_transistors, node.lambda());
    p.ratio = p.itrs_sd / p.required_sd;
    out.push_back(p);
  }
  return out;
}

}  // namespace nanocost::core
