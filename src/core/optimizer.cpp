#include "nanocost/core/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/exec/parallel.hpp"

namespace nanocost::core {

Optimum minimize_unimodal(const std::function<units::Money(double)>& objective, double lo,
                          double hi, double tol) {
  if (!(lo > 0.0 && lo < hi)) {
    throw std::invalid_argument("minimize_unimodal needs 0 < lo < hi");
  }
  if (!(tol > 0.0)) {
    throw std::invalid_argument("tolerance must be positive");
  }
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = objective(x1).value();
  double f2 = objective(x2).value();
  int evals = 2;
  while ((b - a) > tol * (std::fabs(a) + std::fabs(b)) * 0.5) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = objective(x1).value();
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = objective(x2).value();
    }
    ++evals;
    if (evals > 200) break;  // tol too tight for double precision
  }
  Optimum out;
  out.s_d = (a + b) / 2.0;
  out.cost_per_transistor = objective(out.s_d);
  out.evaluations = evals + 1;
  return out;
}

Optimum optimal_sd_eq4(const Eq4Inputs& inputs, double hi) {
  const double lo = inputs.design_model.params().s_d0 * 1.02;
  if (!(hi > lo)) {
    throw std::invalid_argument("sweep upper bound must exceed the s_d0 wall");
  }
  return minimize_unimodal(
      [&inputs](double s_d) { return cost_per_transistor_eq4(inputs, s_d).total; }, lo, hi);
}

Optimum optimal_sd(const GeneralizedCostModel& model, double hi) {
  const double lo = model.scenario().design_cost.s_d0 * 1.02;
  const double feasible_hi = std::min(hi, model.max_feasible_sd() * 0.98);
  if (!(feasible_hi > lo)) {
    throw std::domain_error("no feasible s_d range: die exceeds wafer near the s_d0 wall");
  }
  return minimize_unimodal(
      [&model](double s_d) { return model.cost_per_transistor(s_d); }, lo, feasible_hi);
}

namespace {

std::vector<double> log_grid(double lo, double hi, int steps) {
  if (!(lo > 0.0 && lo < hi) || steps < 2) {
    throw std::invalid_argument("sweep needs 0 < lo < hi and steps >= 2");
  }
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(steps));
  const double ratio = std::log(hi / lo) / (steps - 1);
  for (int i = 0; i < steps; ++i) {
    xs.push_back(lo * std::exp(ratio * i));
  }
  return xs;
}

}  // namespace

namespace {

/// Grid points per parallel chunk for the s_d sweeps.
constexpr std::int64_t kSweepGrain = 8;

}  // namespace

std::vector<SweepPoint> sweep_eq4(const Eq4Inputs& inputs, double lo, double hi, int steps,
                                  exec::ThreadPool* pool) {
  const std::vector<double> grid = log_grid(lo, hi, steps);
  std::vector<SweepPoint> out(grid.size());
  exec::parallel_for(pool, static_cast<std::int64_t>(grid.size()), kSweepGrain,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         const double s_d = grid[static_cast<std::size_t>(i)];
                         out[static_cast<std::size_t>(i)] =
                             SweepPoint{s_d, cost_per_transistor_eq4(inputs, s_d)};
                       }
                     });
  return out;
}

std::vector<GeneralizedSweepPoint> sweep_generalized(const GeneralizedCostModel& model,
                                                     double lo, double hi, int steps,
                                                     exec::ThreadPool* pool) {
  const std::vector<double> grid = log_grid(lo, hi, steps);
  std::vector<GeneralizedSweepPoint> out(grid.size());
  exec::parallel_for(pool, static_cast<std::int64_t>(grid.size()), kSweepGrain,
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         const double s_d = grid[static_cast<std::size_t>(i)];
                         out[static_cast<std::size_t>(i)] =
                             GeneralizedSweepPoint{s_d, model.evaluate(s_d)};
                       }
                     });
  return out;
}

}  // namespace nanocost::core
