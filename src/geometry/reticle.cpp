#include "nanocost/geometry/reticle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nanocost/geometry/wafer_map.hpp"
#include "nanocost/units/quantity.hpp"

namespace nanocost::geometry {

ReticleSpec::ReticleSpec(units::Millimeters field_width, units::Millimeters field_height)
    : field_width_(units::require_positive(field_width, "reticle field width")),
      field_height_(units::require_positive(field_height, "reticle field height")) {}

ReticleSpec ReticleSpec::typical() {
  return ReticleSpec{units::Millimeters{25.0}, units::Millimeters{32.0}};
}

namespace {

std::int64_t grid_fit(double fw, double fh, double sw, double sh) {
  const auto nx = static_cast<std::int64_t>(std::floor(fw / sw));
  const auto ny = static_cast<std::int64_t>(std::floor(fh / sh));
  return std::max<std::int64_t>(nx, 0) * std::max<std::int64_t>(ny, 0);
}

}  // namespace

std::int64_t ReticleSpec::dies_per_field(const DieSize& die,
                                         units::Millimeters scribe_street) const {
  units::require_non_negative(scribe_street, "scribe street");
  const double sw = die.width().value() + scribe_street.value();
  const double sh = die.height().value() + scribe_street.value();
  const double fw = field_width_.value();
  const double fh = field_height_.value();
  return std::max(grid_fit(fw, fh, sw, sh), grid_fit(fw, fh, sh, sw));
}

std::int64_t ReticleSpec::fields_per_wafer(const WaferSpec& wafer, const DieSize& die) const {
  const std::int64_t per_field = dies_per_field(die, wafer.scribe_street());
  if (per_field == 0) {
    throw std::domain_error("die does not fit in the reticle field in either orientation");
  }
  const std::int64_t gross = gross_die_per_wafer(wafer, die);
  // Edge fields are partially filled; 15% overhead is a period-typical
  // allowance for multi-die fields straddling the wafer edge.
  const double fields = std::ceil(static_cast<double>(gross) / static_cast<double>(per_field));
  return static_cast<std::int64_t>(std::ceil(fields * (per_field > 1 ? 1.15 : 1.0)));
}

}  // namespace nanocost::geometry
