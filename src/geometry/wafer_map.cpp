#include "nanocost/geometry/wafer_map.hpp"

#include <array>
#include <cmath>
#include <numbers>

namespace nanocost::geometry {

namespace {

struct GridParams {
  double step_x;    // die + street, mm
  double step_y;    // die + street, mm
  double offset_x;  // die-center offset of column 0 from wafer center, in steps
  double offset_y;
};

/// Whether a die whose center is (cx, cy) lies fully within radius r.
/// Only the die body (not its street share) must fit.
bool die_fits(double cx, double cy, double half_w, double half_h, double r) {
  const double x = std::fabs(cx) + half_w;
  const double y = std::fabs(cy) + half_h;
  return x * x + y * y <= r * r;
}

/// Enumerate all die centers for a given per-axis anchor; calls `fn(cx, cy,
/// col, row)` for each fitting die and returns the count.
template <typename Fn>
std::int64_t enumerate_fits(const WaferSpec& wafer, const DieSize& die, bool die_centered_x,
                            bool die_centered_y, Fn&& fn) {
  const double street = wafer.scribe_street().value();
  const double step_x = die.width().value() + street;
  const double step_y = die.height().value() + street;
  const double half_w = die.width().value() / 2.0;
  const double half_h = die.height().value() / 2.0;
  const double r = wafer.usable_radius().value();

  // Die centers at (i + ax) * step where ax = 0 for die-centered axis,
  // 0.5 for street-centered axis; i ranges over all integers with any
  // chance of fitting.
  const double ax = die_centered_x ? 0.0 : 0.5;
  const double ay = die_centered_y ? 0.0 : 0.5;
  const auto lo_index = [r](double step, double a) {
    return static_cast<std::int32_t>(std::floor((-r) / step - a)) - 1;
  };
  const auto hi_index = [r](double step, double a) {
    return static_cast<std::int32_t>(std::ceil(r / step - a)) + 1;
  };

  std::int64_t count = 0;
  for (std::int32_t j = lo_index(step_y, ay); j <= hi_index(step_y, ay); ++j) {
    const double cy = (j + ay) * step_y;
    if (std::fabs(cy) + half_h > r) continue;
    for (std::int32_t i = lo_index(step_x, ax); i <= hi_index(step_x, ax); ++i) {
      const double cx = (i + ax) * step_x;
      if (die_fits(cx, cy, half_w, half_h, r)) {
        fn(cx, cy, i, j);
        ++count;
      }
    }
  }
  return count;
}

struct AnchorChoice {
  bool die_centered_x;
  bool die_centered_y;
};

/// For kBestOfBoth, evaluate all four per-axis anchor combinations and
/// return the best one (ties broken toward die-centered for determinism).
AnchorChoice best_anchor(const WaferSpec& wafer, const DieSize& die) {
  static constexpr std::array<AnchorChoice, 4> kChoices{{
      {true, true},
      {true, false},
      {false, true},
      {false, false},
  }};
  AnchorChoice best = kChoices[0];
  std::int64_t best_count = -1;
  for (const auto& c : kChoices) {
    const std::int64_t n = enumerate_fits(wafer, die, c.die_centered_x, c.die_centered_y,
                                          [](double, double, std::int32_t, std::int32_t) {});
    if (n > best_count) {
      best_count = n;
      best = c;
    }
  }
  return best;
}

AnchorChoice resolve_anchor(const WaferSpec& wafer, const DieSize& die, GridAnchor anchor) {
  switch (anchor) {
    case GridAnchor::kDieCentered:
      return {true, true};
    case GridAnchor::kStreetCentered:
      return {false, false};
    case GridAnchor::kBestOfBoth:
      return best_anchor(wafer, die);
  }
  return {true, true};
}

}  // namespace

units::Millimeters DieSite::radial_distance() const noexcept {
  return units::Millimeters{std::hypot(center_x.value(), center_y.value())};
}

std::int64_t gross_die_per_wafer(const WaferSpec& wafer, const DieSize& die, GridAnchor anchor) {
  const AnchorChoice c = resolve_anchor(wafer, die, anchor);
  return enumerate_fits(wafer, die, c.die_centered_x, c.die_centered_y,
                        [](double, double, std::int32_t, std::int32_t) {});
}

double gross_die_per_wafer_analytic(const WaferSpec& wafer, const DieSize& die) {
  const double street = wafer.scribe_street().value();
  const double step_area_mm2 =
      (die.width().value() + street) * (die.height().value() + street);
  const double d = 2.0 * wafer.usable_radius().value();
  const double n = std::numbers::pi * d * d / (4.0 * step_area_mm2) -
                   std::numbers::pi * d / std::sqrt(2.0 * step_area_mm2);
  return n > 0.0 ? n : 0.0;
}

WaferMap::WaferMap(const WaferSpec& wafer, const DieSize& die, GridAnchor anchor)
    : wafer_(wafer), die_(die) {
  const AnchorChoice c = resolve_anchor(wafer, die, anchor);
  const double street = wafer.scribe_street().value();
  step_x_mm_ = die.width().value() + street;
  step_y_mm_ = die.height().value() + street;
  const double ax = c.die_centered_x ? 0.0 : 0.5;
  const double ay = c.die_centered_y ? 0.0 : 0.5;

  std::int32_t min_i = 0, max_i = 0, min_j = 0, max_j = 0;
  bool first = true;
  enumerate_fits(wafer, die, c.die_centered_x, c.die_centered_y,
                 [&](double cx, double cy, std::int32_t i, std::int32_t j) {
                   DieSite site;
                   site.col = i;
                   site.row = j;
                   site.center_x = units::Millimeters{cx};
                   site.center_y = units::Millimeters{cy};
                   sites_.push_back(site);
                   if (first) {
                     min_i = max_i = i;
                     min_j = max_j = j;
                     first = false;
                   } else {
                     min_i = std::min(min_i, i);
                     max_i = std::max(max_i, i);
                     min_j = std::min(min_j, j);
                     max_j = std::max(max_j, j);
                   }
                 });

  // Re-base row/col so indices start at zero, and build the reverse grid.
  if (!sites_.empty()) {
    cols_ = max_i - min_i + 1;
    rows_ = max_j - min_j + 1;
    site_index_.assign(static_cast<std::size_t>(cols_) * rows_, -1);
    for (std::size_t k = 0; k < sites_.size(); ++k) {
      sites_[k].col -= min_i;
      sites_[k].row -= min_j;
      site_index_[static_cast<std::size_t>(sites_[k].row) * cols_ + sites_[k].col] =
          static_cast<std::int64_t>(k);
    }
    // Step-cell origin of (row 0, col 0): die center minus half a step.
    origin_x_mm_ = (min_i + ax) * step_x_mm_ - step_x_mm_ / 2.0;
    origin_y_mm_ = (min_j + ay) * step_y_mm_ - step_y_mm_ / 2.0;
  }
}

double WaferMap::area_utilization() const noexcept {
  const double die_area = die_.area().value();
  const double covered = die_area * static_cast<double>(sites_.size());
  const double usable = wafer_.usable_area().value();
  return usable > 0.0 ? covered / usable : 0.0;
}

std::int64_t WaferMap::site_at(units::Millimeters x, units::Millimeters y) const noexcept {
  if (sites_.empty()) return -1;
  const double gx = (x.value() - origin_x_mm_) / step_x_mm_;
  const double gy = (y.value() - origin_y_mm_) / step_y_mm_;
  const auto col = static_cast<std::int64_t>(std::floor(gx));
  const auto row = static_cast<std::int64_t>(std::floor(gy));
  if (col < 0 || col >= cols_ || row < 0 || row >= rows_) return -1;
  const std::int64_t idx = site_index_[static_cast<std::size_t>(row) * cols_ + col];
  if (idx < 0) return -1;
  // The point must land on the die body, not its street margin.
  const DieSite& s = sites_[static_cast<std::size_t>(idx)];
  const double half_w = die_.width().value() / 2.0;
  const double half_h = die_.height().value() / 2.0;
  if (std::fabs(x.value() - s.center_x.value()) > half_w) return -1;
  if (std::fabs(y.value() - s.center_y.value()) > half_h) return -1;
  return idx;
}

void WaferMap::site_at_batch(const double* x_mm, const double* y_mm, std::int64_t* out,
                             std::size_t n) const noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = site_at(units::Millimeters{x_mm[i]}, units::Millimeters{y_mm[i]});
  }
}

}  // namespace nanocost::geometry
