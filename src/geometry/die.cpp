#include "nanocost/geometry/die.hpp"

#include <cmath>

#include "nanocost/units/quantity.hpp"

namespace nanocost::geometry {

DieSize::DieSize(units::Millimeters width, units::Millimeters height)
    : width_(units::require_positive(width, "die width")),
      height_(units::require_positive(height, "die height")) {}

DieSize DieSize::square_of_area(units::SquareCentimeters area) {
  return of_area(area, 1.0);
}

DieSize DieSize::of_area(units::SquareCentimeters area, double aspect_ratio) {
  units::require_positive(area, "die area");
  units::require_positive(aspect_ratio, "die aspect ratio");
  // area = w * h, w = aspect * h  =>  h = sqrt(area / aspect)
  const double area_mm2 = area.value() * 100.0;  // cm^2 -> mm^2
  const double h_mm = std::sqrt(area_mm2 / aspect_ratio);
  const double w_mm = aspect_ratio * h_mm;
  return DieSize{units::Millimeters{w_mm}, units::Millimeters{h_mm}};
}

units::Millimeters DieSize::half_diagonal() const noexcept {
  return units::Millimeters{0.5 * std::hypot(width_.value(), height_.value())};
}

}  // namespace nanocost::geometry
