#include "nanocost/geometry/wafer.hpp"

#include <numbers>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::geometry {

WaferSpec::WaferSpec(units::Millimeters diameter, units::Millimeters edge_exclusion,
                     units::Millimeters scribe_street)
    : diameter_(units::require_positive(diameter, "wafer diameter")),
      edge_exclusion_(units::require_non_negative(edge_exclusion, "edge exclusion")),
      scribe_street_(units::require_non_negative(scribe_street, "scribe street")) {
  if (edge_exclusion_ * 2.0 >= diameter_) {
    throw std::domain_error("edge exclusion consumes the entire wafer");
  }
}

WaferSpec WaferSpec::mm150() {
  return WaferSpec{units::Millimeters{150.0}, units::Millimeters{3.0}, units::Millimeters{0.1}};
}
WaferSpec WaferSpec::mm200() {
  return WaferSpec{units::Millimeters{200.0}, units::Millimeters{3.0}, units::Millimeters{0.1}};
}
WaferSpec WaferSpec::mm300() {
  return WaferSpec{units::Millimeters{300.0}, units::Millimeters{3.0}, units::Millimeters{0.1}};
}

units::SquareCentimeters WaferSpec::area() const noexcept {
  const double r_cm = radius().to_centimeters().value();
  return units::SquareCentimeters{std::numbers::pi * r_cm * r_cm};
}

units::SquareCentimeters WaferSpec::usable_area() const noexcept {
  const double r_cm = usable_radius().to_centimeters().value();
  return units::SquareCentimeters{std::numbers::pi * r_cm * r_cm};
}

}  // namespace nanocost::geometry
