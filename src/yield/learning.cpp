#include "nanocost/yield/learning.hpp"

#include <cmath>
#include <stdexcept>

namespace nanocost::yield {

LearningCurve::LearningCurve(double start_density_per_cm2, double floor_density_per_cm2,
                             double ramp_wafers)
    : start_(units::require_positive(start_density_per_cm2, "start defect density")),
      floor_(units::require_non_negative(floor_density_per_cm2, "floor defect density")),
      ramp_(units::require_positive(ramp_wafers, "learning ramp")) {
  if (floor_ > start_) {
    throw std::domain_error("learning curve floor density exceeds start density");
  }
}

LearningCurve LearningCurve::for_feature_size_um(double lambda_um) {
  units::require_positive(lambda_um, "lambda");
  // Calibrated so a 0.25 um process starts near 1.5 /cm^2 and matures
  // near 0.3 /cm^2 over ~20k wafers, with densities scaling inversely
  // with feature size (smaller killers dominate at finer geometry).
  const double scale = 0.25 / lambda_um;
  return LearningCurve{1.5 * scale, 0.3 * scale, 20000.0 * std::sqrt(scale)};
}

double LearningCurve::density_at(double cumulative_wafers) const {
  units::require_non_negative(cumulative_wafers, "cumulative wafers");
  return floor_ + (start_ - floor_) * std::exp(-cumulative_wafers / ramp_);
}

double LearningCurve::average_density_over(double run_wafers) const {
  units::require_positive(run_wafers, "run wafers");
  // (1/n) * integral_0^n D(t) dt, closed form.
  const double decay = ramp_ / run_wafers * (1.0 - std::exp(-run_wafers / ramp_));
  return floor_ + (start_ - floor_) * decay;
}

}  // namespace nanocost::yield
