#include "nanocost/yield/radial.hpp"

#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::yield {

RadialYieldResult radial_yield(const geometry::WaferMap& map, const YieldModel& model,
                               double mean_density, const defect::RadialProfile& profile,
                               double critical_area_ratio) {
  units::require_non_negative(mean_density, "mean defect density");
  units::require_non_negative(critical_area_ratio, "critical area ratio");
  if (map.sites().empty()) {
    throw std::invalid_argument("radial yield needs a non-empty wafer map");
  }

  const double wafer_radius = map.wafer().radius().value();
  const double die_area = map.die().area().value();

  RadialYieldResult result;
  result.site_yield.reserve(map.sites().size());
  double sum = 0.0;
  double min_r = 1e300, max_r = -1.0;
  std::size_t center_idx = 0, edge_idx = 0;
  for (std::size_t i = 0; i < map.sites().size(); ++i) {
    const double r = map.sites()[i].radial_distance().value();
    const double mult = profile.multiplier(r / wafer_radius);
    const double faults = mean_density * mult * die_area * critical_area_ratio;
    const units::Probability y = model.yield(faults);
    result.site_yield.push_back(y);
    sum += y.value();
    if (r < min_r) {
      min_r = r;
      center_idx = i;
    }
    if (r > max_r) {
      max_r = r;
      edge_idx = i;
    }
  }
  result.wafer_yield =
      units::Probability::clamped(sum / static_cast<double>(map.sites().size()));
  result.center_yield = result.site_yield[center_idx];
  result.edge_yield = result.site_yield[edge_idx];
  return result;
}

}  // namespace nanocost::yield
