#include "nanocost/yield/redundancy.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::yield {

units::Probability repairable_yield_poisson(double mean_faults, int spares) {
  units::require_non_negative(mean_faults, "mean faults");
  if (spares < 0) {
    throw std::invalid_argument("spare count must be >= 0");
  }
  // Cumulative Poisson, term-recursive for stability.
  double term = std::exp(-mean_faults);  // k = 0
  double sum = term;
  for (int k = 1; k <= spares; ++k) {
    term *= mean_faults / k;
    sum += term;
  }
  return units::Probability::clamped(sum);
}

units::Probability repairable_yield_negbin(double mean_faults, double alpha, int spares) {
  units::require_non_negative(mean_faults, "mean faults");
  units::require_positive(alpha, "clustering alpha");
  if (spares < 0) {
    throw std::invalid_argument("spare count must be >= 0");
  }
  const double p = mean_faults / (mean_faults + alpha);  // "success" prob per fault
  double term = std::pow(alpha / (mean_faults + alpha), alpha);  // k = 0
  double sum = term;
  for (int k = 1; k <= spares; ++k) {
    term *= (alpha + k - 1.0) / k * p;
    sum += term;
  }
  return units::Probability::clamped(sum);
}

SpareOptimum optimal_spares_poisson(double mean_faults, double area_overhead_per_spare,
                                    int max_spares) {
  units::require_non_negative(mean_faults, "mean faults");
  units::require_non_negative(area_overhead_per_spare, "spare area overhead");
  if (max_spares < 0) {
    throw std::invalid_argument("max spares must be >= 0");
  }
  SpareOptimum best;
  for (int r = 0; r <= max_spares; ++r) {
    const double area = 1.0 + r * area_overhead_per_spare;
    const units::Probability y = repairable_yield_poisson(mean_faults * area, r);
    const double metric = y.value() / area;
    if (metric > best.yield_per_area) {
      best.yield_per_area = metric;
      best.spares = r;
      best.yield = y;
    }
  }
  return best;
}

}  // namespace nanocost::yield
