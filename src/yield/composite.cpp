#include "nanocost/yield/composite.hpp"

#include <stdexcept>

namespace nanocost::yield {

CompositeYield::CompositeYield(units::Probability gross,
                               std::shared_ptr<const YieldModel> functional,
                               units::Probability parametric)
    : gross_(gross), functional_(std::move(functional)), parametric_(parametric) {
  if (!functional_) {
    throw std::invalid_argument("composite yield requires a functional yield model");
  }
}

CompositeYield::CompositeYield()
    : CompositeYield(units::Probability{1.0}, std::make_shared<MurphyYield>(),
                     units::Probability{1.0}) {}

units::Probability CompositeYield::total(units::SquareCentimeters die_area,
                                         double defect_density_per_cm2,
                                         double critical_area_ratio) const {
  const units::Probability functional =
      functional_->yield_for_die(die_area, defect_density_per_cm2, critical_area_ratio);
  return gross_ * functional * parametric_;
}

units::Probability effective_yield(units::Probability yield, units::Probability utilization) {
  return yield * utilization;
}

}  // namespace nanocost::yield
