#include "nanocost/yield/models.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::yield {

units::Probability YieldModel::yield_for_die(units::SquareCentimeters die_area,
                                             double defect_density_per_cm2,
                                             double critical_area_ratio) const {
  units::require_non_negative(die_area, "die area");
  units::require_non_negative(defect_density_per_cm2, "defect density");
  units::require_non_negative(critical_area_ratio, "critical area ratio");
  return yield(die_area.value() * defect_density_per_cm2 * critical_area_ratio);
}

units::Probability PoissonYield::yield(double mean_faults_per_die) const {
  units::require_non_negative(mean_faults_per_die, "mean faults per die");
  return units::Probability::clamped(std::exp(-mean_faults_per_die));
}

units::Probability MurphyYield::yield(double mean_faults_per_die) const {
  units::require_non_negative(mean_faults_per_die, "mean faults per die");
  const double l = mean_faults_per_die;
  if (l < 1e-12) return units::Probability{1.0};
  const double g = (1.0 - std::exp(-l)) / l;
  return units::Probability::clamped(g * g);
}

units::Probability SeedsYield::yield(double mean_faults_per_die) const {
  units::require_non_negative(mean_faults_per_die, "mean faults per die");
  return units::Probability::clamped(std::exp(-std::sqrt(mean_faults_per_die)));
}

units::Probability BoseEinsteinYield::yield(double mean_faults_per_die) const {
  units::require_non_negative(mean_faults_per_die, "mean faults per die");
  return units::Probability::clamped(1.0 / (1.0 + mean_faults_per_die));
}

NegativeBinomialYield::NegativeBinomialYield(double alpha)
    : alpha_(units::require_positive(alpha, "clustering alpha")) {}

units::Probability NegativeBinomialYield::yield(double mean_faults_per_die) const {
  units::require_non_negative(mean_faults_per_die, "mean faults per die");
  return units::Probability::clamped(std::pow(1.0 + mean_faults_per_die / alpha_, -alpha_));
}

std::string NegativeBinomialYield::name() const {
  return "negbin:" + std::to_string(alpha_);
}

std::unique_ptr<YieldModel> make_yield_model(const std::string& spec) {
  if (spec == "poisson") return std::make_unique<PoissonYield>();
  if (spec == "murphy") return std::make_unique<MurphyYield>();
  if (spec == "seeds") return std::make_unique<SeedsYield>();
  if (spec == "bose-einstein") return std::make_unique<BoseEinsteinYield>();
  constexpr const char* kNegbinPrefix = "negbin:";
  if (spec.rfind(kNegbinPrefix, 0) == 0) {
    const double alpha = std::stod(spec.substr(std::string(kNegbinPrefix).size()));
    return std::make_unique<NegativeBinomialYield>(alpha);
  }
  throw std::invalid_argument("unknown yield model spec: " + spec);
}

}  // namespace nanocost::yield
