#include "nanocost/yield/parametric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::yield {

double standard_normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

ParametricYield::ParametricYield(double mean, double sigma, std::optional<double> lower_spec,
                                 std::optional<double> upper_spec)
    : mean_(mean), sigma_(units::require_positive(sigma, "sigma")), lower_(lower_spec),
      upper_(upper_spec) {
  if (!lower_ && !upper_) {
    throw std::invalid_argument("parametric yield needs at least one spec limit");
  }
  if (lower_ && upper_ && *lower_ >= *upper_) {
    throw std::invalid_argument("lower spec limit must be below upper spec limit");
  }
}

units::Probability ParametricYield::yield() const {
  double p = 1.0;
  if (upper_) p = standard_normal_cdf((*upper_ - mean_) / sigma_);
  if (lower_) p -= standard_normal_cdf((*lower_ - mean_) / sigma_);
  return units::Probability::clamped(p);
}

double ParametricYield::cpk() const {
  double cpk = std::numeric_limits<double>::infinity();
  if (upper_) cpk = std::min(cpk, (*upper_ - mean_) / (3.0 * sigma_));
  if (lower_) cpk = std::min(cpk, (mean_ - *lower_) / (3.0 * sigma_));
  return cpk;
}

units::Probability ParametricYield::yield_with_margin(double margin) const {
  units::require_non_negative(margin, "spec margin");
  double p = 1.0;
  if (upper_) p = standard_normal_cdf((*upper_ + margin - mean_) / sigma_);
  if (lower_) p -= standard_normal_cdf((*lower_ - margin - mean_) / sigma_);
  return units::Probability::clamped(p);
}

}  // namespace nanocost::yield
