#include "nanocost/route/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nanocost/obs/metrics.hpp"
#include "nanocost/obs/trace.hpp"
#include "nanocost/robust/cancel.hpp"
#include "nanocost/robust/fault_injection.hpp"

namespace nanocost::route {

namespace {
/// Injection site evaluated once per rip-up pass; the unit index is the
/// pass number.
constexpr robust::FaultSite kRoutePassFaultSite{"route.pass"};
}  // namespace

using netlist::Net;
using netlist::Netlist;

RoutingGrid::RoutingGrid(std::int32_t rows, std::int32_t cols) : rows_(rows), cols_(cols) {
  if (rows_ < 1 || cols_ < 1) {
    throw std::invalid_argument("routing grid needs rows >= 1 and cols >= 1");
  }
  h_.assign(static_cast<std::size_t>(rows_) * std::max(cols_ - 1, 0), 0);
  v_.assign(static_cast<std::size_t>(std::max(rows_ - 1, 0)) * cols_, 0);
}

std::int32_t RoutingGrid::h_demand(std::int32_t r, std::int32_t c) const {
  return h_.at(static_cast<std::size_t>(r) * (cols_ - 1) + c);
}
std::int32_t RoutingGrid::v_demand(std::int32_t r, std::int32_t c) const {
  return v_.at(static_cast<std::size_t>(r) * cols_ + c);
}
void RoutingGrid::add_h(std::int32_t r, std::int32_t c) {
  ++h_.at(static_cast<std::size_t>(r) * (cols_ - 1) + c);
}
void RoutingGrid::add_v(std::int32_t r, std::int32_t c) {
  ++v_.at(static_cast<std::size_t>(r) * cols_ + c);
}
void RoutingGrid::remove_h(std::int32_t r, std::int32_t c) {
  --h_.at(static_cast<std::size_t>(r) * (cols_ - 1) + c);
}
void RoutingGrid::remove_v(std::int32_t r, std::int32_t c) {
  --v_.at(static_cast<std::size_t>(r) * cols_ + c);
}

namespace {

struct Point {
  std::int32_t r;
  std::int32_t c;
};

double edge_cost(std::int32_t demand, std::int32_t capacity, double penalty) {
  return 1.0 + (demand + 1 > capacity ? penalty * (demand + 2 - capacity) : 0.0);
}

/// Cost of a straight horizontal run at row r from c0 to c1 (exclusive
/// semantics handled by caller); helper sums per-edge congestion cost.
double h_run_cost(const RoutingGrid& g, std::int32_t r, std::int32_t c0, std::int32_t c1,
                  const RouterParams& p) {
  double sum = 0.0;
  for (std::int32_t c = std::min(c0, c1); c < std::max(c0, c1); ++c) {
    sum += edge_cost(g.h_demand(r, c), p.h_capacity, p.congestion_penalty);
  }
  return sum;
}

double v_run_cost(const RoutingGrid& g, std::int32_t c, std::int32_t r0, std::int32_t r1,
                  const RouterParams& p) {
  double sum = 0.0;
  for (std::int32_t r = std::min(r0, r1); r < std::max(r0, r1); ++r) {
    sum += edge_cost(g.v_demand(r, c), p.v_capacity, p.congestion_penalty);
  }
  return sum;
}

void commit_h(RoutingGrid& g, std::int32_t r, std::int32_t c0, std::int32_t c1) {
  for (std::int32_t c = std::min(c0, c1); c < std::max(c0, c1); ++c) g.add_h(r, c);
}

void commit_v(RoutingGrid& g, std::int32_t c, std::int32_t r0, std::int32_t r1) {
  for (std::int32_t r = std::min(r0, r1); r < std::max(r0, r1); ++r) g.add_v(r, c);
}

void uncommit_h(RoutingGrid& g, std::int32_t r, std::int32_t c0, std::int32_t c1) {
  for (std::int32_t c = std::min(c0, c1); c < std::max(c0, c1); ++c) g.remove_h(r, c);
}

void uncommit_v(RoutingGrid& g, std::int32_t c, std::int32_t r0, std::int32_t r1) {
  for (std::int32_t r = std::min(r0, r1); r < std::max(r0, r1); ++r) g.remove_v(r, c);
}

/// A committed two-pin connection: a three-segment path.  HVH runs
/// horizontally at a.r to column `mid`, vertically along `mid`, then
/// horizontally at b.r; VHV is the transpose.  L-shapes are the special
/// cases mid == b.c / a.c (HVH) or mid == b.r / a.r (VHV); detours have
/// `mid` elsewhere (including outside the pin bbox: U-shapes).
struct Routed {
  Point a;
  Point b;
  bool hvh = true;
  std::int32_t mid = 0;  // column for HVH, row for VHV
};

std::int64_t path_edges(const Routed& r) {
  if (r.hvh) {
    return std::abs(r.a.c - r.mid) + std::abs(r.mid - r.b.c) + std::abs(r.a.r - r.b.r);
  }
  return std::abs(r.a.r - r.mid) + std::abs(r.mid - r.b.r) + std::abs(r.a.c - r.b.c);
}

void commit_connection(RoutingGrid& g, const Routed& r) {
  if (r.hvh) {
    commit_h(g, r.a.r, r.a.c, r.mid);
    commit_v(g, r.mid, r.a.r, r.b.r);
    commit_h(g, r.b.r, r.mid, r.b.c);
  } else {
    commit_v(g, r.a.c, r.a.r, r.mid);
    commit_h(g, r.mid, r.a.c, r.b.c);
    commit_v(g, r.b.c, r.mid, r.b.r);
  }
}

void uncommit_connection(RoutingGrid& g, const Routed& r) {
  if (r.hvh) {
    uncommit_h(g, r.a.r, r.a.c, r.mid);
    uncommit_v(g, r.mid, r.a.r, r.b.r);
    uncommit_h(g, r.b.r, r.mid, r.b.c);
  } else {
    uncommit_v(g, r.a.c, r.a.r, r.mid);
    uncommit_h(g, r.mid, r.a.c, r.b.c);
    uncommit_v(g, r.b.c, r.mid, r.b.r);
  }
}

double path_cost(const RoutingGrid& g, const Routed& r, const RouterParams& p) {
  if (r.hvh) {
    return h_run_cost(g, r.a.r, r.a.c, r.mid, p) + v_run_cost(g, r.mid, r.a.r, r.b.r, p) +
           h_run_cost(g, r.b.r, r.mid, r.b.c, p);
  }
  return v_run_cost(g, r.a.c, r.a.r, r.mid, p) + h_run_cost(g, r.mid, r.a.c, r.b.c, p) +
         v_run_cost(g, r.b.c, r.mid, r.b.r, p);
}

/// Whether any edge of the connection's committed path is overflowed.
bool touches_overflow(const RoutingGrid& g, const Routed& r, const RouterParams& p) {
  const auto h_over = [&](std::int32_t row, std::int32_t c0, std::int32_t c1) {
    for (std::int32_t c = std::min(c0, c1); c < std::max(c0, c1); ++c) {
      if (g.h_demand(row, c) > p.h_capacity) return true;
    }
    return false;
  };
  const auto v_over = [&](std::int32_t col, std::int32_t r0, std::int32_t r1) {
    for (std::int32_t row = std::min(r0, r1); row < std::max(r0, r1); ++row) {
      if (g.v_demand(row, col) > p.v_capacity) return true;
    }
    return false;
  };
  if (r.hvh) {
    return h_over(r.a.r, r.a.c, r.mid) || v_over(r.mid, r.a.r, r.b.r) ||
           h_over(r.b.r, r.mid, r.b.c);
  }
  return v_over(r.a.c, r.a.r, r.mid) || h_over(r.mid, r.a.c, r.b.c) ||
         v_over(r.b.c, r.mid, r.b.r);
}

/// Chooses the cheapest of the two L-shapes (fast path, no detours).
Routed choose_l_shape(const RoutingGrid& g, Point a, Point b, const RouterParams& p) {
  const Routed l1{a, b, true, b.c};   // H then V
  const Routed l2{a, b, false, b.r};  // V then H
  if (a.r == b.r) return l1;
  if (a.c == b.c) return l2;
  return path_cost(g, l1, p) <= path_cost(g, l2, p) ? l1 : l2;
}

/// Full detour search: every HVH column and VHV row, detour length
/// penalized by 1 per extra edge (already in the cost: longer runs sum
/// more edges).  O(rows + cols) per connection; reroute-only.
Routed choose_with_detours(const RoutingGrid& g, Point a, Point b, const RouterParams& p) {
  Routed best = choose_l_shape(g, a, b, p);
  double best_cost = path_cost(g, best, p);
  for (std::int32_t m = 0; m < g.cols(); ++m) {
    const Routed candidate{a, b, true, m};
    const double cost = path_cost(g, candidate, p);
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
    }
  }
  for (std::int32_t m = 0; m < g.rows(); ++m) {
    const Routed candidate{a, b, false, m};
    const double cost = path_cost(g, candidate, p);
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
    }
  }
  return best;
}

/// Enumerates the flat edge ids of a committed path.  Ids number the
/// horizontal edges row-major first (r * (cols-1) + c), then the
/// vertical ones (h_count + r * cols + c) -- the keys of the rip-up
/// stage's dirty-edge bookkeeping.
template <typename Fn>
void for_each_edge(const RoutingGrid& g, const Routed& r, Fn&& fn) {
  const std::int32_t hw = g.cols() - 1;
  const std::int32_t h_count = g.rows() * hw;
  const auto h_edges = [&](std::int32_t row, std::int32_t c0, std::int32_t c1) {
    for (std::int32_t c = std::min(c0, c1); c < std::max(c0, c1); ++c) fn(row * hw + c);
  };
  const auto v_edges = [&](std::int32_t col, std::int32_t r0, std::int32_t r1) {
    for (std::int32_t row = std::min(r0, r1); row < std::max(r0, r1); ++row) {
      fn(h_count + row * g.cols() + col);
    }
  };
  if (r.hvh) {
    h_edges(r.a.r, r.a.c, r.mid);
    v_edges(r.mid, r.a.r, r.b.r);
    h_edges(r.b.r, r.mid, r.b.c);
  } else {
    v_edges(r.a.c, r.a.r, r.mid);
    h_edges(r.mid, r.a.c, r.b.c);
    v_edges(r.b.c, r.mid, r.b.r);
  }
}

}  // namespace

RouteResult route(const Netlist& netlist, const place::Placement& placement,
                  const RouterParams& params) {
  if (params.h_capacity < 1 || params.v_capacity < 1) {
    throw std::invalid_argument("router capacities must be >= 1");
  }
  if (params.rip_up_passes < 0) {
    throw std::invalid_argument("rip-up pass count must be >= 0");
  }
  obs::ObsSpan route_span("route.route");
  // Snapshot the ambient deadline once: rip-up passes below stop at
  // pass boundaries when it trips.  Without one this is a single
  // relaxed atomic load.
  const robust::CancelToken cancel = robust::current_cancel_token();
  RouteResult result;
  result.grid = RoutingGrid(placement.rows(), placement.cols());

  std::vector<Routed> log;
  std::vector<Point> pins;
  std::vector<Point> connected;
  for (const Net& net : netlist.nets()) {
    pins.clear();
    if (net.driver_gate >= 0) {
      pins.push_back(Point{placement.row_of(net.driver_gate),
                           placement.col_of(net.driver_gate)});
    }
    for (const std::int32_t sink : net.sink_gates) {
      pins.push_back(Point{placement.row_of(sink), placement.col_of(sink)});
    }
    if (pins.size() < 2) continue;

    // Nearest-connected-pin spanning tree (Prim on Manhattan distance).
    connected.clear();
    connected.push_back(pins[0]);
    std::vector<bool> used(pins.size(), false);
    used[0] = true;
    for (std::size_t step = 1; step < pins.size(); ++step) {
      std::size_t best_pin = 0;
      Point best_anchor{0, 0};
      std::int64_t best_dist = std::numeric_limits<std::int64_t>::max();
      for (std::size_t i = 0; i < pins.size(); ++i) {
        if (used[i]) continue;
        for (const Point& anchor : connected) {
          const std::int64_t dist = std::abs(pins[i].r - anchor.r) +
                                    std::abs(pins[i].c - anchor.c);
          if (dist < best_dist) {
            best_dist = dist;
            best_pin = i;
            best_anchor = anchor;
          }
        }
      }
      used[best_pin] = true;
      const Point a = best_anchor;
      const Point b = pins[best_pin];
      if (a.r != b.r || a.c != b.c) {
        const Routed routed = choose_l_shape(result.grid, a, b, params);
        commit_connection(result.grid, routed);
        log.push_back(routed);
        result.total_wirelength_edges += path_edges(routed);
      }
      ++result.connections_routed;
      connected.push_back(pins[best_pin]);
    }
  }

  // Rip-up and reroute: pull connections off overflowed edges one at a
  // time and reroute them with the full detour search (Z/U shapes)
  // against the live congestion picture.  Instead of re-walking every
  // connection's path each pass, a dirty-edge overflow set narrows
  // each pass to candidate connections: every connection registers on
  // the edges of its committed path, connections on overflowed edges
  // are marked dirty, and a reroute that leaves an edge overflowed
  // re-marks that edge's registrants.  Registrations go stale when a
  // reroute moves a path -- a stale mark is cleared by the
  // touches_overflow re-verification, never missed -- so the set of
  // reroutes, their order, and the final routing are identical to the
  // full scan.
  if (params.rip_up_passes > 0 && !log.empty()) {
    const std::int32_t grid_rows = result.grid.rows();
    const std::int32_t grid_cols = result.grid.cols();
    const std::int32_t h_edge_count = grid_rows * (grid_cols - 1);
    const std::int32_t edge_count = h_edge_count + (grid_rows - 1) * grid_cols;
    const auto edge_overflowed = [&](std::int32_t e) {
      if (e < h_edge_count) {
        return result.grid.h_demand(e / (grid_cols - 1), e % (grid_cols - 1)) >
               params.h_capacity;
      }
      const std::int32_t ve = e - h_edge_count;
      return result.grid.v_demand(ve / grid_cols, ve % grid_cols) > params.v_capacity;
    };

    bool any_overflow = false;
    for (std::int32_t e = 0; e < edge_count && !any_overflow; ++e) {
      any_overflow = edge_overflowed(e);
    }

    // With no overflow the full scan would reroute nothing and stop
    // after one pass; skip building the tracking structures entirely.
    if (any_overflow) {
      // Edge -> registered connections as intrusive per-edge linked
      // lists (one head per edge, one next-pointer per registration):
      // O(1) allocation-free appends, so reroute registrations cost
      // the same as the initial ones.
      std::vector<std::int32_t> user_head(static_cast<std::size_t>(edge_count), -1);
      std::vector<std::int32_t> user_conn;
      std::vector<std::int32_t> user_next;
      user_conn.reserve(static_cast<std::size_t>(result.total_wirelength_edges));
      user_next.reserve(static_cast<std::size_t>(result.total_wirelength_edges));
      const auto register_user = [&](std::int32_t conn, std::int32_t e) {
        user_conn.push_back(conn);
        user_next.push_back(user_head[static_cast<std::size_t>(e)]);
        user_head[static_cast<std::size_t>(e)] = static_cast<std::int32_t>(user_conn.size()) - 1;
      };
      std::vector<char> dirty(log.size(), 0);
      const auto mark_users = [&](std::int32_t e) {
        for (std::int32_t i = user_head[static_cast<std::size_t>(e)]; i >= 0;
             i = user_next[static_cast<std::size_t>(i)]) {
          dirty[static_cast<std::size_t>(user_conn[static_cast<std::size_t>(i)])] = 1;
        }
      };
      for (std::size_t k = 0; k < log.size(); ++k) {
        for_each_edge(result.grid, log[k],
                      [&](std::int32_t e) { register_user(static_cast<std::int32_t>(k), e); });
      }
      for (std::int32_t e = 0; e < edge_count; ++e) {
        if (edge_overflowed(e)) mark_users(e);
      }

      for (int pass = 0; pass < params.rip_up_passes; ++pass) {
        // Pass granularity keeps the result well-formed: an expired
        // deadline yields the routing as of the last finished pass --
        // exactly a fresh run with that many rip-up passes.
        if (cancel.valid() && cancel.expired()) {
          result.cancelled = true;
          robust::note_cancel_observed(cancel);
          break;
        }
        robust::inject(kRoutePassFaultSite, static_cast<std::uint64_t>(pass));
        obs::ObsSpan pass_span("route.pass");
        pass_span.arg("pass", static_cast<std::uint64_t>(pass));
        if (pass_span.armed()) {
          // Counting the dirty set is O(connections); only pay it when
          // this span is actually recording.
          std::uint64_t n_dirty = 0;
          for (const char d : dirty) n_dirty += static_cast<std::uint64_t>(d);
          pass_span.arg("dirty", n_dirty);
        }
        std::int64_t rerouted = 0;
        for (std::size_t k = 0; k < log.size(); ++k) {
          if (dirty[k] == 0) continue;
          if (!touches_overflow(result.grid, log[k], params)) {
            dirty[k] = 0;  // stale mark (edge recovered or path moved off it)
            continue;
          }
          uncommit_connection(result.grid, log[k]);
          result.total_wirelength_edges -= path_edges(log[k]);
          dirty[k] = 0;
          const Routed replacement =
              choose_with_detours(result.grid, log[k].a, log[k].b, params);
          log[k] = replacement;
          result.total_wirelength_edges += path_edges(replacement);
          commit_connection(result.grid, replacement);
          for_each_edge(result.grid, replacement, [&](std::int32_t e) {
            register_user(static_cast<std::int32_t>(k), e);
            if (edge_overflowed(e)) mark_users(e);
          });
          ++rerouted;
        }
        if (obs::metrics_enabled()) {
          static obs::Counter& passes = obs::counter("route.passes");
          static obs::Counter& reroutes = obs::counter("route.reroutes");
          passes.add();
          reroutes.add(static_cast<std::uint64_t>(rerouted));
        }
        ++result.completed_rip_up_passes;
        if (rerouted == 0) break;
      }
    }
  }
  route_span.arg("connections", static_cast<std::uint64_t>(result.connections_routed));
  if (obs::metrics_enabled()) {
    static obs::Counter& routes = obs::counter("route.routes");
    routes.add();
  }

  // Congestion census.
  std::int64_t used_edges = 0;
  double util_sum = 0.0;
  const auto tally = [&](std::int32_t demand, std::int32_t capacity) {
    if (demand == 0) return;
    const double util = static_cast<double>(demand) / capacity;
    result.max_utilization = std::max(result.max_utilization, util);
    util_sum += util;
    ++used_edges;
    if (demand > capacity) ++result.overflowed_edges;
  };
  for (std::int32_t r = 0; r < result.grid.rows(); ++r) {
    for (std::int32_t c = 0; c + 1 < result.grid.cols(); ++c) {
      tally(result.grid.h_demand(r, c), params.h_capacity);
    }
  }
  for (std::int32_t r = 0; r + 1 < result.grid.rows(); ++r) {
    for (std::int32_t c = 0; c < result.grid.cols(); ++c) {
      tally(result.grid.v_demand(r, c), params.v_capacity);
    }
  }
  result.average_utilization = used_edges > 0 ? util_sum / used_edges : 0.0;
  return result;
}

double wirelength_inflation(const Netlist& netlist, const place::Placement& placement,
                            const RouteResult& result) {
  const double hpwl = place::total_hpwl(netlist, placement, /*row_weight=*/1.0);
  if (hpwl <= 0.0) return 1.0;
  return static_cast<double>(result.total_wirelength_edges) / hpwl;
}

}  // namespace nanocost::route
