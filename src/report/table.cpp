#include "nanocost/report/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace nanocost::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("table needs at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row has " + std::to_string(cells.size()) +
                                " cells, table has " + std::to_string(headers_.size()) +
                                " columns");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  const auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    os << "-+\n";
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace nanocost::report
