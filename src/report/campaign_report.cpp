#include "nanocost/report/campaign_report.hpp"

#include <cstdio>

namespace nanocost::report {

std::string render_campaign(const robust::CampaignResult& result,
                            const std::string& unit_name) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "campaign: %lld/%lld chunks (%lld/%lld %ss), completeness %.4f\n",
                static_cast<long long>(result.completed_chunks),
                static_cast<long long>(result.total_chunks),
                static_cast<long long>(result.completed_units),
                static_cast<long long>(result.total_units), unit_name.c_str(),
                result.completeness());
  out += line;
  std::snprintf(line, sizeof(line), "  resumed chunks: %lld, retries: %lld%s\n",
                static_cast<long long>(result.resumed_chunks),
                static_cast<long long>(result.retries),
                result.interrupted ? ", interrupted (checkpointed mid-run)" : "");
  out += line;
  if (result.quarantined.empty()) {
    out += "  quarantine: empty\n";
    return out;
  }
  std::snprintf(line, sizeof(line), "  quarantine: %zu chunk(s)\n", result.quarantined.size());
  out += line;
  for (const robust::ChunkFailure& f : result.quarantined) {
    std::snprintf(line, sizeof(line), "    chunk %lld (%ss [%lld, %lld)): %.160s\n",
                  static_cast<long long>(f.chunk), unit_name.c_str(),
                  static_cast<long long>(f.unit_begin), static_cast<long long>(f.unit_end),
                  f.error.c_str());
    out += line;
  }
  return out;
}

}  // namespace nanocost::report
