#include "nanocost/report/campaign_report.hpp"

#include <cstdio>

#include "nanocost/obs/metrics.hpp"

namespace nanocost::report {

namespace {

/// Observability footer sourced from the metrics registry.  The
/// registry is process-cumulative, so across several campaigns in one
/// process these totals cover all of them, not just `result` -- the
/// footer says so.  Rendered only when metrics are on; counters are
/// looked up without registering them as a side effect.
std::string render_obs_footer() {
  if (!obs::metrics_enabled()) return {};
  char line[256];
  std::string out = "  observability (process totals):\n";
  std::snprintf(line, sizeof(line),
                "    chunks retried: %llu, quarantined: %llu\n",
                static_cast<unsigned long long>(obs::counter_value("robust.retries")),
                static_cast<unsigned long long>(obs::counter_value("robust.quarantined")));
  out += line;
  std::snprintf(line, sizeof(line),
                "    checkpoint writes: %llu (%llu bytes)\n",
                static_cast<unsigned long long>(
                    obs::counter_value("robust.checkpoint_writes")),
                static_cast<unsigned long long>(
                    obs::counter_value("robust.checkpoint_bytes")));
  out += line;
  if (const obs::Histogram* waves = obs::find_histogram("robust.wave_ms")) {
    std::snprintf(line, sizeof(line),
                  "    waves: %llu, wall-time per wave: mean %.1f ms (min %llu, max %llu)\n",
                  static_cast<unsigned long long>(waves->count()), waves->mean(),
                  static_cast<unsigned long long>(waves->min()),
                  static_cast<unsigned long long>(waves->max()));
    out += line;
  }
  // Overload/deadline lines appear only once those paths have fired --
  // a process that never shed or expired anything keeps a quiet footer.
  const std::uint64_t shed = obs::counter_value("robust.shed");
  const std::uint64_t expired = obs::counter_value("robust.expired");
  const std::uint64_t abandoned = obs::counter_value("robust.retry_abandoned");
  if (shed > 0 || expired > 0 || abandoned > 0) {
    std::snprintf(line, sizeof(line),
                  "    overload: shed %llu, expired %llu, retries abandoned %llu\n",
                  static_cast<unsigned long long>(shed),
                  static_cast<unsigned long long>(expired),
                  static_cast<unsigned long long>(abandoned));
    out += line;
  }
  if (const obs::Histogram* lat = obs::find_histogram("robust.cancel_latency_us")) {
    if (lat->count() > 0) {
      std::snprintf(line, sizeof(line),
                    "    cancel latency: %llu observation(s), mean %.0f us (max %llu)\n",
                    static_cast<unsigned long long>(lat->count()), lat->mean(),
                    static_cast<unsigned long long>(lat->max()));
      out += line;
    }
  }
  return out;
}

}  // namespace

std::string render_campaign(const robust::CampaignResult& result,
                            const std::string& unit_name) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "campaign: %lld/%lld chunks (%lld/%lld %ss), completeness %.4f\n",
                static_cast<long long>(result.completed_chunks),
                static_cast<long long>(result.total_chunks),
                static_cast<long long>(result.completed_units),
                static_cast<long long>(result.total_units), unit_name.c_str(),
                result.completeness());
  out += line;
  std::snprintf(line, sizeof(line), "  resumed chunks: %lld, retries: %lld%s\n",
                static_cast<long long>(result.resumed_chunks),
                static_cast<long long>(result.retries),
                result.expired       ? ", deadline expired (checkpointed, resumable)"
                : result.interrupted ? ", interrupted (checkpointed mid-run)"
                                     : "");
  out += line;
  if (result.quarantined.empty()) {
    out += "  quarantine: empty\n";
    out += render_obs_footer();
    return out;
  }
  std::snprintf(line, sizeof(line), "  quarantine: %zu chunk(s)\n", result.quarantined.size());
  out += line;
  for (const robust::ChunkFailure& f : result.quarantined) {
    std::snprintf(line, sizeof(line), "    chunk %lld (%ss [%lld, %lld)): %.160s\n",
                  static_cast<long long>(f.chunk), unit_name.c_str(),
                  static_cast<long long>(f.unit_begin), static_cast<long long>(f.unit_end),
                  f.error.c_str());
    out += line;
  }
  out += render_obs_footer();
  return out;
}

}  // namespace nanocost::report
