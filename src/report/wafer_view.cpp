#include "nanocost/report/wafer_view.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace nanocost::report {

std::string render_wafer_map(const geometry::WaferMap& map,
                             const std::function<char(std::int64_t)>& site_char) {
  if (map.sites().empty()) return "(empty wafer map)\n";
  std::int32_t max_row = 0, max_col = 0;
  for (const geometry::DieSite& s : map.sites()) {
    max_row = std::max(max_row, s.row);
    max_col = std::max(max_col, s.col);
  }
  std::vector<std::string> rows(static_cast<std::size_t>(max_row) + 1,
                                std::string(static_cast<std::size_t>(max_col) + 1, ' '));
  for (std::size_t i = 0; i < map.sites().size(); ++i) {
    const geometry::DieSite& s = map.sites()[i];
    rows[static_cast<std::size_t>(s.row)][static_cast<std::size_t>(s.col)] =
        site_char(static_cast<std::int64_t>(i));
  }
  std::ostringstream os;
  // Top row of the wafer (max y) first.
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    os << "  " << *it << "\n";
  }
  return os.str();
}

std::string render_good_bad(const geometry::WaferMap& map,
                            const std::function<bool(std::int64_t)>& is_good) {
  return render_wafer_map(map,
                          [&](std::int64_t site) { return is_good(site) ? 'o' : 'X'; });
}

}  // namespace nanocost::report
