#include "nanocost/report/chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace nanocost::report {

namespace {

double transform(double v, Scale scale) {
  if (scale == Scale::kLog) {
    if (!(v > 0.0)) {
      throw std::invalid_argument("log-scale chart received a non-positive value");
    }
    return std::log10(v);
  }
  return v;
}

std::string format_tick(double v) {
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

}  // namespace

std::string render_chart(const std::vector<Series>& series, const ChartOptions& options) {
  if (options.width < 8 || options.height < 4) {
    throw std::invalid_argument("chart area too small");
  }
  double min_x = std::numeric_limits<double>::infinity(), max_x = -min_x;
  double min_y = std::numeric_limits<double>::infinity(), max_y = -min_y;
  bool any = false;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      const double tx = transform(x, options.x_scale);
      const double ty = transform(y, options.y_scale);
      min_x = std::min(min_x, tx);
      max_x = std::max(max_x, tx);
      min_y = std::min(min_y, ty);
      max_y = std::max(max_y, ty);
      any = true;
    }
  }
  if (!any) return "(empty chart)\n";
  if (max_x == min_x) {
    min_x -= 0.5;
    max_x += 0.5;
  }
  if (max_y == min_y) {
    min_y -= 0.5;
    max_y += 0.5;
  }

  std::vector<std::string> grid(static_cast<std::size_t>(options.height),
                                std::string(static_cast<std::size_t>(options.width), ' '));
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      const double tx = transform(x, options.x_scale);
      const double ty = transform(y, options.y_scale);
      const int col = static_cast<int>(std::lround((tx - min_x) / (max_x - min_x) *
                                                   (options.width - 1)));
      const int row = static_cast<int>(std::lround((ty - min_y) / (max_y - min_y) *
                                                   (options.height - 1)));
      // Row 0 is the top of the rendered chart.
      grid[static_cast<std::size_t>(options.height - 1 - row)]
          [static_cast<std::size_t>(col)] = s.marker;
    }
  }

  const auto inverse = [](double t, Scale scale) {
    return scale == Scale::kLog ? std::pow(10.0, t) : t;
  };

  std::ostringstream os;
  if (!options.y_label.empty()) os << options.y_label << "\n";
  for (int r = 0; r < options.height; ++r) {
    const double ty = max_y - (max_y - min_y) * r / (options.height - 1);
    std::string tick;
    if (r == 0 || r == options.height - 1 || r == options.height / 2) {
      tick = format_tick(inverse(ty, options.y_scale));
    }
    os.width(10);
    os << tick;
    os << " |" << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(options.width), '-')
     << "\n";
  os << std::string(12, ' ') << format_tick(inverse(min_x, options.x_scale));
  const std::string right = format_tick(inverse(max_x, options.x_scale));
  const std::string mid = options.x_label;
  const int pad = options.width - static_cast<int>(right.size()) -
                  static_cast<int>(format_tick(inverse(min_x, options.x_scale)).size());
  if (pad > static_cast<int>(mid.size()) + 2) {
    const int left_pad = (pad - static_cast<int>(mid.size())) / 2;
    os << std::string(static_cast<std::size_t>(left_pad), ' ') << mid
       << std::string(static_cast<std::size_t>(pad - left_pad - static_cast<int>(mid.size())),
                      ' ');
  } else {
    os << std::string(static_cast<std::size_t>(std::max(pad, 1)), ' ');
  }
  os << right << "\n";
  // Legend.
  for (const Series& s : series) {
    os << "  " << s.marker << " = " << s.name << "\n";
  }
  return os.str();
}

}  // namespace nanocost::report
