#include "nanocost/data/table_a1.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/layout/density.hpp"

namespace nanocost::data {

std::string vendor_name(Vendor v) {
  switch (v) {
    case Vendor::kIntel: return "Intel";
    case Vendor::kAmd: return "AMD";
    case Vendor::kIbm: return "IBM";
    case Vendor::kMotorola: return "Motorola";
    case Vendor::kDec: return "DEC/Compaq";
    case Vendor::kHp: return "HP";
    case Vendor::kMips: return "MIPS";
    case Vendor::kSun: return "Sun";
    case Vendor::kCyrix: return "Cyrix";
    case Vendor::kTi: return "TI";
    case Vendor::kOther: return "other";
  }
  return "other";
}

std::string device_class_name(DeviceClass c) {
  switch (c) {
    case DeviceClass::kCpu: return "CPU";
    case DeviceClass::kDsp: return "DSP";
    case DeviceClass::kAsic: return "ASIC";
    case DeviceClass::kMpeg: return "MPEG";
    case DeviceClass::kNetwork: return "network";
    case DeviceClass::kVideoGame: return "video game";
  }
  return "other";
}

double DesignRecord::overall_sd() const {
  return layout::decompression_index(die_area, total_transistors, feature_size);
}

std::optional<double> DesignRecord::memory_sd() const {
  if (!has_split()) return std::nullopt;
  return layout::decompression_index(*memory_area, *memory_transistors, feature_size);
}

double DesignRecord::logic_sd() const {
  if (logic_area.has_value() && logic_transistors.has_value()) {
    return layout::decompression_index(*logic_area, *logic_transistors, feature_size);
  }
  return overall_sd();
}

namespace {

constexpr double kMillion = 1e6;

DesignRecord row(int id, const char* device, Vendor vendor, DeviceClass cls, double die_cm2,
                 double lambda_um, double total_m, bool reconstructed) {
  DesignRecord r;
  r.id = id;
  r.device = device;
  r.vendor = vendor;
  r.device_class = cls;
  r.die_area = units::SquareCentimeters{die_cm2};
  r.feature_size = units::Micrometers{lambda_um};
  r.total_transistors = total_m * kMillion;
  r.logic_transistors = r.total_transistors;
  r.logic_area = r.die_area;
  r.reconstructed = reconstructed;
  return r;
}

DesignRecord split_row(int id, const char* device, Vendor vendor, DeviceClass cls,
                       double die_cm2, double lambda_um, double total_m, double mem_m,
                       double logic_m, double mem_cm2, double logic_cm2, bool reconstructed) {
  DesignRecord r = row(id, device, vendor, cls, die_cm2, lambda_um, total_m, reconstructed);
  r.memory_transistors = mem_m * kMillion;
  r.logic_transistors = logic_m * kMillion;
  r.memory_area = units::SquareCentimeters{mem_cm2};
  r.logic_area = units::SquareCentimeters{logic_cm2};
  return r;
}

std::vector<DesignRecord> build_table() {
  using V = Vendor;
  using C = DeviceClass;
  std::vector<DesignRecord> t;
  t.reserve(49);
  // Rows marked `reconstructed = true` had one or more cells rederived
  // from the printed s_d (via eq. 2) or the device's published die data
  // because the scan of the appendix was illegible there.
  t.push_back(row(1, "CPU (1.5um class)", V::kOther, C::kCpu, 0.48, 1.5, 0.18, false));
  t.push_back(row(2, "CPU (486 class)", V::kIntel, C::kCpu, 0.81, 1.0, 1.2, true));
  t.push_back(split_row(3, "Pentium (P5)", V::kIntel, C::kCpu, 2.88, 0.8, 3.1, 0.1, 3.0,
                        0.03, 2.85, true));
  t.push_back(row(4, "Pentium (P54)", V::kIntel, C::kCpu, 1.48, 0.6, 3.2, true));
  t.push_back(row(5, "Pentium Pro", V::kIntel, C::kCpu, 3.06, 0.6, 5.5, false));
  t.push_back(split_row(6, "Pentium Pro (0.35um)", V::kIntel, C::kCpu, 1.95, 0.35, 5.5,
                        0.77, 4.73, 0.05, 1.90, false));
  t.push_back(row(7, "Pentium MMX", V::kIntel, C::kCpu, 1.41, 0.35, 4.5, false));
  t.push_back(split_row(8, "Pentium II (P6)", V::kIntel, C::kCpu, 2.03, 0.35, 8.0, 1.23,
                        6.8, 0.08, 1.95, true));
  t.push_back(split_row(9, "Pentium II (P6, 0.25um)", V::kIntel, C::kCpu, 0.99, 0.25, 7.5,
                        1.23, 6.28, 0.04, 0.95, false));
  t.push_back(row(10, "Pentium MMX (0.25um)", V::kIntel, C::kCpu, 0.75, 0.25, 4.5, true));
  t.push_back(row(11, "Pentium III", V::kIntel, C::kCpu, 1.23, 0.25, 9.5, false));
  t.push_back(row(12, "K5", V::kAmd, C::kCpu, 2.21, 0.5, 4.3, true));
  t.push_back(split_row(13, "K6 (Model 6)", V::kAmd, C::kCpu, 1.68, 0.35, 8.8, 3.1, 5.7,
                        0.18, 1.50, true));
  t.push_back(split_row(14, "K6 (Model 7)", V::kAmd, C::kCpu, 0.68, 0.25, 8.8, 3.1, 5.7,
                        0.08, 0.60, false));
  t.push_back(row(15, "K6-2", V::kAmd, C::kCpu, 0.68, 0.25, 9.3, false));
  t.push_back(split_row(16, "K6-III", V::kAmd, C::kCpu, 1.35, 0.25, 21.3, 14.0, 7.3, 0.45,
                        0.90, true));
  t.push_back(split_row(17, "K7", V::kAmd, C::kCpu, 1.84, 0.18, 22.0, 6.0, 16.0, 0.10,
                        1.74, false));
  t.push_back(row(18, "PowerPC 603e", V::kMotorola, C::kCpu, 1.20, 0.5, 2.8, false));
  t.push_back(row(19, "PowerPC 604", V::kMotorola, C::kCpu, 1.95, 0.5, 3.6, false));
  t.push_back(split_row(20, "S/390 G3", V::kIbm, C::kCpu, 2.72, 0.35, 12.0, 6.0, 6.0, 0.28,
                        2.44, true));
  t.push_back(row(21, "S/390 G4", V::kIbm, C::kCpu, 2.72, 0.35, 9.0, true));
  t.push_back(row(22, "PowerPC 750", V::kMotorola, C::kCpu, 0.67, 0.25, 6.25, false));
  t.push_back(split_row(23, "PowerPC (1MB L2)", V::kMotorola, C::kCpu, 1.47, 0.22, 34.0,
                        24.0, 10.0, 0.50, 0.97, false));
  t.push_back(split_row(24, "S/390 G5", V::kIbm, C::kCpu, 2.10, 0.25, 25.0, 18.0, 7.0,
                        0.55, 1.55, false));
  t.push_back(split_row(25, "PowerPC (0.20um)", V::kMotorola, C::kCpu, 0.64, 0.20, 5.5,
                        2.0, 3.5, 0.06, 0.58, true));
  t.push_back(split_row(26, "PowerPC (SOI)", V::kIbm, C::kCpu, 0.93, 0.16, 10.5, 3.4, 7.1,
                        0.04, 0.55, true));
  t.push_back(split_row(27, "Embedded RISC", V::kOther, C::kCpu, 0.85, 0.35, 2.5, 1.15,
                        1.35, 0.065, 0.69, true));
  t.push_back(row(28, "RISC CPU", V::kOther, C::kCpu, 2.09, 0.35, 9.66, false));
  t.push_back(split_row(29, "Alpha (SOI)", V::kDec, C::kCpu, 1.87, 0.25, 9.0, 4.9, 4.1,
                        0.50, 1.37, true));
  t.push_back(row(30, "MediaGX", V::kCyrix, C::kCpu, 0.66, 0.35, 2.4, true));
  t.push_back(row(31, "6x86MX", V::kCyrix, C::kCpu, 1.94, 0.35, 6.0, false));
  t.push_back(row(32, "RISC CPU", V::kOther, C::kCpu, 1.01, 0.30, 5.7, true));
  t.push_back(row(33, "RISC CPU", V::kOther, C::kCpu, 0.60, 0.28, 3.3, true));
  t.push_back(split_row(34, "PA-RISC (PA-8500)", V::kHp, C::kCpu, 4.69, 0.25, 116.0, 92.0,
                        24.0, 2.30, 2.38, false));
  t.push_back(split_row(35, "MIPS64 (0.18um)", V::kMips, C::kCpu, 0.34, 0.18, 7.2, 5.2,
                        2.0, 0.15, 0.19, false));
  t.push_back(split_row(36, "MIPS64 (0.13um)", V::kMips, C::kCpu, 0.20, 0.13, 7.2, 5.2,
                        2.0, 0.09, 0.11, false));
  t.push_back(split_row(37, "MAJC 5200", V::kSun, C::kCpu, 2.76, 0.22, 12.9, 3.7, 9.2,
                        0.16, 2.60, false));
  t.push_back(split_row(38, "S/390 (Z900 class)", V::kIbm, C::kCpu, 1.77, 0.18, 47.0, 34.0,
                        13.0, 0.60, 1.17, false));
  t.push_back(split_row(39, "Alpha (21364)", V::kDec, C::kCpu, 3.97, 0.18, 152.0, 138.0,
                        14.0, 2.77, 1.20, false));
  t.push_back(row(40, "DSP (0.6um)", V::kTi, C::kDsp, 0.72, 0.6, 0.8, false));
  t.push_back(row(41, "DSP (0.4um)", V::kTi, C::kDsp, 2.26, 0.4, 12.0, true));
  t.push_back(row(42, "DSP (0.35um)", V::kTi, C::kDsp, 1.78, 0.35, 4.0, false));
  t.push_back(row(43, "MPEG-2 encoder", V::kOther, C::kMpeg, 2.72, 0.5, 2.0, false));
  t.push_back(row(44, "MPEG-2 codec", V::kOther, C::kMpeg, 1.63, 0.35, 3.79, true));
  t.push_back(row(45, "MPEG-2 decoder", V::kOther, C::kMpeg, 1.55, 0.35, 3.1, false));
  t.push_back(row(46, "ASIC (mixed signal)", V::kOther, C::kAsic, 0.37, 0.35, 1.0, false));
  t.push_back(row(47, "ASIC (telecom)", V::kOther, C::kAsic, 3.00, 0.25, 10.0, false));
  t.push_back(row(48, "Video game chip", V::kOther, C::kVideoGame, 2.38, 0.18, 10.5, false));
  t.push_back(row(49, "ATM switch", V::kOther, C::kNetwork, 2.25, 0.35, 2.4, false));
  return t;
}

const std::vector<DesignRecord>& table() {
  static const std::vector<DesignRecord> kTable = build_table();
  return kTable;
}

}  // namespace

std::span<const DesignRecord> table_a1() { return table(); }

std::vector<const DesignRecord*> rows_by_vendor(Vendor v) {
  std::vector<const DesignRecord*> out;
  for (const DesignRecord& r : table()) {
    if (r.vendor == v) out.push_back(&r);
  }
  return out;
}

std::vector<const DesignRecord*> rows_by_class(DeviceClass c) {
  std::vector<const DesignRecord*> out;
  for (const DesignRecord& r : table()) {
    if (r.device_class == c) out.push_back(&r);
  }
  return out;
}

double TrendFit::predict(units::Micrometers lambda) const {
  return std::exp(intercept + slope * std::log(lambda.value()));
}

TrendFit fit_sd_trend(std::span<const DesignRecord* const> rows) {
  if (rows.size() < 2) {
    throw std::invalid_argument("trend fit needs at least two rows");
  }
  // Ordinary least squares on (ln lambda, ln s_d).
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  const double n = static_cast<double>(rows.size());
  for (const DesignRecord* r : rows) {
    const double x = std::log(r->feature_size.value());
    const double y = std::log(r->logic_sd());
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument("trend fit needs at least two distinct feature sizes");
  }
  TrendFit fit;
  fit.points = static_cast<int>(rows.size());
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (const DesignRecord* r : rows) {
    const double x = std::log(r->feature_size.value());
    const double y = std::log(r->logic_sd());
    const double e = y - (fit.intercept + fit.slope * x);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

TrendFit fit_sd_trend_all() {
  std::vector<const DesignRecord*> rows;
  for (const DesignRecord& r : table()) rows.push_back(&r);
  return fit_sd_trend(rows);
}

}  // namespace nanocost::data
