#include "nanocost/data/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace nanocost::data {

GroupStats group_stats(std::span<const DesignRecord* const> rows) {
  if (rows.empty()) {
    throw std::invalid_argument("group stats needs at least one row");
  }
  std::vector<double> sds;
  sds.reserve(rows.size());
  GroupStats out;
  out.count = static_cast<int>(rows.size());
  out.min_lambda_um = rows.front()->feature_size.value();
  out.max_lambda_um = out.min_lambda_um;
  double sum = 0.0;
  for (const DesignRecord* r : rows) {
    const double sd = r->logic_sd();
    sds.push_back(sd);
    sum += sd;
    out.min_lambda_um = std::min(out.min_lambda_um, r->feature_size.value());
    out.max_lambda_um = std::max(out.max_lambda_um, r->feature_size.value());
  }
  std::sort(sds.begin(), sds.end());
  out.mean_sd = sum / static_cast<double>(sds.size());
  out.min_sd = sds.front();
  out.max_sd = sds.back();
  const std::size_t mid = sds.size() / 2;
  out.median_sd = sds.size() % 2 == 1 ? sds[mid] : (sds[mid - 1] + sds[mid]) / 2.0;
  return out;
}

std::vector<ClassStats> stats_by_class() {
  std::vector<ClassStats> out;
  for (const DeviceClass cls :
       {DeviceClass::kCpu, DeviceClass::kDsp, DeviceClass::kAsic, DeviceClass::kMpeg,
        DeviceClass::kNetwork, DeviceClass::kVideoGame}) {
    const auto rows = rows_by_class(cls);
    if (rows.empty()) continue;
    ClassStats cs;
    cs.device_class = cls;
    cs.stats = group_stats(rows);
    out.push_back(cs);
  }
  return out;
}

std::vector<DivergencePoint> industry_vs_roadmap(const roadmap::Roadmap& roadmap) {
  const TrendFit trend = fit_sd_trend_all();
  std::vector<DivergencePoint> out;
  for (const roadmap::TechnologyNode& node : roadmap.nodes()) {
    DivergencePoint p;
    p.year = node.year;
    p.lambda = node.lambda();
    p.industrial_sd = trend.predict(node.lambda());
    p.roadmap_sd = node.implied_decompression_index();
    p.ratio = p.industrial_sd / p.roadmap_sd;
    out.push_back(p);
  }
  return out;
}

}  // namespace nanocost::data
