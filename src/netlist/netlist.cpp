#include "nanocost/netlist/netlist.hpp"

#include <stdexcept>

namespace nanocost::netlist {

std::string gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInv: return "inv";
    case GateType::kNand2: return "nand2";
    case GateType::kNor2: return "nor2";
    case GateType::kDff: return "dff";
  }
  return "unknown";
}

int transistors_in(GateType type) {
  switch (type) {
    case GateType::kInv: return 2;
    case GateType::kNand2: return 4;
    case GateType::kNor2: return 4;
    case GateType::kDff: return 20;
  }
  return 0;
}

int fanin_of(GateType type) {
  switch (type) {
    case GateType::kInv: return 1;
    case GateType::kNand2: return 2;
    case GateType::kNor2: return 2;
    case GateType::kDff: return 2;
  }
  return 0;
}

std::int32_t Netlist::add_primary_input() {
  nets_.push_back(Net{});
  return static_cast<std::int32_t>(nets_.size()) - 1;
}

std::int32_t Netlist::add_gate(GateType type, const std::vector<std::int32_t>& inputs) {
  if (static_cast<int>(inputs.size()) != fanin_of(type)) {
    throw std::invalid_argument("gate " + gate_type_name(type) + " needs " +
                                std::to_string(fanin_of(type)) + " inputs, got " +
                                std::to_string(inputs.size()));
  }
  const auto gate_id = static_cast<std::int32_t>(gates_.size());
  for (const std::int32_t net : inputs) {
    if (net < 0 || net >= net_count()) {
      throw std::invalid_argument("gate input references unknown net " +
                                  std::to_string(net));
    }
    nets_[static_cast<std::size_t>(net)].sink_gates.push_back(gate_id);
  }
  Net out;
  out.driver_gate = gate_id;
  nets_.push_back(out);

  Gate gate;
  gate.type = type;
  gate.input_nets = inputs;
  gate.output_net = static_cast<std::int32_t>(nets_.size()) - 1;
  gates_.push_back(std::move(gate));
  return gate_id;
}

std::int64_t Netlist::transistor_count() const {
  std::int64_t total = 0;
  for (const Gate& g : gates_) total += transistors_in(g.type);
  return total;
}

std::vector<std::int32_t> Netlist::type_histogram() const {
  std::vector<std::int32_t> histogram(kGateTypeCount, 0);
  for (const Gate& g : gates_) {
    ++histogram[static_cast<std::size_t>(g.type)];
  }
  return histogram;
}

double Netlist::average_fanout() const {
  std::int64_t sinks = 0, driven = 0;
  for (const Net& n : nets_) {
    if (n.driver_gate >= 0) {
      sinks += static_cast<std::int64_t>(n.sink_gates.size());
      ++driven;
    }
  }
  return driven > 0 ? static_cast<double>(sinks) / static_cast<double>(driven) : 0.0;
}

}  // namespace nanocost::netlist
