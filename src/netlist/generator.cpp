#include "nanocost/netlist/generator.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace nanocost::netlist {

Netlist generate_random_logic(const GeneratorParams& params) {
  if (params.gate_count < 1 || params.primary_inputs < 1) {
    throw std::invalid_argument("netlist generator needs gates >= 1 and inputs >= 1");
  }
  if (!(params.locality > 0.0 && params.locality <= 1.0)) {
    throw std::invalid_argument("locality must be in (0, 1]");
  }
  double weight_sum = 0.0;
  for (const double w : params.type_weights) {
    if (w < 0.0) throw std::invalid_argument("type weights must be >= 0");
    weight_sum += w;
  }
  if (weight_sum <= 0.0) throw std::invalid_argument("type weights must not all be zero");

  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  // Geometric reach: distance back from the frontier when picking an
  // input net.  locality 1 -> mean reach ~1 net; locality eps -> the
  // whole history.
  std::geometric_distribution<std::int32_t> reach(params.locality);

  Netlist nl;
  for (std::int32_t i = 0; i < params.primary_inputs; ++i) {
    nl.add_primary_input();
  }

  for (std::int32_t g = 0; g < params.gate_count; ++g) {
    // Pick a type by weight.
    double pick = uni(rng) * weight_sum;
    auto type = GateType::kInv;
    for (int t = 0; t < kGateTypeCount; ++t) {
      pick -= params.type_weights[t];
      if (pick <= 0.0) {
        type = static_cast<GateType>(t);
        break;
      }
    }

    std::vector<std::int32_t> inputs;
    const int fanin = fanin_of(type);
    for (int p = 0; p < fanin; ++p) {
      const std::int32_t available = nl.net_count();
      std::int32_t back = reach(rng) % available;
      inputs.push_back(available - 1 - back);
    }
    nl.add_gate(type, inputs);
  }
  return nl;
}

}  // namespace nanocost::netlist
