#include "nanocost/netlist/estimate.hpp"

#include <cmath>
#include <stdexcept>

namespace nanocost::netlist {

double estimate_total_wirelength(const Netlist& netlist, double sites,
                                 const EstimateParams& params) {
  if (!(sites >= 1.0)) {
    throw std::invalid_argument("estimate needs at least one placement site");
  }
  if (!(params.rent_exponent > 0.0 && params.rent_exponent < 1.0)) {
    throw std::invalid_argument("Rent exponent must be in (0, 1)");
  }
  if (!(params.k > 0.0)) {
    throw std::invalid_argument("estimator k must be positive");
  }
  // Donath-style characteristic length: sqrt(sites)^(2p - 1); for
  // p = 0.5 length is size-independent, above 0.5 it grows.
  const double characteristic =
      std::pow(std::sqrt(sites), 2.0 * params.rent_exponent - 1.0);
  double total = 0.0;
  for (const Net& n : netlist.nets()) {
    if (n.driver_gate < 0 && n.sink_gates.empty()) continue;  // dangling PI
    const double segments = static_cast<double>(n.pin_count() - 1);
    if (segments <= 0.0) continue;
    total += params.k * segments * characteristic;
  }
  return total;
}

double estimate_average_net_length(const Netlist& netlist, double sites,
                                   const EstimateParams& params) {
  std::int64_t counted = 0;
  for (const Net& n : netlist.nets()) {
    if (n.pin_count() >= 2) ++counted;
  }
  if (counted == 0) return 0.0;
  return estimate_total_wirelength(netlist, sites, params) /
         static_cast<double>(counted);
}

}  // namespace nanocost::netlist
