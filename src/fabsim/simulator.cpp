#include "nanocost/fabsim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "nanocost/exec/parallel.hpp"
#include "nanocost/exec/seed.hpp"
#include "nanocost/obs/metrics.hpp"
#include "nanocost/obs/trace.hpp"
#include "nanocost/robust/fault_injection.hpp"

namespace nanocost::fabsim {

namespace {

/// Injection site evaluated once per simulated wafer; the unit index is
/// the (lot- or ramp-global) wafer index.
constexpr robust::FaultSite kWaferFaultSite{"fabsim.wafer"};

/// Wafers per parallel chunk.  The chunk grid is a function of the lot
/// size only, never of the thread count.
constexpr std::int64_t kWaferGrain = 4;

/// Per-chunk simulation scratch: reused across the chunk's wafers so a
/// lot run allocates O(chunks), not O(wafers).
struct WaferScratch {
  std::vector<defect::Defect> defects;
  std::vector<std::int32_t> faults;
  std::vector<std::int64_t> histogram = std::vector<std::int64_t>(4, 0);
};

}  // namespace

DieKillModel::DieKillModel(defect::WireArray array, units::SquareCentimeters die_area)
    : array_(std::move(array)), die_area_(die_area) {
  units::require_positive(die_area_, "die area");
}

double DieKillModel::kill_probability(units::Micrometers size) const {
  const double ca = array_.short_critical_area(size).value() +
                    array_.open_critical_area(size).value();
  const double ratio = ca / array_.footprint().value();
  return std::min(ratio, 1.0);
}

namespace {

/// Composite Simpson over [a, b], n even subintervals.
template <typename Fn>
double simpson(Fn&& f, double a, double b, int n) {
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

}  // namespace

double DieKillModel::mean_faults_per_die(double defect_density_per_cm2,
                                         const defect::DefectSizeDistribution& sizes) const {
  units::require_non_negative(defect_density_per_cm2, "defect density");
  // E[kill probability] over the size distribution, integrating the
  // *same* capped per-size probability the simulation samples (the
  // uncapped sum of short+open averages would over-count huge defects
  // that saturate both mechanisms at once).
  const auto integrand = [&](double x) {
    return kill_probability(units::Micrometers{x}) * sizes.pdf(units::Micrometers{x});
  };
  const double a = sizes.xmin().value();
  const double x0 = sizes.peak().value();
  const double b = sizes.xmax().value();
  const double below = simpson(integrand, a, x0, 512);
  const auto log_integrand = [&](double t) {
    const double x = std::exp(t);
    return integrand(x) * x;
  };
  const double above = simpson(log_integrand, std::log(x0), std::log(b), 2048);
  const double expected_kill = below + above;
  return defect_density_per_cm2 * die_area_.value() * expected_kill;
}

KillProbabilityLut::KillProbabilityLut(const DieKillModel& model, units::Micrometers xmin,
                                       units::Micrometers xmax, int bins)
    : model_(model) {
  if (!(xmin.value() > 0.0 && xmin.value() < xmax.value())) {
    throw std::invalid_argument("kill LUT needs 0 < xmin < xmax");
  }
  if (bins < 8) {
    throw std::invalid_argument("kill LUT needs at least 8 bins");
  }
  log_xmin_ = std::log(xmin.value());
  const double dlog = (std::log(xmax.value()) - log_xmin_) / bins;
  inv_dlog_ = 1.0 / dlog;

  node_x_.resize(static_cast<std::size_t>(bins) + 1);
  node_p_.resize(node_x_.size());
  for (int i = 0; i <= bins; ++i) {
    // Pin the endpoints so range checks against node_x_ are exact.
    const double x = i == 0      ? xmin.value()
                     : i == bins ? xmax.value()
                                 : std::exp(log_xmin_ + i * dlog);
    node_x_[static_cast<std::size_t>(i)] = x;
    node_p_[static_cast<std::size_t>(i)] = model_.kill_probability(units::Micrometers{x});
  }

  slope_.resize(static_cast<std::size_t>(bins));
  interp_ok_.resize(static_cast<std::size_t>(bins));
  for (int i = 0; i < bins; ++i) {
    const double a = node_x_[static_cast<std::size_t>(i)];
    const double b = node_x_[static_cast<std::size_t>(i) + 1];
    const double pa = node_p_[static_cast<std::size_t>(i)];
    const double pb = node_p_[static_cast<std::size_t>(i) + 1];
    const double slope = (pb - pa) / (b - a);
    slope_[static_cast<std::size_t>(i)] = slope;
    // The kill probability is piecewise linear in size; a bin whose
    // chord matches the model at three interior points contains no
    // breakpoint and interpolates exactly.  Bins straddling a kink keep
    // direct evaluation.
    bool linear = true;
    for (const double t : {0.25, 0.5, 0.75}) {
      const double x = a + t * (b - a);
      const double direct = model_.kill_probability(units::Micrometers{x});
      const double interp = pa + slope * (x - a);
      if (std::abs(direct - interp) > 1e-12 + 1e-9 * std::abs(direct)) {
        linear = false;
        break;
      }
    }
    interp_ok_[static_cast<std::size_t>(i)] = linear ? 1 : 0;
  }
}

double KillProbabilityLut::operator()(units::Micrometers size) const noexcept {
  const double x = size.value();
  if (!(x >= node_x_.front() && x <= node_x_.back())) {
    return model_.kill_probability(size);
  }
  auto i = static_cast<std::int64_t>((std::log(x) - log_xmin_) * inv_dlog_);
  const auto last = static_cast<std::int64_t>(slope_.size()) - 1;
  i = std::clamp(i, std::int64_t{0}, last);
  // Float rounding of the log can land one bin off; nudge to the bin
  // actually bracketing x.
  while (i > 0 && x < node_x_[static_cast<std::size_t>(i)]) --i;
  while (i < last && x > node_x_[static_cast<std::size_t>(i) + 1]) ++i;
  if (!interp_ok_[static_cast<std::size_t>(i)]) {
    return model_.kill_probability(size);
  }
  return node_p_[static_cast<std::size_t>(i)] +
         slope_[static_cast<std::size_t>(i)] * (x - node_x_[static_cast<std::size_t>(i)]);
}

int KillProbabilityLut::interpolated_bins() const noexcept {
  int n = 0;
  for (const std::uint8_t ok : interp_ok_) n += ok;
  return n;
}

double LotResult::fault_mean() const noexcept {
  std::int64_t total = 0, weighted = 0;
  for (std::size_t k = 0; k < fault_histogram.size(); ++k) {
    total += fault_histogram[k];
    weighted += static_cast<std::int64_t>(k) * fault_histogram[k];
  }
  return total > 0 ? static_cast<double>(weighted) / static_cast<double>(total) : 0.0;
}

double LotResult::fault_variance() const noexcept {
  const double mean = fault_mean();
  std::int64_t total = 0;
  double ss = 0.0;
  for (std::size_t k = 0; k < fault_histogram.size(); ++k) {
    total += fault_histogram[k];
    const double d = static_cast<double>(k) - mean;
    ss += d * d * static_cast<double>(fault_histogram[k]);
  }
  return total > 1 ? ss / static_cast<double>(total - 1) : 0.0;
}

double LotResult::yield_stddev() const noexcept {
  if (wafers.size() < 2) return 0.0;
  double mean = 0.0;
  for (const WaferResult& w : wafers) mean += w.yield();
  mean /= static_cast<double>(wafers.size());
  double ss = 0.0;
  for (const WaferResult& w : wafers) {
    const double d = w.yield() - mean;
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(wafers.size() - 1));
}

FabSimulator::FabSimulator(geometry::WaferSpec wafer, geometry::DieSize die,
                           defect::DefectSizeDistribution sizes,
                           defect::DefectFieldParams field,
                           defect::WireArray representative_pattern)
    : wafer_(wafer), die_(die), sizes_(sizes), field_params_(field), map_(wafer, die),
      kill_(std::move(representative_pattern), die.area()),
      lut_(kill_, sizes.xmin(), sizes.xmax()) {
  if (map_.die_count() == 0) {
    throw std::invalid_argument("die does not fit on the wafer");
  }
}

double FabSimulator::analytic_mean_faults() const {
  return kill_.mean_faults_per_die(field_params_.density_per_cm2, sizes_);
}

void FabSimulator::simulate_wafer(std::mt19937_64& rng, const defect::DefectField& field,
                                  WaferResult& result,
                                  std::vector<defect::Defect>& defect_buffer,
                                  std::vector<std::int32_t>& faults_scratch,
                                  std::vector<std::int64_t>& histogram) const {
  obs::ObsSpan span("fabsim.wafer");
  faults_scratch.assign(static_cast<std::size_t>(map_.die_count()), 0);
  field.sample_wafer(rng, defect_buffer);
  result.defects = static_cast<std::int64_t>(defect_buffer.size());
  result.gross_dies = map_.die_count();
  span.arg("defects", static_cast<std::uint64_t>(result.defects));
  if (obs::metrics_enabled()) {
    static obs::Counter& wafers = obs::counter("fabsim.wafers");
    static obs::Counter& defects = obs::counter("fabsim.defects");
    wafers.add();
    defects.add(static_cast<std::uint64_t>(result.defects));
  }

  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (const defect::Defect& d : defect_buffer) {
    const std::int64_t site = map_.site_at(d.x, d.y);
    if (site < 0) continue;
    ++result.defects_on_dies;
    if (uni(rng) < lut_(d.size)) {
      ++faults_scratch[static_cast<std::size_t>(site)];
    }
  }

  result.good_dies = 0;
  for (const std::int32_t f : faults_scratch) {
    if (f == 0) ++result.good_dies;
    if (static_cast<std::size_t>(f) >= histogram.size()) {
      histogram.resize(static_cast<std::size_t>(f) + 1, 0);
    }
    ++histogram[static_cast<std::size_t>(f)];
  }
}

std::vector<std::int32_t> FabSimulator::snapshot_faults(std::uint64_t seed) const {
  std::mt19937_64 rng(seed);
  const defect::DefectField field(wafer_, sizes_, field_params_);
  WaferResult wafer_result;
  WaferScratch scratch;
  simulate_wafer(rng, field, wafer_result, scratch.defects, scratch.faults,
                 scratch.histogram);
  return std::move(scratch.faults);
}

namespace {

/// Folds per-chunk histograms into the lot and totals up the wafers.
void finalize_lot(LotResult& lot, std::vector<std::int64_t>&& histogram) {
  if (histogram.size() > lot.fault_histogram.size()) {
    lot.fault_histogram.resize(histogram.size(), 0);
  }
  for (std::size_t k = 0; k < histogram.size(); ++k) {
    lot.fault_histogram[k] += histogram[k];
  }
}

void total_up(LotResult& lot) {
  for (const WaferResult& w : lot.wafers) {
    lot.total_dies += w.gross_dies;
    lot.good_dies += w.good_dies;
  }
}

}  // namespace

LotResult FabSimulator::run(std::int64_t n_wafers, std::uint64_t seed,
                            exec::ThreadPool* pool) const {
  if (n_wafers < 1) {
    throw std::invalid_argument("lot needs at least one wafer");
  }
  obs::ObsSpan span("fabsim.lot");
  span.arg("wafers", static_cast<std::uint64_t>(n_wafers));
  const defect::DefectField field(wafer_, sizes_, field_params_);

  LotResult lot;
  lot.fault_histogram.assign(4, 0);
  lot.wafers.assign(static_cast<std::size_t>(n_wafers), WaferResult{});
  exec::parallel_reduce(
      pool, n_wafers, kWaferGrain, [] { return WaferScratch{}; },
      [&](std::int64_t begin, std::int64_t end, WaferScratch& scratch) {
        for (std::int64_t i = begin; i < end; ++i) {
          robust::inject(kWaferFaultSite, static_cast<std::uint64_t>(i));
          std::mt19937_64 rng(
              exec::SeedSequence::for_task(seed, static_cast<std::uint64_t>(i)));
          simulate_wafer(rng, field, lot.wafers[static_cast<std::size_t>(i)],
                         scratch.defects, scratch.faults, scratch.histogram);
        }
      },
      [&](WaferScratch&& scratch) { finalize_lot(lot, std::move(scratch.histogram)); });
  total_up(lot);
  return lot;
}

PartialLot FabSimulator::run_partial(std::int64_t n_wafers, std::uint64_t seed,
                                     exec::ThreadPool* pool) const {
  if (n_wafers < 1) {
    throw std::invalid_argument("lot needs at least one wafer");
  }
  obs::ObsSpan span("fabsim.lot_partial");
  span.arg("wafers", static_cast<std::uint64_t>(n_wafers));
  const robust::CancelToken token = robust::current_cancel_token();
  const defect::DefectField field(wafer_, sizes_, field_params_);

  PartialLot out;
  LotResult& lot = out.lot;
  lot.fault_histogram.assign(4, 0);
  lot.wafers.assign(static_cast<std::size_t>(n_wafers), WaferResult{});
  const exec::LoopStatus status = exec::parallel_reduce_cancellable(
      pool, n_wafers, kWaferGrain, token, [] { return WaferScratch{}; },
      [&](std::int64_t begin, std::int64_t end, WaferScratch& scratch) {
        for (std::int64_t i = begin; i < end; ++i) {
          robust::inject(kWaferFaultSite, static_cast<std::uint64_t>(i));
          std::mt19937_64 rng(
              exec::SeedSequence::for_task(seed, static_cast<std::uint64_t>(i)));
          simulate_wafer(rng, field, lot.wafers[static_cast<std::size_t>(i)],
                         scratch.defects, scratch.faults, scratch.histogram);
        }
      },
      [&](WaferScratch&& scratch) { finalize_lot(lot, std::move(scratch.histogram)); });
  // Wafers at/after the frontier may have run out of order; discard them
  // so the lot is a pure function of the frontier.
  const std::int64_t completed =
      std::min(n_wafers, status.frontier * kWaferGrain);
  for (std::int64_t i = completed; i < n_wafers; ++i) {
    lot.wafers[static_cast<std::size_t>(i)] = WaferResult{};
  }
  total_up(lot);
  out.completed_wafers = completed;
  out.completeness = status.completeness();
  out.frontier_chunks = status.frontier;
  out.cancelled = status.cancelled;
  return out;
}

void FabSimulator::run_units(std::int64_t begin, std::int64_t end, std::uint64_t seed,
                             WaferResult* results,
                             std::vector<std::int64_t>& histogram) const {
  if (begin < 0 || end < begin) {
    throw std::invalid_argument("run_units needs 0 <= begin <= end");
  }
  obs::ObsSpan span("fabsim.units");
  span.arg("wafers", static_cast<std::uint64_t>(end - begin));
  const defect::DefectField field(wafer_, sizes_, field_params_);
  WaferScratch scratch;
  for (std::int64_t i = begin; i < end; ++i) {
    robust::inject(kWaferFaultSite, static_cast<std::uint64_t>(i));
    std::mt19937_64 rng(exec::SeedSequence::for_task(seed, static_cast<std::uint64_t>(i)));
    simulate_wafer(rng, field, results[i - begin], scratch.defects, scratch.faults,
                   scratch.histogram);
  }
  if (scratch.histogram.size() > histogram.size()) {
    histogram.resize(scratch.histogram.size(), 0);
  }
  for (std::size_t k = 0; k < scratch.histogram.size(); ++k) {
    histogram[k] += scratch.histogram[k];
  }
}

std::vector<LotResult> FabSimulator::run_ramp(const yield::LearningCurve& curve,
                                              std::int64_t total_wafers,
                                              std::int64_t checkpoint_wafers,
                                              std::uint64_t seed,
                                              exec::ThreadPool* pool) const {
  if (total_wafers < 1 || checkpoint_wafers < 1) {
    throw std::invalid_argument("ramp needs positive wafer counts");
  }
  // Per-chunk scratch carries the last defect field so consecutive
  // wafers at an (effectively) unchanged learning-curve density reuse
  // it instead of rebuilding the field per wafer.
  struct RampScratch {
    WaferScratch wafer;
    std::optional<defect::DefectField> field;
    double density = -1.0;
  };

  std::vector<LotResult> checkpoints;
  std::int64_t done = 0;
  while (done < total_wafers) {
    const std::int64_t batch = std::min(checkpoint_wafers, total_wafers - done);
    obs::ObsSpan span("fabsim.lot");
    span.arg("wafers", static_cast<std::uint64_t>(batch));
    LotResult lot;
    lot.fault_histogram.assign(4, 0);
    lot.wafers.assign(static_cast<std::size_t>(batch), WaferResult{});
    exec::parallel_reduce(
        pool, batch, kWaferGrain, [] { return RampScratch{}; },
        [&](std::int64_t begin, std::int64_t end, RampScratch& scratch) {
          for (std::int64_t i = begin; i < end; ++i) {
            const std::int64_t global = done + i;  // cross-checkpoint wafer index
            robust::inject(kWaferFaultSite, static_cast<std::uint64_t>(global));
            const double density = curve.density_at(static_cast<double>(global));
            if (!scratch.field || density != scratch.density) {
              defect::DefectFieldParams params = field_params_;
              params.density_per_cm2 = density;
              scratch.field.emplace(wafer_, sizes_, params);
              scratch.density = density;
            }
            std::mt19937_64 rng(
                exec::SeedSequence::for_task(seed, static_cast<std::uint64_t>(global)));
            simulate_wafer(rng, *scratch.field, lot.wafers[static_cast<std::size_t>(i)],
                           scratch.wafer.defects, scratch.wafer.faults,
                           scratch.wafer.histogram);
          }
        },
        [&](RampScratch&& scratch) {
          finalize_lot(lot, std::move(scratch.wafer.histogram));
        });
    total_up(lot);
    checkpoints.push_back(std::move(lot));
    done += batch;
  }
  return checkpoints;
}

}  // namespace nanocost::fabsim
