#include "nanocost/fabsim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "nanocost/exec/parallel.hpp"
#include "nanocost/exec/rng_batch.hpp"
#include "nanocost/exec/seed.hpp"
#include "nanocost/obs/metrics.hpp"
#include "nanocost/obs/trace.hpp"
#include "nanocost/robust/fault_injection.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
#define NANOCOST_X86_SIMD 1
#include <immintrin.h>
#endif

namespace nanocost::fabsim {

namespace {

/// Injection site evaluated once per simulated wafer; the unit index is
/// the (lot- or ramp-global) wafer index.
constexpr robust::FaultSite kWaferFaultSite{"fabsim.wafer"};

/// Wafers per parallel chunk.  The chunk grid is a function of the lot
/// size only, never of the thread count.
constexpr std::int64_t kWaferGrain = 4;

}  // namespace

DieKillModel::DieKillModel(defect::WireArray array, units::SquareCentimeters die_area)
    : array_(std::move(array)), die_area_(die_area) {
  units::require_positive(die_area_, "die area");
}

double DieKillModel::kill_probability(units::Micrometers size) const {
  const double ca = array_.short_critical_area(size).value() +
                    array_.open_critical_area(size).value();
  const double ratio = ca / array_.footprint().value();
  return std::min(ratio, 1.0);
}

namespace {

/// Composite Simpson over [a, b], n even subintervals.
template <typename Fn>
double simpson(Fn&& f, double a, double b, int n) {
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

}  // namespace

double DieKillModel::mean_faults_per_die(double defect_density_per_cm2,
                                         const defect::DefectSizeDistribution& sizes) const {
  units::require_non_negative(defect_density_per_cm2, "defect density");
  // E[kill probability] over the size distribution, integrating the
  // *same* capped per-size probability the simulation samples (the
  // uncapped sum of short+open averages would over-count huge defects
  // that saturate both mechanisms at once).
  const auto integrand = [&](double x) {
    return kill_probability(units::Micrometers{x}) * sizes.pdf(units::Micrometers{x});
  };
  const double a = sizes.xmin().value();
  const double x0 = sizes.peak().value();
  const double b = sizes.xmax().value();
  const double below = simpson(integrand, a, x0, 512);
  const auto log_integrand = [&](double t) {
    const double x = std::exp(t);
    return integrand(x) * x;
  };
  const double above = simpson(log_integrand, std::log(x0), std::log(b), 2048);
  const double expected_kill = below + above;
  return defect_density_per_cm2 * die_area_.value() * expected_kill;
}

KillProbabilityLut::KillProbabilityLut(const DieKillModel& model, units::Micrometers xmin,
                                       units::Micrometers xmax, int bins)
    : model_(model) {
  if (!(xmin.value() > 0.0 && xmin.value() < xmax.value())) {
    throw std::invalid_argument("kill LUT needs 0 < xmin < xmax");
  }
  if (bins < 8) {
    throw std::invalid_argument("kill LUT needs at least 8 bins");
  }
  const double log_xmin = std::log(xmin.value());
  const double dlog = (std::log(xmax.value()) - log_xmin) / bins;

  node_x_.resize(static_cast<std::size_t>(bins) + 1);
  node_p_.resize(node_x_.size());
  for (int i = 0; i <= bins; ++i) {
    // Pin the endpoints so range checks against node_x_ are exact.
    const double x = i == 0      ? xmin.value()
                     : i == bins ? xmax.value()
                                 : std::exp(log_xmin + i * dlog);
    node_x_[static_cast<std::size_t>(i)] = x;
    node_p_[static_cast<std::size_t>(i)] = model_.kill_probability(units::Micrometers{x});
  }

  slope_.resize(static_cast<std::size_t>(bins));
  interp_ok_.resize(static_cast<std::size_t>(bins));
  for (int i = 0; i < bins; ++i) {
    const double a = node_x_[static_cast<std::size_t>(i)];
    const double b = node_x_[static_cast<std::size_t>(i) + 1];
    const double pa = node_p_[static_cast<std::size_t>(i)];
    const double pb = node_p_[static_cast<std::size_t>(i) + 1];
    const double slope = (pb - pa) / (b - a);
    slope_[static_cast<std::size_t>(i)] = slope;
    // The kill probability is piecewise linear in size; a bin whose
    // chord matches the model at three interior points contains no
    // breakpoint and interpolates exactly.  Bins straddling a kink keep
    // direct evaluation.
    bool linear = true;
    for (const double t : {0.25, 0.5, 0.75}) {
      const double x = a + t * (b - a);
      const double direct = model_.kill_probability(units::Micrometers{x});
      const double interp = pa + slope * (x - a);
      if (std::abs(direct - interp) > 1e-12 + 1e-9 * std::abs(direct)) {
        linear = false;
        break;
      }
    }
    interp_ok_[static_cast<std::size_t>(i)] = linear ? 1 : 0;
  }

  // Bin-location hint table.  The IEEE bit pattern of a positive finite
  // double is monotone in its value, so the top bits of
  // bits(x) - bits(xmin) index a uniform grid over the support in
  // "exponent+mantissa" space -- log-like resolution without a log.
  // Each cell stores the last bin starting at or below the cell's lower
  // edge; a lookup then only ever nudges upward, typically 0-1 steps.
  bits_min_ = std::bit_cast<std::int64_t>(node_x_.front());
  const auto bits_max = std::bit_cast<std::int64_t>(node_x_.back());
  const std::int64_t span = bits_max - bits_min_;
  hint_shift_ = 0;
  while ((span >> hint_shift_) >= 8191) ++hint_shift_;
  const auto cells = static_cast<std::size_t>(span >> hint_shift_) + 1;
  hint_.resize(cells);
  const auto last = static_cast<std::int64_t>(slope_.size()) - 1;
  for (std::size_t k = 0; k < cells; ++k) {
    const double cell_lo = std::bit_cast<double>(
        bits_min_ + (static_cast<std::int64_t>(k) << hint_shift_));
    const auto it = std::upper_bound(node_x_.begin(), node_x_.end(), cell_lo);
    const auto bin = std::clamp(static_cast<std::int64_t>(it - node_x_.begin()) - 1,
                                std::int64_t{0}, last);
    hint_[k] = static_cast<std::int32_t>(bin);
  }
}

double KillProbabilityLut::evaluate(double x) const noexcept {
  if (!(x >= node_x_.front() && x <= node_x_.back())) {
    return model_.kill_probability(units::Micrometers{x});
  }
  const std::int64_t cell = (std::bit_cast<std::int64_t>(x) - bits_min_) >> hint_shift_;
  const auto last = static_cast<std::int64_t>(slope_.size()) - 1;
  std::int64_t i = hint_[static_cast<std::size_t>(cell)];
  // The hint is at or below the bracketing bin; nudge upward only.
  while (i < last && x > node_x_[static_cast<std::size_t>(i) + 1]) ++i;
  if (!interp_ok_[static_cast<std::size_t>(i)]) {
    return model_.kill_probability(units::Micrometers{x});
  }
  return node_p_[static_cast<std::size_t>(i)] +
         slope_[static_cast<std::size_t>(i)] * (x - node_x_[static_cast<std::size_t>(i)]);
}

double KillProbabilityLut::operator()(units::Micrometers size) const noexcept {
  return evaluate(size.value());
}

#if defined(NANOCOST_X86_SIMD)

namespace {

/// Raw pointers into the LUT columns for the vector lane (the lane is a
/// free function so it can carry a target attribute).
struct LutView final {
  const double* node_x;
  const double* node_p;
  const double* slope;
  const std::uint8_t* interp_ok;
  const std::int32_t* hint;
  std::int64_t bits_min;
  int shift;
  std::int64_t last;
  double front;
  double back;
};

/// 4-wide LUT lookup.  Every arithmetic step mirrors evaluate():
/// identical bit-key, identical upward nudge, identical interpolation
/// parse (mul then add; intrinsics never fuse).  Quads with an
/// out-of-support (or NaN) lane, and lanes landing in a non-linear bin,
/// fall back to the scalar path, so those return the same values too.
__attribute__((target("avx2"))) void lut_evaluate_avx2(const KillProbabilityLut& lut,
                                                       const LutView& v, const double* x,
                                                       double* out, std::size_t n) {
  const __m256d front = _mm256_set1_pd(v.front);
  const __m256d back = _mm256_set1_pd(v.back);
  const __m256i bits_min = _mm256_set1_epi64x(v.bits_min);
  const __m256i last = _mm256_set1_epi64x(v.last);
  const __m256i one = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xs = _mm256_loadu_pd(x + i);
    const __m256d in = _mm256_and_pd(_mm256_cmp_pd(xs, front, _CMP_GE_OQ),
                                     _mm256_cmp_pd(xs, back, _CMP_LE_OQ));
    if (_mm256_movemask_pd(in) != 0xF) {
      for (std::size_t j = i; j < i + 4; ++j) out[j] = lut(units::Micrometers{x[j]});
      continue;
    }
    const __m256i cell =
        _mm256_srli_epi64(_mm256_sub_epi64(_mm256_castpd_si256(xs), bits_min), v.shift);
    __m256i bin = _mm256_cvtepi32_epi64(_mm256_i64gather_epi32(v.hint, cell, 4));
    for (;;) {
      const __m256i bin1 = _mm256_add_epi64(bin, one);
      const __m256d next = _mm256_i64gather_pd(v.node_x, bin1, 8);
      const __m256i need =
          _mm256_and_si256(_mm256_castpd_si256(_mm256_cmp_pd(xs, next, _CMP_GT_OQ)),
                           _mm256_cmpgt_epi64(last, bin));
      if (_mm256_testz_si256(need, need)) break;
      bin = _mm256_sub_epi64(bin, need);  // need lanes are -1: subtracting adds 1
    }
    const __m256d px = _mm256_i64gather_pd(v.node_x, bin, 8);
    const __m256d pp = _mm256_i64gather_pd(v.node_p, bin, 8);
    const __m256d ps = _mm256_i64gather_pd(v.slope, bin, 8);
    _mm256_storeu_pd(out + i, _mm256_add_pd(pp, _mm256_mul_pd(ps, _mm256_sub_pd(xs, px))));
    alignas(32) std::int64_t idx[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), bin);
    for (int j = 0; j < 4; ++j) {
      if (!v.interp_ok[static_cast<std::size_t>(idx[j])]) {
        out[i + static_cast<std::size_t>(j)] =
            lut(units::Micrometers{x[i + static_cast<std::size_t>(j)]});
      }
    }
  }
  for (; i < n; ++i) out[i] = lut(units::Micrometers{x[i]});
}

}  // namespace

#endif  // NANOCOST_X86_SIMD

void KillProbabilityLut::evaluate_batch_at(exec::SimdLevel level, const double* size_um,
                                           double* out, std::size_t n) const noexcept {
#if defined(NANOCOST_X86_SIMD)
  if (level == exec::SimdLevel::kAvx2) {
    const LutView v{node_x_.data(), node_p_.data(),    slope_.data(),
                    interp_ok_.data(), hint_.data(),   bits_min_,
                    hint_shift_,       static_cast<std::int64_t>(slope_.size()) - 1,
                    node_x_.front(),   node_x_.back()};
    lut_evaluate_avx2(*this, v, size_um, out, n);
    return;
  }
#endif
  // The SSE2 tier has no gather; the scalar path (already log-free via
  // the hint table) is the honest fallback for it.
  (void)level;
  for (std::size_t i = 0; i < n; ++i) out[i] = evaluate(size_um[i]);
}

void KillProbabilityLut::evaluate_batch(const double* size_um, double* out,
                                        std::size_t n) const noexcept {
  evaluate_batch_at(exec::simd_level(), size_um, out, n);
}

int KillProbabilityLut::interpolated_bins() const noexcept {
  int n = 0;
  for (const std::uint8_t ok : interp_ok_) n += ok;
  return n;
}

double LotResult::fault_mean() const noexcept {
  std::int64_t total = 0, weighted = 0;
  for (std::size_t k = 0; k < fault_histogram.size(); ++k) {
    total += fault_histogram[k];
    weighted += static_cast<std::int64_t>(k) * fault_histogram[k];
  }
  return total > 0 ? static_cast<double>(weighted) / static_cast<double>(total) : 0.0;
}

double LotResult::fault_variance() const noexcept {
  const double mean = fault_mean();
  std::int64_t total = 0;
  double ss = 0.0;
  for (std::size_t k = 0; k < fault_histogram.size(); ++k) {
    total += fault_histogram[k];
    const double d = static_cast<double>(k) - mean;
    ss += d * d * static_cast<double>(fault_histogram[k]);
  }
  return total > 1 ? ss / static_cast<double>(total - 1) : 0.0;
}

double LotResult::yield_stddev() const noexcept {
  if (wafers.size() < 2) return 0.0;
  double mean = 0.0;
  for (const WaferResult& w : wafers) mean += w.yield();
  mean /= static_cast<double>(wafers.size());
  double ss = 0.0;
  for (const WaferResult& w : wafers) {
    const double d = w.yield() - mean;
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(wafers.size() - 1));
}

FabSimulator::FabSimulator(geometry::WaferSpec wafer, geometry::DieSize die,
                           defect::DefectSizeDistribution sizes,
                           defect::DefectFieldParams field,
                           defect::WireArray representative_pattern)
    : wafer_(wafer), die_(die), sizes_(sizes), field_params_(field), map_(wafer, die),
      kill_(std::move(representative_pattern), die.area()),
      lut_(kill_, sizes.xmin(), sizes.xmax()) {
  if (map_.die_count() == 0) {
    throw std::invalid_argument("die does not fit on the wafer");
  }
}

double FabSimulator::analytic_mean_faults() const {
  return kill_.mean_faults_per_die(field_params_.density_per_cm2, sizes_);
}

void FabSimulator::simulate_wafer(exec::SplitMix64& rng, const defect::DefectField& field,
                                  WaferResult& result, WaferScratch& scratch) const {
  obs::ObsSpan span("fabsim.wafer");
  scratch.faults.assign(static_cast<std::size_t>(map_.die_count()), 0);
  field.sample_wafer(rng, scratch.defects);
  const std::size_t n = scratch.defects.size();
  result.defects = static_cast<std::int64_t>(n);
  result.gross_dies = map_.die_count();
  span.arg("defects", static_cast<std::uint64_t>(result.defects));
  if (obs::metrics_enabled()) {
    static obs::Counter& wafers = obs::counter("fabsim.wafers");
    static obs::Counter& defects = obs::counter("fabsim.defects");
    wafers.add();
    defects.add(static_cast<std::uint64_t>(result.defects));
  }

  // Locate every defect in one pass over the position columns, then
  // compact the on-die survivors so the kill stage runs dense.
  scratch.sites.resize(n);
  map_.site_at_batch(scratch.defects.x_mm.data(), scratch.defects.y_mm.data(),
                     scratch.sites.data(), n);
  scratch.on_die_size.clear();
  scratch.on_die_site.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (scratch.sites[i] < 0) continue;
    scratch.on_die_size.push_back(scratch.defects.size_um[i]);
    scratch.on_die_site.push_back(scratch.sites[i]);
  }
  const std::size_t on_die = scratch.on_die_size.size();
  result.defects_on_dies = static_cast<std::int64_t>(on_die);

  // Batch the kill stage: LUT over the size column, one batched block
  // of kill uniforms, then scatter the kills into per-site counts.
  scratch.kill_p.resize(on_die);
  scratch.kill_u.resize(on_die);
  lut_.evaluate_batch(scratch.on_die_size.data(), scratch.kill_p.data(), on_die);
  exec::uniform_unit_batch(rng, scratch.kill_u.data(), on_die);
  for (std::size_t i = 0; i < on_die; ++i) {
    if (scratch.kill_u[i] < scratch.kill_p[i]) {
      ++scratch.faults[static_cast<std::size_t>(scratch.on_die_site[i])];
    }
  }

  result.good_dies = 0;
  for (const std::int32_t f : scratch.faults) {
    if (f == 0) ++result.good_dies;
    if (static_cast<std::size_t>(f) >= scratch.histogram.size()) {
      scratch.histogram.resize(static_cast<std::size_t>(f) + 1, 0);
    }
    ++scratch.histogram[static_cast<std::size_t>(f)];
  }
}

std::vector<std::int32_t> FabSimulator::snapshot_faults(std::uint64_t seed) const {
  exec::SplitMix64 rng(seed);
  const defect::DefectField field(wafer_, sizes_, field_params_);
  WaferResult wafer_result;
  WaferScratch scratch;
  simulate_wafer(rng, field, wafer_result, scratch);
  return std::move(scratch.faults);
}

namespace {

/// Folds per-chunk histograms into the lot and totals up the wafers.
void finalize_lot(LotResult& lot, std::vector<std::int64_t>&& histogram) {
  if (histogram.size() > lot.fault_histogram.size()) {
    lot.fault_histogram.resize(histogram.size(), 0);
  }
  for (std::size_t k = 0; k < histogram.size(); ++k) {
    lot.fault_histogram[k] += histogram[k];
  }
}

void total_up(LotResult& lot) {
  for (const WaferResult& w : lot.wafers) {
    lot.total_dies += w.gross_dies;
    lot.good_dies += w.good_dies;
  }
}

}  // namespace

LotResult FabSimulator::run(std::int64_t n_wafers, std::uint64_t seed,
                            exec::ThreadPool* pool) const {
  if (n_wafers < 1) {
    throw std::invalid_argument("lot needs at least one wafer");
  }
  obs::ObsSpan span("fabsim.lot");
  span.arg("wafers", static_cast<std::uint64_t>(n_wafers));
  const defect::DefectField field(wafer_, sizes_, field_params_);

  LotResult lot;
  lot.fault_histogram.assign(4, 0);
  lot.wafers.assign(static_cast<std::size_t>(n_wafers), WaferResult{});
  exec::parallel_reduce(
      pool, n_wafers, kWaferGrain, [] { return WaferScratch{}; },
      [&](std::int64_t begin, std::int64_t end, WaferScratch& scratch) {
        for (std::int64_t i = begin; i < end; ++i) {
          robust::inject(kWaferFaultSite, static_cast<std::uint64_t>(i));
          exec::SplitMix64 rng(
              exec::SeedSequence::for_task(seed, static_cast<std::uint64_t>(i)));
          simulate_wafer(rng, field, lot.wafers[static_cast<std::size_t>(i)], scratch);
        }
      },
      [&](WaferScratch&& scratch) { finalize_lot(lot, std::move(scratch.histogram)); });
  total_up(lot);
  return lot;
}

PartialLot FabSimulator::run_partial(std::int64_t n_wafers, std::uint64_t seed,
                                     exec::ThreadPool* pool) const {
  if (n_wafers < 1) {
    throw std::invalid_argument("lot needs at least one wafer");
  }
  obs::ObsSpan span("fabsim.lot_partial");
  span.arg("wafers", static_cast<std::uint64_t>(n_wafers));
  const robust::CancelToken token = robust::current_cancel_token();
  const defect::DefectField field(wafer_, sizes_, field_params_);

  PartialLot out;
  LotResult& lot = out.lot;
  lot.fault_histogram.assign(4, 0);
  lot.wafers.assign(static_cast<std::size_t>(n_wafers), WaferResult{});
  const exec::LoopStatus status = exec::parallel_reduce_cancellable(
      pool, n_wafers, kWaferGrain, token, [] { return WaferScratch{}; },
      [&](std::int64_t begin, std::int64_t end, WaferScratch& scratch) {
        for (std::int64_t i = begin; i < end; ++i) {
          robust::inject(kWaferFaultSite, static_cast<std::uint64_t>(i));
          exec::SplitMix64 rng(
              exec::SeedSequence::for_task(seed, static_cast<std::uint64_t>(i)));
          simulate_wafer(rng, field, lot.wafers[static_cast<std::size_t>(i)], scratch);
        }
      },
      [&](WaferScratch&& scratch) { finalize_lot(lot, std::move(scratch.histogram)); });
  // Wafers at/after the frontier may have run out of order; discard them
  // so the lot is a pure function of the frontier.
  const std::int64_t completed =
      std::min(n_wafers, status.frontier * kWaferGrain);
  for (std::int64_t i = completed; i < n_wafers; ++i) {
    lot.wafers[static_cast<std::size_t>(i)] = WaferResult{};
  }
  total_up(lot);
  out.completed_wafers = completed;
  out.completeness = status.completeness();
  out.frontier_chunks = status.frontier;
  out.cancelled = status.cancelled;
  return out;
}

void FabSimulator::run_units(std::int64_t begin, std::int64_t end, std::uint64_t seed,
                             WaferResult* results,
                             std::vector<std::int64_t>& histogram) const {
  if (begin < 0 || end < begin) {
    throw std::invalid_argument("run_units needs 0 <= begin <= end");
  }
  obs::ObsSpan span("fabsim.units");
  span.arg("wafers", static_cast<std::uint64_t>(end - begin));
  const defect::DefectField field(wafer_, sizes_, field_params_);
  WaferScratch scratch;
  for (std::int64_t i = begin; i < end; ++i) {
    robust::inject(kWaferFaultSite, static_cast<std::uint64_t>(i));
    exec::SplitMix64 rng(exec::SeedSequence::for_task(seed, static_cast<std::uint64_t>(i)));
    simulate_wafer(rng, field, results[i - begin], scratch);
  }
  if (scratch.histogram.size() > histogram.size()) {
    histogram.resize(scratch.histogram.size(), 0);
  }
  for (std::size_t k = 0; k < scratch.histogram.size(); ++k) {
    histogram[k] += scratch.histogram[k];
  }
}

std::vector<LotResult> FabSimulator::run_ramp(const yield::LearningCurve& curve,
                                              std::int64_t total_wafers,
                                              std::int64_t checkpoint_wafers,
                                              std::uint64_t seed,
                                              exec::ThreadPool* pool) const {
  if (total_wafers < 1 || checkpoint_wafers < 1) {
    throw std::invalid_argument("ramp needs positive wafer counts");
  }
  // Per-chunk scratch carries the last defect field so consecutive
  // wafers at an (effectively) unchanged learning-curve density reuse
  // it instead of rebuilding the field per wafer.
  struct RampScratch {
    WaferScratch wafer;
    std::optional<defect::DefectField> field;
    double density = -1.0;
  };

  std::vector<LotResult> checkpoints;
  std::int64_t done = 0;
  while (done < total_wafers) {
    const std::int64_t batch = std::min(checkpoint_wafers, total_wafers - done);
    obs::ObsSpan span("fabsim.lot");
    span.arg("wafers", static_cast<std::uint64_t>(batch));
    LotResult lot;
    lot.fault_histogram.assign(4, 0);
    lot.wafers.assign(static_cast<std::size_t>(batch), WaferResult{});
    exec::parallel_reduce(
        pool, batch, kWaferGrain, [] { return RampScratch{}; },
        [&](std::int64_t begin, std::int64_t end, RampScratch& scratch) {
          for (std::int64_t i = begin; i < end; ++i) {
            const std::int64_t global = done + i;  // cross-checkpoint wafer index
            robust::inject(kWaferFaultSite, static_cast<std::uint64_t>(global));
            const double density = curve.density_at(static_cast<double>(global));
            if (!scratch.field || density != scratch.density) {
              defect::DefectFieldParams params = field_params_;
              params.density_per_cm2 = density;
              scratch.field.emplace(wafer_, sizes_, params);
              scratch.density = density;
            }
            exec::SplitMix64 rng(
                exec::SeedSequence::for_task(seed, static_cast<std::uint64_t>(global)));
            simulate_wafer(rng, *scratch.field, lot.wafers[static_cast<std::size_t>(i)],
                           scratch.wafer);
          }
        },
        [&](RampScratch&& scratch) {
          finalize_lot(lot, std::move(scratch.wafer.histogram));
        });
    total_up(lot);
    checkpoints.push_back(std::move(lot));
    done += batch;
  }
  return checkpoints;
}

}  // namespace nanocost::fabsim
