#include "nanocost/fabsim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nanocost::fabsim {

DieKillModel::DieKillModel(defect::WireArray array, units::SquareCentimeters die_area)
    : array_(std::move(array)), die_area_(die_area) {
  units::require_positive(die_area_, "die area");
}

double DieKillModel::kill_probability(units::Micrometers size) const {
  const double ca = array_.short_critical_area(size).value() +
                    array_.open_critical_area(size).value();
  const double ratio = ca / array_.footprint().value();
  return std::min(ratio, 1.0);
}

namespace {

/// Composite Simpson over [a, b], n even subintervals.
template <typename Fn>
double simpson(Fn&& f, double a, double b, int n) {
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

}  // namespace

double DieKillModel::mean_faults_per_die(double defect_density_per_cm2,
                                         const defect::DefectSizeDistribution& sizes) const {
  units::require_non_negative(defect_density_per_cm2, "defect density");
  // E[kill probability] over the size distribution, integrating the
  // *same* capped per-size probability the simulation samples (the
  // uncapped sum of short+open averages would over-count huge defects
  // that saturate both mechanisms at once).
  const auto integrand = [&](double x) {
    return kill_probability(units::Micrometers{x}) * sizes.pdf(units::Micrometers{x});
  };
  const double a = sizes.xmin().value();
  const double x0 = sizes.peak().value();
  const double b = sizes.xmax().value();
  const double below = simpson(integrand, a, x0, 512);
  const auto log_integrand = [&](double t) {
    const double x = std::exp(t);
    return integrand(x) * x;
  };
  const double above = simpson(log_integrand, std::log(x0), std::log(b), 2048);
  const double expected_kill = below + above;
  return defect_density_per_cm2 * die_area_.value() * expected_kill;
}

double LotResult::fault_mean() const noexcept {
  std::int64_t total = 0, weighted = 0;
  for (std::size_t k = 0; k < fault_histogram.size(); ++k) {
    total += fault_histogram[k];
    weighted += static_cast<std::int64_t>(k) * fault_histogram[k];
  }
  return total > 0 ? static_cast<double>(weighted) / static_cast<double>(total) : 0.0;
}

double LotResult::fault_variance() const noexcept {
  const double mean = fault_mean();
  std::int64_t total = 0;
  double ss = 0.0;
  for (std::size_t k = 0; k < fault_histogram.size(); ++k) {
    total += fault_histogram[k];
    const double d = static_cast<double>(k) - mean;
    ss += d * d * static_cast<double>(fault_histogram[k]);
  }
  return total > 1 ? ss / static_cast<double>(total - 1) : 0.0;
}

double LotResult::yield_stddev() const noexcept {
  if (wafers.size() < 2) return 0.0;
  double mean = 0.0;
  for (const WaferResult& w : wafers) mean += w.yield();
  mean /= static_cast<double>(wafers.size());
  double ss = 0.0;
  for (const WaferResult& w : wafers) {
    const double d = w.yield() - mean;
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(wafers.size() - 1));
}

FabSimulator::FabSimulator(geometry::WaferSpec wafer, geometry::DieSize die,
                           defect::DefectSizeDistribution sizes,
                           defect::DefectFieldParams field,
                           defect::WireArray representative_pattern)
    : wafer_(wafer), die_(die), sizes_(sizes), field_params_(field), map_(wafer, die),
      kill_(std::move(representative_pattern), die.area()) {
  if (map_.die_count() == 0) {
    throw std::invalid_argument("die does not fit on the wafer");
  }
}

double FabSimulator::analytic_mean_faults() const {
  return kill_.mean_faults_per_die(field_params_.density_per_cm2, sizes_);
}

void FabSimulator::simulate_wafer(std::mt19937_64& rng, const defect::DefectField& field,
                                  WaferResult& result,
                                  std::vector<std::int32_t>& faults_scratch,
                                  std::vector<std::int64_t>& histogram) const {
  faults_scratch.assign(static_cast<std::size_t>(map_.die_count()), 0);
  const std::vector<defect::Defect> defects = field.sample_wafer(rng);
  result.defects = static_cast<std::int64_t>(defects.size());
  result.gross_dies = map_.die_count();

  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (const defect::Defect& d : defects) {
    const std::int64_t site = map_.site_at(d.x, d.y);
    if (site < 0) continue;
    ++result.defects_on_dies;
    if (uni(rng) < kill_.kill_probability(d.size)) {
      ++faults_scratch[static_cast<std::size_t>(site)];
    }
  }

  result.good_dies = 0;
  for (const std::int32_t f : faults_scratch) {
    if (f == 0) ++result.good_dies;
    if (static_cast<std::size_t>(f) >= histogram.size()) {
      histogram.resize(static_cast<std::size_t>(f) + 1, 0);
    }
    ++histogram[static_cast<std::size_t>(f)];
  }
}

std::vector<std::int32_t> FabSimulator::snapshot_faults(std::uint64_t seed) const {
  std::mt19937_64 rng(seed);
  const defect::DefectField field(wafer_, sizes_, field_params_);
  WaferResult wafer_result;
  std::vector<std::int32_t> faults;
  std::vector<std::int64_t> histogram(4, 0);
  simulate_wafer(rng, field, wafer_result, faults, histogram);
  return faults;
}

LotResult FabSimulator::run(std::int64_t n_wafers, std::uint64_t seed) const {
  if (n_wafers < 1) {
    throw std::invalid_argument("lot needs at least one wafer");
  }
  std::mt19937_64 rng(seed);
  const defect::DefectField field(wafer_, sizes_, field_params_);

  LotResult lot;
  lot.fault_histogram.assign(4, 0);
  lot.wafers.reserve(static_cast<std::size_t>(n_wafers));
  std::vector<std::int32_t> scratch;
  for (std::int64_t i = 0; i < n_wafers; ++i) {
    WaferResult w;
    simulate_wafer(rng, field, w, scratch, lot.fault_histogram);
    lot.total_dies += w.gross_dies;
    lot.good_dies += w.good_dies;
    lot.wafers.push_back(w);
  }
  return lot;
}

std::vector<LotResult> FabSimulator::run_ramp(const yield::LearningCurve& curve,
                                              std::int64_t total_wafers,
                                              std::int64_t checkpoint_wafers,
                                              std::uint64_t seed) const {
  if (total_wafers < 1 || checkpoint_wafers < 1) {
    throw std::invalid_argument("ramp needs positive wafer counts");
  }
  std::mt19937_64 rng(seed);
  std::vector<LotResult> checkpoints;
  std::vector<std::int32_t> scratch;
  std::int64_t done = 0;
  while (done < total_wafers) {
    const std::int64_t batch = std::min(checkpoint_wafers, total_wafers - done);
    LotResult lot;
    lot.fault_histogram.assign(4, 0);
    lot.wafers.reserve(static_cast<std::size_t>(batch));
    for (std::int64_t i = 0; i < batch; ++i) {
      defect::DefectFieldParams params = field_params_;
      params.density_per_cm2 = curve.density_at(static_cast<double>(done + i));
      const defect::DefectField field(wafer_, sizes_, params);
      WaferResult w;
      simulate_wafer(rng, field, w, scratch, lot.fault_histogram);
      lot.total_dies += w.gross_dies;
      lot.good_dies += w.good_dies;
      lot.wafers.push_back(w);
    }
    checkpoints.push_back(std::move(lot));
    done += batch;
  }
  return checkpoints;
}

}  // namespace nanocost::fabsim
