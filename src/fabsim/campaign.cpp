#include "nanocost/fabsim/campaign.hpp"

#include <algorithm>
#include <stdexcept>

#include "nanocost/exec/seed.hpp"

namespace nanocost::fabsim {

namespace {

// Blob layout (little-endian on every supported target):
//   per wafer: i64 gross_dies, good_dies, defects, defects_on_dies
//   then:      i64 histogram length, i64 histogram[...]
void append_i64(std::vector<std::uint8_t>& blob, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) blob.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
}

std::int64_t read_i64(const std::vector<std::uint8_t>& blob, std::size_t& pos) {
  if (pos + 8 > blob.size()) {
    throw std::runtime_error("fabsim campaign blob truncated");
  }
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) u |= static_cast<std::uint64_t>(blob[pos + i]) << (8 * i);
  pos += 8;
  return static_cast<std::int64_t>(u);
}

}  // namespace

FabLotCampaign::FabLotCampaign(const FabSimulator& sim, std::int64_t n_wafers,
                               std::uint64_t seed)
    : sim_(&sim), n_wafers_(n_wafers), seed_(seed) {
  if (n_wafers < 1) {
    throw std::invalid_argument("fab lot campaign needs at least one wafer");
  }
}

std::uint64_t FabLotCampaign::config_fingerprint() const {
  // The seed plus the simulator geometry reshape every wafer result; the
  // die grid size is a cheap proxy for the full simulator configuration.
  return exec::splitmix64(seed_ ^
                          static_cast<std::uint64_t>(sim_->wafer_map().die_count()));
}

void FabLotCampaign::run_chunk(std::int64_t begin, std::int64_t end,
                               std::vector<std::uint8_t>& blob) const {
  std::vector<WaferResult> wafers(static_cast<std::size_t>(end - begin));
  std::vector<std::int64_t> histogram;
  sim_->run_units(begin, end, seed_, wafers.data(), histogram);
  blob.reserve(static_cast<std::size_t>(end - begin + 1) * 32);
  for (const WaferResult& w : wafers) {
    append_i64(blob, w.gross_dies);
    append_i64(blob, w.good_dies);
    append_i64(blob, w.defects);
    append_i64(blob, w.defects_on_dies);
  }
  append_i64(blob, static_cast<std::int64_t>(histogram.size()));
  for (const std::int64_t h : histogram) append_i64(blob, h);
}

PartialLot FabLotCampaign::assemble(const robust::CampaignResult& result) const {
  PartialLot out;
  out.lot.fault_histogram.assign(4, 0);
  out.lot.wafers.assign(static_cast<std::size_t>(n_wafers_), WaferResult{});
  for (std::size_t c = 0; c < result.chunks.size(); ++c) {
    const auto& blob = result.chunks[c];
    if (blob.empty()) continue;
    const std::int64_t begin = static_cast<std::int64_t>(c) * kGrain;
    const std::int64_t end = std::min(begin + kGrain, n_wafers_);
    std::size_t pos = 0;
    for (std::int64_t i = begin; i < end; ++i) {
      WaferResult& w = out.lot.wafers[static_cast<std::size_t>(i)];
      w.gross_dies = read_i64(blob, pos);
      w.good_dies = read_i64(blob, pos);
      w.defects = read_i64(blob, pos);
      w.defects_on_dies = read_i64(blob, pos);
      out.lot.total_dies += w.gross_dies;
      out.lot.good_dies += w.good_dies;
      ++out.completed_wafers;
    }
    const std::int64_t hist_len = read_i64(blob, pos);
    if (hist_len > static_cast<std::int64_t>(out.lot.fault_histogram.size())) {
      out.lot.fault_histogram.resize(static_cast<std::size_t>(hist_len), 0);
    }
    for (std::int64_t k = 0; k < hist_len; ++k) {
      out.lot.fault_histogram[static_cast<std::size_t>(k)] += read_i64(blob, pos);
    }
  }
  out.completeness = result.completeness();
  out.failed_wafers = result.failed_units();
  out.cancelled = result.expired;
  for (const auto& blob : result.chunks) {
    if (!blob.empty()) {
      ++out.frontier_chunks;
    } else {
      break;
    }
  }
  return out;
}

}  // namespace nanocost::fabsim
