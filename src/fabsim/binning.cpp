#include "nanocost/fabsim/binning.hpp"

#include <algorithm>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::fabsim {

BinningResult simulate_binning(const geometry::WaferMap& map, const BinningParams& params,
                               units::Probability functional_yield, std::int64_t n_wafers,
                               std::uint64_t seed) {
  if (map.sites().empty()) {
    throw std::invalid_argument("binning needs a non-empty wafer map");
  }
  if (n_wafers < 1) {
    throw std::invalid_argument("binning needs at least one wafer");
  }
  if (params.bin_floors_mhz.empty() ||
      params.bin_floors_mhz.size() != params.bin_prices.size()) {
    throw std::invalid_argument("bin floors and prices must be non-empty and same-sized");
  }
  if (!std::is_sorted(params.bin_floors_mhz.rbegin(), params.bin_floors_mhz.rend())) {
    throw std::invalid_argument("bin floors must be descending");
  }
  units::require_positive(params.nominal_frequency_mhz, "nominal frequency");
  units::require_non_negative(params.sigma_random, "random sigma");
  units::require_non_negative(params.radial_slowdown, "radial slowdown");

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);

  BinningResult result;
  result.bin_counts.assign(params.bin_floors_mhz.size() + 1, 0);  // + scrap
  const double wafer_radius = map.wafer().radius().value();
  double freq_sum = 0.0;

  for (std::int64_t w = 0; w < n_wafers; ++w) {
    for (const geometry::DieSite& site : map.sites()) {
      if (uni(rng) >= functional_yield.value()) continue;  // defect loss
      ++result.functional_dies;
      const double u = site.radial_distance().value() / wafer_radius;
      const double systematic = 1.0 - params.radial_slowdown * u * u;
      const double random = 1.0 + params.sigma_random * gauss(rng);
      const double freq = params.nominal_frequency_mhz * systematic * random;
      freq_sum += freq;

      bool sold = false;
      for (std::size_t b = 0; b < params.bin_floors_mhz.size(); ++b) {
        if (freq >= params.bin_floors_mhz[b]) {
          ++result.bin_counts[b];
          result.revenue += params.bin_prices[b];
          sold = true;
          break;
        }
      }
      if (!sold) ++result.bin_counts.back();
    }
  }
  result.mean_frequency_mhz =
      result.functional_dies > 0 ? freq_sum / static_cast<double>(result.functional_dies)
                                 : 0.0;
  return result;
}

}  // namespace nanocost::fabsim
