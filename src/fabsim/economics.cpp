#include "nanocost/fabsim/economics.hpp"

#include <stdexcept>

#include "nanocost/robust/finite_guard.hpp"
#include "nanocost/units/quantity.hpp"

namespace nanocost::fabsim {

RunEconomics price_lot(const LotResult& lot, const cost::WaferCostModel& wafer_model,
                       double transistors_per_die, double run_wafers) {
  units::require_positive(transistors_per_die, "transistors per die");
  units::require_non_negative(run_wafers, "run wafers");
  if (lot.wafers.empty()) {
    throw std::invalid_argument("cannot price an empty lot");
  }
  // fabsim -> economics boundary: nothing non-finite from the simulated
  // lot or the wafer cost model may leak into money figures.
  const robust::FiniteGuard guard("fabsim.economics");
  RunEconomics out;
  const double n_wafers = static_cast<double>(lot.wafers.size());
  out.wafer_cost = units::Money{guard(
      wafer_model.wafer_cost(run_wafers > 0.0 ? run_wafers : n_wafers).value())};
  out.total_cost = out.wafer_cost * n_wafers;
  out.measured_yield = guard(lot.yield());
  out.good_dies = lot.good_dies;
  if (lot.good_dies > 0) {
    out.cost_per_good_die = out.total_cost / static_cast<double>(lot.good_dies);
    out.cost_per_good_transistor = out.cost_per_good_die / transistors_per_die;
    guard(out.cost_per_good_transistor.value());
  }
  return out;
}

}  // namespace nanocost::fabsim
