#include "nanocost/floorplan/slicing.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace nanocost::floorplan {

double FloorplanResult::block_area() const noexcept {
  double sum = 0.0;
  for (const PlacedBlock& b : blocks) sum += b.width * b.height;
  return sum;
}

double FloorplanResult::dead_space() const noexcept {
  const double box = area();
  return box > 0.0 ? 1.0 - block_area() / box : 0.0;
}

namespace {

constexpr int kHorizontalCut = -1;  // stack top/bottom: w = max, h = sum
constexpr int kVerticalCut = -2;    // place left/right: w = sum, h = max

/// One realizable shape of a subtree, with back-pointers to the child
/// shapes that produced it.
struct Shape {
  double w = 0.0;
  double h = 0.0;
  int left = -1;   // child shape indices (for internal nodes)
  int right = -1;
};

/// Keeps only Pareto-optimal shapes (no other shape with w <= and h <=),
/// sorted by ascending width.  Caps the list to bound node sizes.
std::vector<Shape> prune(std::vector<Shape> shapes, std::size_t cap = 24) {
  std::sort(shapes.begin(), shapes.end(), [](const Shape& a, const Shape& b) {
    if (a.w != b.w) return a.w < b.w;
    return a.h < b.h;
  });
  std::vector<Shape> out;
  for (const Shape& s : shapes) {
    if (out.empty() || s.h < out.back().h - 1e-12) {
      out.push_back(s);
    }
  }
  if (out.size() > cap) {
    // Thin uniformly, keeping the extremes.
    std::vector<Shape> thinned;
    const double step = static_cast<double>(out.size() - 1) / (cap - 1);
    for (std::size_t i = 0; i < cap; ++i) {
      thinned.push_back(out[static_cast<std::size_t>(std::llround(i * step))]);
    }
    out = std::move(thinned);
  }
  return out;
}

/// Combines child shape lists at a cut node.
std::vector<Shape> combine(const std::vector<Shape>& left, const std::vector<Shape>& right,
                           int op) {
  std::vector<Shape> out;
  out.reserve(left.size() * right.size());
  for (std::size_t i = 0; i < left.size(); ++i) {
    for (std::size_t j = 0; j < right.size(); ++j) {
      Shape s;
      if (op == kVerticalCut) {
        s.w = left[i].w + right[j].w;
        s.h = std::max(left[i].h, right[j].h);
      } else {
        s.w = std::max(left[i].w, right[j].w);
        s.h = left[i].h + right[j].h;
      }
      s.left = static_cast<int>(i);
      s.right = static_cast<int>(j);
      out.push_back(s);
    }
  }
  return prune(std::move(out));
}

/// Evaluation tree node (rebuilt per evaluation; small n keeps it cheap).
struct Node {
  int op = 0;        // >= 0: leaf block index; kHorizontalCut / kVerticalCut
  int left = -1;     // node indices
  int right = -1;
  std::vector<Shape> shapes;
};

struct Evaluation {
  double area = 1e300;
  std::vector<Node> nodes;
  int root = -1;
  int best_shape = -1;
};

Evaluation evaluate(const std::vector<int>& expr,
                    const std::vector<std::vector<Shape>>& leaf_shapes) {
  Evaluation eval;
  std::vector<int> stack;
  for (const int token : expr) {
    Node node;
    node.op = token;
    if (token >= 0) {
      node.shapes = leaf_shapes[static_cast<std::size_t>(token)];
    } else {
      const int right = stack.back();
      stack.pop_back();
      const int left = stack.back();
      stack.pop_back();
      node.left = left;
      node.right = right;
      node.shapes = combine(eval.nodes[static_cast<std::size_t>(left)].shapes,
                            eval.nodes[static_cast<std::size_t>(right)].shapes, token);
    }
    eval.nodes.push_back(std::move(node));
    stack.push_back(static_cast<int>(eval.nodes.size()) - 1);
  }
  eval.root = stack.back();
  const auto& root_shapes = eval.nodes[static_cast<std::size_t>(eval.root)].shapes;
  for (std::size_t i = 0; i < root_shapes.size(); ++i) {
    const double a = root_shapes[i].w * root_shapes[i].h;
    if (a < eval.area) {
      eval.area = a;
      eval.best_shape = static_cast<int>(i);
    }
  }
  return eval;
}

/// Validity of a Polish expression: operand/operator balance.
bool is_valid(const std::vector<int>& expr, std::size_t n_blocks) {
  int depth = 0;
  std::size_t operands = 0;
  for (const int token : expr) {
    if (token >= 0) {
      ++depth;
      ++operands;
    } else {
      depth -= 1;  // pops two, pushes one
      if (depth < 1) return false;
    }
  }
  return depth == 1 && operands == n_blocks;
}

void assign_positions(const Evaluation& eval, int node_idx, int shape_idx, double x,
                      double y, const std::vector<Block>& blocks,
                      std::vector<PlacedBlock>& out) {
  const Node& node = eval.nodes[static_cast<std::size_t>(node_idx)];
  const Shape& shape = node.shapes[static_cast<std::size_t>(shape_idx)];
  if (node.op >= 0) {
    PlacedBlock placed;
    placed.name = blocks[static_cast<std::size_t>(node.op)].name;
    placed.x = x;
    placed.y = y;
    placed.width = shape.w;
    placed.height = shape.h;
    out.push_back(placed);
    return;
  }
  const Node& left = eval.nodes[static_cast<std::size_t>(node.left)];
  const Shape& left_shape = left.shapes[static_cast<std::size_t>(shape.left)];
  assign_positions(eval, node.left, shape.left, x, y, blocks, out);
  if (node.op == kVerticalCut) {
    assign_positions(eval, node.right, shape.right, x + left_shape.w, y, blocks, out);
  } else {
    assign_positions(eval, node.right, shape.right, x, y + left_shape.h, blocks, out);
  }
}

}  // namespace

FloorplanResult floorplan(const std::vector<Block>& blocks, const FloorplanParams& params) {
  if (blocks.empty()) {
    throw std::invalid_argument("floorplan needs at least one block");
  }
  if (!(params.cooling > 0.0 && params.cooling < 1.0)) {
    throw std::invalid_argument("cooling factor must be in (0, 1)");
  }
  // Leaf shape options from each block's aspect range.
  std::vector<std::vector<Shape>> leaf_shapes;
  for (const Block& b : blocks) {
    if (!(b.area > 0.0) || !(b.min_aspect > 0.0) || !(b.max_aspect >= b.min_aspect) ||
        b.shape_options < 1) {
      throw std::invalid_argument("degenerate block '" + b.name + "'");
    }
    std::vector<Shape> shapes;
    for (int i = 0; i < b.shape_options; ++i) {
      const double t = b.shape_options == 1
                           ? 0.5
                           : static_cast<double>(i) / (b.shape_options - 1);
      const double aspect = b.min_aspect * std::pow(b.max_aspect / b.min_aspect, t);
      Shape s;
      s.w = std::sqrt(b.area * aspect);
      s.h = b.area / s.w;
      shapes.push_back(s);
    }
    leaf_shapes.push_back(prune(std::move(shapes)));
  }

  // Initial expression: ((...(b0 b1 op) b2 op) ... ), alternating cuts.
  std::vector<int> expr;
  expr.push_back(0);
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    expr.push_back(static_cast<int>(i));
    expr.push_back(i % 2 == 0 ? kHorizontalCut : kVerticalCut);
  }

  Evaluation current = evaluate(expr, leaf_shapes);
  std::vector<int> best_expr = expr;
  double best_area = current.area;

  if (blocks.size() > 1) {
    std::mt19937_64 rng(params.seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> pick(0, expr.size() - 1);

    double temperature = params.initial_temperature > 0.0
                             ? params.initial_temperature
                             : best_area * 0.05;
    const double stop = temperature * params.stop_temperature_fraction;
    double current_area = current.area;

    while (temperature > stop) {
      for (int m = 0; m < params.moves_per_temperature; ++m) {
        std::vector<int> candidate = expr;
        const double kind = uni(rng);
        if (kind < 0.4) {
          // M1: swap two random operands.
          std::size_t i = pick(rng), j = pick(rng);
          while (candidate[i] < 0) i = pick(rng);
          while (candidate[j] < 0 || j == i) j = pick(rng);
          std::swap(candidate[i], candidate[j]);
        } else if (kind < 0.7) {
          // M2: complement a random operator.
          std::size_t i = pick(rng);
          bool found = false;
          for (std::size_t tries = 0; tries < candidate.size(); ++tries) {
            if (candidate[i] < 0) {
              found = true;
              break;
            }
            i = (i + 1) % candidate.size();
          }
          if (!found) continue;
          candidate[i] =
              candidate[i] == kHorizontalCut ? kVerticalCut : kHorizontalCut;
        } else {
          // M3: swap adjacent operand/operator if still valid.
          const std::size_t i = pick(rng);
          if (i + 1 >= candidate.size()) continue;
          std::swap(candidate[i], candidate[i + 1]);
          if (!is_valid(candidate, blocks.size())) continue;
        }

        const Evaluation trial = evaluate(candidate, leaf_shapes);
        const double delta = trial.area - current_area;
        if (delta <= 0.0 || uni(rng) < std::exp(-delta / temperature)) {
          expr = std::move(candidate);
          current_area = trial.area;
          if (current_area < best_area) {
            best_area = current_area;
            best_expr = expr;
          }
        }
      }
      temperature *= params.cooling;
    }
  }

  // Final evaluation and position assignment from the best expression.
  const Evaluation final_eval = evaluate(best_expr, leaf_shapes);
  const Shape& root_shape =
      final_eval.nodes[static_cast<std::size_t>(final_eval.root)]
          .shapes[static_cast<std::size_t>(final_eval.best_shape)];
  FloorplanResult result;
  result.width = root_shape.w;
  result.height = root_shape.h;
  assign_positions(final_eval, final_eval.root, final_eval.best_shape, 0.0, 0.0, blocks,
                   result.blocks);
  return result;
}

}  // namespace nanocost::floorplan
