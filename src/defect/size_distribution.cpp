#include "nanocost/defect/size_distribution.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/exec/rng_batch.hpp"
#include "nanocost/units/quantity.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
#define NANOCOST_X86_SIMD 1
#include <immintrin.h>
#endif

namespace nanocost::defect {

// Unnormalized density, continuous at the peak x0:
//   g(x) = x / x0^2            xmin <= x < x0   (g(x0-) = 1/x0)
//   g(x) = x0^(q-1) / x^q      x0  <= x <= xmax (g(x0+) = 1/x0)

DefectSizeDistribution::DefectSizeDistribution(units::Micrometers xmin, units::Micrometers peak,
                                               units::Micrometers xmax, double q)
    : xmin_(units::require_positive(xmin, "defect size xmin")),
      peak_(units::require_positive(peak, "defect size peak")),
      xmax_(units::require_positive(xmax, "defect size xmax")),
      q_(q) {
  if (!(xmin_ < peak_ && peak_ < xmax_)) {
    throw std::domain_error("defect size distribution requires xmin < peak < xmax");
  }
  if (!(q_ > 1.0)) {
    throw std::domain_error("defect size tail exponent q must be > 1");
  }
  const double x0 = peak_.value();
  const double a = xmin_.value();
  const double b = xmax_.value();
  below_mass_ = (x0 * x0 - a * a) / (2.0 * x0 * x0);
  const double above_mass =
      std::pow(x0, q_ - 1.0) * (std::pow(x0, 1.0 - q_) - std::pow(b, 1.0 - q_)) / (q_ - 1.0);
  total_mass_ = below_mass_ + above_mass;
  norm_ = 1.0 / total_mass_;
}

DefectSizeDistribution DefectSizeDistribution::for_feature_size(units::Micrometers lambda) {
  units::require_positive(lambda, "feature size");
  return DefectSizeDistribution{lambda / 2.0, lambda, lambda * 100.0, 3.0};
}

double DefectSizeDistribution::unnormalized_branch(double x) const noexcept {
  const double x0 = peak_.value();
  if (x < x0) return x / (x0 * x0);
  return std::pow(x0, q_ - 1.0) / std::pow(x, q_);
}

double DefectSizeDistribution::unnormalized_cdf(double x) const noexcept {
  const double x0 = peak_.value();
  const double a = xmin_.value();
  if (x <= a) return 0.0;
  if (x < x0) {
    return (x * x - a * a) / (2.0 * x0 * x0);
  }
  const double above =
      std::pow(x0, q_ - 1.0) * (std::pow(x0, 1.0 - q_) - std::pow(x, 1.0 - q_)) / (q_ - 1.0);
  return below_mass_ + above;
}

double DefectSizeDistribution::pdf(units::Micrometers x) const noexcept {
  const double v = x.value();
  if (v < xmin_.value() || v > xmax_.value()) return 0.0;
  return norm_ * unnormalized_branch(v);
}

double DefectSizeDistribution::cdf(units::Micrometers x) const noexcept {
  const double v = x.value();
  if (v >= xmax_.value()) return 1.0;
  return norm_ * unnormalized_cdf(v);
}

units::Micrometers DefectSizeDistribution::mean() const noexcept {
  const double x0 = peak_.value();
  const double a = xmin_.value();
  const double b = xmax_.value();
  const double below = (x0 * x0 * x0 - a * a * a) / (3.0 * x0 * x0);
  double above;
  if (q_ == 2.0) {
    above = x0 * std::log(b / x0);
  } else {
    above = std::pow(x0, q_ - 1.0) * (std::pow(b, 2.0 - q_) - std::pow(x0, 2.0 - q_)) /
            (2.0 - q_);
  }
  return units::Micrometers{norm_ * (below + above)};
}

units::Micrometers DefectSizeDistribution::sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double m = uni(rng) * total_mass_;
  const double x0 = peak_.value();
  const double a = xmin_.value();
  if (m <= below_mass_) {
    // Solve (x^2 - a^2) / (2 x0^2) = m.
    return units::Micrometers{std::sqrt(a * a + 2.0 * x0 * x0 * m)};
  }
  // Solve x0^(q-1) (x0^(1-q) - x^(1-q)) / (q-1) = m - below_mass_.
  const double rem = m - below_mass_;
  const double t = std::pow(x0, 1.0 - q_) - rem * (q_ - 1.0) / std::pow(x0, q_ - 1.0);
  double x = std::pow(t, 1.0 / (1.0 - q_));
  if (x > xmax_.value()) x = xmax_.value();  // numerical guard at the tail end
  return units::Micrometers{x};
}

namespace {

/// Precomputed inverse-CDF constants shared by the batch paths: with
///   t(m) = x0^(1-q) - (m - below_mass) * (q-1) / x0^(q-1)
/// the tail inverse is x = t^(1/(1-q)), which for the classic q = 3
/// collapses to x = 1/sqrt(t) -- sqrt and divide, both IEEE-exact.
struct TailConstants {
  double x0 = 0.0, a = 0.0, xmax = 0.0;
  double below_mass = 0.0, total_mass = 0.0;
  double c1 = 0.0;  ///< x0^(1-q)
  double c2 = 0.0;  ///< (q-1) / x0^(q-1)
};

/// One sample from one uniform; the scalar reference the vector lanes
/// must match bitwise (q == 3 form).
inline double invert_size_q3(const TailConstants& k, double u) {
  const double m = u * k.total_mass;
  if (m <= k.below_mass) {
    return std::sqrt(k.a * k.a + 2.0 * k.x0 * k.x0 * m);
  }
  const double t = k.c1 - (m - k.below_mass) * k.c2;
  const double x = 1.0 / std::sqrt(t);
  return x > k.xmax ? k.xmax : x;
}

#if defined(NANOCOST_X86_SIMD)

/// 4-wide q = 3 inversion: both branches evaluate (sqrt of a negative
/// in a masked-off lane is a quiet NaN, discarded by the blend) and
/// every operation is IEEE-exact, so each lane equals invert_size_q3.
__attribute__((target("avx2"))) void invert_size_q3_avx2(const TailConstants& k,
                                                         const double* u, double* out,
                                                         std::size_t n) {
  const __m256d total = _mm256_set1_pd(k.total_mass);
  const __m256d below = _mm256_set1_pd(k.below_mass);
  const __m256d a2 = _mm256_set1_pd(k.a * k.a);
  const __m256d two_x02 = _mm256_set1_pd(2.0 * k.x0 * k.x0);
  const __m256d c1 = _mm256_set1_pd(k.c1);
  const __m256d c2 = _mm256_set1_pd(k.c2);
  const __m256d xmax = _mm256_set1_pd(k.xmax);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d m = _mm256_mul_pd(_mm256_loadu_pd(u + i), total);
    const __m256d rising =
        _mm256_sqrt_pd(_mm256_add_pd(a2, _mm256_mul_pd(two_x02, m)));
    const __m256d t =
        _mm256_sub_pd(c1, _mm256_mul_pd(_mm256_sub_pd(m, below), c2));
    __m256d tail = _mm256_div_pd(one, _mm256_sqrt_pd(t));
    // x > xmax ? xmax : x, spelled as a blend so the NaN semantics of
    // the scalar comparison carry over exactly.
    const __m256d over = _mm256_cmp_pd(tail, xmax, _CMP_GT_OQ);
    tail = _mm256_blendv_pd(tail, xmax, over);
    const __m256d use_rising = _mm256_cmp_pd(m, below, _CMP_LE_OQ);
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(tail, rising, use_rising));
  }
  for (; i < n; ++i) out[i] = invert_size_q3(k, u[i]);
}

__attribute__((target("sse2"))) void invert_size_q3_sse2(const TailConstants& k,
                                                         const double* u, double* out,
                                                         std::size_t n) {
  const __m128d total = _mm_set1_pd(k.total_mass);
  const __m128d below = _mm_set1_pd(k.below_mass);
  const __m128d a2 = _mm_set1_pd(k.a * k.a);
  const __m128d two_x02 = _mm_set1_pd(2.0 * k.x0 * k.x0);
  const __m128d c1 = _mm_set1_pd(k.c1);
  const __m128d c2 = _mm_set1_pd(k.c2);
  const __m128d xmax = _mm_set1_pd(k.xmax);
  const __m128d one = _mm_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d m = _mm_mul_pd(_mm_loadu_pd(u + i), total);
    const __m128d rising = _mm_sqrt_pd(_mm_add_pd(a2, _mm_mul_pd(two_x02, m)));
    const __m128d t = _mm_sub_pd(c1, _mm_mul_pd(_mm_sub_pd(m, below), c2));
    __m128d tail = _mm_div_pd(one, _mm_sqrt_pd(t));
    const __m128d over = _mm_cmpgt_pd(tail, xmax);
    tail = _mm_or_pd(_mm_and_pd(over, xmax), _mm_andnot_pd(over, tail));
    const __m128d use_rising = _mm_cmple_pd(m, below);
    _mm_storeu_pd(out + i,
                  _mm_or_pd(_mm_and_pd(use_rising, rising), _mm_andnot_pd(use_rising, tail)));
  }
  for (; i < n; ++i) out[i] = invert_size_q3(k, u[i]);
}

#endif  // NANOCOST_X86_SIMD

}  // namespace

void DefectSizeDistribution::sample_batch_at(exec::SimdLevel level, exec::SplitMix64& rng,
                                             double* out, std::size_t n) const {
  // The uniforms land in the output array and are transformed in place
  // (each size depends only on its own uniform).
  exec::uniform_unit_batch_at(level, rng, out, n);

  TailConstants k;
  k.x0 = peak_.value();
  k.a = xmin_.value();
  k.xmax = xmax_.value();
  k.below_mass = below_mass_;
  k.total_mass = total_mass_;
  k.c1 = std::pow(k.x0, 1.0 - q_);
  k.c2 = (q_ - 1.0) / std::pow(k.x0, q_ - 1.0);

  if (q_ == 3.0) {
#if defined(NANOCOST_X86_SIMD)
    if (level == exec::SimdLevel::kAvx2) return invert_size_q3_avx2(k, out, out, n);
    if (level == exec::SimdLevel::kSse2) return invert_size_q3_sse2(k, out, out, n);
#endif
    for (std::size_t i = 0; i < n; ++i) out[i] = invert_size_q3(k, out[i]);
    return;
  }
  // General q: the tail needs a data-dependent pow, which stays scalar
  // libm at every level.
  const double inv_exp = 1.0 / (1.0 - q_);
  for (std::size_t i = 0; i < n; ++i) {
    const double m = out[i] * k.total_mass;
    if (m <= k.below_mass) {
      out[i] = std::sqrt(k.a * k.a + 2.0 * k.x0 * k.x0 * m);
      continue;
    }
    const double t = k.c1 - (m - k.below_mass) * k.c2;
    const double x = std::pow(t, inv_exp);
    out[i] = x > k.xmax ? k.xmax : x;
  }
}

void DefectSizeDistribution::sample_batch(exec::SplitMix64& rng, double* out,
                                          std::size_t n) const {
  sample_batch_at(exec::simd_level(), rng, out, n);
}

}  // namespace nanocost::defect
