#include "nanocost/defect/size_distribution.hpp"

#include <cmath>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::defect {

// Unnormalized density, continuous at the peak x0:
//   g(x) = x / x0^2            xmin <= x < x0   (g(x0-) = 1/x0)
//   g(x) = x0^(q-1) / x^q      x0  <= x <= xmax (g(x0+) = 1/x0)

DefectSizeDistribution::DefectSizeDistribution(units::Micrometers xmin, units::Micrometers peak,
                                               units::Micrometers xmax, double q)
    : xmin_(units::require_positive(xmin, "defect size xmin")),
      peak_(units::require_positive(peak, "defect size peak")),
      xmax_(units::require_positive(xmax, "defect size xmax")),
      q_(q) {
  if (!(xmin_ < peak_ && peak_ < xmax_)) {
    throw std::domain_error("defect size distribution requires xmin < peak < xmax");
  }
  if (!(q_ > 1.0)) {
    throw std::domain_error("defect size tail exponent q must be > 1");
  }
  const double x0 = peak_.value();
  const double a = xmin_.value();
  const double b = xmax_.value();
  below_mass_ = (x0 * x0 - a * a) / (2.0 * x0 * x0);
  const double above_mass =
      std::pow(x0, q_ - 1.0) * (std::pow(x0, 1.0 - q_) - std::pow(b, 1.0 - q_)) / (q_ - 1.0);
  total_mass_ = below_mass_ + above_mass;
  norm_ = 1.0 / total_mass_;
}

DefectSizeDistribution DefectSizeDistribution::for_feature_size(units::Micrometers lambda) {
  units::require_positive(lambda, "feature size");
  return DefectSizeDistribution{lambda / 2.0, lambda, lambda * 100.0, 3.0};
}

double DefectSizeDistribution::unnormalized_branch(double x) const noexcept {
  const double x0 = peak_.value();
  if (x < x0) return x / (x0 * x0);
  return std::pow(x0, q_ - 1.0) / std::pow(x, q_);
}

double DefectSizeDistribution::unnormalized_cdf(double x) const noexcept {
  const double x0 = peak_.value();
  const double a = xmin_.value();
  if (x <= a) return 0.0;
  if (x < x0) {
    return (x * x - a * a) / (2.0 * x0 * x0);
  }
  const double above =
      std::pow(x0, q_ - 1.0) * (std::pow(x0, 1.0 - q_) - std::pow(x, 1.0 - q_)) / (q_ - 1.0);
  return below_mass_ + above;
}

double DefectSizeDistribution::pdf(units::Micrometers x) const noexcept {
  const double v = x.value();
  if (v < xmin_.value() || v > xmax_.value()) return 0.0;
  return norm_ * unnormalized_branch(v);
}

double DefectSizeDistribution::cdf(units::Micrometers x) const noexcept {
  const double v = x.value();
  if (v >= xmax_.value()) return 1.0;
  return norm_ * unnormalized_cdf(v);
}

units::Micrometers DefectSizeDistribution::mean() const noexcept {
  const double x0 = peak_.value();
  const double a = xmin_.value();
  const double b = xmax_.value();
  const double below = (x0 * x0 * x0 - a * a * a) / (3.0 * x0 * x0);
  double above;
  if (q_ == 2.0) {
    above = x0 * std::log(b / x0);
  } else {
    above = std::pow(x0, q_ - 1.0) * (std::pow(b, 2.0 - q_) - std::pow(x0, 2.0 - q_)) /
            (2.0 - q_);
  }
  return units::Micrometers{norm_ * (below + above)};
}

units::Micrometers DefectSizeDistribution::sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double m = uni(rng) * total_mass_;
  const double x0 = peak_.value();
  const double a = xmin_.value();
  if (m <= below_mass_) {
    // Solve (x^2 - a^2) / (2 x0^2) = m.
    return units::Micrometers{std::sqrt(a * a + 2.0 * x0 * x0 * m)};
  }
  // Solve x0^(q-1) (x0^(1-q) - x^(1-q)) / (q-1) = m - below_mass_.
  const double rem = m - below_mass_;
  const double t = std::pow(x0, 1.0 - q_) - rem * (q_ - 1.0) / std::pow(x0, q_ - 1.0);
  double x = std::pow(t, 1.0 / (1.0 - q_));
  if (x > xmax_.value()) x = xmax_.value();  // numerical guard at the tail end
  return units::Micrometers{x};
}

}  // namespace nanocost::defect
