#include "nanocost/defect/layout_critical_area.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "nanocost/units/quantity.hpp"

namespace nanocost::defect {

using layout::Coord;
using layout::Rect;

SizeExcessIntegral::SizeExcessIntegral(const DefectSizeDistribution& dist, int table_size) {
  if (table_size < 8) {
    throw std::invalid_argument("excess integral table too small");
  }
  xmax_ = dist.xmax().value();
  step_ = xmax_ / (table_size - 1);
  table_.resize(static_cast<std::size_t>(table_size));
  // E[(X - g)+] = integral_g^xmax (1 - F(x)) dx; build by backward
  // trapezoid accumulation of the survival function.
  std::vector<double> survival(static_cast<std::size_t>(table_size));
  for (int i = 0; i < table_size; ++i) {
    survival[static_cast<std::size_t>(i)] =
        1.0 - dist.cdf(units::Micrometers{i * step_});
  }
  table_[static_cast<std::size_t>(table_size - 1)] = 0.0;
  for (int i = table_size - 2; i >= 0; --i) {
    table_[static_cast<std::size_t>(i)] =
        table_[static_cast<std::size_t>(i + 1)] +
        0.5 * (survival[static_cast<std::size_t>(i)] +
               survival[static_cast<std::size_t>(i + 1)]) *
            step_;
  }
}

double SizeExcessIntegral::excess(double gap_um) const {
  if (gap_um <= 0.0) return table_[0];  // callers guarantee gap >= 0
  if (gap_um >= xmax_) return 0.0;
  const double idx = gap_um / step_;
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, table_.size() - 1);
  const double t = idx - static_cast<double>(lo);
  return table_[lo] * (1.0 - t) + table_[hi] * t;
}

double SizeExcessIntegral::operator()(double gap_um, double cap_um) const {
  units::require_non_negative(gap_um, "gap");
  units::require_non_negative(cap_um, "cap");
  if (cap_um == 0.0) return 0.0;
  // E[min((X-g)+, cap)] = E[(X-g)+] - E[(X-g-cap)+].
  return excess(gap_um) - excess(gap_um + cap_um);
}

namespace {

/// Spatial hash over one layer's rectangles (indices into a vector).
class NeighborIndex final {
 public:
  NeighborIndex(const std::vector<Rect>& rects, Coord tile) : rects_(rects),
                                                              tile_(std::max<Coord>(tile, 1)) {
    for (std::size_t i = 0; i < rects_.size(); ++i) {
      visit(rects_[i], 0, [&](std::int64_t key) { buckets_[key].push_back(i); });
    }
  }

  template <typename Fn>
  void neighbors_above(std::size_t i, Coord margin, Fn&& fn) const {
    visit(rects_[i], margin, [&](std::int64_t key) {
      const auto it = buckets_.find(key);
      if (it == buckets_.end()) return;
      for (const std::size_t j : it->second) {
        if (j > i) fn(j);
      }
    });
  }

 private:
  template <typename Fn>
  void visit(const Rect& r, Coord margin, Fn&& fn) const {
    const std::int64_t tx0 = (r.x0 - margin) / tile_ - 1;
    const std::int64_t tx1 = (r.x1 + margin) / tile_ + 1;
    const std::int64_t ty0 = (r.y0 - margin) / tile_ - 1;
    const std::int64_t ty1 = (r.y1 + margin) / tile_ + 1;
    for (std::int64_t ty = ty0; ty <= ty1; ++ty) {
      for (std::int64_t tx = tx0; tx <= tx1; ++tx) {
        fn(ty * 1000003 + tx);
      }
    }
  }

  const std::vector<Rect>& rects_;
  Coord tile_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> buckets_;
};

}  // namespace

LayoutCriticalArea extract_critical_area(const layout::Design& design,
                                         const DefectSizeDistribution& dist,
                                         double interaction_lambda) {
  units::require_positive(interaction_lambda, "interaction range");
  const SizeExcessIntegral expected_excess(dist);
  const double unit_um =
      design.lambda().value() / static_cast<double>(layout::kUnitsPerLambda);
  const auto margin_units = static_cast<Coord>(
      std::ceil(interaction_lambda * layout::kUnitsPerLambda));

  // Flatten per layer.
  std::array<std::vector<Rect>, layout::kLayerCount> by_layer;
  layout::for_each_flat_rect(design.top(), layout::Transform{}, [&](const Rect& r) {
    by_layer[static_cast<std::size_t>(r.layer)].push_back(r);
  });

  constexpr double kUm2ToCm2 = 1e-8;
  LayoutCriticalArea result;
  const Rect bbox = design.top().bounding_box();
  if (bbox.valid()) {
    result.bounding_box_cm2 =
        static_cast<double>(bbox.area()) * unit_um * unit_um * kUm2ToCm2;
  }

  for (int l = 0; l < layout::kLayerCount; ++l) {
    const auto& rects = by_layer[static_cast<std::size_t>(l)];
    if (rects.empty()) continue;
    LayerCriticalArea layer;
    layer.layer = static_cast<layout::Layer>(l);
    layer.shapes = static_cast<std::int64_t>(rects.size());

    // Opens: every shape, along its long axis.
    for (const Rect& r : rects) {
      const double w_um = static_cast<double>(std::min(r.width(), r.height())) * unit_um;
      const double len_um = static_cast<double>(std::max(r.width(), r.height())) * unit_um;
      // Band saturates once the defect spans the wire and its margin.
      layer.open_area_cm2 += len_um * expected_excess(w_um, w_um) * kUm2ToCm2;
    }

    // Shorts: neighbor pairs with a clear gap and parallel overlap.
    Coord mean_extent = 0;
    for (const Rect& r : rects) mean_extent += std::max(r.width(), r.height());
    mean_extent /= static_cast<Coord>(rects.size());
    const NeighborIndex index(rects, mean_extent + 2 * margin_units);
    std::vector<char> seen(rects.size(), 0);
    for (std::size_t i = 0; i < rects.size(); ++i) {
      std::vector<std::size_t> candidates;
      index.neighbors_above(i, margin_units, [&](std::size_t j) {
        if (!seen[j]) {
          seen[j] = 1;
          candidates.push_back(j);
        }
      });
      const Rect& a = rects[i];
      for (const std::size_t j : candidates) {
        seen[j] = 0;
        const Rect& b = rects[j];
        // Vertical gap with horizontal overlap?
        const Coord ox = std::min(a.x1, b.x1) - std::max(a.x0, b.x0);
        const Coord oy = std::min(a.y1, b.y1) - std::max(a.y0, b.y0);
        double run_um = 0.0, gap_um = 0.0, cap_um = 0.0;
        if (ox > 0 && oy <= 0) {
          const Coord gap = (b.y0 >= a.y1) ? b.y0 - a.y1 : a.y0 - b.y1;
          if (gap <= 0 || gap > margin_units) continue;
          run_um = static_cast<double>(ox) * unit_um;
          gap_um = static_cast<double>(gap) * unit_um;
          cap_um = static_cast<double>(std::min(a.height(), b.height())) * unit_um;
        } else if (oy > 0 && ox <= 0) {
          const Coord gap = (b.x0 >= a.x1) ? b.x0 - a.x1 : a.x0 - b.x1;
          if (gap <= 0 || gap > margin_units) continue;
          run_um = static_cast<double>(oy) * unit_um;
          gap_um = static_cast<double>(gap) * unit_um;
          cap_um = static_cast<double>(std::min(a.width(), b.width())) * unit_um;
        } else {
          continue;  // diagonal or overlapping shapes: no short band
        }
        layer.short_area_cm2 += run_um * expected_excess(gap_um, cap_um) * kUm2ToCm2;
        ++layer.neighbor_pairs;
      }
    }

    result.total_area_cm2 += layer.short_area_cm2 + layer.open_area_cm2;
    result.layers.push_back(layer);
  }
  return result;
}

}  // namespace nanocost::defect
