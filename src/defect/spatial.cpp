#include "nanocost/defect/spatial.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "nanocost/exec/rng_batch.hpp"
#include "nanocost/units/quantity.hpp"

namespace nanocost::defect {

RadialProfile::RadialProfile(double edge_boost, double sharpness)
    : edge_boost_(units::require_non_negative(edge_boost, "radial edge boost")),
      sharpness_(units::require_positive(sharpness, "radial sharpness")) {
  // Area-weighted mean multiplier over the unit disc:
  //   integral_0^1 (1 + b u^s) 2u du = 1 + 2b / (s + 2)
  norm_ = 1.0 / (1.0 + 2.0 * edge_boost_ / (sharpness_ + 2.0));
}

double RadialProfile::multiplier(double u) const noexcept {
  if (u < 0.0) u = 0.0;
  if (u > 1.0) u = 1.0;
  return norm_ * (1.0 + edge_boost_ * std::pow(u, sharpness_));
}

DefectField::DefectField(const geometry::WaferSpec& wafer, const DefectSizeDistribution& sizes,
                         DefectFieldParams params)
    : wafer_(wafer), sizes_(sizes), params_(params) {
  units::require_non_negative(params_.density_per_cm2, "defect density");
  if (params_.clustered) {
    units::require_positive(params_.cluster_alpha, "cluster alpha");
  }
}

double DefectField::expected_count() const noexcept {
  return params_.density_per_cm2 * wafer_.area().value();
}

void DefectField::sample_position(std::mt19937_64& rng, Defect& d) const {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double radius_mm = wafer_.radius().value();
  // Envelope rejection against the radial profile's maximum (at the edge).
  const double max_mult =
      params_.radial.is_flat() ? 1.0 : params_.radial.multiplier(1.0);
  for (;;) {
    const double u = std::sqrt(uni(rng));  // uniform over disc in radius
    if (!params_.radial.is_flat()) {
      if (uni(rng) * max_mult > params_.radial.multiplier(u)) continue;
    }
    const double theta = 2.0 * std::numbers::pi * uni(rng);
    const double r = u * radius_mm;
    d.x = units::Millimeters{r * std::cos(theta)};
    d.y = units::Millimeters{r * std::sin(theta)};
    return;
  }
}

std::vector<Defect> DefectField::sample_wafer(std::mt19937_64& rng) const {
  std::vector<Defect> defects;
  sample_wafer(rng, defects);
  return defects;
}

namespace {

/// Exact Poisson draw by Knuth's product-of-uniforms method, applied to
/// additive chunks of the mean (Poisson(a + b) = Poisson(a) +
/// Poisson(b)) so exp(-chunk) never underflows.  Used instead of
/// std::poisson_distribution because libstdc++'s large-mean setup calls
/// glibc lgamma(), which writes the global `signgam` -- a data race
/// when wafers are sampled concurrently.  This sampler touches only
/// local state.
long sample_poisson(std::mt19937_64& rng, double mean) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  long total = 0;
  while (mean > 0.0) {
    const double chunk = std::min(mean, 60.0);
    const double limit = std::exp(-chunk);
    long k = -1;
    double prod = 1.0;
    do {
      prod *= uni(rng);
      ++k;
    } while (prod > limit);
    total += k;
    mean -= chunk;
  }
  return total;
}

}  // namespace

void DefectField::sample_wafer(std::mt19937_64& rng, std::vector<Defect>& out) const {
  out.clear();
  double mean = expected_count();
  if (params_.clustered) {
    // Gamma multiplier with shape alpha and mean 1: the gamma-mixed
    // Poisson whose die-level counts are negative binomial.
    std::gamma_distribution<double> gamma(params_.cluster_alpha, 1.0 / params_.cluster_alpha);
    mean *= gamma(rng);
  }
  const long n = sample_poisson(rng, mean);

  out.reserve(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    Defect d;
    sample_position(rng, d);
    d.size = sizes_.sample(rng);
    out.push_back(d);
  }
}

namespace {

/// The Knuth Poisson sampler above, on the counter-based exec stream.
/// Same chunked product-of-uniforms scheme; consumption is
/// data-dependent but scalar, hence identical at every SimdLevel.
long sample_poisson(exec::SplitMix64& rng, double mean) {
  long total = 0;
  while (mean > 0.0) {
    const double chunk = std::min(mean, 60.0);
    const double limit = std::exp(-chunk);
    long k = -1;
    double prod = 1.0;
    do {
      prod *= exec::uniform_unit(rng);
      ++k;
    } while (prod > limit);
    total += k;
    mean -= chunk;
  }
  return total;
}

}  // namespace

void DefectField::sample_wafer_at(exec::SimdLevel level, exec::SplitMix64& rng,
                                  DefectSoA& out) const {
  out.clear();
  double mean = expected_count();
  if (params_.clustered) {
    // Gamma multiplier with shape alpha and mean 1 (scalar draw in all
    // paths -- the standard library's algorithm is fine here because
    // every SimdLevel runs the identical code on the identical stream).
    std::gamma_distribution<double> gamma(params_.cluster_alpha, 1.0 / params_.cluster_alpha);
    mean *= gamma(rng);
  }
  const long n = sample_poisson(rng, mean);
  const auto count = static_cast<std::size_t>(n);
  out.x_mm.reserve(count);
  out.y_mm.reserve(count);
  out.size_um.resize(count);

  const double radius_mm = wafer_.radius().value();
  if (params_.radial.is_flat()) {
    // Uniform over the disc by square rejection: each round draws 8
    // candidate points (16 uniforms) through the batched RNG and keeps
    // the ones inside the disc.  Whole 16-uniform blocks are always
    // consumed -- surplus acceptances in the final block are discarded
    // -- and the accept tests are plain scalar arithmetic on bitwise
    // identical uniforms, so the stream position after sampling agrees
    // across SimdLevels.
    double u[16];
    while (out.x_mm.size() < count) {
      exec::uniform_unit_batch_at(level, rng, u, 16);
      for (int i = 0; i < 8; ++i) {
        if (out.x_mm.size() == count) break;
        const double cx = (2.0 * u[i] - 1.0) * radius_mm;
        const double cy = (2.0 * u[8 + i] - 1.0) * radius_mm;
        if (cx * cx + cy * cy <= radius_mm * radius_mm) {
          out.x_mm.push_back(cx);
          out.y_mm.push_back(cy);
        }
      }
    }
  } else {
    // Radial profile: the same envelope rejection as sample_position,
    // scalar at every level (the win is in the RNG and size columns).
    const double max_mult = params_.radial.multiplier(1.0);
    for (std::size_t i = 0; i < count; ++i) {
      for (;;) {
        const double ur = std::sqrt(exec::uniform_unit(rng));
        if (exec::uniform_unit(rng) * max_mult > params_.radial.multiplier(ur)) continue;
        const double theta = exec::kTwoPi * exec::uniform_unit(rng);
        const double r = ur * radius_mm;
        out.x_mm.push_back(r * std::cos(theta));
        out.y_mm.push_back(r * std::sin(theta));
        break;
      }
    }
  }
  sizes_.sample_batch_at(level, rng, out.size_um.data(), count);
}

void DefectField::sample_wafer(exec::SplitMix64& rng, DefectSoA& out) const {
  sample_wafer_at(exec::simd_level(), rng, out);
}

}  // namespace nanocost::defect
