#include "nanocost/defect/critical_area.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::defect {

WireArray::WireArray(units::Micrometers width, units::Micrometers spacing,
                     units::Micrometers length, int wire_count)
    : width_(units::require_positive(width, "wire width")),
      spacing_(units::require_positive(spacing, "wire spacing")),
      length_(units::require_positive(length, "wire length")),
      wire_count_(wire_count) {
  if (wire_count_ < 1) {
    throw std::domain_error("wire array needs at least one wire");
  }
}

units::SquareMicrometers WireArray::footprint() const noexcept {
  const double w = width_.value();
  const double s = spacing_.value();
  const double extent = wire_count_ * w + (wire_count_ - 1) * s;
  return units::SquareMicrometers{extent * length_.value()};
}

units::SquareMicrometers WireArray::short_critical_area(units::Micrometers x) const noexcept {
  const double s = spacing_.value();
  const double d = x.value();
  if (d <= s || wire_count_ < 2) return units::SquareMicrometers{0.0};
  // Between each adjacent pair, a defect of diameter d shorts both wires
  // when its center lies in a band of height (d - s), which cannot grow
  // past one pitch before bands of neighbouring pairs merge.
  const double band = std::min(d - s, pitch().value());
  const double area = (wire_count_ - 1) * band * length_.value();
  return units::SquareMicrometers{std::min(area, footprint().value())};
}

units::SquareMicrometers WireArray::open_critical_area(units::Micrometers x) const noexcept {
  const double w = width_.value();
  const double d = x.value();
  if (d <= w) return units::SquareMicrometers{0.0};
  const double band = std::min(d - w, pitch().value());
  const double area = wire_count_ * band * length_.value();
  return units::SquareMicrometers{std::min(area, footprint().value())};
}

namespace {

/// Composite Simpson over [a, b] (requires a < b), n even subintervals.
template <typename Fn>
double simpson(Fn&& f, double a, double b, int n) {
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

/// Integral of A_c(x) * pdf(x) over the distribution support.  The rising
/// branch is integrated linearly; the power-law tail is integrated in
/// log-space for accuracy.
template <typename AreaFn>
double average_critical_area(const DefectSizeDistribution& dist, AreaFn&& area) {
  const double a = dist.xmin().value();
  const double x0 = dist.peak().value();
  const double b = dist.xmax().value();
  const auto integrand = [&](double x) {
    return area(units::Micrometers{x}).value() * dist.pdf(units::Micrometers{x});
  };
  const double below = simpson(integrand, a, x0, 512);
  const auto log_integrand = [&](double t) {
    const double x = std::exp(t);
    return integrand(x) * x;
  };
  const double above = simpson(log_integrand, std::log(x0), std::log(b), 2048);
  return below + above;
}

}  // namespace

units::SquareMicrometers WireArray::average_short_critical_area(
    const DefectSizeDistribution& dist) const {
  return units::SquareMicrometers{
      average_critical_area(dist, [this](units::Micrometers x) { return short_critical_area(x); })};
}

units::SquareMicrometers WireArray::average_open_critical_area(
    const DefectSizeDistribution& dist) const {
  return units::SquareMicrometers{
      average_critical_area(dist, [this](units::Micrometers x) { return open_critical_area(x); })};
}

double critical_area_ratio(const WireArray& array, const DefectSizeDistribution& dist) {
  const double total = array.average_short_critical_area(dist).value() +
                       array.average_open_critical_area(dist).value();
  return total / array.footprint().value();
}

double density_scaled_critical_area_ratio(double s_d, double s_ref, units::Micrometers lambda) {
  units::require_positive(s_d, "s_d");
  units::require_positive(s_ref, "s_ref");
  units::require_positive(lambda, "lambda");
  // A design at decompression index s_d spreads the same wiring over
  // s_d / s_ref more lambda-squares than the reference fabric; linear
  // dimensions (hence spacing) scale by the square root.
  const double spread = std::sqrt(s_d / s_ref);
  const WireArray array{lambda, lambda * spread, lambda * 100.0, 50};
  return critical_area_ratio(array, DefectSizeDistribution::for_feature_size(lambda));
}

}  // namespace nanocost::defect
