#include "nanocost/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace nanocost::obs {

namespace {

/// The registry.  Leaked on purpose: worker threads and atexit hooks
/// may touch metrics during static destruction, so the registry must
/// outlive every static.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<std::unique_ptr<Gauge>> gauges;
  std::vector<std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

template <typename T>
T* find_by_name(std::vector<std::unique_ptr<T>>& items, std::string_view name) {
  for (auto& item : items) {
    if (item->name() == name) return item.get();
  }
  return nullptr;
}

}  // namespace

Histogram::Histogram(std::string name, std::vector<std::uint64_t> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram '" + name_ + "' needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("histogram '" + name_ +
                                  "' bucket bounds must be strictly ascending");
    }
  }
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::record(std::uint64_t v) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ULL ? 0 : m;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  if (Counter* c = find_by_name(r.counters, name)) return *c;
  r.counters.push_back(std::make_unique<Counter>(std::string(name)));
  return *r.counters.back();
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  if (Gauge* g = find_by_name(r.gauges, name)) return *g;
  r.gauges.push_back(std::make_unique<Gauge>(std::string(name)));
  return *r.gauges.back();
}

Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  if (Histogram* h = find_by_name(r.histograms, name)) return *h;
  r.histograms.push_back(std::make_unique<Histogram>(std::string(name), std::move(bounds)));
  return *r.histograms.back();
}

std::uint64_t counter_value(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const Counter* c = find_by_name(r.counters, name);
  return c != nullptr ? c->value() : 0;
}

const Histogram* find_histogram(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return find_by_name(r.histograms, name);
}

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_state.store(enabled ? 2 : 1, std::memory_order_release);
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& c : r.counters) c->reset();
  for (auto& g : r.gauges) g->reset();
  for (auto& h : r.histograms) h->reset();
}

MetricsSnapshot snapshot_metrics() {
  MetricsSnapshot snap;
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& c : r.counters) snap.counters.emplace_back(c->name(), c->value());
  for (const auto& g : r.gauges) snap.gauges.emplace_back(g->name(), g->value());
  for (const auto& h : r.histograms) {
    HistogramSnapshot hs;
    hs.name = h->name();
    hs.bounds = h->bounds();
    for (std::size_t i = 0; i <= hs.bounds.size(); ++i) {
      hs.buckets.push_back(h->bucket_count(i));
    }
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    snap.histograms.push_back(std::move(hs));
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

std::string render_metrics_text() { return render_metrics_text(snapshot_metrics()); }

std::string render_metrics_text(const MetricsSnapshot& snap) {
  std::string out = "metrics snapshot:\n";
  char line[256];
  for (const auto& [name, value] : snap.counters) {
    std::snprintf(line, sizeof(line), "  %-36s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snap.gauges) {
    std::snprintf(line, sizeof(line), "  %-36s %.6g\n", name.c_str(), value);
    out += line;
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    std::snprintf(line, sizeof(line),
                  "  %-36s count %llu  sum %llu  mean %.1f  min %llu  max %llu\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  h.count > 0 ? static_cast<double>(h.sum) / static_cast<double>(h.count)
                              : 0.0,
                  static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.max));
    out += line;
  }
  if (snap.counters.empty() && snap.gauges.empty() && snap.histograms.empty()) {
    out += "  (no metrics registered)\n";
  }
  return out;
}

std::string render_metrics_json() { return render_metrics_json(snapshot_metrics()); }

std::string render_metrics_json(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\": {";
  char buf[128];
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu", i > 0 ? ", " : "",
                  snap.counters[i].first.c_str(),
                  static_cast<unsigned long long>(snap.counters[i].second));
    out += buf;
  }
  out += "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.17g", i > 0 ? ", " : "",
                  snap.gauges[i].first.c_str(), snap.gauges[i].second);
    out += buf;
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    if (i > 0) out += ", ";
    out += "\"" + h.name + "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      std::snprintf(buf, sizeof(buf), "%s%llu", b > 0 ? ", " : "",
                    static_cast<unsigned long long>(h.bounds[b]));
      out += buf;
    }
    out += "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      std::snprintf(buf, sizeof(buf), "%s%llu", b > 0 ? ", " : "",
                    static_cast<unsigned long long>(h.buckets[b]));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "], \"count\": %llu, \"sum\": %llu, \"min\": %llu, \"max\": %llu}",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.max));
    out += buf;
  }
  out += "}}";
  return out;
}

namespace detail {

std::atomic<int> g_metrics_state{0};

bool init_metrics_state_from_env() {
  // The registry mutex doubles as the init lock, so exactly one thread
  // settles the state (and prints at most one diagnostic).
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const int settled = g_metrics_state.load(std::memory_order_acquire);
  if (settled != 0) return settled == 2;

  bool enabled = false;
  if (const char* env = std::getenv("NANOCOST_METRICS")) {
    const std::string_view v(env);
    if (v == "1" || v == "true" || v == "on" || v == "yes") {
      enabled = true;
    } else if (!(v.empty() || v == "0" || v == "false" || v == "off" || v == "no")) {
      std::fprintf(stderr,
                   "nanocost: NANOCOST_METRICS='%s' is not a recognised boolean "
                   "(use 1/0, true/false, on/off); metrics stay disabled\n",
                   env);
    }
  }
  g_metrics_state.store(enabled ? 2 : 1, std::memory_order_release);
  return enabled;
}

}  // namespace detail

}  // namespace nanocost::obs
