#include "nanocost/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace nanocost::obs {

namespace {

struct Event final {
  detail::SpanRecord record;
  int tid = 0;
};

/// One buffer per thread.  The per-buffer mutex is uncontended on the
/// hot path (only the owning thread appends); the writer takes every
/// buffer's mutex at flush time, which keeps flush-vs-append race-free
/// without atomics on the event payload.
struct ThreadBuf final {
  std::mutex mu;
  std::vector<Event> events;
  int tid = 0;
};

/// Trace session state.  Leaked on purpose (see metrics.cpp): worker
/// threads and the atexit flush may run during static destruction.
struct TraceState final {
  std::mutex mu;
  std::string path;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  int next_tid = 1;
  bool atexit_registered = false;
  /// steady_clock ns at start_trace(); spans are stamped relative to it.
  std::atomic<std::uint64_t> epoch_ns{0};
};

TraceState& trace_state() {
  static TraceState* s = new TraceState;
  return *s;
}

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadBuf& this_thread_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    TraceState& s = trace_state();
    std::lock_guard<std::mutex> lk(s.mu);
    b->tid = s.next_tid++;
    s.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

void flush_at_exit() { (void)stop_trace(); }

/// Escapes a span/arg name for embedding in a JSON string.  Names are
/// programmer-chosen literals, so this is belt-and-braces.
void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

void start_trace(std::string path) {
  TraceState& s = trace_state();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.path = std::move(path);
    for (auto& b : s.bufs) {
      std::lock_guard<std::mutex> blk(b->mu);
      b->events.clear();
    }
    s.epoch_ns.store(steady_ns(), std::memory_order_release);
  }
  // Settle the gate last so no span is stamped against a stale epoch.
  detail::g_trace_state.store(2, std::memory_order_release);
}

bool stop_trace() {
  // Disarm first: spans constructed after this point are no-ops, and
  // spans already armed finish into buffers we are about to drain (their
  // events land after the flush and are simply dropped with the next
  // start_trace, never torn).
  const int was = detail::g_trace_state.exchange(1, std::memory_order_acq_rel);
  if (was != 2) return true;

  TraceState& s = trace_state();
  std::lock_guard<std::mutex> lk(s.mu);

  std::vector<Event> events;
  for (auto& b : s.bufs) {
    std::lock_guard<std::mutex> blk(b->mu);
    events.insert(events.end(), b->events.begin(), b->events.end());
    b->events.clear();
  }
  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.record.t0_ns != b.record.t0_ns) return a.record.t0_ns < b.record.t0_ns;
    return a.tid < b.tid;
  });

  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "nanocost: cannot write trace file '%s'; %zu events dropped\n",
                 s.path.c_str(), events.size());
    return false;
  }

  std::string out;
  out.reserve(128 + events.size() * 120);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[160];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i > 0) out += ",";
    out += "\n  {\"name\": \"";
    append_json_escaped(out, e.record.name);
    std::snprintf(buf, sizeof(buf),
                  "\", \"cat\": \"nanocost\", \"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
                  "\"ts\": %.3f, \"dur\": %.3f",
                  e.tid, static_cast<double>(e.record.t0_ns) / 1000.0,
                  static_cast<double>(e.record.dur_ns) / 1000.0);
    out += buf;
    if (e.record.n_args > 0) {
      out += ", \"args\": {";
      for (int a = 0; a < e.record.n_args; ++a) {
        if (a > 0) out += ", ";
        out += "\"";
        append_json_escaped(out, e.record.arg_key[a]);
        std::snprintf(buf, sizeof(buf), "\": %llu",
                      static_cast<unsigned long long>(e.record.arg_val[a]));
        out += buf;
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";

  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = written == out.size() && std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "nanocost: short write on trace file '%s'\n", s.path.c_str());
  }
  return ok;
}

std::string trace_path() {
  TraceState& s = trace_state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.path;
}

void ObsSpan::finish() noexcept {
  detail::SpanRecord rec;
  rec.name = name_;
  rec.t0_ns = t0_ns_;
  const std::uint64_t now = detail::trace_now_ns();
  rec.dur_ns = now > t0_ns_ ? now - t0_ns_ : 0;
  rec.n_args = n_args_;
  for (int i = 0; i < n_args_; ++i) {
    rec.arg_key[i] = arg_key_[i];
    rec.arg_val[i] = arg_val_[i];
  }
  detail::record_span(rec);
}

namespace detail {

std::atomic<int> g_trace_state{0};

bool init_trace_state_from_env() {
  TraceState& s = trace_state();
  bool enabled = false;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    const int settled = g_trace_state.load(std::memory_order_acquire);
    if (settled != 0) return settled == 2;

    if (const char* env = std::getenv("NANOCOST_TRACE")) {
      if (env[0] == '\0') {
        std::fprintf(stderr,
                     "nanocost: NANOCOST_TRACE is set but empty (expected an output "
                     "file path); tracing stays disabled\n");
      } else {
        s.path = env;
        s.epoch_ns.store(steady_ns(), std::memory_order_release);
        if (!s.atexit_registered) {
          s.atexit_registered = true;
          std::atexit(flush_at_exit);
        }
        enabled = true;
      }
    }
    g_trace_state.store(enabled ? 2 : 1, std::memory_order_release);
  }
  return enabled;
}

std::uint64_t trace_now_ns() noexcept {
  const std::uint64_t epoch = trace_state().epoch_ns.load(std::memory_order_acquire);
  const std::uint64_t now = steady_ns();
  return now > epoch ? now - epoch : 0;
}

void record_span(const SpanRecord& record) noexcept {
  ThreadBuf& buf = this_thread_buf();
  std::lock_guard<std::mutex> lk(buf.mu);
  Event e;
  e.record = record;
  e.tid = buf.tid;
  buf.events.push_back(e);
}

}  // namespace detail

}  // namespace nanocost::obs
