#include "nanocost/obs/prometheus.hpp"

#include <cstdio>

namespace nanocost::obs {

namespace {

bool legal_name_byte(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  const bool digit = c >= '0' && c <= '9';
  return alpha || c == '_' || c == ':' || (digit && !first);
}

void append_u64_sample(std::string& out, const std::string& name, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " %llu\n", static_cast<unsigned long long>(v));
  out += name;
  out += buf;
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (legal_name_byte(c, /*first=*/i == 0)) {
      out.push_back(c);
    } else if (i == 0 && c >= '0' && c <= '9') {
      out.push_back('_');
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string render_metrics_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  char buf[128];
  for (const auto& [name, value] : snap.counters) {
    const std::string n = sanitize_metric_name(name);
    out += "# TYPE " + n + " counter\n";
    append_u64_sample(out, n, value);
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = sanitize_metric_name(name);
    out += "# TYPE " + n + " gauge\n";
    std::snprintf(buf, sizeof(buf), " %.17g\n", value);
    out += n;
    out += buf;
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.buckets.size() != h.bounds.size() + 1) continue;  // malformed snapshot
    const std::string n = sanitize_metric_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.buckets[i];
      std::snprintf(buf, sizeof(buf), "{le=\"%llu\"} %llu\n",
                    static_cast<unsigned long long>(h.bounds[i]),
                    static_cast<unsigned long long>(cum));
      out += n + "_bucket";
      out += buf;
    }
    cum += h.buckets.back();
    std::snprintf(buf, sizeof(buf), "{le=\"+Inf\"} %llu\n",
                  static_cast<unsigned long long>(cum));
    out += n + "_bucket";
    out += buf;
    append_u64_sample(out, n + "_sum", h.sum);
    append_u64_sample(out, n + "_count", h.count);
  }
  return out;
}

std::string render_metrics_prometheus() {
  return render_metrics_prometheus(snapshot_metrics());
}

}  // namespace nanocost::obs
