#include "nanocost/obs/stats.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

namespace nanocost::obs {

namespace {

// obs sits below cache in the module graph, so the codec primitives are
// local rather than borrowed from cache/codec.hpp.  Same conventions:
// little-endian, floats by IEEE bit pattern, lengths validated against
// the remaining bytes before any allocation.

constexpr std::uint8_t kTagCounter = 0x01;
constexpr std::uint8_t kTagGauge = 0x02;
constexpr std::uint8_t kTagHistogram = 0x03;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

/// Cursor over the blob's body (between magic and checksum).  Every
/// read checks the remaining byte count first and throws StatError
/// naming what was being read.
class StatReader final {
 public:
  StatReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return data_[pos_++];
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  double f64(const char* what) {
    const std::uint64_t bits = u64(what);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str(const char* what) {
    const std::uint64_t len = u64(what);
    if (len > kMaxStatNameBytes) {
      throw StatError(std::string("NCSTAT01 ") + what + " declares " +
                      std::to_string(len) + " bytes (cap " +
                      std::to_string(kMaxStatNameBytes) + ")");
    }
    need(static_cast<std::size_t>(len), what);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (size_ - pos_ < n) {
      throw StatError(std::string("NCSTAT01 blob truncated reading ") + what + " (" +
                      std::to_string(size_ - pos_) + " of " + std::to_string(n) +
                      " bytes left)");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode_stats(const MetricsSnapshot& snap) {
  std::vector<std::uint8_t> out;
  for (const char c : kStatMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, kStatVersion);
  put_u64(out, snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    put_u8(out, kTagCounter);
    put_str(out, name);
    put_u64(out, value);
  }
  put_u64(out, snap.gauges.size());
  for (const auto& [name, value] : snap.gauges) {
    put_u8(out, kTagGauge);
    put_str(out, name);
    put_f64(out, value);
  }
  put_u64(out, snap.histograms.size());
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.buckets.size() != h.bounds.size() + 1) {
      throw StatError("NCSTAT01 cannot encode histogram '" + h.name + "': " +
                      std::to_string(h.buckets.size()) + " buckets for " +
                      std::to_string(h.bounds.size()) + " bounds");
    }
    put_u8(out, kTagHistogram);
    put_str(out, h.name);
    put_u64(out, h.bounds.size());
    for (const std::uint64_t b : h.bounds) put_u64(out, b);
    for (const std::uint64_t b : h.buckets) put_u64(out, b);
    put_u64(out, h.count);
    put_u64(out, h.sum);
    put_u64(out, h.min);
    put_u64(out, h.max);
  }
  put_u64(out, fnv1a(out.data() + sizeof(kStatMagic), out.size() - sizeof(kStatMagic)));
  return out;
}

MetricsSnapshot decode_stats(const std::vector<std::uint8_t>& blob) {
  if (blob.size() < sizeof(kStatMagic)) {
    throw StatError("NCSTAT01 blob truncated before its magic (" +
                    std::to_string(blob.size()) + " bytes)");
  }
  if (std::memcmp(blob.data(), kStatMagic, sizeof(kStatMagic)) != 0) {
    throw StatError("NCSTAT01 blob has a bad magic header");
  }
  // Body = everything between magic and the trailing checksum word.
  if (blob.size() < sizeof(kStatMagic) + 4 + 8) {
    throw StatError("NCSTAT01 blob truncated: no room for version and checksum");
  }
  StatReader r(blob.data() + sizeof(kStatMagic), blob.size() - sizeof(kStatMagic) - 8);

  const std::uint32_t version = r.u32("version");
  if (version != kStatVersion) {
    throw StatError("NCSTAT01 blob declares unsupported version " +
                    std::to_string(version) + " (this decoder speaks " +
                    std::to_string(kStatVersion) + ")");
  }

  MetricsSnapshot snap;

  const std::uint64_t n_counters = r.u64("counter count");
  // tag + name length + value: the smallest possible counter entry.
  if (n_counters > r.remaining() / (1 + 8 + 8)) {
    throw StatError("NCSTAT01 blob declares " + std::to_string(n_counters) +
                    " counters, more than its " + std::to_string(r.remaining()) +
                    " remaining bytes can hold");
  }
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    const std::uint8_t tag = r.u8("counter tag");
    if (tag != kTagCounter) {
      throw StatError("NCSTAT01 counter entry has wrong field tag " + std::to_string(tag));
    }
    std::string name = r.str("counter name");
    const std::uint64_t value = r.u64("counter value");
    snap.counters.emplace_back(std::move(name), value);
  }

  const std::uint64_t n_gauges = r.u64("gauge count");
  if (n_gauges > r.remaining() / (1 + 8 + 8)) {
    throw StatError("NCSTAT01 blob declares " + std::to_string(n_gauges) +
                    " gauges, more than its " + std::to_string(r.remaining()) +
                    " remaining bytes can hold");
  }
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    const std::uint8_t tag = r.u8("gauge tag");
    if (tag != kTagGauge) {
      throw StatError("NCSTAT01 gauge entry has wrong field tag " + std::to_string(tag));
    }
    std::string name = r.str("gauge name");
    const double value = r.f64("gauge value");
    snap.gauges.emplace_back(std::move(name), value);
  }

  const std::uint64_t n_histograms = r.u64("histogram count");
  // tag + name length + bound count + one bucket + count/sum/min/max.
  if (n_histograms > r.remaining() / (1 + 8 + 8 + 8 + 32)) {
    throw StatError("NCSTAT01 blob declares " + std::to_string(n_histograms) +
                    " histograms, more than its " + std::to_string(r.remaining()) +
                    " remaining bytes can hold");
  }
  for (std::uint64_t i = 0; i < n_histograms; ++i) {
    const std::uint8_t tag = r.u8("histogram tag");
    if (tag != kTagHistogram) {
      throw StatError("NCSTAT01 histogram entry has wrong field tag " +
                      std::to_string(tag));
    }
    HistogramSnapshot h;
    h.name = r.str("histogram name");
    const std::uint64_t n_bounds = r.u64("histogram bound count");
    if (n_bounds > kMaxStatBounds || n_bounds + 1 > r.remaining() / 8) {
      throw StatError("NCSTAT01 histogram '" + h.name + "' declares " +
                      std::to_string(n_bounds) + " bounds, past the cap or the blob");
    }
    h.bounds.reserve(static_cast<std::size_t>(n_bounds));
    for (std::uint64_t b = 0; b < n_bounds; ++b) {
      h.bounds.push_back(r.u64("histogram bound"));
      if (b > 0 && h.bounds[b] <= h.bounds[b - 1]) {
        throw StatError("NCSTAT01 histogram '" + h.name +
                        "' bounds are not strictly ascending");
      }
    }
    h.buckets.reserve(static_cast<std::size_t>(n_bounds) + 1);
    for (std::uint64_t b = 0; b < n_bounds + 1; ++b) {
      h.buckets.push_back(r.u64("histogram bucket"));
    }
    h.count = r.u64("histogram count");
    h.sum = r.u64("histogram sum");
    h.min = r.u64("histogram min");
    h.max = r.u64("histogram max");
    snap.histograms.push_back(std::move(h));
  }

  if (r.remaining() != 0) {
    throw StatError("NCSTAT01 blob has " + std::to_string(r.remaining()) +
                    " trailing bytes after its last histogram");
  }
  const std::uint64_t stored = [&blob] {
    std::uint64_t v = 0;
    const std::uint8_t* p = blob.data() + blob.size() - 8;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
  }();
  const std::uint64_t computed =
      fnv1a(blob.data() + sizeof(kStatMagic), blob.size() - sizeof(kStatMagic) - 8);
  if (stored != computed) {
    throw StatError("NCSTAT01 blob failed its fnv1a checksum (bit flip?)");
  }
  return snap;
}

double histogram_quantile(const HistogramSnapshot& h, double q) noexcept {
  if (h.count == 0 || h.buckets.size() != h.bounds.size() + 1) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count]: the k-th smallest sample the quantile names.
  const double target = std::max(1.0, q * static_cast<double>(h.count));
  double cum = 0.0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const double n = static_cast<double>(h.buckets[i]);
    if (n == 0.0) continue;
    if (cum + n < target) {
      cum += n;
      continue;
    }
    // The target rank lands in bucket i.
    if (i == h.bounds.size()) break;  // overflow bucket: the exact max is best
    const double lower = i == 0 ? 0.0 : static_cast<double>(h.bounds[i - 1]);
    const double upper = static_cast<double>(h.bounds[i]);
    const double v = lower + (upper - lower) * (target - cum) / n;
    // min/max are tracked exactly, so they tighten the first/last
    // buckets' edges for free.
    return std::clamp(v, static_cast<double>(h.min), static_cast<double>(h.max));
  }
  return static_cast<double>(h.max);
}

HistogramQuantiles histogram_quantiles(const HistogramSnapshot& h) noexcept {
  HistogramQuantiles out;
  out.p50 = histogram_quantile(h, 0.50);
  out.p90 = histogram_quantile(h, 0.90);
  out.p99 = histogram_quantile(h, 0.99);
  return out;
}

MetricsSnapshot delta_stats(const MetricsSnapshot& newer, const MetricsSnapshot& older) {
  MetricsSnapshot out;

  std::map<std::string, std::uint64_t> old_counters(older.counters.begin(),
                                                    older.counters.end());
  out.counters.reserve(newer.counters.size());
  for (const auto& [name, value] : newer.counters) {
    const auto it = old_counters.find(name);
    const std::uint64_t base = it != old_counters.end() ? it->second : 0;
    // A counter that shrank means the process restarted between
    // scrapes; the newer value is itself the delta since that restart.
    out.counters.emplace_back(name, value >= base ? value - base : value);
  }

  out.gauges = newer.gauges;  // levels: the newest reading is the answer

  std::map<std::string, const HistogramSnapshot*> old_hists;
  for (const HistogramSnapshot& h : older.histograms) old_hists.emplace(h.name, &h);
  out.histograms.reserve(newer.histograms.size());
  for (const HistogramSnapshot& h : newer.histograms) {
    HistogramSnapshot d = h;
    const auto it = old_hists.find(h.name);
    if (it != old_hists.end()) {
      const HistogramSnapshot& o = *it->second;
      const bool comparable = o.bounds == h.bounds && o.buckets.size() == h.buckets.size() &&
                              o.count <= h.count && o.sum <= h.sum;
      if (comparable) {
        bool monotone = true;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
          if (h.buckets[i] < o.buckets[i]) {
            monotone = false;
            break;
          }
        }
        if (monotone) {
          for (std::size_t i = 0; i < h.buckets.size(); ++i) d.buckets[i] -= o.buckets[i];
          d.count -= o.count;
          d.sum -= o.sum;
          // min/max stay lifetime extremes: the registry cannot window
          // them, and a delta must not invent tighter ones.
        }
      }
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

}  // namespace nanocost::obs
