#include "nanocost/place/hpwl_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace nanocost::place {

using netlist::Net;
using netlist::Netlist;

HpwlCache::HpwlCache(const Netlist& netlist, const Placement& placement, double row_weight,
                     const std::vector<double>* net_weights)
    : row_weight_(row_weight) {
  const auto gates = static_cast<std::size_t>(netlist.gate_count());
  const auto nets = static_cast<std::size_t>(netlist.net_count());

  pos_.resize(gates);
  for (std::int32_t g = 0; g < netlist.gate_count(); ++g) {
    pos_[static_cast<std::size_t>(g)] =
        Pos{static_cast<float>(placement.col_of(g)), static_cast<float>(placement.row_of(g))};
  }

  // Net -> pin occurrences (driver first, then sinks, duplicates kept).
  net_pin_offset_.assign(nets + 1, 0);
  for (std::size_t n = 0; n < nets; ++n) {
    const Net& net = netlist.nets()[n];
    net_pin_offset_[n + 1] = net_pin_offset_[n] + (net.driver_gate >= 0 ? 1 : 0) +
                             static_cast<std::int32_t>(net.sink_gates.size());
  }
  net_pin_gate_.resize(static_cast<std::size_t>(net_pin_offset_[nets]));
  for (std::size_t n = 0; n < nets; ++n) {
    const Net& net = netlist.nets()[n];
    std::int32_t at = net_pin_offset_[n];
    if (net.driver_gate >= 0) net_pin_gate_[static_cast<std::size_t>(at++)] = net.driver_gate;
    for (const std::int32_t sink : net.sink_gates) {
      net_pin_gate_[static_cast<std::size_t>(at++)] = sink;
    }
  }

  // Gate -> (net, multiplicity), built by counting each gate's pin
  // occurrences per net (occurrences of one net are contiguous because
  // the net's pin list is scanned in one run).
  std::vector<std::int32_t> entries(gates, 0);
  std::vector<std::int32_t> last_net(gates, -1);
  for (std::size_t n = 0; n < nets; ++n) {
    for (std::int32_t i = net_pin_offset_[n]; i < net_pin_offset_[n + 1]; ++i) {
      const auto g = static_cast<std::size_t>(net_pin_gate_[static_cast<std::size_t>(i)]);
      if (last_net[g] != static_cast<std::int32_t>(n)) {
        last_net[g] = static_cast<std::int32_t>(n);
        ++entries[g];
      }
    }
  }
  gate_net_offset_.assign(gates + 1, 0);
  for (std::size_t g = 0; g < gates; ++g) {
    gate_net_offset_[g + 1] = gate_net_offset_[g] + entries[g];
  }
  gate_net_id_.resize(static_cast<std::size_t>(gate_net_offset_[gates]));
  gate_net_mult_.assign(gate_net_id_.size(), 0);
  std::vector<std::int32_t> fill(gate_net_offset_.begin(), gate_net_offset_.end() - 1);
  std::fill(last_net.begin(), last_net.end(), -1);
  for (std::size_t n = 0; n < nets; ++n) {
    for (std::int32_t i = net_pin_offset_[n]; i < net_pin_offset_[n + 1]; ++i) {
      const auto g = static_cast<std::size_t>(net_pin_gate_[static_cast<std::size_t>(i)]);
      if (last_net[g] != static_cast<std::int32_t>(n)) {
        last_net[g] = static_cast<std::int32_t>(n);
        gate_net_id_[static_cast<std::size_t>(fill[g])] = static_cast<std::int32_t>(n);
        gate_net_mult_[static_cast<std::size_t>(fill[g])] = 1;
        ++fill[g];
      } else {
        ++gate_net_mult_[static_cast<std::size_t>(fill[g] - 1)];
      }
    }
  }

  weight_.resize(nets);
  for (std::size_t n = 0; n < nets; ++n) {
    weight_[n] = net_weights != nullptr && n < net_weights->size() ? (*net_weights)[n] : 1.0;
  }

  box_.resize(nets);
  value_.resize(nets);
  for (std::size_t n = 0; n < nets; ++n) {
    box_[n] = scan_box(static_cast<std::int32_t>(n));
    value_[n] = box_value(box_[n]);
  }
  total_ = resum();
}

HpwlCache::Box HpwlCache::scan_box(std::int32_t net) const {
  const auto n = static_cast<std::size_t>(net);
  const std::int32_t begin = net_pin_offset_[n];
  const std::int32_t end = net_pin_offset_[n + 1];
  if (begin == end) return Box{};  // pinless net
  Box box;
  box.min_c = std::numeric_limits<std::int32_t>::max();
  box.max_c = std::numeric_limits<std::int32_t>::min();
  box.min_r = box.min_c;
  box.max_r = box.max_c;
  for (std::int32_t i = begin; i < end; ++i) {
    const Pos fp = pos_[static_cast<std::size_t>(net_pin_gate_[static_cast<std::size_t>(i)])];
    const struct { std::int32_t c, r; } p{static_cast<std::int32_t>(fp.c),
                                          static_cast<std::int32_t>(fp.r)};
    if (p.c < box.min_c) {
      box.min_c = p.c;
      box.cnt_min_c = 1;
    } else if (p.c == box.min_c) {
      ++box.cnt_min_c;
    }
    if (p.c > box.max_c) {
      box.max_c = p.c;
      box.cnt_max_c = 1;
    } else if (p.c == box.max_c) {
      ++box.cnt_max_c;
    }
    if (p.r < box.min_r) {
      box.min_r = p.r;
      box.cnt_min_r = 1;
    } else if (p.r == box.min_r) {
      ++box.cnt_min_r;
    }
    if (p.r > box.max_r) {
      box.max_r = p.r;
      box.cnt_max_r = 1;
    } else if (p.r == box.max_r) {
      ++box.cnt_max_r;
    }
  }
  return box;
}

double HpwlCache::net_hpwl(std::int32_t net) const {
  return box_value(box_[static_cast<std::size_t>(net)]);
}

double HpwlCache::resum() const {
  double total = 0.0;
  for (std::size_t n = 0; n < box_.size(); ++n) {
    total += weight_[n] * box_value(box_[n]);
  }
  return total;
}

void HpwlCache::refresh_nets_of(std::int32_t gate) {
  const auto gi = static_cast<std::size_t>(gate);
  for (std::int32_t i = gate_net_offset_[gi]; i < gate_net_offset_[gi + 1]; ++i) {
    const std::int32_t net = gate_net_id_[static_cast<std::size_t>(i)];
    const auto n = static_cast<std::size_t>(net);
    box_[n] = scan_box(net);
    value_[n] = box_value(box_[n]);
  }
}

}  // namespace nanocost::place
