#include "nanocost/place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

namespace nanocost::place {

using netlist::Net;
using netlist::Netlist;

Placement::Placement(std::int32_t rows, std::int32_t cols, std::int32_t gate_count)
    : rows_(rows), cols_(cols) {
  if (rows_ < 1 || cols_ < 1) {
    throw std::invalid_argument("placement grid needs rows >= 1 and cols >= 1");
  }
  if (gate_count > site_count()) {
    throw std::invalid_argument("placement grid too small: " + std::to_string(gate_count) +
                                " gates, " + std::to_string(site_count()) + " sites");
  }
  site_of_gate_.assign(static_cast<std::size_t>(gate_count), -1);
  gate_of_site_.assign(static_cast<std::size_t>(site_count()), -1);
}

void Placement::assign(std::int32_t gate, std::int32_t site) {
  if (gate_of_site_.at(static_cast<std::size_t>(site)) != -1) {
    throw std::invalid_argument("site already occupied");
  }
  const std::int32_t old_site = site_of_gate_.at(static_cast<std::size_t>(gate));
  if (old_site >= 0) gate_of_site_[static_cast<std::size_t>(old_site)] = -1;
  site_of_gate_[static_cast<std::size_t>(gate)] = site;
  gate_of_site_[static_cast<std::size_t>(site)] = gate;
}

void Placement::swap_sites(std::int32_t site_a, std::int32_t site_b) {
  std::int32_t ga = gate_of_site_.at(static_cast<std::size_t>(site_a));
  std::int32_t gb = gate_of_site_.at(static_cast<std::size_t>(site_b));
  gate_of_site_[static_cast<std::size_t>(site_a)] = gb;
  gate_of_site_[static_cast<std::size_t>(site_b)] = ga;
  if (ga >= 0) site_of_gate_[static_cast<std::size_t>(ga)] = site_b;
  if (gb >= 0) site_of_gate_[static_cast<std::size_t>(gb)] = site_a;
}

Placement Placement::ordered(const Netlist& netlist, std::int32_t rows, std::int32_t cols) {
  Placement p(rows, cols, netlist.gate_count());
  for (std::int32_t g = 0; g < netlist.gate_count(); ++g) {
    p.assign(g, g);
  }
  return p;
}

Placement Placement::random(const Netlist& netlist, std::int32_t rows, std::int32_t cols,
                            std::uint64_t seed) {
  Placement p(rows, cols, netlist.gate_count());
  std::vector<std::int32_t> sites(static_cast<std::size_t>(p.site_count()));
  for (std::int32_t s = 0; s < p.site_count(); ++s) sites[static_cast<std::size_t>(s)] = s;
  std::mt19937_64 rng(seed);
  std::shuffle(sites.begin(), sites.end(), rng);
  for (std::int32_t g = 0; g < netlist.gate_count(); ++g) {
    p.assign(g, sites[static_cast<std::size_t>(g)]);
  }
  return p;
}

namespace {

/// HPWL of one net under a placement.
double net_hpwl(const Net& net, const Placement& p, double row_weight) {
  std::int32_t min_c = std::numeric_limits<std::int32_t>::max();
  std::int32_t max_c = std::numeric_limits<std::int32_t>::min();
  std::int32_t min_r = min_c, max_r = max_c;
  int pins = 0;
  const auto visit = [&](std::int32_t gate) {
    const std::int32_t c = p.col_of(gate);
    const std::int32_t r = p.row_of(gate);
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
    min_r = std::min(min_r, r);
    max_r = std::max(max_r, r);
    ++pins;
  };
  if (net.driver_gate >= 0) visit(net.driver_gate);
  for (const std::int32_t sink : net.sink_gates) visit(sink);
  if (pins < 2) return 0.0;
  return static_cast<double>(max_c - min_c) +
         row_weight * static_cast<double>(max_r - min_r);
}

}  // namespace

double total_hpwl(const Netlist& netlist, const Placement& placement, double row_weight) {
  double total = 0.0;
  for (const Net& net : netlist.nets()) {
    total += net_hpwl(net, placement, row_weight);
  }
  return total;
}

double total_weighted_hpwl(const Netlist& netlist, const Placement& placement,
                           const std::vector<double>& net_weights, double row_weight) {
  double total = 0.0;
  for (std::int32_t n = 0; n < netlist.net_count(); ++n) {
    const double w = static_cast<std::size_t>(n) < net_weights.size()
                         ? net_weights[static_cast<std::size_t>(n)]
                         : 1.0;
    total += w * net_hpwl(netlist.nets()[static_cast<std::size_t>(n)], placement,
                          row_weight);
  }
  return total;
}

namespace {

PlaceResult anneal_impl(const Netlist& netlist, std::int32_t rows, std::int32_t cols,
                        const AnnealParams& params, const std::vector<double>* net_weights,
                        const Placement* start = nullptr) {
  if (!(params.cooling > 0.0 && params.cooling < 1.0)) {
    throw std::invalid_argument("cooling factor must be in (0, 1)");
  }
  if (start != nullptr && (start->rows() != rows || start->cols() != cols ||
                           start->gate_count() != netlist.gate_count())) {
    throw std::invalid_argument("warm-start placement does not match the grid/netlist");
  }
  Placement placement = start != nullptr ? *start : Placement::ordered(netlist, rows, cols);

  // Gate -> incident nets adjacency (each net once per gate).
  std::vector<std::vector<std::int32_t>> nets_of_gate(
      static_cast<std::size_t>(netlist.gate_count()));
  for (std::int32_t n = 0; n < netlist.net_count(); ++n) {
    const Net& net = netlist.nets()[static_cast<std::size_t>(n)];
    if (net.driver_gate >= 0) {
      nets_of_gate[static_cast<std::size_t>(net.driver_gate)].push_back(n);
    }
    for (const std::int32_t sink : net.sink_gates) {
      auto& list = nets_of_gate[static_cast<std::size_t>(sink)];
      if (list.empty() || list.back() != n) list.push_back(n);
    }
  }

  const auto weight_of = [net_weights](std::int32_t n) {
    return net_weights != nullptr && static_cast<std::size_t>(n) < net_weights->size()
               ? (*net_weights)[static_cast<std::size_t>(n)]
               : 1.0;
  };
  const auto objective = [&](const Placement& p) {
    return net_weights != nullptr
               ? total_weighted_hpwl(netlist, p, *net_weights, params.row_weight)
               : total_hpwl(netlist, p, params.row_weight);
  };

  const double initial = objective(placement);
  double current = initial;
  double temperature = params.initial_temperature > 0.0
                           ? params.initial_temperature
                           : std::max(initial / std::max(netlist.gate_count(), 1), 1.0);
  const double stop = temperature * params.stop_temperature_fraction;

  std::mt19937_64 rng(params.seed);
  std::uniform_int_distribution<std::int32_t> pick_gate(0, netlist.gate_count() - 1);
  std::uniform_int_distribution<std::int32_t> pick_site(0, placement.site_count() - 1);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  // Scratch for affected-net dedup.
  std::vector<std::int32_t> affected;
  std::vector<std::uint32_t> stamp(static_cast<std::size_t>(netlist.net_count()), 0);
  std::uint32_t tick = 0;

  PlaceResult result{std::move(placement), initial, initial, 0, 0};
  if (netlist.gate_count() < 2) return result;

  const auto cost_of_affected = [&](const std::vector<std::int32_t>& nets) {
    double sum = 0.0;
    for (const std::int32_t n : nets) {
      sum += weight_of(n) * net_hpwl(netlist.nets()[static_cast<std::size_t>(n)],
                                     result.placement, params.row_weight);
    }
    return sum;
  };

  while (temperature > stop) {
    const std::int64_t moves =
        static_cast<std::int64_t>(params.moves_per_temperature_per_gate) *
        netlist.gate_count();
    for (std::int64_t m = 0; m < moves; ++m) {
      const std::int32_t gate = pick_gate(rng);
      const std::int32_t from = result.placement.site_of(gate);
      const std::int32_t to = pick_site(rng);
      if (to == from) continue;
      const std::int32_t other = result.placement.gate_at(to);

      // Collect affected nets (both gates' nets, deduplicated).
      ++tick;
      affected.clear();
      for (const std::int32_t n : nets_of_gate[static_cast<std::size_t>(gate)]) {
        if (stamp[static_cast<std::size_t>(n)] != tick) {
          stamp[static_cast<std::size_t>(n)] = tick;
          affected.push_back(n);
        }
      }
      if (other >= 0) {
        for (const std::int32_t n : nets_of_gate[static_cast<std::size_t>(other)]) {
          if (stamp[static_cast<std::size_t>(n)] != tick) {
            stamp[static_cast<std::size_t>(n)] = tick;
            affected.push_back(n);
          }
        }
      }

      const double before = cost_of_affected(affected);
      result.placement.swap_sites(from, to);
      const double after = cost_of_affected(affected);
      const double delta = after - before;
      ++result.moves_tried;
      if (delta <= 0.0 || uni(rng) < std::exp(-delta / temperature)) {
        current += delta;
        ++result.moves_accepted;
      } else {
        result.placement.swap_sites(from, to);  // revert
      }
    }
    temperature *= params.cooling;
  }
  result.final_hpwl = objective(result.placement);
  return result;
}

}  // namespace

PlaceResult anneal_place(const Netlist& netlist, std::int32_t rows, std::int32_t cols,
                         const AnnealParams& params) {
  return anneal_impl(netlist, rows, cols, params, nullptr);
}

PlaceResult anneal_place_weighted(const Netlist& netlist, std::int32_t rows,
                                  std::int32_t cols, const std::vector<double>& net_weights,
                                  const AnnealParams& params) {
  return anneal_impl(netlist, rows, cols, params, &net_weights);
}

PlaceResult anneal_refine_weighted(const Netlist& netlist, const Placement& start,
                                   const std::vector<double>& net_weights,
                                   const AnnealParams& params) {
  if (start.gate_count() != netlist.gate_count()) {
    throw std::invalid_argument("warm-start placement does not match the netlist");
  }
  // Refinement: a cool schedule around the existing solution rather
  // than a melt-and-refreeze, so unrelated structure survives.
  AnnealParams refine = params;
  if (refine.initial_temperature <= 0.0) {
    const double scale =
        total_weighted_hpwl(netlist, start, net_weights, params.row_weight) /
        std::max(netlist.gate_count(), 1);
    refine.initial_temperature = std::max(scale * 0.1, 1e-6);
  }
  return anneal_impl(netlist, start.rows(), start.cols(), refine, &net_weights, &start);
}

}  // namespace nanocost::place
