#include "nanocost/place/placer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

#include "nanocost/exec/parallel.hpp"
#include "nanocost/exec/rng.hpp"
#include "nanocost/exec/seed.hpp"
#include "nanocost/obs/metrics.hpp"
#include "nanocost/obs/trace.hpp"
#include "nanocost/place/hpwl_cache.hpp"

namespace nanocost::place {

using netlist::Net;
using netlist::Netlist;

Placement::Placement(std::int32_t rows, std::int32_t cols, std::int32_t gate_count)
    : rows_(rows), cols_(cols) {
  if (rows_ < 1 || cols_ < 1) {
    throw std::invalid_argument("placement grid needs rows >= 1 and cols >= 1");
  }
  if (gate_count > site_count()) {
    throw std::invalid_argument("placement grid too small: " + std::to_string(gate_count) +
                                " gates, " + std::to_string(site_count()) + " sites");
  }
  site_of_gate_.assign(static_cast<std::size_t>(gate_count), -1);
  gate_of_site_.assign(static_cast<std::size_t>(site_count()), -1);
}

void Placement::assign(std::int32_t gate, std::int32_t site) {
  if (gate_of_site_.at(static_cast<std::size_t>(site)) != -1) {
    throw std::invalid_argument("site already occupied");
  }
  const std::int32_t old_site = site_of_gate_.at(static_cast<std::size_t>(gate));
  if (old_site >= 0) gate_of_site_[static_cast<std::size_t>(old_site)] = -1;
  site_of_gate_[static_cast<std::size_t>(gate)] = site;
  gate_of_site_[static_cast<std::size_t>(site)] = gate;
}

void Placement::swap_sites(std::int32_t site_a, std::int32_t site_b) {
  std::int32_t ga = gate_of_site_.at(static_cast<std::size_t>(site_a));
  std::int32_t gb = gate_of_site_.at(static_cast<std::size_t>(site_b));
  gate_of_site_[static_cast<std::size_t>(site_a)] = gb;
  gate_of_site_[static_cast<std::size_t>(site_b)] = ga;
  if (ga >= 0) site_of_gate_[static_cast<std::size_t>(ga)] = site_b;
  if (gb >= 0) site_of_gate_[static_cast<std::size_t>(gb)] = site_a;
}

Placement Placement::ordered(const Netlist& netlist, std::int32_t rows, std::int32_t cols) {
  Placement p(rows, cols, netlist.gate_count());
  for (std::int32_t g = 0; g < netlist.gate_count(); ++g) {
    p.assign(g, g);
  }
  return p;
}

Placement Placement::random(const Netlist& netlist, std::int32_t rows, std::int32_t cols,
                            std::uint64_t seed) {
  Placement p(rows, cols, netlist.gate_count());
  std::vector<std::int32_t> sites(static_cast<std::size_t>(p.site_count()));
  for (std::int32_t s = 0; s < p.site_count(); ++s) sites[static_cast<std::size_t>(s)] = s;
  // In-repo Fisher-Yates (std::shuffle's draw sequence is
  // implementation-defined, so it is not reproducible across standard
  // libraries).
  exec::SplitMix64 rng(seed);
  for (std::int32_t i = p.site_count() - 1; i > 0; --i) {
    const std::int32_t j = exec::bounded_i32(rng, i + 1);
    std::swap(sites[static_cast<std::size_t>(i)], sites[static_cast<std::size_t>(j)]);
  }
  for (std::int32_t g = 0; g < netlist.gate_count(); ++g) {
    p.assign(g, sites[static_cast<std::size_t>(g)]);
  }
  return p;
}

namespace {

/// HPWL of one net under a placement.
double net_hpwl(const Net& net, const Placement& p, double row_weight) {
  std::int32_t min_c = std::numeric_limits<std::int32_t>::max();
  std::int32_t max_c = std::numeric_limits<std::int32_t>::min();
  std::int32_t min_r = min_c, max_r = max_c;
  int pins = 0;
  const auto visit = [&](std::int32_t gate) {
    const std::int32_t c = p.col_of(gate);
    const std::int32_t r = p.row_of(gate);
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
    min_r = std::min(min_r, r);
    max_r = std::max(max_r, r);
    ++pins;
  };
  if (net.driver_gate >= 0) visit(net.driver_gate);
  for (const std::int32_t sink : net.sink_gates) visit(sink);
  if (pins < 2) return 0.0;
  return static_cast<double>(max_c - min_c) +
         row_weight * static_cast<double>(max_r - min_r);
}

}  // namespace

double total_hpwl(const Netlist& netlist, const Placement& placement, double row_weight) {
  double total = 0.0;
  for (const Net& net : netlist.nets()) {
    total += net_hpwl(net, placement, row_weight);
  }
  return total;
}

double total_weighted_hpwl(const Netlist& netlist, const Placement& placement,
                           const std::vector<double>& net_weights, double row_weight) {
  double total = 0.0;
  for (std::int32_t n = 0; n < netlist.net_count(); ++n) {
    const double w = static_cast<std::size_t>(n) < net_weights.size()
                         ? net_weights[static_cast<std::size_t>(n)]
                         : 1.0;
    total += w * net_hpwl(netlist.nets()[static_cast<std::size_t>(n)], placement,
                          row_weight);
  }
  return total;
}

namespace {

/// NANOCOST_PLACE_CHECK: 0 = off, otherwise the cross-validation move
/// interval (an unparsable value falls back to every 8192 moves).
std::int64_t place_check_interval() {
  const char* env = std::getenv("NANOCOST_PLACE_CHECK");
  if (env == nullptr || *env == '\0') return 0;
  const long long parsed = std::atoll(env);
  return parsed > 0 ? parsed : 8192;
}

PlaceResult anneal_impl(const Netlist& netlist, std::int32_t rows, std::int32_t cols,
                        const AnnealParams& params, const std::vector<double>* net_weights,
                        const Placement* start = nullptr) {
  if (!(params.cooling > 0.0 && params.cooling < 1.0)) {
    throw std::invalid_argument("cooling factor must be in (0, 1)");
  }
  if (start != nullptr && (start->rows() != rows || start->cols() != cols ||
                           start->gate_count() != netlist.gate_count())) {
    throw std::invalid_argument("warm-start placement does not match the grid/netlist");
  }
  obs::ObsSpan anneal_span("place.anneal");
  Placement placement = start != nullptr ? *start : Placement::ordered(netlist, rows, cols);

  const auto objective = [&](const Placement& p) {
    return net_weights != nullptr
               ? total_weighted_hpwl(netlist, p, *net_weights, params.row_weight)
               : total_hpwl(netlist, p, params.row_weight);
  };

  // The incremental per-net bounding-box cache; its construction-time
  // total is bitwise-equal to the full recomputation (same per-net
  // values, same summation order).
  HpwlCache cache(netlist, placement, params.row_weight, net_weights);
  const double initial = cache.total();
  double current = initial;
  double temperature = params.initial_temperature > 0.0
                           ? params.initial_temperature
                           : std::max(initial / std::max(netlist.gate_count(), 1), 1.0);
  const double stop = temperature * params.stop_temperature_fraction;

  PlaceResult result{std::move(placement), initial, initial, 0, 0};
  if (netlist.gate_count() < 2) return result;

  exec::SplitMix64 rng(params.seed);
  const std::int32_t gate_count = netlist.gate_count();
  const std::int32_t site_count = result.placement.site_count();
  const std::int64_t check_every = place_check_interval();

  // Flat occupancy + site-coordinate tables: the loop never touches
  // the Placement (bounds-checked, divides per access); the winning
  // layout is written back once at the end.
  std::vector<std::int32_t> site_of(static_cast<std::size_t>(gate_count));
  std::vector<std::int32_t> gate_of(static_cast<std::size_t>(site_count), -1);
  for (std::int32_t g = 0; g < gate_count; ++g) {
    const std::int32_t s = result.placement.site_of(g);
    site_of[static_cast<std::size_t>(g)] = s;
    gate_of[static_cast<std::size_t>(s)] = g;
  }
  struct SiteRC {
    std::int32_t r, c;
  };
  std::vector<SiteRC> site_rc(static_cast<std::size_t>(site_count));
  for (std::int32_t s = 0; s < site_count; ++s) {
    site_rc[static_cast<std::size_t>(s)] = SiteRC{s / cols, s % cols};
  }
  const auto rebuild_placement = [&]() {
    Placement p(rows, cols, gate_count);
    for (std::int32_t g = 0; g < gate_count; ++g) {
      p.assign(g, site_of[static_cast<std::size_t>(g)]);
    }
    return p;
  };

  // With unit weights and an integral row weight every delta is an
  // integer-valued double, so each level's acceptance probabilities
  // exp(-d/T) can be tabulated once instead of calling exp per move;
  // the table reproduces std::exp(-delta/T) bit-for-bit, so accept
  // decisions (and results) are unchanged.
  const bool integer_deltas =
      net_weights == nullptr && params.row_weight == std::floor(params.row_weight);
  std::vector<double> accept_table;
  std::int64_t tried = 0;
  std::int64_t accepted = 0;

  while (temperature > stop) {
    obs::ObsSpan level_span("place.level");
    // exp(-delta/T) below this delta/T is ~1e-14: reject without
    // drawing (the acceptance probability is unobservably small).
    const double certain_reject = 32.0 * temperature;
    if (integer_deltas) {
      const auto entries = static_cast<std::size_t>(std::min(certain_reject, 65536.0)) + 1;
      accept_table.resize(entries);
      for (std::size_t d = 0; d < entries; ++d) {
        accept_table[d] = std::exp(-static_cast<double>(d) / temperature);
      }
    }
    const std::int64_t moves =
        static_cast<std::int64_t>(params.moves_per_temperature_per_gate) * gate_count;
    for (std::int64_t m = 0; m < moves; ++m) {
      const auto [gate, to] = exec::bounded_i32_pair(rng, gate_count, site_count);
      const std::int32_t from = site_of[static_cast<std::size_t>(gate)];
      if (to == from) continue;
      const std::int32_t other = gate_of[static_cast<std::size_t>(to)];

      const SiteRC rc = site_rc[static_cast<std::size_t>(to)];
      const double delta = cache.peek_swap(gate, rc.r, rc.c, other);
      ++tried;
      bool accept;
      if (delta <= 0.0) {
        accept = true;
      } else if (delta >= certain_reject) {
        accept = false;
      } else {
        const auto di = static_cast<std::size_t>(delta);
        const double threshold =
            integer_deltas && static_cast<double>(di) == delta && di < accept_table.size()
                ? accept_table[di]
                : std::exp(-delta / temperature);
        accept = exec::uniform_unit(rng) < threshold;
      }
      if (accept) {
        cache.commit();
        site_of[static_cast<std::size_t>(gate)] = to;
        gate_of[static_cast<std::size_t>(to)] = gate;
        gate_of[static_cast<std::size_t>(from)] = other;
        if (other >= 0) site_of[static_cast<std::size_t>(other)] = from;
        current += delta;
        ++accepted;
      } else {
        cache.discard();
      }
      if (check_every > 0 && tried % check_every == 0) {
        const double exact = objective(rebuild_placement());
        const double cached = cache.resum();
        if (std::abs(cached - exact) > 1e-6 * std::max(std::abs(exact), 1.0)) {
          throw std::logic_error("NANOCOST_PLACE_CHECK: incremental HPWL cache (" +
                                 std::to_string(cached) + ") diverged from recompute (" +
                                 std::to_string(exact) + ")");
        }
      }
    }
    // The accepted-move accumulator drifts over millions of += delta;
    // resync it from the cache's exact box re-sum each cooling step.
    const double resynced = cache.resum();
    assert(std::abs(current - resynced) <=
           1e-6 * std::max(std::abs(resynced), 1.0) + 1e-9);
    current = resynced;
    temperature *= params.cooling;
  }
  (void)current;
  result.moves_tried = tried;
  result.moves_accepted = accepted;
  result.placement = rebuild_placement();
  result.final_hpwl = objective(result.placement);
  // Totals are folded in once per anneal, not per move: the 54 ns/move
  // inner loop stays untouched even with metrics on.
  anneal_span.arg("tried", static_cast<std::uint64_t>(tried));
  anneal_span.arg("accepted", static_cast<std::uint64_t>(accepted));
  if (obs::metrics_enabled()) {
    static obs::Counter& anneals = obs::counter("place.anneals");
    static obs::Counter& moves_tried = obs::counter("place.moves_tried");
    static obs::Counter& moves_accepted = obs::counter("place.moves_accepted");
    static obs::Counter& rejects = obs::counter("place.rejects_write_free");
    anneals.add();
    moves_tried.add(static_cast<std::uint64_t>(tried));
    moves_accepted.add(static_cast<std::uint64_t>(accepted));
    rejects.add(static_cast<std::uint64_t>(tried - accepted));
  }
  return result;
}

}  // namespace

PlaceResult anneal_place(const Netlist& netlist, std::int32_t rows, std::int32_t cols,
                         const AnnealParams& params) {
  return anneal_impl(netlist, rows, cols, params, nullptr);
}

namespace {

struct MultistartOutcome {
  MultistartResult result;
  exec::LoopStatus status;
};

MultistartOutcome multistart_impl(const Netlist& netlist, std::int32_t rows,
                                  std::int32_t cols, std::int32_t starts,
                                  const AnnealParams& params, exec::ThreadPool* pool,
                                  const robust::CancelToken& token) {
  if (starts < 1) throw std::invalid_argument("multi-start needs starts >= 1");
  obs::ObsSpan span("place.multistart");
  span.arg("starts", static_cast<std::uint64_t>(starts));
  std::vector<std::optional<PlaceResult>> results(static_cast<std::size_t>(starts));
  // One task per start; each start's seed and initial placement are
  // pure functions of (params.seed, start index), so the fan-out is
  // bitwise thread-count-invariant.
  const exec::LoopStatus status = exec::parallel_for_cancellable(
      pool, starts, 1, token, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          obs::ObsSpan start_span("place.start");
          start_span.arg("start", static_cast<std::uint64_t>(i));
          AnnealParams task = params;
          task.seed =
              exec::SeedSequence::for_task(params.seed, static_cast<std::uint64_t>(i));
          if (i == 0) {
            results[static_cast<std::size_t>(i)] =
                anneal_impl(netlist, rows, cols, task, nullptr);
          } else {
            const Placement random_start =
                Placement::random(netlist, rows, cols, exec::splitmix64(task.seed));
            results[static_cast<std::size_t>(i)] =
                anneal_impl(netlist, rows, cols, task, nullptr, &random_start);
          }
        }
      });

  const std::int32_t usable = static_cast<std::int32_t>(status.frontier);
  if (usable == 0) {
    // Nothing finished before the deadline: fall back to the ordered
    // placement so the caller still holds a legal result.
    Placement ordered = Placement::ordered(netlist, rows, cols);
    const double hpwl = total_hpwl(netlist, ordered, params.row_weight);
    return MultistartOutcome{
        MultistartResult{PlaceResult{std::move(ordered), hpwl, hpwl, 0, 0}, -1, 0, {}},
        status};
  }
  std::vector<double> hpwls;
  hpwls.reserve(static_cast<std::size_t>(usable));
  std::int32_t best = 0;
  for (std::int32_t i = 0; i < usable; ++i) {
    const PlaceResult& r = *results[static_cast<std::size_t>(i)];
    hpwls.push_back(r.final_hpwl);
    // (final_hpwl, start index) tie-break: strictly-better wins, the
    // lowest index keeps ties.
    if (r.final_hpwl < results[static_cast<std::size_t>(best)]->final_hpwl) best = i;
  }
  return MultistartOutcome{MultistartResult{std::move(*results[static_cast<std::size_t>(best)]),
                                            best, usable, std::move(hpwls)},
                           status};
}

}  // namespace

MultistartResult anneal_place_multistart(const Netlist& netlist, std::int32_t rows,
                                         std::int32_t cols, std::int32_t starts,
                                         const AnnealParams& params,
                                         exec::ThreadPool* pool) {
  // An invalid token never cancels; the frontier spans every start.
  return multistart_impl(netlist, rows, cols, starts, params, pool,
                         robust::CancelToken{})
      .result;
}

PartialMultistart anneal_place_multistart_partial(const Netlist& netlist, std::int32_t rows,
                                                  std::int32_t cols, std::int32_t starts,
                                                  const AnnealParams& params,
                                                  exec::ThreadPool* pool) {
  MultistartOutcome o = multistart_impl(netlist, rows, cols, starts, params, pool,
                                        robust::current_cancel_token());
  return PartialMultistart{std::move(o.result), o.status.completeness(),
                           static_cast<std::int32_t>(o.status.frontier),
                           o.status.cancelled};
}

PlaceResult anneal_place_weighted(const Netlist& netlist, std::int32_t rows,
                                  std::int32_t cols, const std::vector<double>& net_weights,
                                  const AnnealParams& params) {
  return anneal_impl(netlist, rows, cols, params, &net_weights);
}

PlaceResult anneal_refine_weighted(const Netlist& netlist, const Placement& start,
                                   const std::vector<double>& net_weights,
                                   const AnnealParams& params) {
  if (start.gate_count() != netlist.gate_count()) {
    throw std::invalid_argument("warm-start placement does not match the netlist");
  }
  // Refinement: a cool schedule around the existing solution rather
  // than a melt-and-refreeze, so unrelated structure survives.
  AnnealParams refine = params;
  if (refine.initial_temperature <= 0.0) {
    const double scale =
        total_weighted_hpwl(netlist, start, net_weights, params.row_weight) /
        std::max(netlist.gate_count(), 1);
    refine.initial_temperature = std::max(scale * 0.1, 1e-6);
  }
  return anneal_impl(netlist, start.rows(), start.cols(), refine, &net_weights, &start);
}

}  // namespace nanocost::place
