#include "nanocost/place/synthesis.hpp"

#include <algorithm>
#include <cmath>

#include "nanocost/layout/generators.hpp"

namespace nanocost::place {

using layout::Coord;

SynthesisResult synthesize(const netlist::Netlist& netlist, const Placement& placement,
                           const SynthesisParams& params) {
  auto lib = std::make_shared<layout::Library>();
  const layout::StdCellMasters masters = layout::make_stdcell_masters(*lib);
  const auto master_of = [&](netlist::GateType type) -> const layout::Cell* {
    switch (type) {
      case netlist::GateType::kInv: return masters.inv;
      case netlist::GateType::kNand2: return masters.nand2;
      case netlist::GateType::kNor2: return masters.nor2;
      case netlist::GateType::kDff: return masters.dff;
    }
    return masters.inv;
  };

  // Measured wiring demand sizes the routing channels: more HPWL needs
  // more tracks.  Track pitch is 4 half-lambda units (2 lambda).
  const double hpwl = total_hpwl(netlist, placement);
  const double row_capacity_sites = static_cast<double>(placement.cols());
  const double tracks_needed =
      hpwl / std::max(row_capacity_sites * placement.rows(), 1.0) *
      params.tracks_per_channel_row;
  const Coord channel = std::max<Coord>(
      params.min_channel, static_cast<Coord>(std::llround(tracks_needed)) * 4);

  constexpr Coord kRowHeight = 32;
  const Coord row_pitch = kRowHeight + channel;

  layout::Cell& top = lib->create_cell("synthesized_top");

  // Pack each placement row left-to-right with real cell widths,
  // preserving the placement's column order.
  std::vector<std::vector<std::int32_t>> gates_in_row(
      static_cast<std::size_t>(placement.rows()));
  for (std::int32_t g = 0; g < netlist.gate_count(); ++g) {
    gates_in_row[static_cast<std::size_t>(placement.row_of(g))].push_back(g);
  }
  Coord max_x = 0;
  for (std::int32_t r = 0; r < placement.rows(); ++r) {
    auto& row_gates = gates_in_row[static_cast<std::size_t>(r)];
    std::sort(row_gates.begin(), row_gates.end(),
              [&](std::int32_t a, std::int32_t b) {
                return placement.col_of(a) < placement.col_of(b);
              });
    Coord x = 0;
    const Coord y = r * row_pitch;
    const bool flipped = (r % 2) == 1;
    for (const std::int32_t g : row_gates) {
      const layout::Cell* master =
          master_of(netlist.gates()[static_cast<std::size_t>(g)].type);
      layout::Instance inst;
      inst.cell = master;
      inst.transform.orientation =
          flipped ? layout::Orientation::kMX : layout::Orientation::kR0;
      inst.transform.dx = x;
      inst.transform.dy = flipped ? y + kRowHeight : y;
      top.add_instance(inst);
      x += master->bounding_box().width();
    }
    max_x = std::max(max_x, x);
  }

  // Channel metal: horizontal metal2 tracks on a 8-unit pitch.
  if (channel >= 8 && max_x > 0) {
    for (std::int32_t r = 0; r < placement.rows(); ++r) {
      const Coord ch0 = r * row_pitch + kRowHeight;
      for (Coord t = ch0 + 2; t + 2 <= ch0 + channel; t += 8) {
        top.add_rect(layout::Rect{layout::Layer::kMetal2, 0, t, max_x, t + 2});
      }
    }
  }

  SynthesisResult result{layout::Design{lib, &top, params.lambda}, hpwl, channel};
  return result;
}

}  // namespace nanocost::place
