#include "nanocost/process/interconnect.hpp"

#include <cmath>

#include "nanocost/units/quantity.hpp"

namespace nanocost::process {

namespace {
constexpr double kAnchorLambdaUm = 0.25;
constexpr double kAnchorROhmPerMm = 60.0;
constexpr double kAnchorCPfPerMm = 0.20;
constexpr double kAnchorGateDelayPs = 80.0;
}  // namespace

InterconnectModel::InterconnectModel(double r_ohm_per_mm, double c_pf_per_mm,
                                     double gate_delay_ps)
    : r_(units::require_positive(r_ohm_per_mm, "wire resistance")),
      c_(units::require_positive(c_pf_per_mm, "wire capacitance")),
      gate_delay_ps_(units::require_positive(gate_delay_ps, "gate delay")) {}

InterconnectModel InterconnectModel::for_feature_size(units::Micrometers lambda) {
  units::require_positive(lambda, "lambda");
  const double s = kAnchorLambdaUm / lambda.value();  // > 1 for finer nodes
  // Cross-section shrinks in both dimensions: R/mm ~ s^2.  Lateral
  // coupling offsets plate-area loss: C/mm ~ constant.  Gate delay
  // scales down with lambda.
  return InterconnectModel{kAnchorROhmPerMm * s * s, kAnchorCPfPerMm,
                           kAnchorGateDelayPs / s};
}

double InterconnectModel::wire_delay_ps(double length_mm) const {
  units::require_non_negative(length_mm, "wire length");
  // 0.5 * R * C * L^2; R in ohm/mm, C in pF/mm -> ohm*pF = ps.
  return 0.5 * r_ * c_ * length_mm * length_mm;
}

double InterconnectModel::critical_length_mm() const {
  // Solve 0.5 R C L^2 = gate delay.
  return std::sqrt(2.0 * gate_delay_ps_ / (r_ * c_));
}

double InterconnectModel::repeated_wire_delay_ps(double length_mm) const {
  units::require_non_negative(length_mm, "wire length");
  const double segment = critical_length_mm();
  if (length_mm <= segment) return wire_delay_ps(length_mm);
  // n segments of length L/n plus (n-1) repeater gate delays, with n
  // chosen to balance: optimal n ~ L / segment.
  const double n = std::ceil(length_mm / segment);
  const double per_segment = wire_delay_ps(length_mm / n);
  return n * per_segment + (n - 1.0) * gate_delay_ps_;
}

}  // namespace nanocost::process
