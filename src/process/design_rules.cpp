#include "nanocost/process/design_rules.hpp"

#include <algorithm>

#include "nanocost/units/quantity.hpp"

namespace nanocost::process {

namespace {

LayerRule rule_for(layout::Layer layer) {
  using layout::Layer;
  switch (layer) {
    case Layer::kDiffusion: return {1.0, 1.0};
    case Layer::kPoly: return {1.0, 1.0};
    case Layer::kContact: return {1.0, 1.0};
    case Layer::kMetal1: return {1.0, 1.0};
    case Layer::kVia1: return {1.0, 1.0};
    case Layer::kMetal2: return {1.0, 1.0};
    case Layer::kVia2: return {1.0, 1.0};
    case Layer::kMetal3: return {1.5, 1.5};
    case Layer::kVia3: return {1.5, 1.5};
    case Layer::kMetal4: return {1.5, 1.5};
    case Layer::kVia4: return {2.0, 2.0};
    case Layer::kMetal5: return {2.0, 2.0};
    case Layer::kVia5: return {2.0, 2.0};
    case Layer::kMetal6: return {3.0, 3.0};
  }
  return {1.0, 1.0};
}

}  // namespace

DesignRules::DesignRules(units::Micrometers lambda)
    : lambda_(units::require_positive(lambda, "lambda")) {
  for (int i = 0; i < layout::kLayerCount; ++i) {
    rules_[i] = rule_for(static_cast<layout::Layer>(i));
  }
}

DesignRules DesignRules::scalable_cmos(units::Micrometers lambda) {
  return DesignRules{lambda};
}

const LayerRule& DesignRules::rule(layout::Layer layer) const noexcept {
  return rules_[static_cast<int>(layer)];
}

units::Micrometers DesignRules::min_width(layout::Layer layer) const noexcept {
  return lambda_ * rule(layer).min_width_lambda;
}

units::Micrometers DesignRules::min_spacing(layout::Layer layer) const noexcept {
  return lambda_ * rule(layer).min_spacing_lambda;
}

units::Micrometers DesignRules::min_pitch(layout::Layer layer) const noexcept {
  return lambda_ * rule(layer).min_pitch_lambda();
}

double DesignRules::tracks_per_mm(layout::Layer layer) const noexcept {
  return 1000.0 / min_pitch(layer).value();
}

std::int64_t DesignRules::count_width_violations(
    const std::vector<layout::Rect>& rects) const noexcept {
  std::int64_t violations = 0;
  for (const layout::Rect& r : rects) {
    const double min_units =
        rule(r.layer).min_width_lambda * static_cast<double>(layout::kUnitsPerLambda);
    const double w = static_cast<double>(std::min(r.width(), r.height()));
    if (w + 1e-9 < min_units) ++violations;
  }
  return violations;
}

}  // namespace nanocost::process
