#include "nanocost/process/drc.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace nanocost::process {

namespace {

using layout::Coord;
using layout::Rect;

/// Euclidean gap between two rectangles (0 when touching/overlapping).
double box_gap(const Rect& a, const Rect& b) {
  const auto axis_gap = [](Coord a0, Coord a1, Coord b0, Coord b1) -> double {
    if (b0 > a1) return static_cast<double>(b0 - a1);
    if (a0 > b1) return static_cast<double>(a0 - b1);
    return 0.0;
  };
  const double dx = axis_gap(a.x0, a.x1, b.x0, b.x1);
  const double dy = axis_gap(a.y0, a.y1, b.y0, b.y1);
  return std::hypot(dx, dy);
}

/// Spatial hash over one layer's rectangles for neighborhood queries.
class LayerIndex final {
 public:
  LayerIndex(std::vector<const Rect*> rects, Coord tile) : rects_(std::move(rects)),
                                                           tile_(std::max<Coord>(tile, 1)) {
    for (std::size_t i = 0; i < rects_.size(); ++i) {
      visit_tiles(*rects_[i], 0, [&](std::int64_t key) { buckets_[key].push_back(i); });
    }
  }

  /// Calls fn(index) for each rect whose expanded bbox tile-overlaps
  /// `r` expanded by `margin`; may repeat candidates (caller dedupes by
  /// index ordering).
  template <typename Fn>
  void for_candidates(const Rect& r, Coord margin, Fn&& fn) const {
    visit_tiles(r, margin, [&](std::int64_t key) {
      const auto it = buckets_.find(key);
      if (it == buckets_.end()) return;
      for (const std::size_t i : it->second) fn(i);
    });
  }

  [[nodiscard]] const Rect& rect(std::size_t i) const { return *rects_[i]; }
  [[nodiscard]] std::size_t size() const { return rects_.size(); }

 private:
  template <typename Fn>
  void visit_tiles(const Rect& r, Coord margin, Fn&& fn) const {
    const std::int64_t tx0 = (r.x0 - margin) / tile_ - 1;
    const std::int64_t tx1 = (r.x1 + margin) / tile_ + 1;
    const std::int64_t ty0 = (r.y0 - margin) / tile_ - 1;
    const std::int64_t ty1 = (r.y1 + margin) / tile_ + 1;
    for (std::int64_t ty = ty0; ty <= ty1; ++ty) {
      for (std::int64_t tx = tx0; tx <= tx1; ++tx) {
        fn(ty * 1000003 + tx);
      }
    }
  }

  std::vector<const Rect*> rects_;
  Coord tile_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> buckets_;
};

}  // namespace

DrcResult check_rules(const std::vector<Rect>& rects, const DesignRules& rules,
                      std::size_t max_reported) {
  DrcResult result;
  result.rects_checked = static_cast<std::int64_t>(rects.size());
  result.width_violations = rules.count_width_violations(rects);

  // Bucket rectangles by layer.
  std::vector<std::vector<const Rect*>> by_layer(layout::kLayerCount);
  for (const Rect& r : rects) {
    by_layer[static_cast<std::size_t>(r.layer)].push_back(&r);
  }

  for (int l = 0; l < layout::kLayerCount; ++l) {
    auto& layer_rects = by_layer[static_cast<std::size_t>(l)];
    if (layer_rects.size() < 2) continue;
    const auto layer = static_cast<layout::Layer>(l);
    const double spacing_units = rules.rule(layer).min_spacing_lambda *
                                 static_cast<double>(layout::kUnitsPerLambda);
    const auto margin = static_cast<Coord>(std::ceil(spacing_units));

    // Tile a bit larger than a typical rect + margin.
    Coord mean_extent = 0;
    for (const Rect* r : layer_rects) mean_extent += std::max(r->width(), r->height());
    mean_extent /= static_cast<Coord>(layer_rects.size());
    const LayerIndex index(layer_rects, mean_extent + 2 * margin);

    std::vector<char> seen(index.size(), 0);
    for (std::size_t i = 0; i < index.size(); ++i) {
      const Rect& a = index.rect(i);
      std::vector<std::size_t> candidates;
      index.for_candidates(a, margin, [&](std::size_t j) {
        if (j > i && !seen[j]) {
          seen[j] = 1;
          candidates.push_back(j);
        }
      });
      for (const std::size_t j : candidates) {
        seen[j] = 0;  // reset for the next query
        const Rect& b = index.rect(j);
        const double gap = box_gap(a, b);
        // Touching/overlapping rectangles are connected shapes, legal.
        if (gap > 0.0 && gap + 1e-9 < spacing_units) {
          ++result.spacing_violation_count;
          if (result.spacing_violations.size() < max_reported) {
            SpacingViolation v;
            v.a = a;
            v.b = b;
            v.gap_lambda = gap / static_cast<double>(layout::kUnitsPerLambda);
            v.required_lambda = rules.rule(layer).min_spacing_lambda;
            result.spacing_violations.push_back(v);
          }
        }
      }
    }
  }
  return result;
}

DrcResult check_rules(const layout::Cell& top, const DesignRules& rules,
                      std::size_t max_reported) {
  std::vector<Rect> rects;
  rects.reserve(static_cast<std::size_t>(top.flat_rect_count()));
  layout::for_each_flat_rect(top, layout::Transform{},
                             [&](const Rect& r) { rects.push_back(r); });
  return check_rules(rects, rules, max_reported);
}

}  // namespace nanocost::process
