#include "nanocost/process/prediction.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "nanocost/units/quantity.hpp"

namespace nanocost::process {

namespace {

double standard_normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

PredictionModel::PredictionModel(units::Micrometers lambda, PredictionParams params)
    : lambda_(units::require_positive(lambda, "lambda")), params_(params) {
  units::require_positive(params_.interaction_radius, "interaction radius");
  units::require_positive(params_.base_sigma, "base sigma");
  units::require_positive(params_.sigma_exponent, "sigma exponent");
  units::require_positive(params_.margin, "margin");
}

double PredictionModel::neighborhood_cells() const {
  const double radius_lambda =
      params_.interaction_radius.to_micrometers().value() / lambda_.value();
  const double cells = std::numbers::pi * radius_lambda * radius_lambda;
  return std::max(cells, 1.0);
}

double PredictionModel::estimate_sigma() const {
  return params_.base_sigma * std::pow(neighborhood_cells(), params_.sigma_exponent);
}

double PredictionModel::iteration_success_probability(double margin) const {
  units::require_positive(margin, "margin");
  // One-sided: the realized parameter must land under target + margin.
  return standard_normal_cdf(margin / estimate_sigma());
}

double PredictionModel::iteration_success_probability() const {
  return iteration_success_probability(params_.margin);
}

double PredictionModel::expected_iterations(double margin) const {
  const double p = iteration_success_probability(margin);
  if (p <= 0.0) {
    throw std::domain_error("prediction model: success probability underflowed");
  }
  return 1.0 / p;
}

double PredictionModel::expected_iterations() const {
  return expected_iterations(params_.margin);
}

cost::DesignCostParams PredictionModel::calibrate_design_cost(
    const cost::DesignCostParams& base, units::Micrometers reference_lambda) const {
  const PredictionModel reference(reference_lambda, params_);
  cost::DesignCostParams out = base;
  out.a0 *= expected_iterations() / reference.expected_iterations();
  return out;
}

double PredictionModel::sigma_with_regularity(double regular_share) const {
  if (!(regular_share >= 0.0 && regular_share <= 1.0)) {
    throw std::domain_error("regular share must be in [0, 1]");
  }
  // Variances add: only the non-regular share contributes estimate
  // error; the regular share is precharacterized (measured).
  return estimate_sigma() * std::sqrt(1.0 - regular_share);
}

}  // namespace nanocost::process
