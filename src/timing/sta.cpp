#include "nanocost/timing/sta.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

#include "nanocost/netlist/estimate.hpp"

namespace nanocost::timing {

using netlist::Gate;
using netlist::GateType;
using netlist::Net;
using netlist::Netlist;

namespace {

/// Shared STA core: `wire_delay_ps(net_id)` supplies interconnect
/// delays; gate ids are a topological order by construction (gates may
/// only reference already-existing nets).
TimingResult run_sta(const Netlist& nl, const TimingParams& params,
                     const std::function<double(std::int32_t)>& wire_delay_ps) {
  const process::InterconnectModel wires =
      process::InterconnectModel::for_feature_size(params.lambda);
  const double unit_gate_delay = wires.gate_delay_ps();

  TimingResult result;
  result.net_arrival_ps.assign(static_cast<std::size_t>(nl.net_count()), 0.0);
  // For path recovery: the input net that set each gate's output arrival.
  std::vector<std::int32_t> critical_input(static_cast<std::size_t>(nl.gate_count()), -1);

  for (std::int32_t g = 0; g < nl.gate_count(); ++g) {
    const Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
    const double gate_delay =
        params.type_delay[static_cast<std::size_t>(gate.type)] * unit_gate_delay;
    double launch = 0.0;
    if (gate.type != GateType::kDff) {
      // Combinational: latest input arrival plus its wire.
      for (const std::int32_t in : gate.input_nets) {
        const double t =
            result.net_arrival_ps[static_cast<std::size_t>(in)] + wire_delay_ps(in);
        if (t >= launch) {
          launch = t;
          critical_input[static_cast<std::size_t>(g)] = in;
        }
      }
    }
    // DFF outputs launch fresh paths at clk->q (their inputs terminate
    // paths, handled below).
    result.net_arrival_ps[static_cast<std::size_t>(gate.output_net)] =
        launch + gate_delay;
  }

  // Endpoints: DFF data/clock pins and unloaded nets.
  double best = 0.0;
  std::int32_t best_net = -1;
  const auto consider = [&](std::int32_t net, double extra_wire) {
    const double t = result.net_arrival_ps[static_cast<std::size_t>(net)] + extra_wire;
    if (t > best) {
      best = t;
      best_net = net;
    }
  };
  for (const Gate& gate : nl.gates()) {
    if (gate.type == GateType::kDff) {
      for (const std::int32_t in : gate.input_nets) {
        consider(in, wire_delay_ps(in));
      }
    }
  }
  for (std::int32_t n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.nets()[static_cast<std::size_t>(n)];
    if (net.sink_gates.empty() && net.driver_gate >= 0) {
      consider(n, 0.0);
    }
  }
  result.critical_path_ps = best;

  // Backtrack the critical path.
  std::int32_t net = best_net;
  while (net >= 0) {
    const std::int32_t driver = nl.nets()[static_cast<std::size_t>(net)].driver_gate;
    if (driver < 0) break;  // reached a primary input
    result.critical_path.push_back(driver);
    const Gate& gate = nl.gates()[static_cast<std::size_t>(driver)];
    result.total_gate_delay_ps +=
        params.type_delay[static_cast<std::size_t>(gate.type)] * unit_gate_delay;
    net = critical_input[static_cast<std::size_t>(driver)];
  }
  std::reverse(result.critical_path.begin(), result.critical_path.end());
  result.total_wire_delay_ps = result.critical_path_ps - result.total_gate_delay_ps;
  return result;
}

}  // namespace

TimingResult analyze_placed(const Netlist& netlist, const place::Placement& placement,
                            const TimingParams& params) {
  const process::InterconnectModel wires =
      process::InterconnectModel::for_feature_size(params.lambda);
  // Per-net HPWL in site units -> mm -> repeated-wire delay.
  const auto wire_delay = [&](std::int32_t net_id) {
    const Net& net = netlist.nets()[static_cast<std::size_t>(net_id)];
    std::int32_t min_c = std::numeric_limits<std::int32_t>::max(), max_c = -1;
    std::int32_t min_r = min_c, max_r = -1;
    int pins = 0;
    const auto visit = [&](std::int32_t gate) {
      min_c = std::min(min_c, placement.col_of(gate));
      max_c = std::max(max_c, placement.col_of(gate));
      min_r = std::min(min_r, placement.row_of(gate));
      max_r = std::max(max_r, placement.row_of(gate));
      ++pins;
    };
    if (net.driver_gate >= 0) visit(net.driver_gate);
    for (const std::int32_t sink : net.sink_gates) visit(sink);
    if (pins < 2) return 0.0;
    const double hpwl_sites = static_cast<double>(max_c - min_c) +
                              params.row_weight * static_cast<double>(max_r - min_r);
    const double length_mm = hpwl_sites * params.site_pitch_um / 1000.0;
    return wires.repeated_wire_delay_ps(length_mm);
  };
  return run_sta(netlist, params, wire_delay);
}

TimingResult analyze_estimated(const Netlist& netlist, double sites,
                               const TimingParams& params) {
  const process::InterconnectModel wires =
      process::InterconnectModel::for_feature_size(params.lambda);
  const double avg_sites = netlist::estimate_average_net_length(netlist, sites);
  const double length_mm = avg_sites * params.site_pitch_um / 1000.0;
  const double per_net = wires.repeated_wire_delay_ps(length_mm);
  const auto wire_delay = [&, per_net](std::int32_t net_id) {
    const Net& net = netlist.nets()[static_cast<std::size_t>(net_id)];
    return net.pin_count() >= 2 ? per_net : 0.0;
  };
  return run_sta(netlist, params, wire_delay);
}

double closure_gap(const TimingResult& estimated, const TimingResult& placed) {
  if (estimated.critical_path_ps <= 0.0) {
    throw std::invalid_argument("estimated critical path must be positive");
  }
  return (placed.critical_path_ps - estimated.critical_path_ps) /
         estimated.critical_path_ps;
}

}  // namespace nanocost::timing
