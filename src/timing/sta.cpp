#include "nanocost/timing/sta.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "nanocost/netlist/estimate.hpp"
#include "nanocost/obs/metrics.hpp"
#include "nanocost/obs/trace.hpp"

namespace nanocost::timing {

using netlist::Gate;
using netlist::GateType;
using netlist::Net;
using netlist::Netlist;

TimingAnalyzer::TimingAnalyzer(const Netlist& netlist, const TimingParams& params)
    : netlist_(netlist),
      params_(params),
      wires_(process::InterconnectModel::for_feature_size(params.lambda)) {
  obs::ObsSpan span("timing.levelize");
  span.arg("gates", static_cast<std::uint64_t>(netlist.gate_count()));
  if (obs::metrics_enabled()) {
    static obs::Counter& levelizations = obs::counter("timing.levelizations");
    levelizations.add();
  }
  const auto gates = static_cast<std::size_t>(netlist.gate_count());
  const auto nets = static_cast<std::size_t>(netlist.net_count());
  const double unit_gate_delay = wires_.gate_delay_ps();

  gate_delay_ps_.resize(gates);
  for (std::size_t g = 0; g < gates; ++g) {
    gate_delay_ps_[g] =
        params_.type_delay[static_cast<std::size_t>(netlist.gates()[g].type)] * unit_gate_delay;
  }

  // Levelized topological order.  Gate ids are already topological
  // (gates may only reference already-existing nets), so levels fall
  // out of one forward pass: a gate sits one level above its deepest
  // combinational input's driver, and DFF outputs start fresh paths at
  // level 0.  A stable sort by level keeps the order topological and
  // groups independent gates, and every valid topological order
  // produces the same arrivals.
  std::vector<std::int32_t> level(gates, 0);
  std::int32_t max_level = 0;
  for (std::size_t g = 0; g < gates; ++g) {
    const Gate& gate = netlist.gates()[g];
    if (gate.type == GateType::kDff) continue;
    std::int32_t deepest = 0;
    for (const std::int32_t in : gate.input_nets) {
      const std::int32_t driver = netlist.nets()[static_cast<std::size_t>(in)].driver_gate;
      if (driver >= 0) {
        deepest = std::max(deepest, level[static_cast<std::size_t>(driver)] + 1);
      }
    }
    level[g] = deepest;
    max_level = std::max(max_level, deepest);
  }
  // Counting sort by level (stable: ascending gate id within a level).
  std::vector<std::int32_t> level_start(static_cast<std::size_t>(max_level) + 2, 0);
  for (std::size_t g = 0; g < gates; ++g) {
    ++level_start[static_cast<std::size_t>(level[g]) + 1];
  }
  for (std::size_t l = 1; l < level_start.size(); ++l) level_start[l] += level_start[l - 1];
  topo_order_.resize(gates);
  for (std::size_t g = 0; g < gates; ++g) {
    topo_order_[static_cast<std::size_t>(level_start[static_cast<std::size_t>(level[g])]++)] =
        static_cast<std::int32_t>(g);
  }

  // Endpoints, in the order the one-shot analysis considered them (DFF
  // inputs by gate id, then unloaded driven nets by net id) so the
  // critical endpoint ties break identically.
  for (const Gate& gate : netlist.gates()) {
    if (gate.type == GateType::kDff) {
      for (const std::int32_t in : gate.input_nets) dff_input_nets_.push_back(in);
    }
  }
  for (std::size_t n = 0; n < nets; ++n) {
    const Net& net = netlist.nets()[n];
    if (net.sink_gates.empty() && net.driver_gate >= 0) {
      unloaded_nets_.push_back(static_cast<std::int32_t>(n));
    }
  }

  // Net -> pin CSR (driver first) for the per-net HPWL walk.
  net_pin_offset_.assign(nets + 1, 0);
  for (std::size_t n = 0; n < nets; ++n) {
    const Net& net = netlist.nets()[n];
    net_pin_offset_[n + 1] = net_pin_offset_[n] + (net.driver_gate >= 0 ? 1 : 0) +
                             static_cast<std::int32_t>(net.sink_gates.size());
  }
  net_pin_gate_.resize(static_cast<std::size_t>(net_pin_offset_[nets]));
  for (std::size_t n = 0; n < nets; ++n) {
    const Net& net = netlist.nets()[n];
    std::int32_t at = net_pin_offset_[n];
    if (net.driver_gate >= 0) net_pin_gate_[static_cast<std::size_t>(at++)] = net.driver_gate;
    for (const std::int32_t sink : net.sink_gates) {
      net_pin_gate_[static_cast<std::size_t>(at++)] = sink;
    }
  }

  wire_delay_ps_.resize(nets);
  gate_col_.resize(gates);
  gate_row_.resize(gates);
  critical_input_.resize(gates);
}

TimingResult TimingAnalyzer::run() {
  obs::ObsSpan span("timing.analyze");
  ++analyses_run_;
  if (obs::metrics_enabled()) {
    static obs::Counter& analyses = obs::counter("timing.analyses");
    analyses.add();
    if (analyses_run_ > 1) {
      static obs::Counter& reuse_hits = obs::counter("timing.reuse_hits");
      reuse_hits.add();
    }
  }
  const Netlist& nl = netlist_;
  TimingResult result;
  result.net_arrival_ps.assign(static_cast<std::size_t>(nl.net_count()), 0.0);
  // For path recovery: the input net that set each gate's output arrival.
  std::fill(critical_input_.begin(), critical_input_.end(), -1);

  for (const std::int32_t g : topo_order_) {
    const Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
    const double gate_delay = gate_delay_ps_[static_cast<std::size_t>(g)];
    double launch = 0.0;
    if (gate.type != GateType::kDff) {
      // Combinational: latest input arrival plus its wire.
      for (const std::int32_t in : gate.input_nets) {
        const double t = result.net_arrival_ps[static_cast<std::size_t>(in)] +
                         wire_delay_ps_[static_cast<std::size_t>(in)];
        if (t >= launch) {
          launch = t;
          critical_input_[static_cast<std::size_t>(g)] = in;
        }
      }
    }
    // DFF outputs launch fresh paths at clk->q (their inputs terminate
    // paths, handled below).
    result.net_arrival_ps[static_cast<std::size_t>(gate.output_net)] = launch + gate_delay;
  }

  // Endpoints: DFF data/clock pins and unloaded nets.
  double best = 0.0;
  std::int32_t best_net = -1;
  const auto consider = [&](std::int32_t net, double extra_wire) {
    const double t = result.net_arrival_ps[static_cast<std::size_t>(net)] + extra_wire;
    if (t > best) {
      best = t;
      best_net = net;
    }
  };
  for (const std::int32_t in : dff_input_nets_) {
    consider(in, wire_delay_ps_[static_cast<std::size_t>(in)]);
  }
  for (const std::int32_t n : unloaded_nets_) {
    consider(n, 0.0);
  }
  result.critical_path_ps = best;

  // Backtrack the critical path.
  std::int32_t net = best_net;
  while (net >= 0) {
    const std::int32_t driver = nl.nets()[static_cast<std::size_t>(net)].driver_gate;
    if (driver < 0) break;  // reached a primary input
    result.critical_path.push_back(driver);
    result.total_gate_delay_ps += gate_delay_ps_[static_cast<std::size_t>(driver)];
    net = critical_input_[static_cast<std::size_t>(driver)];
  }
  std::reverse(result.critical_path.begin(), result.critical_path.end());
  result.total_wire_delay_ps = result.critical_path_ps - result.total_gate_delay_ps;
  return result;
}

TimingResult TimingAnalyzer::analyze_placed(const place::Placement& placement) {
  // Gate coordinates once (Placement::col_of divides per call), then
  // per-net HPWL in site units -> mm -> repeated-wire delay.
  for (std::int32_t g = 0; g < netlist_.gate_count(); ++g) {
    gate_col_[static_cast<std::size_t>(g)] = placement.col_of(g);
    gate_row_[static_cast<std::size_t>(g)] = placement.row_of(g);
  }
  for (std::size_t n = 0; n < wire_delay_ps_.size(); ++n) {
    const std::int32_t begin = net_pin_offset_[n];
    const std::int32_t end = net_pin_offset_[n + 1];
    if (end - begin < 2) {
      wire_delay_ps_[n] = 0.0;
      continue;
    }
    std::int32_t min_c = std::numeric_limits<std::int32_t>::max(), max_c = -1;
    std::int32_t min_r = min_c, max_r = -1;
    for (std::int32_t i = begin; i < end; ++i) {
      const auto g = static_cast<std::size_t>(net_pin_gate_[static_cast<std::size_t>(i)]);
      min_c = std::min(min_c, gate_col_[g]);
      max_c = std::max(max_c, gate_col_[g]);
      min_r = std::min(min_r, gate_row_[g]);
      max_r = std::max(max_r, gate_row_[g]);
    }
    const double hpwl_sites = static_cast<double>(max_c - min_c) +
                              params_.row_weight * static_cast<double>(max_r - min_r);
    const double length_mm = hpwl_sites * params_.site_pitch_um / 1000.0;
    wire_delay_ps_[n] = wires_.repeated_wire_delay_ps(length_mm);
  }
  return run();
}

TimingResult TimingAnalyzer::analyze_estimated(double sites) {
  const double avg_sites = netlist::estimate_average_net_length(netlist_, sites);
  const double length_mm = avg_sites * params_.site_pitch_um / 1000.0;
  const double per_net = wires_.repeated_wire_delay_ps(length_mm);
  for (std::size_t n = 0; n < wire_delay_ps_.size(); ++n) {
    wire_delay_ps_[n] = net_pin_offset_[n + 1] - net_pin_offset_[n] >= 2 ? per_net : 0.0;
  }
  return run();
}

TimingResult analyze_placed(const Netlist& netlist, const place::Placement& placement,
                            const TimingParams& params) {
  return TimingAnalyzer(netlist, params).analyze_placed(placement);
}

TimingResult analyze_estimated(const Netlist& netlist, double sites,
                               const TimingParams& params) {
  return TimingAnalyzer(netlist, params).analyze_estimated(sites);
}

double closure_gap(const TimingResult& estimated, const TimingResult& placed) {
  if (estimated.critical_path_ps <= 0.0) {
    throw std::invalid_argument("estimated critical path must be positive");
  }
  return (placed.critical_path_ps - estimated.critical_path_ps) /
         estimated.critical_path_ps;
}

}  // namespace nanocost::timing
