#include "nanocost/cache/lru.hpp"

#include <bit>
#include <utility>

namespace nanocost::cache {

ShardedLruCache::ShardedLruCache(std::size_t byte_budget, std::size_t shards)
    : byte_budget_(byte_budget) {
  const std::size_t n = std::bit_ceil(shards == 0 ? std::size_t{1} : shards);
  shard_mask_ = n - 1;
  shard_budget_ = byte_budget_ / n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

bool ShardedLruCache::lookup(const Digest128& key, std::vector<std::uint8_t>& out) {
  Shard& shard = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Promote to most-recently-used, then copy out under the lock
      // (the entry may be evicted the instant the lock drops).
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      out = it->second->blob;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ShardedLruCache::insert(const Digest128& key, const std::vector<std::uint8_t>& blob) {
  if (blob.size() > shard_budget_) return;  // would evict the whole shard for nothing
  Shard& shard = shard_for(key);
  std::uint64_t evicted = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.index.find(key); it != shard.index.end()) {
      // Refresh: replace the payload and promote.
      shard.bytes -= it->second->blob.size();
      shard.bytes += blob.size();
      it->second->blob = blob;
      shard.order.splice(shard.order.begin(), shard.order, it->second);
    } else {
      shard.order.push_front(Entry{key, blob});
      shard.index.emplace(key, shard.order.begin());
      shard.bytes += blob.size();
    }
    while (shard.bytes > shard_budget_ && shard.order.size() > 1) {
      const Entry& oldest = shard.order.back();
      shard.bytes -= oldest.blob.size();
      shard.index.erase(oldest.key);
      shard.order.pop_back();
      ++evicted;
    }
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

void ShardedLruCache::clear() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->order.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

CacheStats ShardedLruCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    s.bytes += shard->bytes;
    s.entries += shard->order.size();
  }
  return s;
}

ShardedLruCache& global_result_cache() {
  static ShardedLruCache cache(64 * 1024 * 1024, 16);
  return cache;
}

}  // namespace nanocost::cache
