#include "nanocost/cache/cached.hpp"

#include "nanocost/cache/codec.hpp"
#include "nanocost/cache/key.hpp"
#include "nanocost/cache/lru.hpp"
#include "nanocost/obs/metrics.hpp"
#include "nanocost/obs/trace.hpp"

namespace nanocost::cache {

namespace {

void count_hit() {
  if (obs::metrics_enabled()) {
    static obs::Counter& hits = obs::counter("cache.hits");
    hits.add(1);
  }
}

void count_miss(std::size_t inserted_bytes) {
  if (obs::metrics_enabled()) {
    static obs::Counter& misses = obs::counter("cache.misses");
    static obs::Counter& bytes = obs::counter("cache.insert_bytes");
    misses.add(1);
    bytes.add(static_cast<std::uint64_t>(inserted_bytes));
  }
}

/// The one hit-or-compute shape every cached spelling instantiates:
/// lookup, decode on hit; compute, encode, insert, return the computed
/// value on miss.  `compute` runs outside any lock.
template <typename Decode, typename Compute>
auto hit_or_compute(const Digest128& key, Decode decode, Compute compute) {
  std::vector<std::uint8_t> blob;
  bool hit = false;
  {
    obs::ObsSpan span("cache.lookup");
    span.arg("key_hi", key.hi);
    hit = global_result_cache().lookup(key, blob);
    span.arg("hit", hit ? 1 : 0);
  }
  if (hit) {
    count_hit();
    return decode(blob);
  }
  auto result = compute();
  std::vector<std::uint8_t> encoded = encode(result);
  const std::size_t bytes = encoded.size();
  global_result_cache().insert(key, encoded);
  count_miss(bytes);
  return result;
}

}  // namespace

std::vector<core::SweepPoint> sweep_eq4_cached(const core::Eq4Inputs& inputs, double lo,
                                               double hi, int steps, exec::ThreadPool* pool) {
  return hit_or_compute(
      sweep_eq4_key(inputs, lo, hi, steps),
      [](const std::vector<std::uint8_t>& blob) { return decode_sweep_points(blob); },
      [&] { return core::sweep_eq4(inputs, lo, hi, steps, pool); });
}

core::RiskResult monte_carlo_cost_cached(const core::UncertainInputs& inputs, double s_d,
                                         int samples, std::uint64_t seed, double die_budget,
                                         exec::ThreadPool* pool) {
  return hit_or_compute(
      monte_carlo_cost_key(inputs, s_d, samples, seed, die_budget),
      [](const std::vector<std::uint8_t>& blob) { return decode_risk_result(blob); },
      [&] { return core::monte_carlo_cost(inputs, s_d, samples, seed, die_budget, pool); });
}

core::RobustOptimum robust_sd_cached(const core::UncertainInputs& inputs, double quantile,
                                     double lo, double hi, int steps, int samples,
                                     std::uint64_t seed, exec::ThreadPool* pool) {
  return hit_or_compute(
      robust_sd_key(inputs, quantile, lo, hi, steps, samples, seed),
      [](const std::vector<std::uint8_t>& blob) { return decode_robust_optimum(blob); },
      [&] { return core::robust_sd(inputs, quantile, lo, hi, steps, samples, seed, pool); });
}

std::vector<regularity::WindowSweepPoint> sweep_windows_cached(const layout::Cell& top,
                                                               layout::Coord min_window,
                                                               int steps,
                                                               bool orientation_invariant,
                                                               exec::ThreadPool* pool) {
  return hit_or_compute(
      window_sweep_key(top, min_window, steps, orientation_invariant),
      [](const std::vector<std::uint8_t>& blob) { return decode_window_sweep_points(blob); },
      [&] { return regularity::sweep_windows(top, min_window, steps, orientation_invariant, pool); });
}

fabsim::LotResult fabsim_run_cached(const fabsim::FabSimulator& sim, std::int64_t n_wafers,
                                    std::uint64_t seed, exec::ThreadPool* pool) {
  return hit_or_compute(
      fabsim_run_key(sim, n_wafers, seed),
      [](const std::vector<std::uint8_t>& blob) { return decode_lot_result(blob); },
      [&] { return sim.run(n_wafers, seed, pool); });
}

place::MultistartResult anneal_place_multistart_cached(const netlist::Netlist& netlist,
                                                       std::int32_t rows, std::int32_t cols,
                                                       std::int32_t starts,
                                                       const place::AnnealParams& params,
                                                       exec::ThreadPool* pool) {
  return hit_or_compute(
      anneal_place_multistart_key(netlist, rows, cols, starts, params),
      [](const std::vector<std::uint8_t>& blob) { return decode_multistart_result(blob); },
      [&] { return place::anneal_place_multistart(netlist, rows, cols, starts, params, pool); });
}

}  // namespace nanocost::cache
