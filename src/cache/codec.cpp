#include "nanocost/cache/codec.hpp"

#include <bit>
#include <cstddef>
#include <stdexcept>

namespace nanocost::cache {

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(const std::vector<std::uint8_t>& v) {
  u64(v.size());
  out_.insert(out_.end(), v.begin(), v.end());
}

void ByteWriter::str(std::string_view v) {
  u64(v.size());
  out_.insert(out_.end(), v.begin(), v.end());
}

std::uint8_t ByteReader::u8() {
  if (pos_ >= blob_.size()) throw std::runtime_error("cache blob truncated");
  return blob_[pos_++];
}

std::uint64_t ByteReader::u64() {
  if (blob_.size() - pos_ < 8 || pos_ > blob_.size()) {
    throw std::runtime_error("cache blob truncated");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(blob_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::vector<std::uint8_t> ByteReader::bytes() {
  const std::uint64_t n = u64();
  if (n > blob_.size() - pos_) throw std::runtime_error("cache blob truncated");
  std::vector<std::uint8_t> out(blob_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                blob_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += static_cast<std::size_t>(n);
  return out;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (n > blob_.size() - pos_) throw std::runtime_error("cache blob truncated");
  std::string out(reinterpret_cast<const char*>(blob_.data()) + pos_,
                  static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return out;
}

void ByteReader::expect_end() const {
  if (pos_ != blob_.size()) throw std::runtime_error("cache blob has trailing bytes");
}

namespace {

/// Length-prefix sanity for vector decoders: a claimed element count
/// whose payload cannot fit in the blob is corruption, not a request to
/// allocate terabytes.
std::size_t checked_count(std::uint64_t count, std::size_t min_elem_bytes,
                          std::size_t blob_bytes) {
  if (min_elem_bytes > 0 && count > blob_bytes / min_elem_bytes) {
    throw std::runtime_error("cache blob truncated");
  }
  return static_cast<std::size_t>(count);
}

void put_breakdown(ByteWriter& w, const core::Eq4Breakdown& b) {
  w.f64(b.manufacturing.value());
  w.f64(b.design.value());
  w.f64(b.total.value());
  w.f64(b.cd_sq.value());
  w.f64(b.design_nre.value());
  w.f64(b.per_die.value());
}

core::Eq4Breakdown get_breakdown(ByteReader& r) {
  core::Eq4Breakdown b;
  b.manufacturing = units::Money{r.f64()};
  b.design = units::Money{r.f64()};
  b.total = units::Money{r.f64()};
  b.cd_sq = units::CostPerArea{r.f64()};
  b.design_nre = units::Money{r.f64()};
  b.per_die = units::Money{r.f64()};
  return b;
}

}  // namespace

std::vector<std::uint8_t> encode(const core::RiskResult& r) {
  ByteWriter w;
  w.f64(r.mean);
  w.f64(r.stddev);
  w.f64(r.p10);
  w.f64(r.p50);
  w.f64(r.p90);
  w.f64(r.prob_over_budget);
  return w.take();
}

core::RiskResult decode_risk_result(const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  core::RiskResult out;
  out.mean = r.f64();
  out.stddev = r.f64();
  out.p10 = r.f64();
  out.p50 = r.f64();
  out.p90 = r.f64();
  out.prob_over_budget = r.f64();
  r.expect_end();
  return out;
}

std::vector<std::uint8_t> encode(const core::RobustOptimum& r) {
  ByteWriter w;
  w.f64(r.s_d);
  w.f64(r.quantile_cost);
  return w.take();
}

core::RobustOptimum decode_robust_optimum(const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  core::RobustOptimum out;
  out.s_d = r.f64();
  out.quantile_cost = r.f64();
  r.expect_end();
  return out;
}

std::vector<std::uint8_t> encode(const std::vector<core::SweepPoint>& r) {
  ByteWriter w;
  w.u64(r.size());
  for (const core::SweepPoint& p : r) {
    w.f64(p.s_d);
    put_breakdown(w, p.breakdown);
  }
  return w.take();
}

std::vector<core::SweepPoint> decode_sweep_points(const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  std::vector<core::SweepPoint> out(checked_count(r.u64(), 56, blob.size()));
  for (core::SweepPoint& p : out) {
    p.s_d = r.f64();
    p.breakdown = get_breakdown(r);
  }
  r.expect_end();
  return out;
}

std::vector<std::uint8_t> encode(const std::vector<regularity::WindowSweepPoint>& r) {
  ByteWriter w;
  w.u64(r.size());
  for (const regularity::WindowSweepPoint& p : r) {
    w.i64(p.window);
    w.i64(p.total_windows);
    w.i64(p.unique_patterns);
    w.f64(p.regularity_index);
  }
  return w.take();
}

std::vector<regularity::WindowSweepPoint> decode_window_sweep_points(
    const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  std::vector<regularity::WindowSweepPoint> out(checked_count(r.u64(), 32, blob.size()));
  for (regularity::WindowSweepPoint& p : out) {
    p.window = r.i64();
    p.total_windows = r.i64();
    p.unique_patterns = r.i64();
    p.regularity_index = r.f64();
  }
  r.expect_end();
  return out;
}

std::vector<std::uint8_t> encode(const fabsim::LotResult& r) {
  ByteWriter w;
  w.u64(r.wafers.size());
  for (const fabsim::WaferResult& wafer : r.wafers) {
    w.i64(wafer.gross_dies);
    w.i64(wafer.good_dies);
    w.i64(wafer.defects);
    w.i64(wafer.defects_on_dies);
  }
  w.i64(r.total_dies);
  w.i64(r.good_dies);
  w.u64(r.fault_histogram.size());
  for (const std::int64_t count : r.fault_histogram) w.i64(count);
  return w.take();
}

fabsim::LotResult decode_lot_result(const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  fabsim::LotResult out;
  out.wafers.resize(checked_count(r.u64(), 32, blob.size()));
  for (fabsim::WaferResult& wafer : out.wafers) {
    wafer.gross_dies = r.i64();
    wafer.good_dies = r.i64();
    wafer.defects = r.i64();
    wafer.defects_on_dies = r.i64();
  }
  out.total_dies = r.i64();
  out.good_dies = r.i64();
  out.fault_histogram.resize(checked_count(r.u64(), 8, blob.size()));
  for (std::int64_t& count : out.fault_histogram) count = r.i64();
  r.expect_end();
  return out;
}

std::vector<std::uint8_t> encode(const place::MultistartResult& r) {
  ByteWriter w;
  const place::Placement& p = r.best.placement;
  w.i32(p.rows());
  w.i32(p.cols());
  w.i32(p.gate_count());
  for (std::int32_t g = 0; g < p.gate_count(); ++g) w.i32(p.site_of(g));
  w.f64(r.best.initial_hpwl);
  w.f64(r.best.final_hpwl);
  w.i64(r.best.moves_tried);
  w.i64(r.best.moves_accepted);
  w.i32(r.best_start);
  w.i32(r.starts);
  w.u64(r.start_hpwls.size());
  for (const double h : r.start_hpwls) w.f64(h);
  return w.take();
}

place::MultistartResult decode_multistart_result(const std::vector<std::uint8_t>& blob) {
  ByteReader r(blob);
  const std::int32_t rows = r.i32();
  const std::int32_t cols = r.i32();
  const std::int32_t gates = r.i32();
  place::Placement placement(rows, cols, gates);
  for (std::int32_t g = 0; g < gates; ++g) placement.assign(g, r.i32());
  place::MultistartResult out{place::PlaceResult{std::move(placement), 0.0, 0.0, 0, 0}, 0, 0,
                              {}};
  out.best.initial_hpwl = r.f64();
  out.best.final_hpwl = r.f64();
  out.best.moves_tried = r.i64();
  out.best.moves_accepted = r.i64();
  out.best_start = r.i32();
  out.starts = r.i32();
  out.start_hpwls.resize(checked_count(r.u64(), 8, blob.size()));
  for (double& h : out.start_hpwls) h = r.f64();
  r.expect_end();
  return out;
}

}  // namespace nanocost::cache
