#include "nanocost/cache/key.hpp"

#include <unordered_map>

namespace nanocost::cache {

namespace {

/// Eq4Inputs, field by field in declaration order (design_model
/// expanded to its four eq.-6 parameters).
void append_eq4_inputs(KeyBuilder& key, const core::Eq4Inputs& in) {
  key.f64("lambda_um", in.lambda.value())
      .f64("yield", in.yield.value())
      .f64("cm_sq", in.manufacturing_cost.value())
      .f64("n_tr", in.transistors_per_chip)
      .f64("n_w", in.n_wafers)
      .f64("a_w_cm2", in.wafer_area.value())
      .f64("c_ma", in.mask_cost.value())
      .f64("design.a0", in.design_model.params().a0)
      .f64("design.p1", in.design_model.params().p1)
      .f64("design.p2", in.design_model.params().p2)
      .f64("design.s_d0", in.design_model.params().s_d0)
      .f64("utilization", in.utilization.value());
}

void append_uncertain_inputs(KeyBuilder& key, const core::UncertainInputs& in) {
  append_eq4_inputs(key, in.nominal);
  key.f64("yield_sigma", in.yield_sigma)
      .f64("cm_sq_sigma_rel", in.cm_sq_sigma_rel)
      .f64("design_cost_sigma_rel", in.design_cost_sigma_rel)
      .f64("volume_sigma_rel", in.volume_sigma_rel);
}

/// Recursive cell content digest with per-cell memoization: shared
/// sub-cells (the common case -- an SRAM array references one bitcell
/// thousands of times) hash once.  The hierarchy is acyclic by Library
/// construction, so plain recursion terminates.
Digest128 cell_digest(const layout::Cell& cell,
                      std::unordered_map<const layout::Cell*, Digest128>& memo) {
  if (const auto it = memo.find(&cell); it != memo.end()) return it->second;
  KeyBuilder key("layout.cell");
  key.str("name", cell.name());
  key.i64("rects", static_cast<std::int64_t>(cell.rects().size()));
  for (const layout::Rect& r : cell.rects()) {
    key.i32("layer", static_cast<std::int32_t>(r.layer))
        .i64("x0", r.x0)
        .i64("y0", r.y0)
        .i64("x1", r.x1)
        .i64("y1", r.y1);
  }
  key.i64("instances", static_cast<std::int64_t>(cell.instances().size()));
  for (const layout::Instance& inst : cell.instances()) {
    key.sub("child", cell_digest(*inst.cell, memo))
        .i32("orientation", static_cast<std::int32_t>(inst.transform.orientation))
        .i64("dx", inst.transform.dx)
        .i64("dy", inst.transform.dy)
        .i32("nx", inst.nx)
        .i32("ny", inst.ny)
        .i64("pitch_x", inst.pitch_x)
        .i64("pitch_y", inst.pitch_y);
  }
  const Digest128 d = key.digest();
  memo.emplace(&cell, d);
  return d;
}

}  // namespace

Digest128 sweep_eq4_key(const core::Eq4Inputs& inputs, double lo, double hi, int steps) {
  KeyBuilder key("core.sweep_eq4");
  append_eq4_inputs(key, inputs);
  key.f64("lo", lo).f64("hi", hi).i32("steps", steps);
  return key.digest();
}

Digest128 monte_carlo_cost_key(const core::UncertainInputs& inputs, double s_d, int samples,
                               std::uint64_t seed, double die_budget) {
  KeyBuilder key("core.monte_carlo_cost");
  append_uncertain_inputs(key, inputs);
  key.f64("s_d", s_d).i32("samples", samples).u64("seed", seed).f64("die_budget", die_budget);
  return key.digest();
}

Digest128 robust_sd_key(const core::UncertainInputs& inputs, double quantile, double lo,
                        double hi, int steps, int samples, std::uint64_t seed) {
  KeyBuilder key("core.robust_sd");
  append_uncertain_inputs(key, inputs);
  key.f64("quantile", quantile)
      .f64("lo", lo)
      .f64("hi", hi)
      .i32("steps", steps)
      .i32("samples", samples)
      .u64("seed", seed);
  return key.digest();
}

Digest128 fabsim_run_key(const fabsim::FabSimulator& sim, std::int64_t n_wafers,
                         std::uint64_t seed) {
  KeyBuilder key("fabsim.run");
  key.f64("wafer.diameter_mm", sim.wafer_spec().diameter().value())
      .f64("wafer.edge_exclusion_mm", sim.wafer_spec().edge_exclusion().value())
      .f64("wafer.scribe_street_mm", sim.wafer_spec().scribe_street().value())
      .f64("die.width_mm", sim.die().width().value())
      .f64("die.height_mm", sim.die().height().value());
  const defect::DefectSizeDistribution& sizes = sim.size_distribution();
  key.f64("sizes.xmin_um", sizes.xmin().value())
      .f64("sizes.peak_um", sizes.peak().value())
      .f64("sizes.xmax_um", sizes.xmax().value())
      .f64("sizes.q", sizes.tail_exponent());
  const defect::DefectFieldParams& field = sim.field_params();
  key.f64("field.density_per_cm2", field.density_per_cm2)
      .f64("field.cluster_alpha", field.cluster_alpha)
      .boolean("field.clustered", field.clustered)
      .f64("field.radial.edge_boost", field.radial.edge_boost())
      .f64("field.radial.sharpness", field.radial.sharpness());
  const defect::WireArray& array = sim.kill_model().array();
  key.f64("pattern.width_um", array.width().value())
      .f64("pattern.spacing_um", array.spacing().value())
      .f64("pattern.length_um", array.length().value())
      .i32("pattern.wires", array.wire_count());
  key.i64("n_wafers", n_wafers).u64("seed", seed);
  return key.digest();
}

Digest128 netlist_content_digest(const netlist::Netlist& netlist) {
  KeyBuilder key("netlist.content");
  key.i32("gates", netlist.gate_count()).i32("nets", netlist.net_count());
  for (const netlist::Gate& gate : netlist.gates()) {
    key.i32("type", static_cast<std::int32_t>(gate.type)).i32("out", gate.output_net);
    key.i32("inputs", static_cast<std::int32_t>(gate.input_nets.size()));
    for (const std::int32_t net : gate.input_nets) key.i32("in", net);
  }
  // Connectivity is fully determined by the gate list plus the number
  // of primary-input nets, which the net count above pins down.
  return key.digest();
}

Digest128 anneal_place_multistart_key(const netlist::Netlist& netlist, std::int32_t rows,
                                      std::int32_t cols, std::int32_t starts,
                                      const place::AnnealParams& params) {
  KeyBuilder key("place.anneal_place_multistart");
  key.sub("netlist", netlist_content_digest(netlist));
  key.i32("rows", rows).i32("cols", cols).i32("starts", starts);
  key.f64("initial_temperature", params.initial_temperature)
      .f64("cooling", params.cooling)
      .i32("moves_per_temperature_per_gate", params.moves_per_temperature_per_gate)
      .f64("stop_temperature_fraction", params.stop_temperature_fraction)
      .f64("row_weight", params.row_weight)
      .u64("seed", params.seed);
  return key.digest();
}

Digest128 cell_content_digest(const layout::Cell& cell) {
  std::unordered_map<const layout::Cell*, Digest128> memo;
  return cell_digest(cell, memo);
}

Digest128 window_sweep_key(const layout::Cell& top, std::int64_t min_window, int steps,
                           bool orientation_invariant) {
  KeyBuilder key("regularity.sweep_windows");
  key.sub("top", cell_content_digest(top));
  key.i64("min_window", min_window)
      .i32("steps", steps)
      .boolean("orientation_invariant", orientation_invariant);
  return key.digest();
}

}  // namespace nanocost::cache
