#include "nanocost/robust/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>

#include "nanocost/exec/parallel.hpp"
#include "nanocost/exec/seed.hpp"
#include "nanocost/exec/thread_pool.hpp"
#include "nanocost/robust/checkpoint.hpp"
#include "nanocost/robust/fault_injection.hpp"

namespace nanocost::robust {

namespace {

struct Mix {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  void operator()(std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
    h = exec::splitmix64(h);
  }
};

}  // namespace

std::vector<std::int64_t> CampaignResult::failed_units() const {
  std::vector<std::int64_t> units;
  for (const ChunkFailure& f : quarantined) {
    for (std::int64_t u = f.unit_begin; u < f.unit_end; ++u) units.push_back(u);
  }
  return units;
}

std::uint64_t campaign_fingerprint(const CampaignTask& task) {
  Mix mix;
  mix(fnv1a(task.name()));
  mix(static_cast<std::uint64_t>(task.unit_count()));
  mix(static_cast<std::uint64_t>(task.grain()));
  mix(task.config_fingerprint());
  return mix.h;
}

CampaignResult run_campaign(const CampaignTask& task, const CampaignOptions& options) {
  const std::int64_t units = task.unit_count();
  const std::int64_t grain = task.grain();
  if (units < 1 || grain < 1) {
    throw std::invalid_argument("campaign needs unit_count >= 1 and grain >= 1");
  }
  if (options.wave_chunks < 1) {
    throw std::invalid_argument("campaign wave_chunks must be >= 1");
  }
  if (options.max_attempts < 1) {
    throw std::invalid_argument("campaign max_attempts must be >= 1");
  }
  const std::int64_t n_chunks = exec::chunk_count(units, grain);
  const auto chunk_begin = [&](std::int64_t c) { return c * grain; };
  const auto chunk_end = [&](std::int64_t c) { return std::min(c * grain + grain, units); };

  CampaignResult result;
  result.total_chunks = n_chunks;
  result.total_units = units;
  result.chunks.assign(static_cast<std::size_t>(n_chunks), {});

  // Resume: restore completed chunk blobs from the checkpoint, if any.
  Checkpoint expected;
  expected.fingerprint = campaign_fingerprint(task);
  expected.unit_count = units;
  expected.grain = grain;
  if (!options.checkpoint_path.empty()) {
    Checkpoint loaded;
    if (load_checkpoint(options.checkpoint_path, expected, loaded)) {
      for (std::size_t c = 0; c < loaded.chunks.size() && c < result.chunks.size(); ++c) {
        if (!loaded.chunks[c].empty()) {
          result.chunks[c] = std::move(loaded.chunks[c]);
          ++result.resumed_chunks;
        }
      }
    }
  }

  std::vector<std::int64_t> pending;
  for (std::int64_t c = 0; c < n_chunks; ++c) {
    if (result.chunks[static_cast<std::size_t>(c)].empty()) pending.push_back(c);
  }
  std::int64_t budget = options.max_chunks_this_run > 0
                            ? std::min<std::int64_t>(options.max_chunks_this_run,
                                                     static_cast<std::int64_t>(pending.size()))
                            : static_cast<std::int64_t>(pending.size());
  result.interrupted = budget < static_cast<std::int64_t>(pending.size());

  std::atomic<std::int64_t> retries{0};
  std::mutex quarantine_mu;
  const auto save = [&] {
    if (options.checkpoint_path.empty()) return;
    Checkpoint ckpt = expected;
    ckpt.chunks = result.chunks;  // copy: blobs stay owned by the result
    save_checkpoint(options.checkpoint_path, ckpt);
  };

  exec::ThreadPool& pool = exec::pool_or_global(options.pool);
  for (std::int64_t wave_start = 0; wave_start < budget;
       wave_start += options.wave_chunks) {
    const std::int64_t wave = std::min(options.wave_chunks, budget - wave_start);
    pool.run_tasks(wave, [&](std::int64_t t) {
      const std::int64_t chunk = pending[static_cast<std::size_t>(wave_start + t)];
      auto& blob = result.chunks[static_cast<std::size_t>(chunk)];
      std::string last_error;
      for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
        AttemptScope scope(static_cast<std::uint32_t>(attempt));
        try {
          blob.clear();
          task.run_chunk(chunk_begin(chunk), chunk_end(chunk), blob);
          if (blob.empty()) {
            throw std::logic_error("campaign chunk produced an empty blob");
          }
          if (attempt > 0) retries.fetch_add(attempt, std::memory_order_relaxed);
          return;
        } catch (const std::exception& e) {
          last_error = e.what();
        } catch (...) {
          last_error = "unknown exception";
        }
      }
      blob.clear();
      retries.fetch_add(options.max_attempts - 1, std::memory_order_relaxed);
      ChunkFailure failure;
      failure.chunk = chunk;
      failure.unit_begin = chunk_begin(chunk);
      failure.unit_end = chunk_end(chunk);
      failure.error = std::move(last_error);
      std::lock_guard<std::mutex> lk(quarantine_mu);
      result.quarantined.push_back(std::move(failure));
    });
    save();
  }

  result.retries = retries.load(std::memory_order_relaxed);
  std::sort(result.quarantined.begin(), result.quarantined.end(),
            [](const ChunkFailure& a, const ChunkFailure& b) { return a.chunk < b.chunk; });
  for (std::int64_t c = 0; c < n_chunks; ++c) {
    if (!result.chunks[static_cast<std::size_t>(c)].empty()) {
      ++result.completed_chunks;
      result.completed_units += chunk_end(c) - chunk_begin(c);
    }
  }
  if (!options.allow_partial && !result.quarantined.empty()) {
    const ChunkFailure& first = result.quarantined.front();
    throw std::runtime_error("campaign chunk " + std::to_string(first.chunk) + " (units [" +
                             std::to_string(first.unit_begin) + ", " +
                             std::to_string(first.unit_end) + ")) failed after " +
                             std::to_string(options.max_attempts) +
                             " attempts: " + first.error);
  }
  return result;
}

}  // namespace nanocost::robust
