#include "nanocost/robust/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <memory>

#include "nanocost/exec/parallel.hpp"
#include "nanocost/exec/seed.hpp"
#include "nanocost/exec/thread_pool.hpp"
#include "nanocost/obs/metrics.hpp"
#include "nanocost/obs/trace.hpp"
#include "nanocost/robust/artifact_store.hpp"
#include "nanocost/robust/backoff.hpp"
#include "nanocost/robust/checkpoint.hpp"
#include "nanocost/robust/fault_injection.hpp"

namespace nanocost::robust {

namespace {

struct Mix {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  void operator()(std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
    h = exec::splitmix64(h);
  }
};

}  // namespace

std::vector<std::int64_t> CampaignResult::failed_units() const {
  std::vector<std::int64_t> units;
  for (const ChunkFailure& f : quarantined) {
    for (std::int64_t u = f.unit_begin; u < f.unit_end; ++u) units.push_back(u);
  }
  return units;
}

std::uint64_t campaign_fingerprint(const CampaignTask& task) {
  Mix mix;
  mix(fnv1a(task.name()));
  mix(static_cast<std::uint64_t>(task.unit_count()));
  mix(static_cast<std::uint64_t>(task.grain()));
  mix(task.config_fingerprint());
  return mix.h;
}

CampaignResult run_campaign(const CampaignTask& task, const CampaignOptions& options) {
  const std::int64_t units = task.unit_count();
  const std::int64_t grain = task.grain();
  if (units < 1 || grain < 1) {
    throw std::invalid_argument("campaign needs unit_count >= 1 and grain >= 1");
  }
  if (options.wave_chunks < 1) {
    throw std::invalid_argument("campaign wave_chunks must be >= 1");
  }
  if (options.max_attempts < 1) {
    throw std::invalid_argument("campaign max_attempts must be >= 1");
  }
  const std::int64_t n_chunks = exec::chunk_count(units, grain);
  const auto chunk_begin = [&](std::int64_t c) { return c * grain; };
  const auto chunk_end = [&](std::int64_t c) { return std::min(c * grain + grain, units); };

  CampaignResult result;
  result.total_chunks = n_chunks;
  result.total_units = units;
  result.chunks.assign(static_cast<std::size_t>(n_chunks), {});

  // Resume: restore completed chunk blobs from the checkpoint, if any.
  Checkpoint expected;
  expected.fingerprint = campaign_fingerprint(task);
  expected.unit_count = units;
  expected.grain = grain;
  if (!options.checkpoint_path.empty()) {
    Checkpoint loaded;
    if (load_checkpoint(options.checkpoint_path, expected, loaded)) {
      for (std::size_t c = 0; c < loaded.chunks.size() && c < result.chunks.size(); ++c) {
        if (!loaded.chunks[c].empty()) {
          result.chunks[c] = std::move(loaded.chunks[c]);
          ++result.resumed_chunks;
        }
      }
    }
  }

  // Artifact tier: fill remaining gaps from the content-addressed blob
  // directory.  Loads run here, on the caller's thread and outside the
  // chunk retry loop, so a corrupt blob throws CheckpointCorrupt
  // deterministically instead of being mis-filed as a retryable chunk
  // failure (strict rejection, like checkpoints).
  std::unique_ptr<ArtifactStore> artifacts;
  if (!options.artifact_dir.empty()) {
    artifacts = std::make_unique<ArtifactStore>(options.artifact_dir);
    obs::ObsSpan span("robust.artifact_scan");
    for (std::int64_t c = 0; c < n_chunks; ++c) {
      auto& slot = result.chunks[static_cast<std::size_t>(c)];
      if (!slot.empty()) continue;
      std::vector<std::uint8_t> payload;
      if (!artifacts->load(chunk_artifact_key(expected.fingerprint, units, grain, c),
                           payload)) {
        continue;
      }
      if (payload.empty()) {
        // Chunk blobs are non-empty by contract (run_campaign enforces
        // it below); an empty artifact was never a valid chunk.
        throw CheckpointCorrupt("artifact blob for chunk " + std::to_string(c) + " in " +
                                options.artifact_dir + " holds an empty chunk payload");
      }
      slot = std::move(payload);
      ++result.artifact_hits;
    }
    span.arg("hits", static_cast<std::uint64_t>(result.artifact_hits));
    if (obs::metrics_enabled() && result.artifact_hits > 0) {
      static obs::Counter& hits = obs::counter("robust.artifact_hits");
      hits.add(static_cast<std::uint64_t>(result.artifact_hits));
    }
  }

  std::vector<std::int64_t> pending;
  for (std::int64_t c = 0; c < n_chunks; ++c) {
    if (result.chunks[static_cast<std::size_t>(c)].empty()) pending.push_back(c);
  }
  std::int64_t budget = options.max_chunks_this_run > 0
                            ? std::min<std::int64_t>(options.max_chunks_this_run,
                                                     static_cast<std::int64_t>(pending.size()))
                            : static_cast<std::int64_t>(pending.size());
  result.interrupted = budget < static_cast<std::int64_t>(pending.size());

  // Deadline/cancellation: an explicit token wins; otherwise the
  // caller's ambient token (one relaxed load when none is installed).
  const CancelToken token =
      options.cancel.valid() ? options.cancel : current_cancel_token();

  std::atomic<std::int64_t> retries{0};
  std::atomic<std::int64_t> artifact_stores{0};
  // Set when a chunk gave up on its remaining retry attempts because
  // the backoff would not fit the remaining budget; the chunk stays
  // pending (not quarantined), so a resume retries it fresh.
  std::atomic<bool> abandoned_retries{false};
  std::mutex quarantine_mu;
  const auto save = [&] {
    if (options.checkpoint_path.empty()) return;
    obs::ObsSpan span("robust.checkpoint");
    Checkpoint ckpt = expected;
    ckpt.chunks = result.chunks;  // copy: blobs stay owned by the result
    const std::size_t bytes = save_checkpoint(options.checkpoint_path, ckpt);
    span.arg("bytes", static_cast<std::uint64_t>(bytes));
    if (obs::metrics_enabled()) {
      static obs::Counter& writes = obs::counter("robust.checkpoint_writes");
      static obs::Counter& written = obs::counter("robust.checkpoint_bytes");
      writes.add();
      written.add(static_cast<std::uint64_t>(bytes));
    }
  };

  const auto run_one_chunk = [&](std::int64_t chunk) {
    obs::ObsSpan chunk_span("robust.chunk");
    chunk_span.arg("chunk", static_cast<std::uint64_t>(chunk));
    auto& blob = result.chunks[static_cast<std::size_t>(chunk)];
    std::string last_error;
    for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
      AttemptScope scope(static_cast<std::uint32_t>(attempt));
      try {
        blob.clear();
        task.run_chunk(chunk_begin(chunk), chunk_end(chunk), blob);
        if (blob.empty()) {
          throw std::logic_error("campaign chunk produced an empty blob");
        }
        if (attempt > 0) retries.fetch_add(attempt, std::memory_order_relaxed);
        chunk_span.arg("attempts", static_cast<std::uint64_t>(attempt) + 1);
        if (obs::metrics_enabled()) {
          static obs::Counter& completed = obs::counter("robust.chunks_completed");
          completed.add();
          if (attempt > 0) {
            static obs::Counter& retried = obs::counter("robust.retries");
            retried.add(static_cast<std::uint64_t>(attempt));
          }
        }
        if (artifacts) {
          // Publish is best-effort: the result is already in hand, so a
          // full disk or permission error costs the *next* run a
          // recompute, never this run its answer.
          try {
            artifacts->store(chunk_artifact_key(expected.fingerprint, units, grain, chunk),
                             blob);
            artifact_stores.fetch_add(1, std::memory_order_relaxed);
            if (obs::metrics_enabled()) {
              static obs::Counter& stored = obs::counter("robust.artifact_stores");
              stored.add();
            }
          } catch (const std::exception&) {
            if (obs::metrics_enabled()) {
              static obs::Counter& errors = obs::counter("robust.artifact_store_errors");
              errors.add();
            }
          }
        }
        return;
      } catch (const std::exception& e) {
        last_error = e.what();
      } catch (...) {
        last_error = "unknown exception";
      }
      if (attempt + 1 >= options.max_attempts) break;
      // About to retry: an exhausted budget (or a backoff sleep that
      // would not fit in it) abandons the remaining attempts.  The
      // chunk stays pending -- a resume with fresh budget retries it --
      // which keeps deadline pressure from mis-filing transient
      // failures as quarantined-permanent.
      const BackoffPolicy backoff{options.retry_backoff_ms, /*cap_ms=*/0.0,
                                  /*multiplier=*/2.0, /*jitter=*/0.0, /*seed=*/0};
      if (backoff.overruns_budget(attempt, token)) {
        blob.clear();
        retries.fetch_add(attempt, std::memory_order_relaxed);
        chunk_span.arg("abandoned_after", static_cast<std::uint64_t>(attempt) + 1);
        abandoned_retries.store(true, std::memory_order_relaxed);
        if (obs::metrics_enabled()) {
          static obs::Counter& abandoned = obs::counter("robust.retry_abandoned");
          abandoned.add();
        }
        return;
      }
      backoff_sleep(backoff, attempt);
    }
    blob.clear();
    retries.fetch_add(options.max_attempts - 1, std::memory_order_relaxed);
    chunk_span.arg("attempts", static_cast<std::uint64_t>(options.max_attempts));
    if (obs::metrics_enabled()) {
      static obs::Counter& quarantined = obs::counter("robust.quarantined");
      static obs::Counter& retried = obs::counter("robust.retries");
      quarantined.add();
      retried.add(static_cast<std::uint64_t>(options.max_attempts) - 1);
    }
    ChunkFailure failure;
    failure.chunk = chunk;
    failure.unit_begin = chunk_begin(chunk);
    failure.unit_end = chunk_end(chunk);
    failure.error = std::move(last_error);
    std::lock_guard<std::mutex> lk(quarantine_mu);
    result.quarantined.push_back(std::move(failure));
  };

  exec::ThreadPool& pool = exec::pool_or_global(options.pool);
  // The wave size adapts under the soft deadline (overrun: halve, back
  // under: restore) but never changes which chunks run or what they
  // produce -- only the checkpoint / cancellation-check cadence.
  std::int64_t next_wave_chunks = options.wave_chunks;
  std::int64_t wave_start = 0;
  while (wave_start < budget) {
    if (token.valid() && token.expired()) {
      result.expired = true;
      break;
    }
    if (token.valid() && obs::metrics_enabled()) {
      const double remaining = token.remaining_ms();
      if (std::isfinite(remaining)) {
        static obs::Gauge& deadline_gauge = obs::gauge("robust.deadline_remaining_ms");
        deadline_gauge.set(remaining);
      }
    }
    const std::int64_t wave = std::min(next_wave_chunks, budget - wave_start);
    obs::ObsSpan wave_span("robust.wave");
    wave_span.arg("chunks", static_cast<std::uint64_t>(wave));
    const bool timed = obs::metrics_enabled() || options.wave_soft_deadline_ms > 0.0;
    const auto wave_t0 = timed ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
    const auto wave_task = [&](std::int64_t t) {
      run_one_chunk(pending[static_cast<std::size_t>(wave_start + t)]);
    };
    if (token.valid()) {
      pool.run_tasks(wave, wave_task, [&token] { return token.expired(); });
    } else {
      pool.run_tasks(wave, wave_task);
    }
    const double wave_elapsed_ms =
        timed ? std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wave_t0)
                    .count()
              : 0.0;
    if (obs::metrics_enabled()) {
      static obs::Histogram& wave_ms =
          obs::histogram("robust.wave_ms", {1, 10, 100, 1000, 10000, 100000});
      wave_ms.record(static_cast<std::uint64_t>(wave_elapsed_ms));
      static obs::Counter& waves = obs::counter("robust.waves");
      waves.add();
    }
    if (options.wave_soft_deadline_ms > 0.0) {
      next_wave_chunks = wave_elapsed_ms > options.wave_soft_deadline_ms
                             ? std::max<std::int64_t>(1, wave / 2)
                             : options.wave_chunks;
    }
    save();
    wave_start += wave;
  }

  result.retries = retries.load(std::memory_order_relaxed);
  result.artifact_stores = artifact_stores.load(std::memory_order_relaxed);
  std::sort(result.quarantined.begin(), result.quarantined.end(),
            [](const ChunkFailure& a, const ChunkFailure& b) { return a.chunk < b.chunk; });
  result.frontier_chunks = n_chunks;
  for (std::int64_t c = 0; c < n_chunks; ++c) {
    if (!result.chunks[static_cast<std::size_t>(c)].empty()) {
      ++result.completed_chunks;
      result.completed_units += chunk_end(c) - chunk_begin(c);
    } else if (result.frontier_chunks == n_chunks) {
      result.frontier_chunks = c;
    }
  }
  // Expiry that stopped work mid-wave: the token tripped and left
  // chunks neither completed nor quarantined.  A run that finished all
  // its work before the deadline passed is not "expired".
  const bool work_left =
      result.completed_chunks + static_cast<std::int64_t>(result.quarantined.size()) <
      result.total_chunks;
  if (token.valid() && work_left && token.expired()) result.expired = true;
  // Every executed wave already checkpointed, so the frontier at
  // interruption is on disk; just flag the result as resumable.
  if (result.expired || abandoned_retries.load(std::memory_order_relaxed)) {
    result.interrupted = true;
  }
  if (result.expired) {
    note_cancel_observed(token);
    if (obs::metrics_enabled()) {
      static obs::Counter& expired_runs = obs::counter("robust.expired");
      expired_runs.add();
    }
  }
  if (obs::metrics_enabled() && result.total_units > 0) {
    static obs::Gauge& completeness = obs::gauge("robust.completeness");
    completeness.set(static_cast<double>(result.completed_units) /
                     static_cast<double>(result.total_units));
  }
  if (!options.allow_partial && !result.quarantined.empty()) {
    const ChunkFailure& first = result.quarantined.front();
    throw std::runtime_error("campaign chunk " + std::to_string(first.chunk) + " (units [" +
                             std::to_string(first.unit_begin) + ", " +
                             std::to_string(first.unit_end) + ")) failed after " +
                             std::to_string(options.max_attempts) +
                             " attempts: " + first.error);
  }
  return result;
}

}  // namespace nanocost::robust
