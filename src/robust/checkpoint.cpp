#include "nanocost/robust/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "nanocost/robust/fault_injection.hpp"

namespace nanocost::robust {

namespace {

constexpr char kMagic[8] = {'N', 'C', 'C', 'K', 'P', 'T', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

bool write_u64(std::FILE* f, std::uint64_t v) {
  // Serialized little-endian regardless of host order.
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return std::fwrite(buf, 1, 8, f) == 8;
}

bool write_i64(std::FILE* f, std::int64_t v) {
  return write_u64(f, static_cast<std::uint64_t>(v));
}

bool read_u64(std::FILE* f, std::uint64_t& v) {
  std::uint8_t buf[8];
  if (std::fread(buf, 1, 8, f) != 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return true;
}

bool read_i64(std::FILE* f, std::int64_t& v) {
  std::uint64_t u = 0;
  if (!read_u64(f, u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

std::uint64_t blob_checksum(const std::vector<std::uint8_t>& blob) {
  return fnv1a(std::string_view(reinterpret_cast<const char*>(blob.data()), blob.size()));
}

}  // namespace

std::int64_t Checkpoint::completed_chunks() const noexcept {
  std::int64_t n = 0;
  for (const auto& blob : chunks) {
    if (!blob.empty()) ++n;
  }
  return n;
}

std::size_t save_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  const std::string tmp = path + ".tmp";
  std::size_t bytes = sizeof(kMagic) + 4 * 8;  // magic + fingerprint + 3 header ints
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (!f) {
      throw std::runtime_error("cannot open checkpoint temp file " + tmp);
    }
    bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) == sizeof(kMagic);
    ok = ok && write_u64(f.get(), ckpt.fingerprint);
    ok = ok && write_i64(f.get(), ckpt.unit_count);
    ok = ok && write_i64(f.get(), ckpt.grain);
    ok = ok && write_i64(f.get(), ckpt.completed_chunks());
    for (std::size_t c = 0; ok && c < ckpt.chunks.size(); ++c) {
      const auto& blob = ckpt.chunks[c];
      if (blob.empty()) continue;
      ok = write_i64(f.get(), static_cast<std::int64_t>(c));
      ok = ok && write_i64(f.get(), static_cast<std::int64_t>(blob.size()));
      ok = ok && std::fwrite(blob.data(), 1, blob.size(), f.get()) == blob.size();
      ok = ok && write_u64(f.get(), blob_checksum(blob));
      bytes += 3 * 8 + blob.size();
    }
    ok = ok && std::fflush(f.get()) == 0;
    if (!ok) {
      throw std::runtime_error("failed writing checkpoint " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename checkpoint into place: " + path);
  }
  return bytes;
}

bool load_checkpoint(const std::string& path, const Checkpoint& expected, Checkpoint& out) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;

  // Saves are atomic (temp + rename), so damage here was never a valid
  // checkpoint; validate record sizes against the real file size before
  // trusting them -- a bit-flipped length field must not drive a huge
  // allocation or a misaligned parse of the following records.
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    throw CheckpointCorrupt("checkpoint " + path + " is not seekable");
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) {
    throw CheckpointCorrupt("checkpoint " + path + " is not seekable");
  }
  std::rewind(f.get());

  char magic[sizeof(kMagic)];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointMismatch("checkpoint " + path + " has a bad magic header");
  }
  Checkpoint loaded;
  std::int64_t records = 0;
  if (!read_u64(f.get(), loaded.fingerprint) || !read_i64(f.get(), loaded.unit_count) ||
      !read_i64(f.get(), loaded.grain) || !read_i64(f.get(), records)) {
    throw CheckpointCorrupt("checkpoint " + path + " has a truncated header");
  }
  if (loaded.fingerprint != expected.fingerprint ||
      loaded.unit_count != expected.unit_count || loaded.grain != expected.grain) {
    throw CheckpointMismatch(
        "checkpoint " + path +
        " belongs to a different campaign (fingerprint/config mismatch)");
  }
  const std::int64_t n_chunks =
      loaded.grain > 0 ? (loaded.unit_count + loaded.grain - 1) / loaded.grain : 0;
  if (records < 0 || records > n_chunks) {
    throw CheckpointCorrupt("checkpoint " + path + " declares " + std::to_string(records) +
                            " records for a " + std::to_string(n_chunks) +
                            "-chunk campaign");
  }
  loaded.chunks.assign(static_cast<std::size_t>(n_chunks), {});

  for (std::int64_t r = 0; r < records; ++r) {
    const auto corrupt = [&](const std::string& why) {
      return CheckpointCorrupt("checkpoint " + path + " record " + std::to_string(r) +
                               " is corrupt: " + why);
    };
    std::int64_t chunk = 0, size = 0;
    if (!read_i64(f.get(), chunk) || !read_i64(f.get(), size)) {
      throw corrupt("truncated record header");
    }
    if (chunk < 0 || chunk >= n_chunks) {
      throw corrupt("chunk index " + std::to_string(chunk) + " out of range [0, " +
                    std::to_string(n_chunks) + ")");
    }
    const long here = std::ftell(f.get());
    // Each record still owes `size` blob bytes plus an 8-byte checksum.
    if (size < 0 || here < 0 || size > static_cast<std::int64_t>(file_size - here) - 8) {
      throw corrupt("blob size " + std::to_string(size) +
                    " exceeds the bytes remaining in the file");
    }
    if (!loaded.chunks[static_cast<std::size_t>(chunk)].empty()) {
      throw corrupt("duplicate record for chunk " + std::to_string(chunk));
    }
    std::vector<std::uint8_t> blob(static_cast<std::size_t>(size));
    if (size > 0 && std::fread(blob.data(), 1, blob.size(), f.get()) != blob.size()) {
      throw corrupt("truncated blob");
    }
    std::uint64_t checksum = 0;
    if (!read_u64(f.get(), checksum)) {
      throw corrupt("truncated checksum");
    }
    if (checksum != blob_checksum(blob)) {
      throw corrupt("chunk " + std::to_string(chunk) +
                    " failed its fnv1a checksum (bit flip?)");
    }
    if (blob.empty()) {
      throw corrupt("chunk " + std::to_string(chunk) + " has an empty blob");
    }
    loaded.chunks[static_cast<std::size_t>(chunk)] = std::move(blob);
  }
  if (std::ftell(f.get()) != file_size) {
    throw CheckpointCorrupt("checkpoint " + path + " has trailing bytes after record " +
                            std::to_string(records));
  }
  out = std::move(loaded);
  return true;
}

}  // namespace nanocost::robust
