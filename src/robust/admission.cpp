#include "nanocost/robust/admission.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "nanocost/exec/parallel.hpp"
#include "nanocost/obs/metrics.hpp"

namespace nanocost::robust {

CampaignQueue::CampaignQueue(AdmissionOptions options) : options_(std::move(options)) {
  if (options_.capacity < 1) {
    throw std::invalid_argument("admission queue needs capacity >= 1");
  }
  // stop() must work before the first drain and must never touch the
  // caller's token, so the governing root is a child (or an independent
  // manual root) created up front.
  stop_root_ = options_.cancel.valid() ? options_.cancel.child() : CancelToken::manual();
  governed_ = stop_root_;
}

std::size_t CampaignQueue::submit(const CampaignTask& task, CampaignOptions options) {
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_) {
    throw std::logic_error("admission queue already drained; submissions are closed");
  }
  const std::size_t slot = outcomes_.size();
  outcomes_.emplace_back();
  if (stop_requested_) {
    outcomes_[slot].status = SubmissionStatus::kStopped;
    outcomes_[slot].message = "stopped: the queue is shutting down; submission rejected";
    return slot;
  }
  if (options_.policy == ShedPolicy::kRejectNewest &&
      outstanding_locked() >= options_.capacity) {
    // Deterministic: admission depends only on the submission order and
    // on which earlier campaigns have drained, never on timing inside
    // a campaign.
    outcomes_[slot].status = SubmissionStatus::kShed;
    outcomes_[slot].message = "shed: queue at capacity (" +
                              std::to_string(options_.capacity) +
                              "); resubmit when the queue drains";
    if (obs::metrics_enabled()) {
      static obs::Counter& shed = obs::counter("robust.shed");
      shed.add();
    }
    return slot;
  }
  admitted_.push_back(Admitted{&task, std::move(options), slot});
  return slot;
}

const std::vector<SubmissionOutcome>& CampaignQueue::drain(const CompletionFn& on_complete) {
  std::unique_lock<std::mutex> lk(mu_);
  // Concurrent drains serialize: the second caller waits, then picks up
  // whatever was submitted meanwhile.
  drain_done_.wait(lk, [&] { return !draining_; });
  draining_ = true;
  if (!budget_armed_) {
    budget_armed_ = true;
    if (options_.total_budget_ms > 0.0) {
      governed_ = stop_root_.child_with_deadline(options_.total_budget_ms);
    }
  }

  if (obs::metrics_enabled()) {
    static obs::Gauge& depth = obs::gauge("robust.queue_depth");
    depth.set(static_cast<double>(outstanding_locked()));
  }

  while (next_ < admitted_.size()) {
    Admitted a = admitted_[next_];
    ++next_;
    SubmissionStatus status;
    std::string message;
    CampaignResult result;
    bool ran = false;
    if (stop_requested_) {
      status = SubmissionStatus::kStopped;
      message = "stopped: the queue was stopped before this campaign started; resumable";
    } else if (governed_.expired()) {
      status = SubmissionStatus::kExpired;
      message = "expired: queue budget exhausted before this campaign started";
      if (obs::metrics_enabled()) {
        static obs::Counter& expired = obs::counter("robust.expired");
        expired.add();
      }
    } else {
      running_ = true;
      CampaignOptions run_options = a.options;
      run_options.cancel = governed_.child();
      // kDegradeBudgets: oversubscription at the moment a campaign
      // starts shrinks its chunk budget by capacity / outstanding -- a
      // pure function of the submission/completion sequence, so
      // degradation is reproducible, and a campaign that ends up
      // running alone keeps its full budget (a long-lived server only
      // degrades under actual load, not because load existed earlier).
      const std::size_t pickup_outstanding = outstanding_locked();
      if (options_.policy == ShedPolicy::kDegradeBudgets &&
          pickup_outstanding > options_.capacity) {
        const std::int64_t total =
            exec::chunk_count(a.task->unit_count(), a.task->grain());
        const std::int64_t share = std::max<std::int64_t>(
            1, total * static_cast<std::int64_t>(options_.capacity) /
                   static_cast<std::int64_t>(pickup_outstanding));
        run_options.max_chunks_this_run =
            run_options.max_chunks_this_run > 0
                ? std::min(run_options.max_chunks_this_run, share)
                : share;
      }
      lk.unlock();
      result = run_campaign(*a.task, run_options);
      lk.lock();
      running_ = false;
      ran = true;
      if (result.expired) {
        if (stop_requested_) {
          status = SubmissionStatus::kStopped;
          message = "stopped: the queue was stopped mid-run; checkpointed, resumable";
        } else {
          status = SubmissionStatus::kExpired;
          message = "expired: the queue deadline tripped mid-run; resumable";
        }
      } else if (result.completeness() < 1.0 || result.interrupted) {
        status = SubmissionStatus::kPartial;
      } else {
        status = SubmissionStatus::kCompleted;
      }
    }
    SubmissionOutcome& outcome = outcomes_[a.slot];
    outcome.status = status;
    outcome.message = std::move(message);
    if (ran) outcome.result = std::move(result);
    if (on_complete) {
      // Call with a stable copy and no lock held: the callback may
      // submit, stop, or block on I/O without deadlocking the queue.
      const SubmissionOutcome copy = outcomes_[a.slot];
      lk.unlock();
      on_complete(a.slot, copy);
      lk.lock();
    }
  }

  draining_ = false;
  lk.unlock();
  drain_done_.notify_all();
  return outcomes_;
}

const std::vector<SubmissionOutcome>& CampaignQueue::run() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  return drain();
}

void CampaignQueue::stop() noexcept {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  stop_root_.cancel();
}

bool CampaignQueue::stop_requested() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return stop_requested_;
}

std::size_t CampaignQueue::outstanding() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return outstanding_locked();
}

SubmissionOutcome CampaignQueue::outcome_copy(std::size_t slot) const {
  std::lock_guard<std::mutex> lk(mu_);
  return outcomes_.at(slot);
}

std::size_t CampaignQueue::count_status(SubmissionStatus status) const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const SubmissionOutcome& o : outcomes_) {
    if (o.status == status) ++n;
  }
  return n;
}

std::size_t CampaignQueue::shed_count() const noexcept {
  return count_status(SubmissionStatus::kShed);
}
std::size_t CampaignQueue::expired_count() const noexcept {
  return count_status(SubmissionStatus::kExpired);
}
std::size_t CampaignQueue::partial_count() const noexcept {
  return count_status(SubmissionStatus::kPartial);
}
std::size_t CampaignQueue::completed_count() const noexcept {
  return count_status(SubmissionStatus::kCompleted);
}
std::size_t CampaignQueue::stopped_count() const noexcept {
  return count_status(SubmissionStatus::kStopped);
}

}  // namespace nanocost::robust
