#include "nanocost/robust/admission.hpp"

#include <algorithm>
#include <stdexcept>

#include "nanocost/exec/parallel.hpp"
#include "nanocost/obs/metrics.hpp"

namespace nanocost::robust {

namespace {

std::size_t count_status(const std::vector<SubmissionOutcome>& outcomes,
                         SubmissionStatus status) {
  std::size_t n = 0;
  for (const SubmissionOutcome& o : outcomes) {
    if (o.status == status) ++n;
  }
  return n;
}

}  // namespace

CampaignQueue::CampaignQueue(AdmissionOptions options) : options_(options) {
  if (options_.capacity < 1) {
    throw std::invalid_argument("admission queue needs capacity >= 1");
  }
}

std::size_t CampaignQueue::submit(const CampaignTask& task, CampaignOptions options) {
  if (ran_) {
    throw std::logic_error("admission queue already drained; submissions are closed");
  }
  const std::size_t slot = outcomes_.size();
  outcomes_.emplace_back();
  if (options_.policy == ShedPolicy::kRejectNewest && admitted_.size() >= options_.capacity) {
    // Deterministic: admission depends only on the submission order,
    // never on timing or what earlier campaigns did.
    outcomes_[slot].status = SubmissionStatus::kShed;
    outcomes_[slot].message = "shed: queue at capacity (" +
                              std::to_string(options_.capacity) +
                              "); resubmit when the queue drains";
    if (obs::metrics_enabled()) {
      static obs::Counter& shed = obs::counter("robust.shed");
      shed.add();
    }
    return slot;
  }
  admitted_.push_back(Admitted{&task, std::move(options), slot});
  return slot;
}

const std::vector<SubmissionOutcome>& CampaignQueue::run() {
  if (ran_) return outcomes_;
  ran_ = true;

  // One token governs the whole drain: the external switch, tightened
  // by the queue budget when one is set.
  CancelToken drain = options_.cancel;
  if (options_.total_budget_ms > 0.0) {
    drain = drain.valid() ? drain.child_with_deadline(options_.total_budget_ms)
                          : CancelToken::with_deadline(options_.total_budget_ms);
  }

  // kDegradeBudgets: oversubscription shrinks every admitted campaign's
  // chunk budget by capacity / queued -- a pure function of the queue
  // composition, so degradation is reproducible.
  const bool degrade = options_.policy == ShedPolicy::kDegradeBudgets &&
                       admitted_.size() > options_.capacity;

  if (obs::metrics_enabled()) {
    static obs::Gauge& depth = obs::gauge("robust.queue_depth");
    depth.set(static_cast<double>(admitted_.size()));
  }

  for (Admitted& a : admitted_) {
    SubmissionOutcome& outcome = outcomes_[a.slot];
    if (drain.valid() && drain.expired()) {
      outcome.status = SubmissionStatus::kExpired;
      outcome.message = "expired: queue budget exhausted before this campaign started";
      if (obs::metrics_enabled()) {
        static obs::Counter& expired = obs::counter("robust.expired");
        expired.add();
      }
      continue;
    }
    CampaignOptions run_options = a.options;
    if (drain.valid()) run_options.cancel = drain.child();
    if (degrade) {
      const std::int64_t total =
          exec::chunk_count(a.task->unit_count(), a.task->grain());
      const std::int64_t share = std::max<std::int64_t>(
          1, total * static_cast<std::int64_t>(options_.capacity) /
                 static_cast<std::int64_t>(admitted_.size()));
      run_options.max_chunks_this_run =
          run_options.max_chunks_this_run > 0
              ? std::min(run_options.max_chunks_this_run, share)
              : share;
    }
    outcome.result = run_campaign(*a.task, run_options);
    if (outcome.result.expired) {
      outcome.status = SubmissionStatus::kExpired;
      outcome.message = "expired: the queue deadline tripped mid-run; resumable";
    } else if (outcome.result.completeness() < 1.0 || outcome.result.interrupted) {
      outcome.status = SubmissionStatus::kPartial;
    } else {
      outcome.status = SubmissionStatus::kCompleted;
    }
  }
  return outcomes_;
}

std::size_t CampaignQueue::shed_count() const noexcept {
  return count_status(outcomes_, SubmissionStatus::kShed);
}
std::size_t CampaignQueue::expired_count() const noexcept {
  return count_status(outcomes_, SubmissionStatus::kExpired);
}
std::size_t CampaignQueue::partial_count() const noexcept {
  return count_status(outcomes_, SubmissionStatus::kPartial);
}
std::size_t CampaignQueue::completed_count() const noexcept {
  return count_status(outcomes_, SubmissionStatus::kCompleted);
}

}  // namespace nanocost::robust
