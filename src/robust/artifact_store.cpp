#include "nanocost/robust/artifact_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <utility>

#include "nanocost/obs/metrics.hpp"
#include "nanocost/robust/fault_injection.hpp"

namespace nanocost::robust {

namespace {

constexpr char kMagic[8] = {'N', 'C', 'B', 'L', 'O', 'B', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

bool write_u64(std::FILE* f, std::uint64_t v) {
  // Serialized little-endian regardless of host order.
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return std::fwrite(buf, 1, 8, f) == 8;
}

bool read_u64(std::FILE* f, std::uint64_t& v) {
  std::uint8_t buf[8];
  if (std::fread(buf, 1, 8, f) != 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return true;
}

std::uint64_t payload_checksum(const std::vector<std::uint8_t>& payload) {
  return fnv1a(
      std::string_view(reinterpret_cast<const char*>(payload.data()), payload.size()));
}

}  // namespace

ArtifactStore::ArtifactStore(std::string dir, std::uint64_t byte_cap)
    : dir_(std::move(dir)), byte_cap_(byte_cap) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("cannot create artifact directory " + dir_);
  }
}

std::string ArtifactStore::path_for(const cache::Digest128& key) const {
  return dir_ + "/" + key.hex() + ".ncblob";
}

bool ArtifactStore::load(const cache::Digest128& key,
                         std::vector<std::uint8_t>& payload) const {
  const std::string path = path_for(key);
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;

  // Stores are atomic (temp + rename), so any structural damage here
  // was never a valid blob; validate the declared size against the real
  // file size before trusting it.
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    throw CheckpointCorrupt("artifact blob " + path + " is not seekable");
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) {
    throw CheckpointCorrupt("artifact blob " + path + " is not seekable");
  }
  std::rewind(f.get());

  char magic[sizeof(kMagic)];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointCorrupt("artifact blob " + path + " has a bad magic header");
  }
  std::uint64_t hi = 0, lo = 0, size_u = 0;
  if (!read_u64(f.get(), hi) || !read_u64(f.get(), lo) || !read_u64(f.get(), size_u)) {
    throw CheckpointCorrupt("artifact blob " + path + " has a truncated header");
  }
  if (hi != key.hi || lo != key.lo) {
    throw CheckpointCorrupt("artifact blob " + path +
                            " holds a different digest than its filename claims");
  }
  const auto size = static_cast<std::int64_t>(size_u);
  constexpr long kHeaderBytes = sizeof(kMagic) + 3 * 8;  // magic + digest + size
  // The payload still owes `size` bytes plus an 8-byte checksum.
  if (size < 0 || size != static_cast<std::int64_t>(file_size - kHeaderBytes) - 8) {
    throw CheckpointCorrupt("artifact blob " + path + " declares " + std::to_string(size) +
                            " payload bytes but holds " + std::to_string(file_size) +
                            " total");
  }
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(size));
  if (size > 0 && std::fread(blob.data(), 1, blob.size(), f.get()) != blob.size()) {
    throw CheckpointCorrupt("artifact blob " + path + " has a truncated payload");
  }
  std::uint64_t checksum = 0;
  if (!read_u64(f.get(), checksum)) {
    throw CheckpointCorrupt("artifact blob " + path + " has a truncated checksum");
  }
  if (checksum != payload_checksum(blob)) {
    throw CheckpointCorrupt("artifact blob " + path +
                            " failed its fnv1a checksum (bit flip?)");
  }
  payload = std::move(blob);
  return true;
}

void ArtifactStore::store(const cache::Digest128& key,
                          const std::vector<std::uint8_t>& payload) const {
  const std::string path = path_for(key);
  // Content addressing: an existing blob already holds these bytes.
  if (std::filesystem::exists(path)) return;
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (!f) {
      throw std::runtime_error("cannot open artifact temp file " + tmp);
    }
    bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) == sizeof(kMagic);
    ok = ok && write_u64(f.get(), key.hi);
    ok = ok && write_u64(f.get(), key.lo);
    ok = ok && write_u64(f.get(), payload.size());
    ok = ok && (payload.empty() ||
                std::fwrite(payload.data(), 1, payload.size(), f.get()) == payload.size());
    ok = ok && write_u64(f.get(), payload_checksum(payload));
    ok = ok && std::fflush(f.get()) == 0;
    if (!ok) {
      throw std::runtime_error("failed writing artifact blob " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename artifact blob into place: " + path);
  }
}

namespace {

/// Committed blobs in the store, named (filename, bytes).  Filenames
/// are fixed-width lowercase hex, so lexicographic order IS digest
/// order -- the determinism the eviction sweep rests on.
std::vector<std::pair<std::string, std::uint64_t>> list_blobs(const std::string& dir) {
  std::vector<std::pair<std::string, std::uint64_t>> blobs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() != ".ncblob") continue;  // skip in-flight .tmp files
    const std::uintmax_t size = entry.file_size(ec);
    if (ec) continue;  // racing eviction/rename: not our blob any more
    blobs.emplace_back(p.filename().string(), static_cast<std::uint64_t>(size));
  }
  std::sort(blobs.begin(), blobs.end());
  return blobs;
}

}  // namespace

std::uint64_t ArtifactStore::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [name, size] : list_blobs(dir_)) total += size;
  return total;
}

SweepReport ArtifactStore::sweep() const {
  SweepReport report;
  const auto blobs = list_blobs(dir_);
  for (const auto& [name, size] : blobs) {
    ++report.scanned_blobs;
    report.scanned_bytes += size;
  }
  if (byte_cap_ == 0 || report.scanned_bytes <= byte_cap_) return report;
  // Walk from the highest digest down, unlinking until we fit.  The
  // victim set depends only on the directory contents and the cap.
  std::uint64_t remaining = report.scanned_bytes;
  for (auto it = blobs.rbegin(); it != blobs.rend() && remaining > byte_cap_; ++it) {
    std::error_code ec;
    if (std::filesystem::remove(std::filesystem::path(dir_) / it->first, ec) && !ec) {
      ++report.evicted_blobs;
      report.evicted_bytes += it->second;
      remaining -= it->second;
    }
  }
  if (obs::metrics_enabled() && report.evicted_blobs > 0) {
    static obs::Counter& evicted = obs::counter("robust.artifact_evicted");
    evicted.add(report.evicted_blobs);
  }
  return report;
}

cache::Digest128 chunk_artifact_key(std::uint64_t fingerprint, std::int64_t unit_count,
                                    std::int64_t grain, std::int64_t chunk) {
  cache::Hash128 h;
  h.update("NCBLOBKEY");
  h.update_u64(cache::kKeySchemaVersion);
  h.update_u64(fingerprint);
  h.update_u64(static_cast<std::uint64_t>(unit_count));
  h.update_u64(static_cast<std::uint64_t>(grain));
  h.update_u64(static_cast<std::uint64_t>(chunk));
  return h.digest();
}

}  // namespace nanocost::robust
