#include "nanocost/robust/fault_injection.hpp"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "nanocost/exec/seed.hpp"

namespace nanocost::robust {

namespace {

std::mutex& plan_mutex() {
  static std::mutex mu;
  return mu;
}

/// The installed plan.  Replaced plans are retired into a keep-alive
/// list instead of freed: an injected worker may still be reading the
/// old plan when a new one is installed, and plans are tiny.
std::shared_ptr<const FaultPlan>& plan_slot() {
  static std::shared_ptr<const FaultPlan> plan;
  return plan;
}
std::vector<std::shared_ptr<const FaultPlan>>& retired_plans() {
  static std::vector<std::shared_ptr<const FaultPlan>> retired;
  return retired;
}
std::atomic<const FaultPlan*> g_plan{nullptr};

thread_local std::uint32_t t_attempt = 0;

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

double parse_rate(std::string_view text) {
  const std::string buf(text);
  char* end = nullptr;
  const double rate = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || !(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument("fault rate must be a number in [0, 1], got '" + buf + "'");
  }
  return rate;
}

}  // namespace

FaultInjected::FaultInjected(const char* site, std::uint64_t index)
    : std::runtime_error(std::string("injected fault at ") + site + " unit " +
                         std::to_string(index)),
      site_(site),
      index_(index) {}

FaultPlan& FaultPlan::add(std::string_view site, FaultSpec spec) {
  if (!(spec.rate >= 0.0 && spec.rate <= 1.0)) {
    throw std::invalid_argument("fault rate must lie in [0, 1]");
  }
  const std::uint64_t h = fnv1a(site);
  for (Entry& e : sites_) {
    if (e.hash == h) {
      e.spec = spec;
      return *this;
    }
  }
  sites_.push_back(Entry{h, spec});
  return *this;
}

const FaultSpec* FaultPlan::find(std::uint64_t site_hash) const noexcept {
  for (const Entry& e : sites_) {
    if (e.hash == site_hash) return &e.spec;
  }
  return nullptr;
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t sep = std::min(text.find(';', pos), text.size());
    std::string_view entry = trim(text.substr(pos, sep - pos));
    pos = sep + 1;
    if (entry.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("fault plan entry needs 'site=rate', got '" +
                                  std::string(entry) + "'");
    }
    const std::string_view site = trim(entry.substr(0, eq));
    std::string_view rest = trim(entry.substr(eq + 1));
    if (site.empty()) {
      throw std::invalid_argument("fault plan entry needs 'site=rate', got '" +
                                  std::string(entry) + "'");
    }
    if (site == "seed") {
      std::uint64_t s = 0;
      const auto [p, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), s);
      if (ec != std::errc{} || p != rest.data() + rest.size()) {
        throw std::invalid_argument("fault plan seed must be an integer, got '" +
                                    std::string(rest) + "'");
      }
      plan.seed(s);
      continue;
    }
    const std::size_t colon = std::min(rest.find(':'), rest.size());
    FaultSpec spec;
    spec.rate = parse_rate(rest.substr(0, colon));
    rest = colon < rest.size() ? rest.substr(colon + 1) : std::string_view{};
    while (!rest.empty()) {
      const std::size_t c = std::min(rest.find(':'), rest.size());
      const std::string_view flag = trim(rest.substr(0, c));
      if (flag == "throw") {
        spec.kind = FaultKind::kThrow;
      } else if (flag == "nan") {
        spec.kind = FaultKind::kNaN;
      } else if (flag == "latency") {
        spec.kind = FaultKind::kLatency;
      } else if (flag == "persistent") {
        spec.transient = false;
      } else if (flag == "transient") {
        spec.transient = true;
      } else {
        throw std::invalid_argument("unknown fault flag '" + std::string(flag) + "'");
      }
      rest = c < rest.size() ? rest.substr(c + 1) : std::string_view{};
    }
    plan.add(site, spec);
  }
  return plan;
}

void install_fault_plan(FaultPlan plan) {
  const bool enabled = !plan.empty();
  std::lock_guard<std::mutex> lk(plan_mutex());
  auto next = std::make_shared<const FaultPlan>(std::move(plan));
  if (plan_slot()) retired_plans().push_back(plan_slot());
  plan_slot() = next;
  g_plan.store(enabled ? next.get() : nullptr, std::memory_order_release);
  detail::g_fault_state.store(enabled ? 2 : 1, std::memory_order_release);
}

void clear_fault_plan() { install_fault_plan(FaultPlan{}); }

AttemptScope::AttemptScope(std::uint32_t attempt) noexcept : saved_(t_attempt) {
  t_attempt = attempt;
}
AttemptScope::~AttemptScope() { t_attempt = saved_; }
std::uint32_t AttemptScope::current() noexcept { return t_attempt; }

namespace detail {

std::atomic<int> g_fault_state{0};

bool init_fault_state_from_env() {
  std::lock_guard<std::mutex> lk(plan_mutex());
  const int settled = g_fault_state.load(std::memory_order_acquire);
  if (settled != 0) return settled == 2;
  FaultPlan plan;
  if (const char* env = std::getenv("NANOCOST_FAULTS")) {
    try {
      plan = FaultPlan::parse(env);
    } catch (const std::exception& e) {
      // A malformed plan must not take down (or silently alter) the
      // engine from a hot-path gate: report once and run clean.
      std::fprintf(stderr, "nanocost: NANOCOST_FAULTS rejected: %s; fault injection disabled\n",
                   e.what());
      plan = FaultPlan{};
    }
  }
  const bool enabled = !plan.empty();
  auto next = std::make_shared<const FaultPlan>(std::move(plan));
  plan_slot() = next;
  g_plan.store(enabled ? next.get() : nullptr, std::memory_order_release);
  g_fault_state.store(enabled ? 2 : 1, std::memory_order_release);
  return enabled;
}

bool inject_slow(const FaultSite& site, std::uint64_t index) {
  const FaultPlan* plan = g_plan.load(std::memory_order_acquire);
  if (plan == nullptr) return false;
  const FaultSpec* spec = plan->find(site.hash);
  if (spec == nullptr || spec->rate <= 0.0) return false;

  // The schedule: a pure hash of (plan seed, site, unit index, attempt)
  // mapped to [0, 1).  Thread count, chunk order, and wall clock never
  // enter, so faulty campaigns replay bitwise.
  const std::uint64_t attempt = spec->transient ? AttemptScope::current() : 0;
  const std::uint64_t mixed = exec::splitmix64(
      plan->schedule_seed() ^ site.hash ^
      exec::SeedSequence::for_task(index, attempt));
  const double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  if (u >= spec->rate) return false;

  switch (spec->kind) {
    case FaultKind::kThrow:
      throw FaultInjected(site.name, index);
    case FaultKind::kNaN:
      return true;
    case FaultKind::kLatency:
      std::this_thread::sleep_for(std::chrono::microseconds(spec->latency_us));
      return false;
  }
  return false;
}

}  // namespace detail

}  // namespace nanocost::robust
