#include "nanocost/robust/cancel.hpp"

#include <chrono>
#include <limits>

#include "nanocost/obs/metrics.hpp"

namespace nanocost::robust {

namespace detail {

std::atomic<int> g_active_scopes{0};

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

thread_local CancelToken t_ambient;

/// Latches the trip flag and records the trip instant exactly once.
/// For deadline trips the recorded instant is the deadline itself, not
/// the moment some loop noticed it -- cancel latency must not credit
/// the poller for observing late.
void trip(CancelState& state, std::uint64_t when_ns) noexcept {
  if (!state.tripped.exchange(true, std::memory_order_relaxed)) {
    std::uint64_t expected = 0;
    state.trip_ns.compare_exchange_strong(expected, when_ns, std::memory_order_relaxed);
  }
}

}  // namespace

}  // namespace detail

Deadline Deadline::in_ms(double budget_ms) noexcept {
  const double ns = budget_ms * 1e6;
  const std::uint64_t now = detail::steady_now_ns();
  // A non-positive budget means "already due"; at_ns must stay nonzero
  // to remain distinguishable from "no deadline".
  if (!(ns > 0.0)) return Deadline{now > 1 ? now - 1 : 1};
  return Deadline{now + static_cast<std::uint64_t>(ns)};
}

bool Deadline::passed() const noexcept {
  return at_ns != 0 && detail::steady_now_ns() >= at_ns;
}

double Deadline::remaining_ms() const noexcept {
  if (at_ns == 0) return std::numeric_limits<double>::infinity();
  const std::uint64_t now = detail::steady_now_ns();
  return now >= at_ns ? 0.0 : static_cast<double>(at_ns - now) * 1e-6;
}

CancelToken CancelToken::manual() {
  return CancelToken(std::make_shared<detail::CancelState>());
}

CancelToken CancelToken::with_deadline(double budget_ms) {
  return with_deadline(Deadline::in_ms(budget_ms));
}

CancelToken CancelToken::with_deadline(Deadline deadline) {
  auto state = std::make_shared<detail::CancelState>();
  state->deadline_ns = deadline.at_ns;
  return CancelToken(std::move(state));
}

CancelToken CancelToken::child() const {
  auto state = std::make_shared<detail::CancelState>();
  state->parent = state_;
  return CancelToken(std::move(state));
}

CancelToken CancelToken::child_with_deadline(double budget_ms) const {
  auto state = std::make_shared<detail::CancelState>();
  state->parent = state_;
  state->deadline_ns = Deadline::in_ms(budget_ms).at_ns;
  return CancelToken(std::move(state));
}

void CancelToken::cancel() const noexcept {
  if (state_ != nullptr) detail::trip(*state_, detail::steady_now_ns());
}

bool CancelToken::expired() const noexcept {
  for (detail::CancelState* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->tripped.load(std::memory_order_relaxed)) return true;
    if (s->deadline_ns != 0 && detail::steady_now_ns() >= s->deadline_ns) {
      detail::trip(*s, s->deadline_ns);
      return true;
    }
  }
  return false;
}

double CancelToken::remaining_ms() const noexcept {
  if (expired()) return 0.0;
  double remaining = std::numeric_limits<double>::infinity();
  for (const detail::CancelState* s = state_.get(); s != nullptr; s = s->parent.get()) {
    const double r = Deadline{s->deadline_ns}.remaining_ms();
    if (r < remaining) remaining = r;
  }
  return remaining;
}

std::uint64_t CancelToken::trip_time_ns() const noexcept {
  std::uint64_t earliest = 0;
  for (const detail::CancelState* s = state_.get(); s != nullptr; s = s->parent.get()) {
    const std::uint64_t t = s->trip_ns.load(std::memory_order_relaxed);
    if (t != 0 && (earliest == 0 || t < earliest)) earliest = t;
  }
  return earliest;
}

CancelScope::CancelScope(CancelToken token) {
  if (!token.valid()) return;
  saved_ = detail::t_ambient;
  detail::t_ambient = std::move(token);
  detail::g_active_scopes.fetch_add(1, std::memory_order_relaxed);
  installed_ = true;
}

CancelScope::~CancelScope() {
  if (!installed_) return;
  detail::t_ambient = std::move(saved_);
  detail::g_active_scopes.fetch_sub(1, std::memory_order_relaxed);
}

CancelToken current_cancel_token() noexcept {
  // Fast path: no scope anywhere in the process -- one relaxed load.
  if (detail::g_active_scopes.load(std::memory_order_relaxed) == 0) return {};
  return detail::t_ambient;
}

void note_cancel_observed(const CancelToken& token) noexcept {
  if (!obs::metrics_enabled()) return;
  const std::uint64_t trip = token.trip_time_ns();
  if (trip == 0) return;
  static obs::Counter& loops = obs::counter("robust.cancelled_loops");
  loops.add();
  static obs::Histogram& latency = obs::histogram(
      "robust.cancel_latency_us", {10, 100, 1000, 10000, 100000, 1000000});
  const std::uint64_t now = detail::steady_now_ns();
  latency.record(now > trip ? (now - trip) / 1000 : 0);
}

}  // namespace nanocost::robust
