#include "nanocost/robust/backoff.hpp"

#include <chrono>
#include <thread>

#include "nanocost/exec/seed.hpp"
#include "nanocost/obs/metrics.hpp"

namespace nanocost::robust {

double BackoffPolicy::delay_ms(int attempt) const noexcept {
  if (base_ms <= 0.0 || attempt < 0) return 0.0;
  // Repeated multiplication (not pow) so the jitter-free schedule is
  // bit-exact with the historical base * 2^attempt ladder.
  double delay = base_ms;
  for (int i = 0; i < attempt; ++i) {
    delay *= multiplier;
    if (cap_ms > 0.0 && delay >= cap_ms) {
      delay = cap_ms;
      break;
    }
  }
  if (jitter > 0.0) {
    // Deterministic draw: hash (seed, attempt) through splitmix64 and
    // map the top 53 bits onto [0, 1).
    const std::uint64_t bits = exec::splitmix64(
        seed + (static_cast<std::uint64_t>(attempt) + 1) * exec::kGoldenGamma);
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
    delay *= 1.0 - jitter + 2.0 * jitter * u;
  }
  if (cap_ms > 0.0 && delay > cap_ms) delay = cap_ms;
  return delay;
}

bool BackoffPolicy::overruns_budget(int attempt, const CancelToken& token) const noexcept {
  if (!token.valid()) return false;
  if (token.expired()) return true;
  const double delay = delay_ms(attempt);
  return delay > 0.0 && delay >= token.remaining_ms();
}

double backoff_sleep(const BackoffPolicy& policy, int attempt) {
  const double delay = policy.delay_ms(attempt);
  if (delay > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    if (obs::metrics_enabled()) {
      static obs::Histogram& slept = obs::histogram(
          "robust.backoff_sleep_ms", {1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 60000});
      slept.record(static_cast<std::uint64_t>(delay));
    }
  }
  return delay;
}

}  // namespace nanocost::robust
