#include "nanocost/roadmap/roadmap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nanocost/layout/density.hpp"

namespace nanocost::roadmap {

double TechnologyNode::implied_decompression_index() const {
  return layout::decompression_index(mpu_chip_area, mpu_transistors, lambda());
}

Roadmap::Roadmap(std::vector<TechnologyNode> nodes) : nodes_(std::move(nodes)) {
  if (nodes_.empty()) {
    throw std::invalid_argument("roadmap needs at least one node");
  }
  if (!std::is_sorted(nodes_.begin(), nodes_.end(),
                      [](const TechnologyNode& a, const TechnologyNode& b) {
                        return a.year < b.year;
                      })) {
    throw std::invalid_argument("roadmap nodes must be ordered by year");
  }
}

namespace {

TechnologyNode make_node(int year, const char* name, double half_pitch_nm,
                         double transistors_millions, double chip_cm2, double wafer_mm,
                         int metals, int masks, double cost_per_cm2) {
  TechnologyNode n;
  n.year = year;
  n.name = name;
  n.half_pitch = units::Nanometers{half_pitch_nm};
  n.mpu_transistors = transistors_millions * 1e6;
  n.mpu_chip_area = units::SquareCentimeters{chip_cm2};
  n.wafer_diameter = units::Millimeters{wafer_mm};
  n.metal_layers = metals;
  n.mask_count = masks;
  n.cost_per_cm2 = units::CostPerArea{cost_per_cm2};
  return n;
}

std::vector<TechnologyNode> itrs1999_nodes() {
  // Reconstruction of the ITRS-1999 cost-performance MPU trajectory
  // (introduction targets): transistors x3.6/x2.6/... per 3-year node,
  // chip size +~9%/node, half pitch x0.7/node, 8 $/cm^2 held constant
  // (the paper's optimistic assumption for Fig. 3).
  return {
      make_node(1999, "180nm", 180.0, 21.0, 3.40, 200.0, 6, 22, 8.0),
      make_node(2002, "130nm", 130.0, 76.0, 3.72, 300.0, 7, 24, 8.0),
      make_node(2005, "100nm", 100.0, 200.0, 4.08, 300.0, 8, 26, 8.0),
      make_node(2008, "70nm", 70.0, 539.0, 4.68, 300.0, 9, 28, 8.0),
      make_node(2011, "50nm", 50.0, 1400.0, 5.36, 300.0, 9, 30, 8.0),
      make_node(2014, "35nm", 35.0, 3620.0, 6.16, 450.0, 10, 32, 8.0),
  };
}

}  // namespace

Roadmap Roadmap::itrs1999() { return Roadmap{itrs1999_nodes()}; }

Roadmap Roadmap::itrs1999_with_cost_escalation(double rate_per_node) {
  if (!(rate_per_node >= 0.0)) {
    throw std::invalid_argument("cost escalation rate must be >= 0");
  }
  std::vector<TechnologyNode> nodes = itrs1999_nodes();
  double factor = 1.0;
  for (TechnologyNode& n : nodes) {
    n.cost_per_cm2 = n.cost_per_cm2 * factor;
    factor *= 1.0 + rate_per_node;
  }
  return Roadmap{std::move(nodes)};
}

const TechnologyNode& Roadmap::at_year(int year) const {
  for (const TechnologyNode& n : nodes_) {
    if (n.year == year) return n;
  }
  throw std::out_of_range("no roadmap node for year " + std::to_string(year));
}

const TechnologyNode& Roadmap::nearest(units::Nanometers half_pitch) const {
  const TechnologyNode* best = &nodes_.front();
  double best_err = std::fabs(best->half_pitch.value() - half_pitch.value());
  for (const TechnologyNode& n : nodes_) {
    const double err = std::fabs(n.half_pitch.value() - half_pitch.value());
    if (err < best_err) {
      best = &n;
      best_err = err;
    }
  }
  return *best;
}

namespace {

double geometric_mix(double a, double b, double t) {
  return a * std::pow(b / a, t);
}

}  // namespace

TechnologyNode Roadmap::interpolate(double year) const {
  if (year <= nodes_.front().year) return nodes_.front();
  if (year >= nodes_.back().year) return nodes_.back();
  std::size_t hi = 1;
  while (nodes_[hi].year < year) ++hi;
  const TechnologyNode& a = nodes_[hi - 1];
  const TechnologyNode& b = nodes_[hi];
  const double t = (year - a.year) / static_cast<double>(b.year - a.year);

  TechnologyNode out = a;
  out.year = static_cast<int>(std::lround(year));
  out.name = a.name + "~" + b.name;
  out.half_pitch =
      units::Nanometers{geometric_mix(a.half_pitch.value(), b.half_pitch.value(), t)};
  out.mpu_transistors = geometric_mix(a.mpu_transistors, b.mpu_transistors, t);
  out.mpu_chip_area = units::SquareCentimeters{
      geometric_mix(a.mpu_chip_area.value(), b.mpu_chip_area.value(), t)};
  out.cost_per_cm2 =
      units::CostPerArea{geometric_mix(a.cost_per_cm2.value(), b.cost_per_cm2.value(), t)};
  // Discrete attributes snap to the nearer node.
  const TechnologyNode& nearer = t < 0.5 ? a : b;
  out.wafer_diameter = nearer.wafer_diameter;
  out.metal_layers = nearer.metal_layers;
  out.mask_count = nearer.mask_count;
  return out;
}

}  // namespace nanocost::roadmap
