#include "nanocost/exec/rng_batch.hpp"

#include <cstddef>
#include <cstdint>

#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
#define NANOCOST_X86_SIMD 1
#include <immintrin.h>
#define NANOCOST_TARGET_SSE2 __attribute__((target("sse2")))
#define NANOCOST_TARGET_AVX2 __attribute__((target("avx2")))
#endif

namespace nanocost::exec {

namespace {

constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;
constexpr std::uint64_t kMul1 = 0xBF58476D1CE4E5B9ULL;
constexpr std::uint64_t kMul2 = 0x94D049BB133111EBULL;

// ---- scalar lanes -------------------------------------------------------

/// out[i] = splitmix64(start + i * stride).  Every batch below is an
/// instance of this affine-counter form: consecutive outputs of one
/// stream (stride = gamma) or per-task seeds (stride = gamma, shifted
/// start).
void mix_affine_scalar(std::uint64_t start, std::uint64_t stride, std::uint64_t* out,
                       std::size_t n) {
  std::uint64_t z = start;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = splitmix64(z);
    z += stride;
  }
}

void mix_add_scalar(const std::uint64_t* states, std::uint64_t addend, std::uint64_t* out,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = splitmix64(states[i] + addend);
}

void u53_scalar(const std::uint64_t* bits, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(bits[i] >> 11) * 0x1.0p-53;
  }
}

void u53_pos_scalar(const std::uint64_t* bits, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>((bits[i] >> 11) + 1) * 0x1.0p-53;
  }
}

#if defined(NANOCOST_X86_SIMD)

// ---- SSE2 lanes (2 x 64-bit) --------------------------------------------

/// 64-bit lane-wise multiply from 32-bit multiplies: lo*lo plus the two
/// cross terms shifted up (the hi*hi term overflows out of the lane).
NANOCOST_TARGET_SSE2 inline __m128i mullo64_sse2(__m128i a, __m128i b) {
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i c1 = _mm_mul_epu32(_mm_srli_epi64(a, 32), b);
  const __m128i c2 = _mm_mul_epu32(a, _mm_srli_epi64(b, 32));
  return _mm_add_epi64(lo, _mm_slli_epi64(_mm_add_epi64(c1, c2), 32));
}

NANOCOST_TARGET_SSE2 inline __m128i splitmix64_sse2(__m128i z) {
  z = mullo64_sse2(_mm_xor_si128(z, _mm_srli_epi64(z, 30)),
                   _mm_set1_epi64x(static_cast<long long>(kMul1)));
  z = mullo64_sse2(_mm_xor_si128(z, _mm_srli_epi64(z, 27)),
                   _mm_set1_epi64x(static_cast<long long>(kMul2)));
  return _mm_xor_si128(z, _mm_srli_epi64(z, 31));
}

NANOCOST_TARGET_SSE2 void mix_affine_sse2(std::uint64_t start, std::uint64_t stride,
                                          std::uint64_t* out, std::size_t n) {
  __m128i z = _mm_set_epi64x(static_cast<long long>(start + stride),
                             static_cast<long long>(start));
  const __m128i step = _mm_set1_epi64x(static_cast<long long>(2 * stride));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), splitmix64_sse2(z));
    z = _mm_add_epi64(z, step);
  }
  if (i < n) mix_affine_scalar(start + i * stride, stride, out + i, n - i);
}

NANOCOST_TARGET_SSE2 void mix_add_sse2(const std::uint64_t* states, std::uint64_t addend,
                                       std::uint64_t* out, std::size_t n) {
  const __m128i add = _mm_set1_epi64x(static_cast<long long>(addend));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i z =
        _mm_add_epi64(_mm_loadu_si128(reinterpret_cast<const __m128i*>(states + i)), add);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), splitmix64_sse2(z));
  }
  if (i < n) mix_add_scalar(states + i, addend, out + i, n - i);
}

/// Exact u64 -> double for values < 2^53: split into 32-bit halves,
/// convert each through the 2^52 magic-bias trick, and recombine as
/// hi * 2^32 + lo.  Every step is an exact double operation, so the
/// result is bitwise the scalar static_cast.
NANOCOST_TARGET_SSE2 inline __m128d u64lt53_to_pd_sse2(__m128i s) {
  const __m128d bias = _mm_castsi128_pd(_mm_set1_epi64x(0x4330000000000000LL));  // 2^52
  const __m128i hi = _mm_srli_epi64(s, 32);
  const __m128i lo = _mm_and_si128(s, _mm_set1_epi64x(0xFFFFFFFFLL));
  const __m128d hid =
      _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(hi, _mm_castpd_si128(bias))), bias);
  const __m128d lod =
      _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(lo, _mm_castpd_si128(bias))), bias);
  return _mm_add_pd(_mm_mul_pd(hid, _mm_set1_pd(0x1.0p32)), lod);
}

NANOCOST_TARGET_SSE2 void u53_sse2(const std::uint64_t* bits, double* out, std::size_t n) {
  const __m128d scale = _mm_set1_pd(0x1.0p-53);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i s =
        _mm_srli_epi64(_mm_loadu_si128(reinterpret_cast<const __m128i*>(bits + i)), 11);
    _mm_storeu_pd(out + i, _mm_mul_pd(u64lt53_to_pd_sse2(s), scale));
  }
  if (i < n) u53_scalar(bits + i, out + i, n - i);
}

NANOCOST_TARGET_SSE2 void u53_pos_sse2(const std::uint64_t* bits, double* out, std::size_t n) {
  const __m128d scale = _mm_set1_pd(0x1.0p-53);
  const __m128i one = _mm_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i s = _mm_add_epi64(
        _mm_srli_epi64(_mm_loadu_si128(reinterpret_cast<const __m128i*>(bits + i)), 11), one);
    _mm_storeu_pd(out + i, _mm_mul_pd(u64lt53_to_pd_sse2(s), scale));
  }
  if (i < n) u53_pos_scalar(bits + i, out + i, n - i);
}

// ---- AVX2 lanes (4 x 64-bit) --------------------------------------------

NANOCOST_TARGET_AVX2 inline __m256i mullo64_avx2(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i c1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i c2 = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(_mm256_add_epi64(c1, c2), 32));
}

NANOCOST_TARGET_AVX2 inline __m256i splitmix64_avx2(__m256i z) {
  z = mullo64_avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                   _mm256_set1_epi64x(static_cast<long long>(kMul1)));
  z = mullo64_avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                   _mm256_set1_epi64x(static_cast<long long>(kMul2)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

NANOCOST_TARGET_AVX2 void mix_affine_avx2(std::uint64_t start, std::uint64_t stride,
                                          std::uint64_t* out, std::size_t n) {
  __m256i z = _mm256_set_epi64x(
      static_cast<long long>(start + 3 * stride), static_cast<long long>(start + 2 * stride),
      static_cast<long long>(start + stride), static_cast<long long>(start));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * stride));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), splitmix64_avx2(z));
    z = _mm256_add_epi64(z, step);
  }
  if (i < n) mix_affine_scalar(start + i * stride, stride, out + i, n - i);
}

NANOCOST_TARGET_AVX2 void mix_add_avx2(const std::uint64_t* states, std::uint64_t addend,
                                       std::uint64_t* out, std::size_t n) {
  const __m256i add = _mm256_set1_epi64x(static_cast<long long>(addend));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i z = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states + i)), add);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), splitmix64_avx2(z));
  }
  if (i < n) mix_add_scalar(states + i, addend, out + i, n - i);
}

NANOCOST_TARGET_AVX2 inline __m256d u64lt53_to_pd_avx2(__m256i s) {
  const __m256d bias = _mm256_castsi256_pd(_mm256_set1_epi64x(0x4330000000000000LL));
  const __m256i hi = _mm256_srli_epi64(s, 32);
  const __m256i lo = _mm256_and_si256(s, _mm256_set1_epi64x(0xFFFFFFFFLL));
  const __m256d hid =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(hi, _mm256_castpd_si256(bias))), bias);
  const __m256d lod =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(lo, _mm256_castpd_si256(bias))), bias);
  return _mm256_add_pd(_mm256_mul_pd(hid, _mm256_set1_pd(0x1.0p32)), lod);
}

NANOCOST_TARGET_AVX2 void u53_avx2(const std::uint64_t* bits, double* out, std::size_t n) {
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i s =
        _mm256_srli_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + i)), 11);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(u64lt53_to_pd_avx2(s), scale));
  }
  if (i < n) u53_scalar(bits + i, out + i, n - i);
}

NANOCOST_TARGET_AVX2 void u53_pos_avx2(const std::uint64_t* bits, double* out, std::size_t n) {
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  const __m256i one = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i s = _mm256_add_epi64(
        _mm256_srli_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + i)), 11),
        one);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(u64lt53_to_pd_avx2(s), scale));
  }
  if (i < n) u53_pos_scalar(bits + i, out + i, n - i);
}

#endif  // NANOCOST_X86_SIMD

void mix_affine_at(SimdLevel level, std::uint64_t start, std::uint64_t stride,
                   std::uint64_t* out, std::size_t n) {
#if defined(NANOCOST_X86_SIMD)
  if (level == SimdLevel::kAvx2) return mix_affine_avx2(start, stride, out, n);
  if (level == SimdLevel::kSse2) return mix_affine_sse2(start, stride, out, n);
#else
  (void)level;
#endif
  mix_affine_scalar(start, stride, out, n);
}

}  // namespace

void splitmix64_batch_at(SimdLevel level, SplitMix64& rng, std::uint64_t* out, std::size_t n) {
  mix_affine_at(level, rng.state() + kGamma, kGamma, out, n);
  rng.advance(n);
}

void splitmix64_batch(SplitMix64& rng, std::uint64_t* out, std::size_t n) {
  splitmix64_batch_at(simd_level(), rng, out, n);
}

void for_task_batch_at(SimdLevel level, std::uint64_t base, std::uint64_t index0,
                       std::uint64_t* out, std::size_t n) {
  mix_affine_at(level, base + (index0 + 1) * kGamma, kGamma, out, n);
}

void for_task_batch(std::uint64_t base, std::uint64_t index0, std::uint64_t* out,
                    std::size_t n) {
  for_task_batch_at(simd_level(), base, index0, out, n);
}

void mix_add_batch_at(SimdLevel level, const std::uint64_t* states, std::uint64_t addend,
                      std::uint64_t* out, std::size_t n) {
#if defined(NANOCOST_X86_SIMD)
  if (level == SimdLevel::kAvx2) return mix_add_avx2(states, addend, out, n);
  if (level == SimdLevel::kSse2) return mix_add_sse2(states, addend, out, n);
#else
  (void)level;
#endif
  mix_add_scalar(states, addend, out, n);
}

void mix_add_batch(const std::uint64_t* states, std::uint64_t addend, std::uint64_t* out,
                   std::size_t n) {
  mix_add_batch_at(simd_level(), states, addend, out, n);
}

void u53_to_unit_batch_at(SimdLevel level, const std::uint64_t* bits, double* out,
                          std::size_t n) {
#if defined(NANOCOST_X86_SIMD)
  if (level == SimdLevel::kAvx2) return u53_avx2(bits, out, n);
  if (level == SimdLevel::kSse2) return u53_sse2(bits, out, n);
#else
  (void)level;
#endif
  u53_scalar(bits, out, n);
}

void u53_to_unit_batch(const std::uint64_t* bits, double* out, std::size_t n) {
  u53_to_unit_batch_at(simd_level(), bits, out, n);
}

void u53_to_unit_pos_batch_at(SimdLevel level, const std::uint64_t* bits, double* out,
                              std::size_t n) {
#if defined(NANOCOST_X86_SIMD)
  if (level == SimdLevel::kAvx2) return u53_pos_avx2(bits, out, n);
  if (level == SimdLevel::kSse2) return u53_pos_sse2(bits, out, n);
#else
  (void)level;
#endif
  u53_pos_scalar(bits, out, n);
}

void u53_to_unit_pos_batch(const std::uint64_t* bits, double* out, std::size_t n) {
  u53_to_unit_pos_batch_at(simd_level(), bits, out, n);
}

void uniform_unit_batch_at(SimdLevel level, SplitMix64& rng, double* out, std::size_t n) {
  // Raw bits staged through a stack block so arbitrarily large batches
  // stay allocation-free.
  constexpr std::size_t kBlock = 64;
  std::uint64_t bits[kBlock];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t take = n - done < kBlock ? n - done : kBlock;
    splitmix64_batch_at(level, rng, bits, take);
    u53_to_unit_batch_at(level, bits, out + done, take);
    done += take;
  }
}

void uniform_unit_batch(SplitMix64& rng, double* out, std::size_t n) {
  uniform_unit_batch_at(simd_level(), rng, out, n);
}

void bounded_u32_batch_at(SimdLevel level, SplitMix64& rng, std::uint32_t bound,
                          std::uint32_t* out, std::size_t n) {
  // Speculative blocks: candidates come from the engine's *future*
  // outputs without advancing it.  A block whose lanes all accept
  // (low >= bound -- overwhelmingly likely for realistic bounds)
  // commits with one advance; any lane that could reject re-runs the
  // block's remainder through the scalar draw, which consumes exactly
  // the stream the all-scalar loop would.
  constexpr std::size_t kBlock = 16;
  std::uint64_t raw[kBlock];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t take = n - done < kBlock ? n - done : kBlock;
    mix_affine_at(level, rng.state() + kGamma, kGamma, raw, take);
    bool clean = true;
    for (std::size_t i = 0; i < take; ++i) {
      const std::uint64_t m =
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(raw[i] >> 32)) * bound;
      if (static_cast<std::uint32_t>(m) < bound) {
        clean = false;
        break;
      }
      out[done + i] = static_cast<std::uint32_t>(m >> 32);
    }
    if (clean) {
      rng.advance(take);
    } else {
      for (std::size_t i = 0; i < take; ++i) out[done + i] = bounded_u32(rng, bound);
    }
    done += take;
  }
}

void bounded_u32_batch(SplitMix64& rng, std::uint32_t bound, std::uint32_t* out,
                       std::size_t n) {
  bounded_u32_batch_at(simd_level(), rng, bound, out, n);
}

}  // namespace nanocost::exec
