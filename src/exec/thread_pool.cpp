#include "nanocost/exec/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "nanocost/obs/metrics.hpp"
#include "nanocost/obs/trace.hpp"

namespace nanocost::exec {

namespace {

// True while the current thread is executing tasks of some batch; a
// nested run_tasks then executes inline instead of re-entering a pool.
thread_local bool t_in_parallel_region = false;

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct ThreadPool::Impl {
  // One dispatched batch of tasks.  Workers keep a shared_ptr snapshot,
  // so a lane waking late can only touch its own (already drained)
  // batch, never a newer one.
  struct Batch {
    const std::function<void(std::int64_t)>* task = nullptr;
    std::int64_t n = 0;
    std::atomic<std::int64_t> next{0};
    std::int64_t finished = 0;        // guarded by mu
    // Guarded by mu.  The *lowest-index* failure wins, not the first in
    // time: tasks are claimed in ascending order, so once an error at
    // index e is recorded every not-yet-claimed task has a higher index
    // and can be skipped, while in-flight lower-index tasks may still
    // replace it.  The rethrown exception is therefore a deterministic
    // function of the task set, independent of thread count.
    std::exception_ptr error;
    std::int64_t error_index = 0;
    // Optional cancellation poll (null: never cancelled).  Once any
    // lane sees it return true the latch sticks, so later tasks skip
    // without re-polling.  Skipping happens at *execution*, never at
    // claim: lanes keep draining the claim counter so the finished
    // accounting (and the caller's wake-up) is unchanged.
    const std::function<bool()>* cancelled = nullptr;
    std::atomic<bool> cancel_latched{false};
    // steady_clock ns when the batch was published to the workers; 0
    // unless metrics are on.  Purely observational (dispatch-latency
    // histogram) -- no scheduling decision reads it.
    std::uint64_t publish_ns = 0;
  };

  std::mutex mu;
  std::condition_variable work_cv;    // workers: a new batch is available
  std::condition_variable done_cv;    // caller: the batch has drained
  std::shared_ptr<Batch> current;     // guarded by mu
  std::uint64_t epoch = 0;            // guarded by mu; bumped per batch
  bool busy = false;                  // guarded by mu; one batch at a time
  bool stop = false;                  // guarded by mu
  int lanes = 1;
  std::vector<std::thread> workers;

  /// Claims and runs tasks of `batch` until the counter drains; returns
  /// the number of tasks this lane executed (or skipped after an error).
  std::int64_t work_on(Batch& batch) {
    obs::ObsSpan span("exec.lane");
    std::int64_t done = 0;
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    for (;;) {
      const std::int64_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.n) break;
      bool skip;
      {
        std::lock_guard<std::mutex> lk(mu);
        // Only tasks *above* the recorded failure may be skipped: a task
        // below it could still throw and must win, or the reported
        // exception would depend on scheduling.
        skip = static_cast<bool>(batch.error) && batch.error_index < i;
      }
      if (!skip && batch.cancelled != nullptr) {
        if (batch.cancel_latched.load(std::memory_order_relaxed)) {
          skip = true;
        } else if ((*batch.cancelled)()) {
          batch.cancel_latched.store(true, std::memory_order_relaxed);
          skip = true;
        }
      }
      if (!skip) {
        try {
          (*batch.task)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(mu);
          if (!batch.error || i < batch.error_index) {
            batch.error = std::current_exception();
            batch.error_index = i;
          }
        }
      }
      ++done;
    }
    t_in_parallel_region = was_in_region;
    span.arg("tasks", static_cast<std::uint64_t>(done));
    return done;
  }

  void worker_loop() {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lk(mu);
        work_cv.wait(lk, [&] { return stop || epoch != seen_epoch; });
        if (stop) return;
        seen_epoch = epoch;
        batch = current;
      }
      if (!batch) continue;
      if (batch->publish_ns != 0) {
        static obs::Histogram& dispatch_us = obs::histogram(
            "exec.dispatch_us", {1, 10, 100, 1000, 10000, 100000});
        const std::uint64_t now = steady_now_ns();
        dispatch_us.record(now > batch->publish_ns ? (now - batch->publish_ns) / 1000 : 0);
      }
      const std::int64_t done = work_on(*batch);
      {
        std::lock_guard<std::mutex> lk(mu);
        batch->finished += done;
        if (batch->finished == batch->n) done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  impl_->lanes = threads > 0 ? threads : default_thread_count();
  impl_->workers.reserve(static_cast<std::size_t>(impl_->lanes - 1));
  for (int i = 1; i < impl_->lanes; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

int ThreadPool::thread_count() const noexcept { return impl_->lanes; }

void ThreadPool::run_tasks(std::int64_t n_tasks,
                           const std::function<void(std::int64_t)>& task) {
  static const std::function<bool()> never;
  run_tasks(n_tasks, task, never);
}

void ThreadPool::run_tasks(std::int64_t n_tasks,
                           const std::function<void(std::int64_t)>& task,
                           const std::function<bool()>& cancelled) {
  if (n_tasks <= 0) return;
  if (!task) throw std::invalid_argument("run_tasks needs a callable task");

  obs::ObsSpan span("exec.batch");
  span.arg("tasks", static_cast<std::uint64_t>(n_tasks));
  if (obs::metrics_enabled()) {
    static obs::Counter& batches = obs::counter("exec.batches");
    static obs::Counter& tasks = obs::counter("exec.tasks");
    batches.add();
    tasks.add(static_cast<std::uint64_t>(n_tasks));
  }

  const auto run_inline = [&] {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      // The serial path mirrors the pool's skip-at-execution semantics:
      // ascending order, cancellation checked before each task, and the
      // first exception surfaces directly (which on this path *is* the
      // lowest-index one).
      for (std::int64_t i = 0; i < n_tasks; ++i) {
        if (cancelled && cancelled()) break;
        task(i);
      }
    } catch (...) {
      t_in_parallel_region = was_in_region;
      throw;
    }
    t_in_parallel_region = was_in_region;
  };

  if (t_in_parallel_region || impl_->lanes == 1 || n_tasks == 1) {
    run_inline();
    return;
  }

  auto batch = std::make_shared<Impl::Batch>();
  batch->task = &task;
  batch->n = n_tasks;
  if (cancelled) batch->cancelled = &cancelled;
  if (obs::metrics_enabled()) batch->publish_ns = steady_now_ns();
  bool claimed = false;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (!impl_->busy && !impl_->stop) {
      impl_->busy = true;
      impl_->current = batch;
      ++impl_->epoch;
      claimed = true;
    }
  }
  if (!claimed) {
    // Another thread is already driving a batch on this pool; do not
    // interleave two batches -- fall back to inline execution.
    run_inline();
    return;
  }
  impl_->work_cv.notify_all();

  const std::int64_t done = impl_->work_on(*batch);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    batch->finished += done;
    impl_->done_cv.wait(lk, [&] { return batch->finished == batch->n; });
    impl_->busy = false;
    impl_->current.reset();
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

int ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("NANOCOST_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<int>(parsed > 1024 ? 1024 : parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace nanocost::exec
