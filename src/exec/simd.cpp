#include "nanocost/exec/simd.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>

namespace nanocost::exec {

namespace {

#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
SimdLevel probe_cpu() noexcept {
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
}
#else
SimdLevel probe_cpu() noexcept { return SimdLevel::kScalar; }
#endif

/// Parses NANOCOST_SIMD and clamps to what the CPU can run.  Exactly
/// one diagnostic on a malformed value (the NANOCOST_METRICS pattern);
/// the override then falls back to auto-detection.
SimdLevel resolve_level() noexcept {
  const SimdLevel detected = probe_cpu();
  const char* env = std::getenv("NANOCOST_SIMD");
  if (env == nullptr) return detected;
  const std::string_view v(env);
  SimdLevel wanted = detected;
  if (v == "scalar") {
    wanted = SimdLevel::kScalar;
  } else if (v == "sse2") {
    wanted = SimdLevel::kSse2;
  } else if (v == "avx2") {
    wanted = SimdLevel::kAvx2;
  } else if (!v.empty()) {
    std::fprintf(stderr,
                 "nanocost: NANOCOST_SIMD='%s' is not a recognised level "
                 "(use scalar/sse2/avx2); using auto-detection\n",
                 env);
    return detected;
  }
  if (wanted > detected) {
    std::fprintf(stderr,
                 "nanocost: NANOCOST_SIMD='%s' exceeds what this CPU supports; "
                 "clamping to %s\n",
                 env, simd_level_name(detected));
    return detected;
  }
  return wanted;
}

}  // namespace

SimdLevel detected_simd_level() noexcept { return probe_cpu(); }

SimdLevel simd_level() noexcept {
  // std::once keeps the env parse (and its diagnostic) single-shot even
  // when the first calls race on the worker pool.
  static SimdLevel level = SimdLevel::kScalar;
  static std::once_flag once;
  std::call_once(once, [] { level = resolve_level(); });
  return level;
}

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

}  // namespace nanocost::exec
