#include "nanocost/serve/server.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "nanocost/cache/codec.hpp"
#include "nanocost/cache/key.hpp"
#include "nanocost/exec/simd.hpp"
#include "nanocost/fabsim/campaign.hpp"
#include "nanocost/obs/metrics.hpp"
#include "nanocost/obs/stats.hpp"
#include "nanocost/obs/trace.hpp"
#include "nanocost/robust/fault_injection.hpp"
#include "nanocost/serve/jobs.hpp"
#include "nanocost/serve/wire.hpp"

namespace nanocost::serve {

namespace {

constexpr robust::FaultSite kAcceptSite{"serve.accept"};
constexpr robust::FaultSite kDispatchSite{"serve.dispatch"};

/// Leading integer of a "major.minor.patch" string; -1 when the string
/// does not start with digits followed by a dot (treated as a mismatch
/// by the handshake, with the raw string in the diagnostic).
int major_version_of(const std::string& v) noexcept {
  int major = 0;
  std::size_t i = 0;
  while (i < v.size() && v[i] >= '0' && v[i] <= '9') {
    major = major * 10 + (v[i] - '0');
    ++i;
  }
  if (i == 0 || i >= v.size() || v[i] != '.') return -1;
  return major;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shared bucket ladder for request latencies: 100 us .. 10 s.
const std::vector<std::uint64_t>& latency_bounds() {
  static const std::vector<std::uint64_t> bounds{
      100,   250,    500,    1000,   2500,    5000,    10000,   25000,
      50000, 100000, 250000, 500000, 1000000, 2500000, 5000000, 10000000};
  return bounds;
}

// Every metric handle below is a function-local static so the registry
// mutex is paid once per site (the idiom obs/metrics.hpp documents),
// never per request.

obs::Histogram& request_latency_hist() {
  static obs::Histogram& h = obs::histogram("serve.request_us", latency_bounds());
  return h;
}

enum class JobKind : int { kEq4 = 0, kRisk = 1, kCampaign = 2 };

std::optional<JobKind> job_kind_of(FrameType type) noexcept {
  switch (type) {
    case FrameType::kEq4Request:
      return JobKind::kEq4;
    case FrameType::kRiskRequest:
      return JobKind::kRisk;
    case FrameType::kCampaignRequest:
      return JobKind::kCampaign;
    default:
      return std::nullopt;
  }
}

/// Outcome label of a final status: partial/stopped count as "expired"
/// (a budget tripped), matching the ok/error/shed/expired ladder.
int outcome_index(ResponseStatus s) noexcept {
  switch (s) {
    case ResponseStatus::kOk:
      return 0;
    case ResponseStatus::kError:
      return 1;
    case ResponseStatus::kShed:
      return 2;
    case ResponseStatus::kPartial:
    case ResponseStatus::kExpired:
    case ResponseStatus::kStopped:
      return 3;
  }
  return 1;
}

obs::Histogram& job_latency_hist(JobKind kind, ResponseStatus status) {
  // All 12 job-type x outcome histograms register in one pass; every
  // later call is a plain array index.
  struct Table {
    obs::Histogram* h[3][4];
    Table() {
      constexpr const char* kJobs[3] = {"eq4", "risk", "campaign"};
      constexpr const char* kOutcomes[4] = {"ok", "error", "shed", "expired"};
      for (int j = 0; j < 3; ++j) {
        for (int o = 0; o < 4; ++o) {
          h[j][o] = &obs::histogram(
              std::string("serve.latency_us.") + kJobs[j] + "." + kOutcomes[o],
              latency_bounds());
        }
      }
    }
  };
  static Table table;
  return *table.h[static_cast<int>(kind)][outcome_index(status)];
}

void count_request() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.requests");
    c.add();
  }
}

void count_wire_error() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.wire_errors");
    c.add();
  }
}

void count_coalesced() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.coalesced");
    c.add();
  }
}

void count_shed() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.shed");
    c.add();
  }
}

void count_bytes_in(std::size_t payload_bytes) {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.bytes_in");
    c.add(payload_bytes + kFrameOverheadBytes);
  }
}

void count_bytes_out(std::size_t payload_bytes) {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.bytes_out");
    c.add(payload_bytes + kFrameOverheadBytes);
  }
}

void set_queue_depth(std::size_t outstanding) {
  if (obs::metrics_enabled()) {
    static obs::Gauge& g = obs::gauge("serve.queue_depth");
    g.set(static_cast<double>(outstanding));
  }
}

void set_inflight(std::int64_t n) {
  if (obs::metrics_enabled()) {
    static obs::Gauge& g = obs::gauge("serve.inflight");
    g.set(static_cast<double>(n));
  }
}

void set_coalesced_inflight(std::int64_t n) {
  if (obs::metrics_enabled()) {
    static obs::Gauge& g = obs::gauge("serve.coalesced_inflight");
    g.set(static_cast<double>(n));
  }
}

void count_handshake() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.handshakes");
    c.add();
  }
}

void count_handshake_reject() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.handshake_rejects");
    c.add();
  }
}

void count_reconnect() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.reconnects_total");
    c.add();
  }
}

void count_reaped() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.reaped_connections");
    c.add();
  }
}

void count_evicted() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.evicted_connections");
    c.add();
  }
}

void count_tenant_shed(const std::string& tenant) {
  if (obs::metrics_enabled()) {
    static obs::Counter& total = obs::counter("serve.tenant_shed_total");
    total.add();
    // The per-tenant spelling is dynamic; the registry lookup is fine
    // here because shedding is the rare path by construction.
    obs::counter("serve.tenant_shed." + (tenant.empty() ? std::string("anonymous") : tenant))
        .add();
  }
}

/// Latency bookkeeping for one answered job request (response already
/// written): the overall serve.request_us histogram -- whose count is
/// exactly the job responses served -- plus the per-type x per-outcome
/// ladder.  Ping/stats/trace frames are deliberately not recorded.
void record_latency(JobKind kind, ResponseStatus status, std::uint64_t start_us) {
  if (!obs::metrics_enabled()) return;
  const std::uint64_t now = now_us();
  const std::uint64_t elapsed = now > start_us ? now - start_us : 0;
  request_latency_hist().record(elapsed);
  job_latency_hist(kind, status).record(elapsed);
}

}  // namespace

struct Server::Impl {
  // ---- connection ------------------------------------------------------

  struct Connection {
    std::unique_ptr<FdStream> stream;
    std::mutex write_mu;
    std::thread reader;
    std::atomic<bool> dead{false};
    std::uint64_t conn_id = 0;    ///< registration order; eviction tie-break
    std::uint64_t frames_seen = 0;  ///< reader-thread only; hello must be frame 1
    bool helloed = false;           ///< reader-thread only
    std::string tenant;             ///< set by the hello before any job dispatches
    /// Responses owed to this connection (registered waiters not yet
    /// answered).  The idle reaper exempts connections with work owed.
    std::atomic<std::uint64_t> outstanding{0};
    /// Last frame arrival (steady ns); the eviction order key.
    std::atomic<std::uint64_t> last_activity_ns{0};
  };

  struct Waiter {
    std::shared_ptr<Connection> conn;
    std::uint64_t request_id = 0;
    std::uint64_t start_us = 0;  ///< dispatch time, for the latency histograms
    std::string tenant;          ///< quota bookkeeping outlives the connection
  };

  /// One bound accept socket (Unix or TCP) with its accept thread.
  struct Listener {
    int fd = -1;
    std::string unix_path;  ///< unlinked at shutdown; empty for TCP
    std::thread thread;
  };

  struct LightJob {
    cache::Digest128 key{};
    bool is_eq4 = true;
    Eq4Job eq4;
    RiskJob risk;
  };

  /// One admitted campaign awaiting its drain outcome.  The simulator
  /// and task live here because CampaignQueue holds them by reference.
  struct PendingCampaign {
    std::unique_ptr<fabsim::FabSimulator> sim;
    std::unique_ptr<fabsim::FabLotCampaign> task;
    std::vector<Waiter> waiters;  ///< [0] owns the computation
    cache::Digest128 key{};
  };

  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        queue(robust::AdmissionOptions{options.campaign_capacity, options.campaign_policy,
                                       0.0, robust::CancelToken{}}) {
    if (!options.artifact_dir.empty()) {
      store = std::make_unique<robust::ArtifactStore>(options.artifact_dir,
                                                      options.artifact_byte_cap);
    }
    // A peer that vanishes mid-response must cost EPIPE on the write,
    // not a process-wide SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    if (obs::metrics_enabled()) {
      // Register the fleet-health counters up front so a scrape of a
      // healthy server shows them at 0 instead of omitting them.
      (void)obs::counter("serve.reconnects_total");
      (void)obs::counter("serve.tenant_shed_total");
      (void)obs::counter("serve.handshake_rejects");
      (void)obs::counter("serve.reaped_connections");
      (void)obs::counter("serve.evicted_connections");
    }
    const int n = options.worker_threads > 0 ? options.worker_threads : 1;
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
    runner = std::thread([this] { runner_loop(); });
  }

  // ---- wire output -----------------------------------------------------

  void send_response(const std::shared_ptr<Connection>& conn, const Response& response) {
    if (conn->dead.load(std::memory_order_acquire)) return;
    const std::vector<std::uint8_t> payload = encode_payload(response);
    try {
      std::lock_guard<std::mutex> lk(conn->write_mu);
      write_frame(*conn->stream, FrameType::kResponse, payload);
      requests_served.fetch_add(1, std::memory_order_relaxed);
      count_bytes_out(payload.size());
    } catch (const WireError&) {
      conn->dead.store(true, std::memory_order_release);
    }
  }

  void send_error_frame(const std::shared_ptr<Connection>& conn, std::uint64_t request_id,
                        const std::string& message) {
    cache::ByteWriter w;
    w.u64(request_id);
    w.str(message);
    const std::vector<std::uint8_t> payload = w.take();
    try {
      std::lock_guard<std::mutex> lk(conn->write_mu);
      write_frame(*conn->stream, FrameType::kErrorFrame, payload);
      count_bytes_out(payload.size());
    } catch (const WireError&) {
      conn->dead.store(true, std::memory_order_release);
    }
  }

  // ---- reader / dispatch -----------------------------------------------

  void reader_loop(const std::shared_ptr<Connection>& conn) {
    if (options.idle_timeout_ms > 0.0 || options.read_deadline_ms > 0.0) {
      conn->stream->arm_read_deadlines(options.idle_timeout_ms, options.read_deadline_ms);
    }
    bool kill = false;
    while (!conn->dead.load(std::memory_order_acquire)) {
      std::optional<Frame> frame;
      try {
        conn->stream->begin_frame();
        frame = read_frame(*conn->stream);
      } catch (const WireTimeout& e) {
        if (e.idle() && conn->outstanding.load(std::memory_order_acquire) > 0) {
          // Not idle at all: this client is quietly waiting on results
          // we still owe it (a long campaign).  Re-open the window.
          continue;
        }
        connections_reaped.fetch_add(1, std::memory_order_relaxed);
        count_reaped();
        send_error_frame(conn, 0, e.what());
        kill = true;
        break;
      } catch (const WireError& e) {
        // Structural damage: this connection dies with a diagnostic;
        // the server keeps serving everyone else.
        wire_errors.fetch_add(1, std::memory_order_relaxed);
        count_wire_error();
        send_error_frame(conn, 0, e.what());
        kill = true;
        break;
      }
      if (!frame) break;  // clean close, drain interrupt, or eviction
      conn->last_activity_ns.store(now_ns(), std::memory_order_relaxed);
      ++conn->frames_seen;
      count_bytes_in(frame->payload.size());
      if (!dispatch(conn, *frame)) {
        kill = true;
        break;
      }
    }
    if (kill || conn->dead.load(std::memory_order_acquire)) {
      // The connection is dead for real -- protocol violation, reap, or
      // eviction: close the descriptors so the peer sees EOF after the
      // diagnostic error frame.  In-flight jobs it submitted still run;
      // their responses are dropped at the dead-flag check.
      conn->dead.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lk(conn->write_mu);
      conn->stream->close_fds();
    }
    // Clean EOF (peer half-closed or drain interrupt): leave the stream
    // open -- responses for already-dispatched requests are still
    // deliverable on the write side until shutdown reaps the connection.
  }

  /// Handles one well-formed frame; returns false when the connection
  /// must close (protocol violation).
  bool dispatch(const std::shared_ptr<Connection>& conn, const Frame& frame) {
    obs::ObsSpan span("serve.request");
    count_request();
    const std::uint64_t request_id = peek_request_id(frame.payload);
    const std::uint64_t start_us = now_us();
    try {
      robust::inject(kDispatchSite, dispatch_index.fetch_add(1, std::memory_order_relaxed));
    } catch (const robust::FaultInjected& e) {
      Response r;
      r.request_id = request_id;
      r.status = ResponseStatus::kError;
      r.message = std::string("injected fault: ") + e.what() + "; resubmit";
      send_response(conn, r);
      if (const std::optional<JobKind> kind = job_kind_of(frame.type)) {
        record_latency(*kind, r.status, start_us);
      }
      return true;
    }
    switch (frame.type) {
      case FrameType::kPing: {
        try {
          std::lock_guard<std::mutex> lk(conn->write_mu);
          write_frame(*conn->stream, FrameType::kPong, frame.payload);
          count_bytes_out(frame.payload.size());
        } catch (const WireError&) {
          conn->dead.store(true, std::memory_order_release);
        }
        return true;
      }
      case FrameType::kEq4Request:
      case FrameType::kRiskRequest:
        return dispatch_light(conn, frame, request_id, start_us);
      case FrameType::kCampaignRequest:
        return dispatch_campaign(conn, frame, request_id, start_us);
      case FrameType::kStatsRequest:
        return handle_stats(conn, frame, request_id);
      case FrameType::kTraceStart:
        return handle_trace(conn, frame, request_id, /*start=*/true);
      case FrameType::kTraceStop:
        return handle_trace(conn, frame, request_id, /*start=*/false);
      case FrameType::kHello:
        return handle_hello(conn, frame, request_id);
      case FrameType::kResponse:
      case FrameType::kPong:
      case FrameType::kErrorFrame:
      case FrameType::kStatsResponse:
      case FrameType::kHelloAck:
        // Server-to-client types arriving at the server: a confused or
        // hostile peer.  Kill the connection, keep the server.
        wire_errors.fetch_add(1, std::memory_order_relaxed);
        count_wire_error();
        send_error_frame(conn, request_id,
                         std::string("protocol violation: client sent a ") +
                             frame_type_name(frame.type) + " frame");
        return false;
    }
    return false;
  }

  // ---- handshake -------------------------------------------------------

  /// Rejects the connection's handshake: counted, diagnosed by an error
  /// frame whose message starts "NCWIRE01 handshake rejected:", and the
  /// connection dies (return false reaches the reader's kill path).
  bool reject_handshake(const std::shared_ptr<Connection>& conn, std::uint64_t request_id,
                        const std::string& why) {
    handshake_rejects.fetch_add(1, std::memory_order_relaxed);
    count_handshake_reject();
    send_error_frame(conn, request_id, "NCWIRE01 handshake rejected: " + why);
    return false;
  }

  bool handle_hello(const std::shared_ptr<Connection>& conn, const Frame& frame,
                    std::uint64_t request_id) {
    if (conn->frames_seen != 1) {
      return reject_handshake(conn, request_id,
                              "the hello must be the first frame on a connection (this "
                              "one arrived as frame " +
                                  std::to_string(conn->frames_seen) + ")");
    }
    HelloRequest hello;
    try {
      hello = decode_hello(frame.payload);
    } catch (const std::exception& e) {
      return reject_handshake(conn, request_id,
                              std::string("malformed hello payload: ") + e.what());
    }
    if (hello.protocol_version != kWireVersion) {
      return reject_handshake(
          conn, request_id,
          "peer speaks protocol version " + std::to_string(hello.protocol_version) +
              ", this server speaks " + std::to_string(kWireVersion));
    }
    const int server_major = major_version_of(kServeVersion);
    const int client_major = major_version_of(hello.build_version);
    if (client_major < 0 || client_major != server_major) {
      return reject_handshake(conn, request_id,
                              "peer build version \"" + hello.build_version +
                                  "\" is incompatible with server build " + kServeVersion +
                                  " (major must match)");
    }
    conn->helloed = true;
    conn->tenant = hello.tenant;
    count_handshake();
    if (hello.attempt > 0) {
      // A retrying client re-introducing itself: the fleet-health signal
      // the chaos soak scrapes for.
      count_reconnect();
    }
    HelloAck ack;
    ack.request_id = hello.request_id;
    ack.protocol_version = kWireVersion;
    ack.build_version = kServeVersion;
    const std::vector<std::uint8_t> payload = encode_payload(ack);
    try {
      std::lock_guard<std::mutex> lk(conn->write_mu);
      // Deliberately not counted in requests_served or the latency
      // histograms: those track job traffic, and a handshake is
      // connection plumbing.
      write_frame(*conn->stream, FrameType::kHelloAck, payload);
      count_bytes_out(payload.size());
    } catch (const WireError&) {
      conn->dead.store(true, std::memory_order_release);
    }
    return true;
  }

  // ---- stats / trace frames --------------------------------------------

  bool handle_stats(const std::shared_ptr<Connection>& conn, const Frame& frame,
                    std::uint64_t request_id) {
    if (frame.payload.size() != 8) {
      Response r;
      r.request_id = request_id;
      r.status = ResponseStatus::kError;
      r.message = "invalid stats request: payload must be exactly the u64 request id";
      send_response(conn, r);
      return true;
    }
    StatsReport sr;
    sr.request_id = request_id;
    sr.server_version = kServeVersion;
    sr.simd_level = exec::simd_level_name(exec::simd_level());
    sr.hardware_concurrency = std::thread::hardware_concurrency();
    sr.pid = static_cast<std::uint64_t>(::getpid());
    sr.uptime_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
    sr.stats = obs::encode_stats(obs::snapshot_metrics());
    const std::vector<std::uint8_t> payload = encode_payload(sr);
    try {
      std::lock_guard<std::mutex> lk(conn->write_mu);
      write_frame(*conn->stream, FrameType::kStatsResponse, payload);
      requests_served.fetch_add(1, std::memory_order_relaxed);
      count_bytes_out(payload.size());
    } catch (const WireError&) {
      conn->dead.store(true, std::memory_order_release);
    }
    return true;
  }

  bool handle_trace(const std::shared_ptr<Connection>& conn, const Frame& frame,
                    std::uint64_t request_id, bool start) {
    Response r;
    r.request_id = request_id;
    if (frame.payload.size() != 8) {
      r.status = ResponseStatus::kError;
      r.message = "invalid trace request: payload must be exactly the u64 request id";
      send_response(conn, r);
      return true;
    }
    if (start) {
      std::string path;
      {
        std::lock_guard<std::mutex> lk(mu);
        if (trace_armed) {
          r.status = ResponseStatus::kError;
          r.message = "a remote trace capture is already armed; stop it first";
        } else {
          const std::string dir = options.artifact_dir.empty()
                                      ? std::filesystem::temp_directory_path().string()
                                      : options.artifact_dir;
          trace_file = dir + "/nanocost_serve_trace_" +
                       std::to_string(static_cast<unsigned long long>(::getpid())) +
                       ".json";
          trace_armed = true;
          path = trace_file;
        }
      }
      if (!path.empty()) {
        obs::start_trace(path);
        r.message = "trace armed";
      }
      send_response(conn, r);
      return true;
    }
    std::string path;
    {
      std::lock_guard<std::mutex> lk(mu);
      if (!trace_armed) {
        r.status = ResponseStatus::kError;
        r.message = "no remote trace capture is armed";
      } else {
        trace_armed = false;
        path = trace_file;
      }
    }
    if (!path.empty()) {
      if (!obs::stop_trace()) {
        r.status = ResponseStatus::kError;
        r.message = "trace capture failed to write " + path;
      } else {
        std::ifstream in(path, std::ios::binary);
        if (!in.is_open()) {
          r.status = ResponseStatus::kError;
          r.message = "trace capture wrote no file at " + path;
        } else {
          std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                          std::istreambuf_iterator<char>()};
          // The Chrome JSON must fit one NCWIRE01 frame with headroom
          // for the response envelope.
          constexpr std::size_t kEnvelopeSlack = 64 * 1024;
          if (bytes.size() + kEnvelopeSlack > kMaxPayloadBytes) {
            r.status = ResponseStatus::kError;
            r.message = "trace too large to return in-band (" +
                        std::to_string(bytes.size()) + " bytes); left at " + path;
          } else {
            r.result = std::move(bytes);
            r.message = "chrome trace json";
            std::remove(path.c_str());
          }
        }
      }
    }
    send_response(conn, r);
    return true;
  }

  bool dispatch_light(const std::shared_ptr<Connection>& conn, const Frame& frame,
                      std::uint64_t request_id, std::uint64_t start_us) {
    LightJob job;
    const JobKind kind =
        frame.type == FrameType::kEq4Request ? JobKind::kEq4 : JobKind::kRisk;
    try {
      if (frame.type == FrameType::kEq4Request) {
        job.is_eq4 = true;
        job.eq4 = decode_eq4_job(frame.payload);
        job.key = job_key(job.eq4);
      } else {
        job.is_eq4 = false;
        job.risk = decode_risk_job(frame.payload);
        job.key = job_key(job.risk);
      }
    } catch (const std::exception& e) {
      // The frame was structurally sound (checksum passed) but the job
      // is semantically invalid: error response, connection lives.
      Response r;
      r.request_id = request_id;
      r.status = ResponseStatus::kError;
      r.message = std::string("invalid job payload: ") + e.what();
      send_response(conn, r);
      record_latency(kind, r.status, start_us);
      return true;
    }
    {
      std::unique_lock<std::mutex> lk(mu);
      auto it = light_inflight.find(job.key);
      if (it != light_inflight.end()) {
        // An identical job is already computing: piggyback.
        it->second.push_back(Waiter{conn, request_id, start_us, conn->tenant});
        conn->outstanding.fetch_add(1, std::memory_order_acq_rel);
        coalesced_count.fetch_add(1, std::memory_order_relaxed);
        count_coalesced();
        ++inflight_waiters;
        ++coalesced_waiters;
        set_inflight(inflight_waiters);
        set_coalesced_inflight(coalesced_waiters);
        return true;
      }
      light_inflight[job.key] = {Waiter{conn, request_id, start_us, conn->tenant}};
      light_queue.push_back(std::move(job));
      conn->outstanding.fetch_add(1, std::memory_order_acq_rel);
      ++inflight_waiters;
      set_inflight(inflight_waiters);
    }
    light_cv.notify_one();
    return true;
  }

  bool dispatch_campaign(const std::shared_ptr<Connection>& conn, const Frame& frame,
                         std::uint64_t request_id, std::uint64_t start_us) {
    CampaignJob job;
    std::unique_ptr<fabsim::FabSimulator> sim;
    cache::Digest128 key;
    try {
      job = decode_campaign_job(frame.payload);
      sim = std::make_unique<fabsim::FabSimulator>(make_simulator(job));
      key = job_key(job);
    } catch (const std::exception& e) {
      Response r;
      r.request_id = request_id;
      r.status = ResponseStatus::kError;
      r.message = std::string("invalid campaign job: ") + e.what();
      send_response(conn, r);
      record_latency(JobKind::kCampaign, r.status, start_us);
      return true;
    }
    std::size_t slot = 0;
    bool admitted = false;
    Response immediate;
    {
      std::unique_lock<std::mutex> lk(mu);
      // The tenant quota gates every submission path -- joining an
      // in-flight twin holds a response slot just like a fresh admit.
      const std::string& tenant = conn->tenant;
      if (options.tenant_campaign_quota > 0 &&
          tenant_outstanding[tenant] >= options.tenant_campaign_quota) {
        tenant_shed.fetch_add(1, std::memory_order_relaxed);
        count_tenant_shed(tenant);
        Response shed;
        shed.request_id = request_id;
        shed.status = ResponseStatus::kShed;
        shed.message = "tenant quota: tenant \"" + tenant + "\" already has " +
                       std::to_string(tenant_outstanding[tenant]) +
                       " campaigns in flight (quota " +
                       std::to_string(options.tenant_campaign_quota) + ")";
        shed.completeness = 0.0;
        lk.unlock();
        send_response(conn, shed);
        record_latency(JobKind::kCampaign, shed.status, start_us);
        return true;
      }
      auto it = campaign_inflight.find(key);
      if (it != campaign_inflight.end()) {
        pending.at(it->second).waiters.push_back(Waiter{conn, request_id, start_us, tenant});
        ++tenant_outstanding[tenant];
        conn->outstanding.fetch_add(1, std::memory_order_acq_rel);
        coalesced_count.fetch_add(1, std::memory_order_relaxed);
        count_coalesced();
        ++inflight_waiters;
        ++coalesced_waiters;
        set_inflight(inflight_waiters);
        set_coalesced_inflight(coalesced_waiters);
        return true;
      }
      auto task = std::make_unique<fabsim::FabLotCampaign>(*sim, job.n_wafers, job.seed);
      robust::CampaignOptions run;
      if (store != nullptr) {
        // Checkpoint named by the *run* identity (not max_chunks), so a
        // budget-limited run and its full resubmission share state.
        const cache::Digest128 run_key =
            cache::fabsim_run_key(*sim, job.n_wafers, job.seed);
        run.checkpoint_path = store->dir() + "/" + run_key.hex() + ".ncckpt";
        run.artifact_dir = store->dir();
      }
      run.wave_chunks = options.campaign_wave_chunks;
      run.max_chunks_this_run = job.max_chunks;
      run.pool = options.pool;
      // Admission happens here, synchronously in the reader: shed
      // decisions are a pure function of the request arrival order.
      slot = queue.submit(*task, run);
      const robust::SubmissionOutcome outcome = queue.outcome_copy(slot);
      if (outcome.status == robust::SubmissionStatus::kShed ||
          outcome.status == robust::SubmissionStatus::kStopped) {
        campaigns_shed.fetch_add(1, std::memory_order_relaxed);
        count_shed();
        immediate.request_id = request_id;
        immediate.status = outcome.status == robust::SubmissionStatus::kShed
                               ? ResponseStatus::kShed
                               : ResponseStatus::kStopped;
        immediate.message = outcome.message;
        immediate.completeness = 0.0;
      } else {
        PendingCampaign pc;
        pc.sim = std::move(sim);
        pc.task = std::move(task);
        pc.waiters.push_back(Waiter{conn, request_id, start_us, conn->tenant});
        pc.key = key;
        pending.emplace(slot, std::move(pc));
        campaign_inflight.emplace(key, slot);
        ++tenant_outstanding[conn->tenant];
        conn->outstanding.fetch_add(1, std::memory_order_acq_rel);
        ++inflight_waiters;
        set_inflight(inflight_waiters);
        admitted = true;
      }
      set_queue_depth(queue.outstanding());
    }
    if (admitted) {
      runner_cv.notify_one();
    } else {
      send_response(conn, immediate);
      record_latency(JobKind::kCampaign, immediate.status, start_us);
    }
    return true;
  }

  // ---- light-job workers -----------------------------------------------

  void worker_loop() {
    std::unique_lock<std::mutex> lk(mu);
    while (true) {
      light_cv.wait(lk, [&] { return workers_stop || !light_queue.empty(); });
      if (light_queue.empty()) {
        if (workers_stop) return;
        continue;
      }
      LightJob job = std::move(light_queue.front());
      light_queue.pop_front();
      lk.unlock();
      Response r;
      try {
        r = job.is_eq4 ? execute(job.eq4, options.pool)
                       : execute(job.risk, options.request_budget_ms, options.pool);
      } catch (const std::exception& e) {
        r.status = ResponseStatus::kError;
        r.message = std::string("job failed: ") + e.what();
      }
      lk.lock();
      std::vector<Waiter> waiters = std::move(light_inflight[job.key]);
      light_inflight.erase(job.key);
      inflight_waiters -= static_cast<std::int64_t>(waiters.size());
      if (waiters.size() > 1) {
        coalesced_waiters -= static_cast<std::int64_t>(waiters.size() - 1);
      }
      set_inflight(inflight_waiters);
      set_coalesced_inflight(coalesced_waiters);
      lk.unlock();
      const JobKind kind = job.is_eq4 ? JobKind::kEq4 : JobKind::kRisk;
      for (std::size_t i = 0; i < waiters.size(); ++i) {
        r.request_id = waiters[i].request_id;
        r.coalesced = i > 0;
        send_response(waiters[i].conn, r);
        waiters[i].conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
        record_latency(kind, r.status, waiters[i].start_us);
      }
      lk.lock();
    }
  }

  // ---- campaign runner -------------------------------------------------

  void runner_loop() {
    std::unique_lock<std::mutex> lk(mu);
    while (true) {
      runner_cv.wait(lk, [&] { return campaigns_closed || queue.outstanding() > 0; });
      if (queue.outstanding() > 0) {
        lk.unlock();
        queue.drain([this](std::size_t slot, const robust::SubmissionOutcome& outcome) {
          on_campaign_done(slot, outcome);
        });
        lk.lock();
        continue;
      }
      if (campaigns_closed) return;
    }
  }

  void on_campaign_done(std::size_t slot, const robust::SubmissionOutcome& outcome) {
    std::vector<Waiter> waiters;
    Response r;
    {
      std::unique_lock<std::mutex> lk(mu);
      auto it = pending.find(slot);
      if (it == pending.end()) return;
      PendingCampaign pc = std::move(it->second);
      pending.erase(it);
      campaign_inflight.erase(pc.key);
      waiters = std::move(pc.waiters);
      r.message = outcome.message;
      switch (outcome.status) {
        case robust::SubmissionStatus::kCompleted:
          r.status = ResponseStatus::kOk;
          campaigns_completed.fetch_add(1, std::memory_order_relaxed);
          break;
        case robust::SubmissionStatus::kPartial:
          r.status = ResponseStatus::kPartial;
          break;
        case robust::SubmissionStatus::kExpired:
          r.status = ResponseStatus::kExpired;
          break;
        case robust::SubmissionStatus::kStopped:
          r.status = ResponseStatus::kStopped;
          campaigns_stopped.fetch_add(1, std::memory_order_relaxed);
          break;
        case robust::SubmissionStatus::kShed:
        case robust::SubmissionStatus::kQueued:
          r.status = ResponseStatus::kError;
          r.message = "internal: unexpected drain outcome";
          break;
      }
      if (outcome.result.total_chunks > 0) {
        try {
          const fabsim::PartialLot lot = pc.task->assemble(outcome.result);
          r.result = cache::encode(lot.lot);
          r.completeness = lot.completeness;
          r.frontier_chunks = lot.frontier_chunks;
        } catch (const std::exception& e) {
          r.status = ResponseStatus::kError;
          r.message = std::string("campaign assembly failed: ") + e.what();
        }
        // "Served without recompute" from the client's perspective:
        // checkpoint-resumed chunks plus blob-tier hits.
        r.artifact_hits = static_cast<std::uint64_t>(outcome.result.resumed_chunks +
                                                     outcome.result.artifact_hits);
      } else {
        r.completeness = 0.0;
      }
      inflight_waiters -= static_cast<std::int64_t>(waiters.size());
      if (waiters.size() > 1) {
        coalesced_waiters -= static_cast<std::int64_t>(waiters.size() - 1);
      }
      for (const Waiter& w : waiters) {
        auto tenant_it = tenant_outstanding.find(w.tenant);
        if (tenant_it != tenant_outstanding.end() && tenant_it->second > 0) {
          if (--tenant_it->second == 0) tenant_outstanding.erase(tenant_it);
        }
      }
      set_inflight(inflight_waiters);
      set_coalesced_inflight(coalesced_waiters);
      set_queue_depth(queue.outstanding());
    }
    for (std::size_t i = 0; i < waiters.size(); ++i) {
      r.request_id = waiters[i].request_id;
      r.coalesced = i > 0;
      send_response(waiters[i].conn, r);
      waiters[i].conn->outstanding.fetch_sub(1, std::memory_order_acq_rel);
      record_latency(JobKind::kCampaign, r.status, waiters[i].start_us);
    }
  }

  // ---- lifecycle -------------------------------------------------------

  void add_connection(int read_fd, int write_fd) {
    auto conn = std::make_shared<Connection>();
    conn->stream = std::make_unique<FdStream>(read_fd, write_fd);
    conn->last_activity_ns.store(now_ns(), std::memory_order_relaxed);
    // Check + register + spawn under one lock hold: shutdown() must
    // never observe a registered connection without a joinable reader.
    std::lock_guard<std::mutex> lk(mu);
    if (shutting_down) {
      throw std::logic_error("serve: the server is draining; no new connections");
    }
    conn->conn_id = next_conn_id++;
    if (options.max_connections > 0) evict_to_make_room_locked();
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    connections.push_back(conn);
  }

  /// Under mu: while the live-connection count is at the cap, kill the
  /// least-recently-active connection (ties broken by lowest conn_id --
  /// both keys are deterministic, so the victim is too).  The victim
  /// gets a diagnostic error frame, then its reader closes the fds.
  void evict_to_make_room_locked() {
    while (true) {
      std::size_t live = 0;
      std::shared_ptr<Connection> victim;
      for (const auto& c : connections) {
        if (c->dead.load(std::memory_order_acquire)) continue;
        ++live;
        if (victim == nullptr) {
          victim = c;
          continue;
        }
        const std::uint64_t ca = c->last_activity_ns.load(std::memory_order_relaxed);
        const std::uint64_t va = victim->last_activity_ns.load(std::memory_order_relaxed);
        if (ca < va || (ca == va && c->conn_id < victim->conn_id)) victim = c;
      }
      if (live < options.max_connections || victim == nullptr) return;
      connections_evicted.fetch_add(1, std::memory_order_relaxed);
      count_evicted();
      send_error_frame(victim, 0,
                       "NCWIRE01 connection evicted: server at its max-connections cap (" +
                           std::to_string(options.max_connections) +
                           ") and this connection was the oldest idle");
      victim->dead.store(true, std::memory_order_release);
      victim->stream->interrupt();
    }
  }

  void listen_unix(const std::string& path) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (shutting_down) {
        throw std::logic_error("serve: the server is draining; cannot listen");
      }
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("serve: socket() failed: ") +
                               std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      throw std::runtime_error("serve: socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("serve: cannot listen on " + path + ": " +
                               std::strerror(err));
    }
    register_listener(fd, path);
  }

  int listen_tcp(const std::string& host, int port) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (shutting_down) {
        throw std::logic_error("serve: the server is draining; cannot listen");
      }
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error(std::string("serve: socket() failed: ") +
                               std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (host.empty() || host == "*" || host == "0.0.0.0") {
      addr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw std::runtime_error("serve: cannot parse TCP host \"" + host +
                               "\" (IPv4 dotted quad expected)");
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("serve: cannot listen on tcp:" + host + ":" +
                               std::to_string(port) + ": " + std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    int bound_port = port;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
      bound_port = static_cast<int>(ntohs(bound.sin_port));
    }
    register_listener(fd, "");
    return bound_port;
  }

  void register_listener(int fd, const std::string& unix_path) {
    auto listener = std::make_unique<Listener>();
    listener->fd = fd;
    listener->unix_path = unix_path;
    Listener* raw = listener.get();
    std::lock_guard<std::mutex> lk(mu);
    if (shutting_down) {
      ::close(fd);
      if (!unix_path.empty()) ::unlink(unix_path.c_str());
      throw std::logic_error("serve: the server is draining; cannot listen");
    }
    raw->thread = std::thread([this, raw] { accept_loop(raw->fd); });
    listeners.push_back(std::move(listener));
  }

  void accept_loop(int listen_fd) {
    std::uint64_t accept_index = 0;
    while (!shutting_down_flag.load(std::memory_order_acquire)) {
      pollfd pfd{};
      pfd.fd = listen_fd;
      pfd.events = POLLIN;
      const int pr = ::poll(&pfd, 1, 100);
      if (pr <= 0) continue;
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client < 0) continue;
      try {
        robust::inject(kAcceptSite, accept_index++);
      } catch (const robust::FaultInjected&) {
        // The accept path failed deterministically: drop this client as
        // a real accept failure would; the listener keeps going.
        ::close(client);
        continue;
      }
      try {
        add_connection(client, client);
      } catch (const std::exception&) {
        ::close(client);
      }
    }
  }

  DrainReport shutdown() {
    std::lock_guard<std::mutex> shutdown_lk(shutdown_mu);
    if (report_ready) return report;

    // 1. Stop accepting: no new connections, no new requests.
    shutting_down_flag.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(mu);
      shutting_down = true;
    }
    for (const auto& l : listeners) {
      if (l->thread.joinable()) l->thread.join();
    }
    for (const auto& l : listeners) {
      if (l->fd >= 0) {
        ::close(l->fd);
        l->fd = -1;
        if (!l->unix_path.empty()) ::unlink(l->unix_path.c_str());
      }
    }

    // 2. Wind down readers; requests already dispatched stay in flight.
    std::vector<std::shared_ptr<Connection>> conns;
    {
      std::lock_guard<std::mutex> lk(mu);
      conns = connections;
    }
    for (const auto& c : conns) c->stream->interrupt();
    for (const auto& c : conns) {
      if (c->reader.joinable()) c->reader.join();
    }

    // A remote trace capture nobody stopped must not outlive the
    // server: disarm it and drop the orphaned file.
    {
      std::lock_guard<std::mutex> lk(mu);
      if (trace_armed) {
        trace_armed = false;
        obs::stop_trace();
        std::remove(trace_file.c_str());
      }
    }

    // 3. Drain the light-job queue: workers finish everything queued,
    // then exit.
    {
      std::lock_guard<std::mutex> lk(mu);
      workers_stop = true;
    }
    light_cv.notify_all();
    for (std::thread& w : workers) {
      if (w.joinable()) w.join();
    }

    // 4. Campaigns: give in-flight work the drain budget, then stop the
    // queue -- the running campaign checkpoints at its next chunk
    // boundary and every admitted-but-unstarted one drains as kStopped,
    // each with a final response.
    std::thread watchdog;
    {
      std::lock_guard<std::mutex> wd_lk(wd_mu);
      wd_done = false;
    }
    if (options.drain_budget_ms > 0.0 && queue.outstanding() > 0) {
      watchdog = std::thread([this] {
        std::unique_lock<std::mutex> wd_lk(wd_mu);
        const auto budget =
            std::chrono::duration<double, std::milli>(options.drain_budget_ms);
        if (!wd_cv.wait_for(wd_lk, budget, [&] { return wd_done; })) {
          queue.stop();
        }
      });
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      campaigns_closed = true;
    }
    runner_cv.notify_all();
    if (runner.joinable()) runner.join();
    {
      std::lock_guard<std::mutex> wd_lk(wd_mu);
      wd_done = true;
    }
    wd_cv.notify_all();
    if (watchdog.joinable()) watchdog.join();

    // 5. Flush the artifact tier: enforce the byte cap now, while no
    // campaign is consulting blobs.
    if (store != nullptr) {
      report.artifact_sweep = store->sweep();
    }
    report.requests_served = requests_served.load(std::memory_order_relaxed);
    report.wire_errors = wire_errors.load(std::memory_order_relaxed);
    report.coalesced = coalesced_count.load(std::memory_order_relaxed);
    report.campaigns_completed = campaigns_completed.load(std::memory_order_relaxed);
    report.campaigns_stopped = campaigns_stopped.load(std::memory_order_relaxed);
    report.campaigns_shed = campaigns_shed.load(std::memory_order_relaxed);
    report.handshake_rejects = handshake_rejects.load(std::memory_order_relaxed);
    report.connections_reaped = connections_reaped.load(std::memory_order_relaxed);
    report.connections_evicted = connections_evicted.load(std::memory_order_relaxed);
    report.tenant_shed = tenant_shed.load(std::memory_order_relaxed);
    report_ready = true;
    return report;
  }

  // ---- state -----------------------------------------------------------

  ServerOptions options;
  std::unique_ptr<robust::ArtifactStore> store;
  robust::CampaignQueue queue;

  std::mutex mu;  ///< guards everything below (impl::mu before queue's)
  std::vector<std::shared_ptr<Connection>> connections;
  std::deque<LightJob> light_queue;
  std::map<cache::Digest128, std::vector<Waiter>> light_inflight;
  std::map<std::size_t, PendingCampaign> pending;
  std::map<cache::Digest128, std::size_t> campaign_inflight;
  std::map<std::string, std::size_t> tenant_outstanding;  ///< live campaign waiters per tenant
  std::uint64_t next_conn_id = 1;
  bool shutting_down = false;
  bool workers_stop = false;
  bool campaigns_closed = false;
  bool trace_armed = false;      ///< a remote kTraceStart is live
  std::string trace_file;        ///< where the armed capture will land
  std::int64_t inflight_waiters = 0;   ///< dispatched job waiters not yet answered
  std::int64_t coalesced_waiters = 0;  ///< the subset piggybacking on another job

  std::condition_variable light_cv;
  std::condition_variable runner_cv;
  std::vector<std::thread> workers;
  std::thread runner;
  std::vector<std::unique_ptr<Listener>> listeners;
  std::atomic<bool> shutting_down_flag{false};

  std::mutex shutdown_mu;  ///< serializes shutdown(); taken before mu
  bool report_ready = false;
  DrainReport report;
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool wd_done = false;

  std::atomic<std::uint64_t> dispatch_index{0};
  std::atomic<std::uint64_t> requests_served{0};
  std::atomic<std::uint64_t> wire_errors{0};
  std::atomic<std::uint64_t> coalesced_count{0};
  std::atomic<std::uint64_t> campaigns_completed{0};
  std::atomic<std::uint64_t> campaigns_stopped{0};
  std::atomic<std::uint64_t> campaigns_shed{0};
  std::atomic<std::uint64_t> handshake_rejects{0};
  std::atomic<std::uint64_t> connections_reaped{0};
  std::atomic<std::uint64_t> connections_evicted{0};
  std::atomic<std::uint64_t> tenant_shed{0};

  /// Construction instant; kStatsResponse reports uptime against it.
  const std::chrono::steady_clock::time_point started = std::chrono::steady_clock::now();
};

Server::Server(ServerOptions options) : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() {
  try {
    impl_->shutdown();
  } catch (...) {
    // Destructors must not throw; a drain failure at teardown is
    // swallowed (the report path, shutdown(), rethrows normally).
  }
}

void Server::add_connection(int read_fd, int write_fd) {
  impl_->add_connection(read_fd, write_fd);
}

void Server::listen_unix(const std::string& path) { impl_->listen_unix(path); }

int Server::listen_tcp(const std::string& host, int port) {
  return impl_->listen_tcp(host, port);
}

DrainReport Server::shutdown() { return impl_->shutdown(); }

const ServerOptions& Server::options() const noexcept { return impl_->options; }

}  // namespace nanocost::serve
