#include "nanocost/serve/wire.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "nanocost/robust/fault_injection.hpp"

namespace nanocost::serve {

namespace {

constexpr robust::FaultSite kReadSite{"serve.read"};
constexpr robust::FaultSite kWriteSite{"serve.write"};
// Chaos-transport sites, all on the write path so a client (or server)
// under a plan sees connection-grade failures at deterministic points:
//   serve.stall          latency-flag plans sleep here (slow peer)
//   serve.reset          the write fails as if the peer reset
//   serve.partial_write  half the bytes land, then the write fails
constexpr robust::FaultSite kStallSite{"serve.stall"};
constexpr robust::FaultSite kResetSite{"serve.reset"};
constexpr robust::FaultSite kPartialWriteSite{"serve.partial_write"};

/// How often an interrupted FdStream read notices the flag.
constexpr int kPollIntervalMs = 50;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::size_t kHeaderBytes = sizeof(kWireMagic) + 4 + 4 + 8;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// fnv1a over version || type || payload (the post-magic frame bytes the
/// length field describes).  Covering the header words means a bit flip
/// in the type tag fails the checksum even when the flipped value is
/// itself a known type.
std::uint64_t frame_checksum(std::uint32_t version, std::uint32_t type,
                             const std::uint8_t* payload, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 0x100000001B3ULL;
  };
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(version >> (8 * i)));
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(type >> (8 * i)));
  for (std::size_t i = 0; i < n; ++i) mix(payload[i]);
  return h;
}

/// Fills `out[0..n)` exactly; returns false only on EOF before the first
/// byte.  EOF after at least one byte is truncation and throws with the
/// caller's context string.
bool read_exact(ByteStream& stream, std::uint8_t* out, std::size_t n,
                const char* what) {
  std::size_t got = 0;
  while (got < n) {
    const std::size_t r = stream.read_some(out + got, n - got);
    if (r == 0) {
      if (got == 0) return false;
      throw WireError(std::string("NCWIRE01 frame truncated mid-") + what + " (got " +
                      std::to_string(got) + " of " + std::to_string(n) + " bytes)");
    }
    got += r;
  }
  return true;
}

}  // namespace

bool is_known_frame_type(std::uint32_t type) noexcept {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kEq4Request:
    case FrameType::kRiskRequest:
    case FrameType::kCampaignRequest:
    case FrameType::kPing:
    case FrameType::kStatsRequest:
    case FrameType::kTraceStart:
    case FrameType::kTraceStop:
    case FrameType::kHello:
    case FrameType::kResponse:
    case FrameType::kPong:
    case FrameType::kErrorFrame:
    case FrameType::kStatsResponse:
    case FrameType::kHelloAck:
      return true;
  }
  return false;
}

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::kEq4Request:
      return "eq4-request";
    case FrameType::kRiskRequest:
      return "risk-request";
    case FrameType::kCampaignRequest:
      return "campaign-request";
    case FrameType::kPing:
      return "ping";
    case FrameType::kStatsRequest:
      return "stats-request";
    case FrameType::kTraceStart:
      return "trace-start";
    case FrameType::kTraceStop:
      return "trace-stop";
    case FrameType::kResponse:
      return "response";
    case FrameType::kPong:
      return "pong";
    case FrameType::kErrorFrame:
      return "error";
    case FrameType::kStatsResponse:
      return "stats-response";
    case FrameType::kHello:
      return "hello";
    case FrameType::kHelloAck:
      return "hello-ack";
  }
  return "unknown";
}

// ---- FdStream -----------------------------------------------------------

FdStream::FdStream(int read_fd, int write_fd) : read_fd_(read_fd), write_fd_(write_fd) {}

FdStream::~FdStream() { close_fds(); }

void FdStream::close_fds() noexcept {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
  read_fd_ = -1;
  write_fd_ = -1;
}

std::size_t FdStream::read_some(std::uint8_t* out, std::size_t n) {
  try {
    robust::inject(kReadSite, read_ops_++);
  } catch (const robust::FaultInjected& e) {
    // An injected read fault models a transport failure: surface it as
    // one so connection-level containment (kill the connection, keep
    // the server) handles it like the real thing.
    throw WireError(std::string("NCWIRE01 transport read failed (") + e.what() + ")");
  }
  while (true) {
    if (interrupted_.load(std::memory_order_acquire)) return 0;
    if (read_fd_ < 0) throw WireError("NCWIRE01 transport read on a closed stream");
    if (idle_ms_ > 0.0 || frame_ms_ > 0.0) {
      const std::int64_t now = now_ns();
      if (first_byte_ns_ == 0) {
        if (idle_ms_ > 0.0 &&
            static_cast<double>(now - window_start_ns_) >= idle_ms_ * 1e6) {
          throw WireTimeout("NCWIRE01 read timed out: no frame started within " +
                                std::to_string(static_cast<std::int64_t>(idle_ms_)) +
                                " ms (idle deadline)",
                            /*idle=*/true);
        }
      } else if (frame_ms_ > 0.0 &&
                 static_cast<double>(now - first_byte_ns_) >= frame_ms_ * 1e6) {
        throw WireTimeout("NCWIRE01 read timed out: frame stalled past " +
                              std::to_string(static_cast<std::int64_t>(frame_ms_)) +
                              " ms (read deadline)",
                          /*idle=*/false);
      }
    }
    pollfd pfd{};
    pfd.fd = read_fd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, kPollIntervalMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("NCWIRE01 transport poll failed: ") +
                      std::strerror(errno));
    }
    if (pr == 0) continue;  // timeout: re-check the interrupt flag / deadlines
    const ssize_t r = ::read(read_fd_, out, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("NCWIRE01 transport read failed: ") +
                      std::strerror(errno));
    }
    if (r > 0 && first_byte_ns_ == 0 && (idle_ms_ > 0.0 || frame_ms_ > 0.0)) {
      first_byte_ns_ = now_ns();
    }
    return static_cast<std::size_t>(r);
  }
}

void FdStream::arm_read_deadlines(double idle_ms, double frame_ms) noexcept {
  idle_ms_ = idle_ms > 0.0 ? idle_ms : 0.0;
  frame_ms_ = frame_ms > 0.0 ? frame_ms : 0.0;
  window_start_ns_ = now_ns();
  first_byte_ns_ = 0;
}

void FdStream::begin_frame() noexcept {
  if (idle_ms_ == 0.0 && frame_ms_ == 0.0) return;
  window_start_ns_ = now_ns();
  first_byte_ns_ = 0;
}

void FdStream::write_all(const std::uint8_t* data, std::size_t n) {
  try {
    robust::inject(kWriteSite, write_ops_++);
  } catch (const robust::FaultInjected& e) {
    throw WireError(std::string("NCWIRE01 transport write failed (") + e.what() + ")");
  }
  // serve.stall is meant for latency-flag plans (a deterministic slow
  // peer); a throw-flag plan degenerates to a reset.
  try {
    robust::inject(kStallSite, stall_ops_++);
  } catch (const robust::FaultInjected& e) {
    throw WireError(std::string("NCWIRE01 connection stalled (") + e.what() + ")");
  }
  try {
    robust::inject(kResetSite, reset_ops_++);
  } catch (const robust::FaultInjected& e) {
    // Models a peer reset: the write fails before any byte lands.  The
    // fds stay open (the reader owns their lifetime) -- only this write
    // is lost, exactly like a kernel-reported ECONNRESET.
    throw WireError(std::string("NCWIRE01 connection reset (") + e.what() + ")");
  }
  std::size_t limit = n;
  bool partial = false;
  try {
    robust::inject(kPartialWriteSite, partial_ops_++);
  } catch (const robust::FaultInjected&) {
    // Half the frame lands on the wire, then the transport dies: the
    // peer must detect the truncation via read_frame's strictness.
    limit = n / 2;
    partial = true;
  }
  if (write_fd_ < 0) throw WireError("NCWIRE01 transport write on a closed stream");
  std::size_t sent = 0;
  while (sent < limit) {
    const ssize_t w = ::write(write_fd_, data + sent, limit - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("NCWIRE01 transport write failed: ") +
                      std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
  if (partial) {
    throw WireError("NCWIRE01 transport write failed after a partial write (" +
                    std::to_string(limit) + " of " + std::to_string(n) +
                    " bytes; injected fault serve.partial_write)");
  }
}

void FdStream::interrupt() noexcept { interrupted_.store(true, std::memory_order_release); }

bool FdStream::interrupted() const noexcept {
  return interrupted_.load(std::memory_order_acquire);
}

// ---- MemStream ----------------------------------------------------------

std::size_t MemStream::read_some(std::uint8_t* out, std::size_t n) {
  const std::size_t avail = input_.size() - pos_;
  const std::size_t take = n < avail ? n : avail;
  if (take != 0) std::memcpy(out, input_.data() + pos_, take);
  pos_ += take;
  return take;
}

void MemStream::write_all(const std::uint8_t* data, std::size_t n) {
  output_.insert(output_.end(), data, data + n);
}

// ---- Framing ------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size() + 8);
  for (const char c : kWireMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, kWireVersion);
  put_u32(out, static_cast<std::uint32_t>(type));
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  put_u64(out, frame_checksum(kWireVersion, static_cast<std::uint32_t>(type),
                              payload.data(), payload.size()));
  return out;
}

void write_frame(ByteStream& stream, FrameType type,
                 const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> bytes = encode_frame(type, payload);
  stream.write_all(bytes.data(), bytes.size());
}

std::optional<Frame> read_frame(ByteStream& stream) {
  std::uint8_t header[kHeaderBytes];
  if (!read_exact(stream, header, sizeof(header), "header")) {
    return std::nullopt;  // clean EOF at a frame boundary
  }
  if (std::memcmp(header, kWireMagic, sizeof(kWireMagic)) != 0) {
    throw WireError("NCWIRE01 frame has a bad magic header");
  }
  const std::uint32_t version = get_u32(header + sizeof(kWireMagic));
  const std::uint32_t type_raw = get_u32(header + sizeof(kWireMagic) + 4);
  const std::uint64_t declared = get_u64(header + sizeof(kWireMagic) + 8);
  if (version != kWireVersion) {
    throw WireError("NCWIRE01 frame declares unsupported version " +
                    std::to_string(version) + " (this peer speaks " +
                    std::to_string(kWireVersion) + ")");
  }
  if (!is_known_frame_type(type_raw)) {
    throw WireError("NCWIRE01 frame has unknown type tag " + std::to_string(type_raw));
  }
  const auto type = static_cast<FrameType>(type_raw);
  if (declared > kMaxPayloadBytes) {
    // Reject before allocating: a flipped length bit must not drive a
    // multi-gigabyte reserve.
    throw WireError(std::string("NCWIRE01 ") + frame_type_name(type) +
                    " frame declares oversized payload (" + std::to_string(declared) +
                    " bytes > cap " + std::to_string(kMaxPayloadBytes) + ")");
  }
  Frame frame;
  frame.type = type;
  frame.payload.resize(static_cast<std::size_t>(declared));
  if (declared > 0 &&
      !read_exact(stream, frame.payload.data(), frame.payload.size(), "payload")) {
    throw WireError(std::string("NCWIRE01 ") + frame_type_name(type) +
                    " frame truncated: EOF before its " + std::to_string(declared) +
                    "-byte payload");
  }
  std::uint8_t checksum_bytes[8];
  if (!read_exact(stream, checksum_bytes, sizeof(checksum_bytes), "checksum")) {
    throw WireError(std::string("NCWIRE01 ") + frame_type_name(type) +
                    " frame truncated: EOF before its checksum");
  }
  const std::uint64_t stored = get_u64(checksum_bytes);
  const std::uint64_t computed = frame_checksum(version, type_raw, frame.payload.data(),
                                                frame.payload.size());
  if (stored != computed) {
    throw WireError(std::string("NCWIRE01 ") + frame_type_name(type) +
                    " frame failed its fnv1a checksum (bit flip?)");
  }
  return frame;
}

}  // namespace nanocost::serve
