#include "nanocost/serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "nanocost/cache/codec.hpp"

namespace nanocost::serve {

Client::Client(int read_fd, int write_fd)
    : stream_(std::make_unique<FdStream>(read_fd, write_fd)) {}

Client Client::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve client: socket() failed: ") +
                             std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("serve client: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("serve client: cannot connect to " + path + ": " +
                             std::strerror(err));
  }
  return Client(fd, fd);
}

std::uint64_t Client::fresh_id(std::uint64_t requested) {
  if (requested != 0) {
    next_id_ = std::max(next_id_, requested + 1);
    return requested;
  }
  return next_id_++;
}

std::uint64_t Client::submit(Eq4Job job) {
  job.request_id = fresh_id(job.request_id);
  write_frame(*stream_, FrameType::kEq4Request, encode_payload(job));
  return job.request_id;
}

std::uint64_t Client::submit(RiskJob job) {
  job.request_id = fresh_id(job.request_id);
  write_frame(*stream_, FrameType::kRiskRequest, encode_payload(job));
  return job.request_id;
}

std::uint64_t Client::submit(CampaignJob job) {
  job.request_id = fresh_id(job.request_id);
  write_frame(*stream_, FrameType::kCampaignRequest, encode_payload(job));
  return job.request_id;
}

Response Client::wait(std::uint64_t request_id) {
  while (true) {
    auto parked = parked_.find(request_id);
    if (parked != parked_.end()) {
      Response r = std::move(parked->second);
      parked_.erase(parked);
      return r;
    }
    std::optional<Frame> frame = read_frame(*stream_);
    if (!frame) {
      throw WireError("serve client: stream closed while waiting for request " +
                      std::to_string(request_id));
    }
    switch (frame->type) {
      case FrameType::kResponse: {
        Response r = decode_response(frame->payload);
        if (r.request_id == request_id) return r;
        parked_[r.request_id] = std::move(r);
        break;
      }
      case FrameType::kErrorFrame: {
        cache::ByteReader reader(frame->payload);
        const std::uint64_t id = reader.u64();
        const std::string message = reader.str();
        reader.expect_end();
        // id 0 = connection-level diagnostic (e.g. the server rejected
        // our framing); either way the wait cannot succeed silently.
        if (id == 0 || id == request_id) {
          throw std::runtime_error("serve client: server error: " + message);
        }
        break;  // an error for some other outstanding request; drop it
      }
      case FrameType::kPong:
      case FrameType::kStatsResponse:
        break;  // stale pong / stats scrape; ignore
      default:
        throw WireError(std::string("serve client: unexpected ") +
                        frame_type_name(frame->type) + " frame from server");
    }
  }
}

StatsReport Client::stats() {
  const std::uint64_t request_id = next_id_++;
  cache::ByteWriter w;
  w.u64(request_id);
  write_frame(*stream_, FrameType::kStatsRequest, w.take());
  while (true) {
    std::optional<Frame> frame = read_frame(*stream_);
    if (!frame) {
      throw WireError("serve client: stream closed while waiting for a stats report");
    }
    switch (frame->type) {
      case FrameType::kStatsResponse: {
        StatsReport report = decode_stats_report(frame->payload);
        if (report.request_id == request_id) return report;
        break;  // a stale scrape; keep waiting for ours
      }
      case FrameType::kResponse: {
        // A job response landing mid-scrape: park it for its wait().
        Response r = decode_response(frame->payload);
        parked_[r.request_id] = std::move(r);
        break;
      }
      case FrameType::kErrorFrame: {
        cache::ByteReader reader(frame->payload);
        const std::uint64_t id = reader.u64();
        const std::string message = reader.str();
        reader.expect_end();
        if (id == 0 || id == request_id) {
          throw std::runtime_error("serve client: server error: " + message);
        }
        break;
      }
      case FrameType::kPong:
        break;
      default:
        throw WireError(std::string("serve client: unexpected ") +
                        frame_type_name(frame->type) + " frame from server");
    }
  }
}

Response Client::trace_start() {
  const std::uint64_t request_id = next_id_++;
  cache::ByteWriter w;
  w.u64(request_id);
  write_frame(*stream_, FrameType::kTraceStart, w.take());
  return wait(request_id);
}

Response Client::trace_stop() {
  const std::uint64_t request_id = next_id_++;
  cache::ByteWriter w;
  w.u64(request_id);
  write_frame(*stream_, FrameType::kTraceStop, w.take());
  return wait(request_id);
}

bool Client::ping() {
  cache::ByteWriter w;
  w.u64(next_id_++);
  write_frame(*stream_, FrameType::kPing, w.take());
  while (true) {
    std::optional<Frame> frame = read_frame(*stream_);
    if (!frame) return false;
    if (frame->type == FrameType::kPong) return true;
    if (frame->type == FrameType::kResponse) {
      Response r = decode_response(frame->payload);
      parked_[r.request_id] = std::move(r);
      continue;
    }
    return false;
  }
}

}  // namespace nanocost::serve
