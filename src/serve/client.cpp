#include "nanocost/serve/client.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "nanocost/cache/codec.hpp"
#include "nanocost/robust/fault_injection.hpp"

namespace nanocost::serve {

namespace {

/// Deterministic connect failures for the retry tests: the Nth connect
/// attempt process-wide can be made to fail under NANOCOST_FAULTS.
constexpr robust::FaultSite kConnectSite{"serve.connect"};
std::atomic<std::uint64_t> g_connect_index{0};

void maybe_fail_connect(const std::string& where) {
  try {
    robust::inject(kConnectSite, g_connect_index.fetch_add(1, std::memory_order_relaxed));
  } catch (const robust::FaultInjected& e) {
    throw std::runtime_error("serve client: cannot connect to " + where + " (" + e.what() +
                             ")");
  }
}

}  // namespace

Client::Client(int read_fd, int write_fd)
    : stream_(std::make_unique<FdStream>(read_fd, write_fd)) {}

Client Client::connect_unix(const std::string& path) {
  maybe_fail_connect(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve client: socket() failed: ") +
                             std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("serve client: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("serve client: cannot connect to " + path + ": " +
                             std::strerror(err));
  }
  return Client(fd, fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  const std::string addr_text = host.empty() ? std::string("127.0.0.1") : host;
  const std::string where = "tcp:" + addr_text + ":" + std::to_string(port);
  maybe_fail_connect(where);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve client: socket() failed: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, addr_text.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("serve client: cannot parse TCP host \"" + addr_text +
                             "\" (IPv4 dotted quad expected)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("serve client: cannot connect to " + where + ": " +
                             std::strerror(err));
  }
  return Client(fd, fd);
}

std::uint64_t Client::fresh_id(std::uint64_t requested) {
  if (requested != 0) {
    next_id_ = std::max(next_id_, requested + 1);
    return requested;
  }
  return next_id_++;
}

void Client::arm_timeouts(double ms) noexcept { stream_->arm_read_deadlines(ms, ms); }

std::uint64_t Client::submit(Eq4Job job) {
  job.request_id = fresh_id(job.request_id);
  write_frame(*stream_, FrameType::kEq4Request, encode_payload(job));
  return job.request_id;
}

std::uint64_t Client::submit(RiskJob job) {
  job.request_id = fresh_id(job.request_id);
  write_frame(*stream_, FrameType::kRiskRequest, encode_payload(job));
  return job.request_id;
}

std::uint64_t Client::submit(CampaignJob job) {
  job.request_id = fresh_id(job.request_id);
  write_frame(*stream_, FrameType::kCampaignRequest, encode_payload(job));
  return job.request_id;
}

Frame Client::await_frame(FrameType want, std::uint64_t request_id, const char* what) {
  while (true) {
    stream_->begin_frame();
    std::optional<Frame> frame = read_frame(*stream_);
    if (!frame) {
      throw WireError(std::string("serve client: stream closed while waiting for ") +
                      what);
    }
    if (frame->type == want && peek_request_id(frame->payload) == request_id) {
      return std::move(*frame);
    }
    switch (frame->type) {
      case FrameType::kResponse: {
        // A job response that is not (or not yet) being waited on:
        // park it for its wait().
        Response r = decode_response(frame->payload);
        parked_[r.request_id] = std::move(r);
        break;
      }
      case FrameType::kPong:
      case FrameType::kStatsResponse:
      case FrameType::kHelloAck:
        // Stale out-of-band replies -- a pong, scrape, or handshake ack
        // whose exchange was abandoned (timeout, reconnect).  All three
        // skip uniformly; none may derail the current wait.
        break;
      case FrameType::kErrorFrame: {
        cache::ByteReader reader(frame->payload);
        const std::uint64_t id = reader.u64();
        const std::string message = reader.str();
        reader.expect_end();
        // id 0 = connection-level diagnostic (e.g. the server rejected
        // our framing); either way this wait cannot succeed silently.
        if (id == 0 || id == request_id) {
          throw std::runtime_error("serve client: server error: " + message);
        }
        break;  // an error for some other outstanding request; drop it
      }
      default:
        throw WireError(std::string("serve client: unexpected ") +
                        frame_type_name(frame->type) + " frame from server");
    }
  }
}

HelloAck Client::handshake(const std::string& tenant, std::uint32_t attempt) {
  HelloRequest hello;
  hello.request_id = next_id_++;
  hello.tenant = tenant;
  hello.attempt = attempt;
  write_frame(*stream_, FrameType::kHello, encode_payload(hello));
  const Frame frame = await_frame(FrameType::kHelloAck, hello.request_id, "the hello ack");
  return decode_hello_ack(frame.payload);
}

Response Client::wait(std::uint64_t request_id) {
  auto parked = parked_.find(request_id);
  if (parked != parked_.end()) {
    Response r = std::move(parked->second);
    parked_.erase(parked);
    return r;
  }
  const std::string what = "the response to request " + std::to_string(request_id);
  const Frame frame = await_frame(FrameType::kResponse, request_id, what.c_str());
  return decode_response(frame.payload);
}

StatsReport Client::stats() {
  const std::uint64_t request_id = next_id_++;
  cache::ByteWriter w;
  w.u64(request_id);
  write_frame(*stream_, FrameType::kStatsRequest, w.take());
  const Frame frame = await_frame(FrameType::kStatsResponse, request_id, "a stats report");
  return decode_stats_report(frame.payload);
}

Response Client::trace_start() {
  const std::uint64_t request_id = next_id_++;
  cache::ByteWriter w;
  w.u64(request_id);
  write_frame(*stream_, FrameType::kTraceStart, w.take());
  return wait(request_id);
}

Response Client::trace_stop() {
  const std::uint64_t request_id = next_id_++;
  cache::ByteWriter w;
  w.u64(request_id);
  write_frame(*stream_, FrameType::kTraceStop, w.take());
  return wait(request_id);
}

bool Client::ping() {
  const std::uint64_t request_id = next_id_++;
  cache::ByteWriter w;
  w.u64(request_id);
  try {
    write_frame(*stream_, FrameType::kPing, w.take());
    (void)await_frame(FrameType::kPong, request_id, "a pong");
  } catch (const std::exception&) {
    // EOF, transport failure, or a connection-fatal error frame: the
    // connection is not serving.
    return false;
  }
  return true;
}

}  // namespace nanocost::serve
