#include "nanocost/serve/jobs.hpp"

#include <string>
#include <utility>

#include "nanocost/cache/cached.hpp"
#include "nanocost/cache/codec.hpp"
#include "nanocost/cache/key.hpp"
#include "nanocost/core/risk_campaign.hpp"
#include "nanocost/robust/cancel.hpp"

namespace nanocost::serve {

namespace {

using cache::ByteReader;
using cache::ByteWriter;

// Job payloads flatten the unit wrappers to their double values; the
// strong types are re-entered (and re-validated: Probability throws on
// a corrupt yield) at decode.

void put_eq4_inputs(ByteWriter& w, const core::Eq4Inputs& in) {
  w.f64(in.lambda.value());
  w.f64(in.yield.value());
  w.f64(in.manufacturing_cost.value());
  w.f64(in.transistors_per_chip);
  w.f64(in.n_wafers);
  w.f64(in.wafer_area.value());
  w.f64(in.mask_cost.value());
  const cost::DesignCostParams& p = in.design_model.params();
  w.f64(p.a0);
  w.f64(p.p1);
  w.f64(p.p2);
  w.f64(p.s_d0);
  w.f64(in.utilization.value());
}

core::Eq4Inputs get_eq4_inputs(ByteReader& r) {
  core::Eq4Inputs in;
  in.lambda = units::Micrometers{r.f64()};
  in.yield = units::Probability{r.f64()};
  in.manufacturing_cost = units::CostPerArea{r.f64()};
  in.transistors_per_chip = r.f64();
  in.n_wafers = r.f64();
  in.wafer_area = units::SquareCentimeters{r.f64()};
  in.mask_cost = units::Money{r.f64()};
  cost::DesignCostParams p;
  p.a0 = r.f64();
  p.p1 = r.f64();
  p.p2 = r.f64();
  p.s_d0 = r.f64();
  in.design_model = cost::DesignCostModel{p};
  in.utilization = units::Probability{r.f64()};
  return in;
}

void put_uncertain_inputs(ByteWriter& w, const core::UncertainInputs& in) {
  put_eq4_inputs(w, in.nominal);
  w.f64(in.yield_sigma);
  w.f64(in.cm_sq_sigma_rel);
  w.f64(in.design_cost_sigma_rel);
  w.f64(in.volume_sigma_rel);
}

core::UncertainInputs get_uncertain_inputs(ByteReader& r) {
  core::UncertainInputs in;
  in.nominal = get_eq4_inputs(r);
  in.yield_sigma = r.f64();
  in.cm_sq_sigma_rel = r.f64();
  in.design_cost_sigma_rel = r.f64();
  in.volume_sigma_rel = r.f64();
  return in;
}

}  // namespace

fabsim::FabSimulator make_simulator(const CampaignJob& job) {
  return fabsim::FabSimulator(
      geometry::WaferSpec(units::Millimeters{job.wafer_diameter_mm},
                          units::Millimeters{job.wafer_edge_exclusion_mm},
                          units::Millimeters{job.wafer_scribe_mm}),
      geometry::DieSize(units::Millimeters{job.die_width_mm},
                        units::Millimeters{job.die_height_mm}),
      defect::DefectSizeDistribution(units::Micrometers{job.size_xmin_um},
                                     units::Micrometers{job.size_peak_um},
                                     units::Micrometers{job.size_xmax_um}, job.size_q),
      defect::DefectFieldParams{
          job.defect_density_per_cm2, job.cluster_alpha, job.clustered,
          defect::RadialProfile(job.radial_edge_boost, job.radial_sharpness)},
      defect::WireArray(units::Micrometers{job.wire_width_um},
                        units::Micrometers{job.wire_spacing_um},
                        units::Micrometers{job.wire_length_um}, job.wire_count));
}

const char* response_status_name(ResponseStatus s) noexcept {
  switch (s) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kPartial:
      return "partial";
    case ResponseStatus::kShed:
      return "shed";
    case ResponseStatus::kExpired:
      return "expired";
    case ResponseStatus::kStopped:
      return "stopped";
    case ResponseStatus::kError:
      return "error";
  }
  return "unknown";
}

// ---- Payload codecs -----------------------------------------------------

std::vector<std::uint8_t> encode_payload(const Eq4Job& job) {
  ByteWriter w;
  w.u64(job.request_id);
  put_eq4_inputs(w, job.inputs);
  w.f64(job.lo);
  w.f64(job.hi);
  w.i32(job.steps);
  return w.take();
}

Eq4Job decode_eq4_job(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  Eq4Job job;
  job.request_id = r.u64();
  job.inputs = get_eq4_inputs(r);
  job.lo = r.f64();
  job.hi = r.f64();
  job.steps = r.i32();
  r.expect_end();
  return job;
}

std::vector<std::uint8_t> encode_payload(const RiskJob& job) {
  ByteWriter w;
  w.u64(job.request_id);
  put_uncertain_inputs(w, job.inputs);
  w.f64(job.s_d);
  w.i32(job.samples);
  w.u64(job.seed);
  w.f64(job.die_budget);
  return w.take();
}

RiskJob decode_risk_job(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  RiskJob job;
  job.request_id = r.u64();
  job.inputs = get_uncertain_inputs(r);
  job.s_d = r.f64();
  job.samples = r.i32();
  job.seed = r.u64();
  job.die_budget = r.f64();
  r.expect_end();
  return job;
}

std::vector<std::uint8_t> encode_payload(const CampaignJob& job) {
  ByteWriter w;
  w.u64(job.request_id);
  w.f64(job.wafer_diameter_mm);
  w.f64(job.wafer_edge_exclusion_mm);
  w.f64(job.wafer_scribe_mm);
  w.f64(job.die_width_mm);
  w.f64(job.die_height_mm);
  w.f64(job.size_xmin_um);
  w.f64(job.size_peak_um);
  w.f64(job.size_xmax_um);
  w.f64(job.size_q);
  w.f64(job.defect_density_per_cm2);
  w.f64(job.cluster_alpha);
  w.u8(job.clustered ? 1 : 0);
  w.f64(job.radial_edge_boost);
  w.f64(job.radial_sharpness);
  w.f64(job.wire_width_um);
  w.f64(job.wire_spacing_um);
  w.f64(job.wire_length_um);
  w.i32(job.wire_count);
  w.i64(job.n_wafers);
  w.u64(job.seed);
  w.i64(job.max_chunks);
  return w.take();
}

CampaignJob decode_campaign_job(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  CampaignJob job;
  job.request_id = r.u64();
  job.wafer_diameter_mm = r.f64();
  job.wafer_edge_exclusion_mm = r.f64();
  job.wafer_scribe_mm = r.f64();
  job.die_width_mm = r.f64();
  job.die_height_mm = r.f64();
  job.size_xmin_um = r.f64();
  job.size_peak_um = r.f64();
  job.size_xmax_um = r.f64();
  job.size_q = r.f64();
  job.defect_density_per_cm2 = r.f64();
  job.cluster_alpha = r.f64();
  job.clustered = r.u8() != 0;
  job.radial_edge_boost = r.f64();
  job.radial_sharpness = r.f64();
  job.wire_width_um = r.f64();
  job.wire_spacing_um = r.f64();
  job.wire_length_um = r.f64();
  job.wire_count = r.i32();
  job.n_wafers = r.i64();
  job.seed = r.u64();
  job.max_chunks = r.i64();
  r.expect_end();
  return job;
}

std::vector<std::uint8_t> encode_payload(const Response& response) {
  ByteWriter w;
  w.u64(response.request_id);
  w.u8(static_cast<std::uint8_t>(response.status));
  w.str(response.message);
  w.bytes(response.result);
  w.f64(response.completeness);
  w.i64(response.frontier_chunks);
  w.u64(response.artifact_hits);
  w.u8(response.coalesced ? 1 : 0);
  return w.take();
}

Response decode_response(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  Response response;
  response.request_id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(ResponseStatus::kError)) {
    throw std::runtime_error("serve response declares unknown status code " +
                             std::to_string(status));
  }
  response.status = static_cast<ResponseStatus>(status);
  response.message = r.str();
  response.result = r.bytes();
  response.completeness = r.f64();
  response.frontier_chunks = r.i64();
  response.artifact_hits = r.u64();
  response.coalesced = r.u8() != 0;
  r.expect_end();
  return response;
}

std::vector<std::uint8_t> encode_payload(const StatsReport& report) {
  ByteWriter w;
  w.u64(report.request_id);
  w.str(report.server_version);
  w.str(report.simd_level);
  w.u64(report.hardware_concurrency);
  w.u64(report.pid);
  w.u64(report.uptime_ms);
  w.bytes(report.stats);
  return w.take();
}

StatsReport decode_stats_report(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  StatsReport report;
  report.request_id = r.u64();
  report.server_version = r.str();
  report.simd_level = r.str();
  report.hardware_concurrency = static_cast<std::uint32_t>(r.u64());
  report.pid = r.u64();
  report.uptime_ms = r.u64();
  report.stats = r.bytes();
  r.expect_end();
  return report;
}

std::vector<std::uint8_t> encode_payload(const HelloRequest& hello) {
  ByteWriter w;
  w.u64(hello.request_id);
  w.u64(hello.protocol_version);
  w.str(hello.build_version);
  w.str(hello.tenant);
  w.u64(hello.attempt);
  return w.take();
}

HelloRequest decode_hello(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  HelloRequest hello;
  hello.request_id = r.u64();
  hello.protocol_version = static_cast<std::uint32_t>(r.u64());
  hello.build_version = r.str();
  hello.tenant = r.str();
  hello.attempt = static_cast<std::uint32_t>(r.u64());
  r.expect_end();
  return hello;
}

std::vector<std::uint8_t> encode_payload(const HelloAck& ack) {
  ByteWriter w;
  w.u64(ack.request_id);
  w.u64(ack.protocol_version);
  w.str(ack.build_version);
  return w.take();
}

HelloAck decode_hello_ack(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  HelloAck ack;
  ack.request_id = r.u64();
  ack.protocol_version = static_cast<std::uint32_t>(r.u64());
  ack.build_version = r.str();
  r.expect_end();
  return ack;
}

std::uint64_t peek_request_id(const std::vector<std::uint8_t>& payload) noexcept {
  if (payload.size() < 8) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
  return v;
}

// ---- Coalescing keys ----------------------------------------------------

cache::Digest128 job_key(const Eq4Job& job) {
  return cache::sweep_eq4_key(job.inputs, job.lo, job.hi, job.steps);
}

cache::Digest128 job_key(const RiskJob& job) {
  return cache::monte_carlo_cost_key(job.inputs, job.s_d, job.samples, job.seed,
                                     job.die_budget);
}

cache::Digest128 job_key(const CampaignJob& job) {
  // The run key addresses the computation; max_chunks shapes how much
  // of it this submission performs, so it must split coalescing groups.
  const fabsim::FabSimulator sim = make_simulator(job);
  return cache::KeyBuilder("serve.campaign")
      .sub("run", cache::fabsim_run_key(sim, job.n_wafers, job.seed))
      .i64("max_chunks", job.max_chunks)
      .digest();
}

// ---- Execution ----------------------------------------------------------

Response execute(const Eq4Job& job, exec::ThreadPool* pool) {
  Response r;
  r.request_id = job.request_id;
  const std::vector<core::SweepPoint> points =
      cache::sweep_eq4_cached(job.inputs, job.lo, job.hi, job.steps, pool);
  r.result = cache::encode(points);
  r.frontier_chunks = job.steps;
  return r;
}

Response execute(const RiskJob& job, double budget_ms, exec::ThreadPool* pool) {
  Response r;
  r.request_id = job.request_id;
  core::PartialRisk p;
  if (budget_ms > 0.0) {
    const robust::CancelToken deadline = robust::CancelToken::with_deadline(budget_ms);
    robust::CancelScope scope(deadline);
    p = core::monte_carlo_cost_partial(job.inputs, job.s_d, job.samples, job.seed,
                                       job.die_budget, pool);
  } else {
    p = core::monte_carlo_cost_partial(job.inputs, job.s_d, job.samples, job.seed,
                                       job.die_budget, pool);
  }
  r.result = cache::encode(p.result);
  r.completeness = p.completeness;
  r.frontier_chunks = p.frontier_chunks;
  if (p.cancelled) {
    r.status = ResponseStatus::kPartial;
    r.message = "partial: the request budget truncated the run at chunk frontier " +
                std::to_string(p.frontier_chunks) + "; resubmit to refine";
  }
  return r;
}

}  // namespace nanocost::serve
