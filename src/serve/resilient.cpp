#include "nanocost/serve/resilient.hpp"

#include <csignal>
#include <stdexcept>
#include <utility>

#include "nanocost/obs/metrics.hpp"
#include "nanocost/robust/cancel.hpp"
#include "nanocost/robust/fault_injection.hpp"

namespace nanocost::serve {

namespace {

void count_client_reconnect() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.client.reconnects");
    c.add();
  }
}

void count_client_retry() {
  if (obs::metrics_enabled()) {
    static obs::Counter& c = obs::counter("serve.client.retries");
    c.add();
  }
}

/// A response worth resubmitting: the server shed or stopped the job
/// (transient overload / drain), or errored while naming itself the
/// transient party ("resubmit").  Semantic failures and partial results
/// go back to the caller unchanged.
bool retryable_response(const Response& r) {
  if (r.status == ResponseStatus::kShed || r.status == ResponseStatus::kStopped) {
    return true;
  }
  return r.status == ResponseStatus::kError &&
         r.message.find("resubmit") != std::string::npos;
}

bool is_handshake_reject(const std::string& what) {
  return what.find("handshake rejected") != std::string::npos;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument("serve endpoint: empty spec");
  }
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.unix_path = spec.substr(5);
    if (ep.unix_path.empty()) {
      throw std::invalid_argument("serve endpoint: \"" + spec + "\" names no socket path");
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 >= rest.size()) {
      throw std::invalid_argument("serve endpoint: \"" + spec +
                                  "\" is not tcp:HOST:PORT");
    }
    ep.tcp_host = rest.substr(0, colon);
    int port = 0;
    for (std::size_t i = colon + 1; i < rest.size(); ++i) {
      const char c = rest[i];
      if (c < '0' || c > '9' || port > 65535) {
        throw std::invalid_argument("serve endpoint: \"" + spec + "\" has a bad port");
      }
      port = port * 10 + (c - '0');
    }
    if (port <= 0 || port > 65535) {
      throw std::invalid_argument("serve endpoint: \"" + spec + "\" has a bad port");
    }
    ep.tcp_port = port;
    return ep;
  }
  // Bare path: the pre-TCP spelling every existing script uses.
  ep.unix_path = spec;
  return ep;
}

std::string Endpoint::describe() const {
  if (is_tcp()) return "tcp:" + tcp_host + ":" + std::to_string(tcp_port);
  return "unix:" + unix_path;
}

ResilientClient::ResilientClient(ResilientOptions options) : options_(std::move(options)) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  // A client mid-write to a kill -9'd daemon must see EPIPE as a
  // catchable WireError and retry, not die by SIGPIPE.  (Server
  // processes already ignore it; client-only processes like
  // nanocost_submit reach here first.)
  std::signal(SIGPIPE, SIG_IGN);
}

void ResilientClient::ensure_connected() {
  if (client_.has_value()) return;
  // The reconnect ordinal rides in the hello: the server counts
  // ordinals > 0 as serve.reconnects_total.
  const auto ordinal = static_cast<std::uint32_t>(connects_);
  Client fresh = options_.endpoint.is_tcp()
                     ? Client::connect_tcp(options_.endpoint.tcp_host,
                                           options_.endpoint.tcp_port)
                     : Client::connect_unix(options_.endpoint.unix_path);
  if (options_.attempt_timeout_ms > 0.0) fresh.arm_timeouts(options_.attempt_timeout_ms);
  (void)fresh.handshake(options_.tenant, ordinal);
  ++connects_;
  if (ordinal > 0) {
    ++reconnects_;
    count_client_reconnect();
  }
  client_.emplace(std::move(fresh));
}

void ResilientClient::drop_connection() noexcept { client_.reset(); }

Response ResilientClient::run(const char* what,
                              const std::function<Response(Client&)>& op) {
  const robust::CancelToken overall =
      options_.overall_budget_ms > 0.0
          ? robust::CancelToken::with_deadline(options_.overall_budget_ms)
          : robust::CancelToken{};
  std::string last_error = "no attempt made";
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Abandon instead of sleeping into a guaranteed expiry -- the
      // same budget discipline the campaign retry path uses.
      if (options_.backoff.overruns_budget(attempt - 1, overall)) {
        throw std::runtime_error(std::string("serve resilient client: ") + what +
                                 " abandoned after " + std::to_string(attempt) +
                                 " attempt(s): the remaining budget cannot fit the next "
                                 "backoff; last failure: " +
                                 last_error);
      }
      ++retries_;
      count_client_retry();
      robust::backoff_sleep(options_.backoff, attempt - 1);
    }
    // Transient fault plans draw on (site, index, attempt): scoping the
    // attempt ordinal here makes an injected connect/reset/stall heal on
    // a later attempt instead of recurring forever at the same write
    // index -- the same discipline the campaign retry loop uses.
    robust::AttemptScope fault_attempt(static_cast<std::uint32_t>(attempt));
    try {
      ensure_connected();
      Response r = op(*client_);
      if (retryable_response(r)) {
        // The server is healthy but shedding; keep the connection, pay
        // the backoff, resubmit.  Content addressing makes the
        // resubmission coalesce or replay, never recompute.
        last_error = std::string(response_status_name(r.status)) +
                     (r.message.empty() ? "" : ": " + r.message);
        continue;
      }
      return r;
    } catch (const std::exception& e) {
      if (is_handshake_reject(e.what())) throw;  // retrying cannot fix versions
      last_error = e.what();
      drop_connection();
    }
    if (overall.valid() && overall.expired()) {
      throw std::runtime_error(std::string("serve resilient client: ") + what +
                               " ran out its overall budget after " +
                               std::to_string(attempt + 1) +
                               " attempt(s); last failure: " + last_error);
    }
  }
  throw std::runtime_error(std::string("serve resilient client: ") + what +
                           " gave up after " + std::to_string(options_.max_attempts) +
                           " attempt(s); last failure: " + last_error);
}

Response ResilientClient::submit_and_wait(const Eq4Job& job) {
  return run("eq4 job", [&job](Client& c) {
    Eq4Job fresh = job;
    fresh.request_id = 0;  // a new id per attempt; the job_key dedupes
    return c.wait(c.submit(fresh));
  });
}

Response ResilientClient::submit_and_wait(const RiskJob& job) {
  return run("risk job", [&job](Client& c) {
    RiskJob fresh = job;
    fresh.request_id = 0;
    return c.wait(c.submit(fresh));
  });
}

Response ResilientClient::submit_and_wait(const CampaignJob& job) {
  return run("campaign job", [&job](Client& c) {
    CampaignJob fresh = job;
    fresh.request_id = 0;
    return c.wait(c.submit(fresh));
  });
}

StatsReport ResilientClient::stats() {
  StatsReport report;
  (void)run("stats scrape", [this, &report](Client& c) {
    report = c.stats();
    return Response{};  // kOk: the scrape itself succeeded
  });
  return report;
}

bool ResilientClient::ping() {
  try {
    ensure_connected();
    if (client_->ping()) return true;
    drop_connection();
    ensure_connected();
    return client_->ping();
  } catch (const std::exception&) {
    drop_connection();
    return false;
  }
}

}  // namespace nanocost::serve
