// Runtime SIMD lane selection for the SoA batch kernels.
//
// Every batched kernel in the repo (rng_batch, defect sampling, the
// kill-probability LUT, the risk sample pricer, the HPWL pin scan)
// ships a scalar path plus SSE2/AVX2 lanes that are *bitwise identical*
// to it -- the vector lanes restrict themselves to IEEE-exact
// operations (add/sub/mul/div/sqrt/min/max and integer arithmetic),
// which evaluate lane-wise exactly like their scalar counterparts, and
// everything transcendental stays on scalar libm in all paths.  The
// level picked here therefore changes *speed only*, never results:
// the PR 1-5 determinism contracts (thread-count invariance, cancel
// frontiers, checkpoint resume) hold at any level.
//
// Selection order: NANOCOST_SIMD=scalar|sse2|avx2 if set (clamped to
// what the CPU supports; a malformed value gets one stderr diagnostic,
// like NANOCOST_METRICS), else the best level cpuid reports.
#pragma once

#include <cstdint>

namespace nanocost::exec {

/// Instruction-set tiers the batch kernels dispatch over, ordered so
/// numeric comparison means capability comparison.
enum class SimdLevel : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// The best level this CPU supports (ignores the env override).
[[nodiscard]] SimdLevel detected_simd_level() noexcept;

/// The level batch kernels run at: min(detected, NANOCOST_SIMD
/// override).  Resolved once per process and cached.
[[nodiscard]] SimdLevel simd_level() noexcept;

/// "scalar" / "sse2" / "avx2" -- for logs and BENCH_perf.json.
[[nodiscard]] const char* simd_level_name(SimdLevel level) noexcept;

}  // namespace nanocost::exec
