// Counter-based deterministic seed derivation.
//
// Parallel Monte-Carlo is only reproducible if the random stream a task
// consumes is a function of the *task*, not of the thread that happens
// to run it.  SeedSequence derives one 64-bit seed per task index from a
// base seed via the splitmix64 output function: task i receives the i-th
// output of the splitmix64 stream seeded with `base`, computed in O(1)
// by random access (state_i = base + (i+1) * gamma).  Every parallel
// loop in nanocost seeds one RNG per task (wafer, MC sample, grid point)
// this way, which makes results bitwise-independent of thread count and
// schedule.
#pragma once

#include <cstdint>

namespace nanocost::exec {

/// splitmix64 output function (Steele, Lea, Flood 2014): a bijective
/// avalanche mix of a 64-bit state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The Weyl increment shared by SplitMix64 and SeedSequence: stream
/// output i is splitmix64(state + (i+1) * kGoldenGamma).  Exposed so
/// batched kernels can address individual outputs of a stream.
inline constexpr std::uint64_t kGoldenGamma = 0x9E3779B97F4A7C15ULL;

/// Derives per-task seeds from a base seed.
class SeedSequence final {
 public:
  constexpr explicit SeedSequence(std::uint64_t base_seed) noexcept : base_(base_seed) {}

  /// Seed for task `task_index`: the task_index-th output of the
  /// splitmix64 generator seeded with `base_seed`.  Pure and O(1), so a
  /// task's stream does not depend on which thread claims it.
  [[nodiscard]] static constexpr std::uint64_t for_task(std::uint64_t base_seed,
                                                        std::uint64_t task_index) noexcept {
    constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;  // golden-ratio increment
    return splitmix64(base_seed + (task_index + 1) * kGamma);
  }

  [[nodiscard]] constexpr std::uint64_t derive(std::uint64_t task_index) const noexcept {
    return for_task(base_, task_index);
  }
  [[nodiscard]] constexpr std::uint64_t base() const noexcept { return base_; }

 private:
  std::uint64_t base_;
};

}  // namespace nanocost::exec
