// A reusable chunked thread pool.
//
// One pool owns `thread_count() - 1` worker threads; the caller of
// `run_tasks` participates as the remaining lane, so a pool constructed
// with 1 thread executes everything inline on the caller -- the serial
// reference path.  Tasks within one `run_tasks` batch are claimed from a
// shared atomic counter (dynamic schedule); correctness never depends on
// which lane runs which task, because all nanocost parallel loops derive
// per-task state (RNG seeds, output slots) from the task index alone
// (see exec/seed.hpp).
//
// Nested `run_tasks` calls (a task spawning a parallel region on the
// same or another pool) execute inline on the calling lane, so
// composed parallel code cannot deadlock and produces the same numbers
// as the flat execution.
//
// The default thread count is `NANOCOST_THREADS` (if set and positive)
// or std::thread::hardware_concurrency().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace nanocost::exec {

class ThreadPool final {
 public:
  /// `threads` lanes including the caller; 0 -> default_thread_count().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs task(0) .. task(n_tasks - 1), blocking until all complete.
  /// The caller participates.  If tasks throw, the exception of the
  /// *lowest-index* throwing task is rethrown on the caller after the
  /// batch drains -- a deterministic choice for any thread count -- and
  /// the pool stays reusable for subsequent batches.  Reentrant calls
  /// from inside a task run inline serially.
  void run_tasks(std::int64_t n_tasks, const std::function<void(std::int64_t)>& task);

  /// Like run_tasks, but polls `cancelled` before executing each task;
  /// once it returns true the result latches and every not-yet-started
  /// task is skipped (in-flight tasks finish).  The caller still blocks
  /// until the batch drains.  Exceptions win over cancellation: a task
  /// that threw -- even one that started before the trip and threw
  /// after -- is rethrown exactly as in the plain overload, lowest
  /// index first, so the surfaced error never depends on where the
  /// cancellation raced in.  `cancelled` must be thread-safe; an empty
  /// function behaves like the plain overload.
  void run_tasks(std::int64_t n_tasks, const std::function<void(std::int64_t)>& task,
                 const std::function<bool()>& cancelled);

  /// Number of execution lanes (workers + the calling thread).
  [[nodiscard]] int thread_count() const noexcept;

  /// NANOCOST_THREADS env override, else hardware_concurrency, min 1.
  [[nodiscard]] static int default_thread_count();

  /// Lazily-created process-wide pool with default_thread_count() lanes.
  /// All parallel entry points use it when no pool is passed explicitly.
  [[nodiscard]] static ThreadPool& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Resolves an optional pool argument: null means the global pool.
[[nodiscard]] inline ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : ThreadPool::global();
}

}  // namespace nanocost::exec
