// Batched (SoA) forms of the exec/rng.hpp draws.
//
// SplitMix64 is counter-based -- output i of a stream is
// splitmix64(state + (i+1) * gamma), a pure function of the state and
// the index -- so a batch of N consecutive outputs is N independent
// evaluations of the same mix function on an affine index sequence.
// That is embarrassingly SIMD, and it is the root of every vectorized
// kernel in this repo: the batch helpers here fill an output array
// with *exactly* the values N scalar next() calls would produce and
// advance the engine past them, so scalar and batched consumers of one
// stream interleave freely.
//
// Contract (checked by simd_parity_test): for every function, every
// SimdLevel produces bitwise-identical output.  The vector lanes use
// only IEEE-exact operations (integer arithmetic; double add/mul,
// which round lane-wise exactly like scalar); nothing transcendental
// is vectorized.  The _at variants pin the lane explicitly -- they
// exist for the parity test and for callers that must not consult the
// process-global level; everything else should use the plain forms,
// which dispatch on exec::simd_level().
#pragma once

#include <cstddef>
#include <cstdint>

#include "nanocost/exec/rng.hpp"
#include "nanocost/exec/simd.hpp"

namespace nanocost::exec {

/// The next `n` engine outputs, exactly as n next() calls would return
/// them; the engine advances past the batch.
void splitmix64_batch(SplitMix64& rng, std::uint64_t* out, std::size_t n);
void splitmix64_batch_at(SimdLevel level, SplitMix64& rng, std::uint64_t* out, std::size_t n);

/// The next `n` uniform [0, 1) doubles (uniform_unit applied n times).
void uniform_unit_batch(SplitMix64& rng, double* out, std::size_t n);
void uniform_unit_batch_at(SimdLevel level, SplitMix64& rng, double* out, std::size_t n);

/// The next `n` bounded draws (bounded_u32 applied n times, including
/// its rejection behaviour: a batch whose lanes could reject re-runs
/// the affected tail through the scalar path, consuming the identical
/// stream).  Requires bound >= 1.
void bounded_u32_batch(SplitMix64& rng, std::uint32_t bound, std::uint32_t* out, std::size_t n);
void bounded_u32_batch_at(SimdLevel level, SplitMix64& rng, std::uint32_t bound,
                          std::uint32_t* out, std::size_t n);

/// Task seeds i0..i0+n-1 of SeedSequence::for_task(base, i), batched:
/// the per-unit seeding of every parallel kernel, which is itself one
/// splitmix64 of an affine sequence.
void for_task_batch(std::uint64_t base, std::uint64_t index0, std::uint64_t* out, std::size_t n);
void for_task_batch_at(SimdLevel level, std::uint64_t base, std::uint64_t index0,
                       std::uint64_t* out, std::size_t n);

/// out[i] = splitmix64(states[i] + addend): output `addend/gamma` of n
/// *different* streams at once.  The risk batch kernel uses this to
/// draw one column (e.g. "every scenario's first uniform") across a
/// tile of scenarios.
void mix_add_batch(const std::uint64_t* states, std::uint64_t addend, std::uint64_t* out,
                   std::size_t n);
void mix_add_batch_at(SimdLevel level, const std::uint64_t* states, std::uint64_t addend,
                      std::uint64_t* out, std::size_t n);

/// Elementwise bit-to-double mappers matching uniform_unit and the
/// gauss_pair u1 mapping: [0,1) = (b >> 11) * 2^-53, and (0,1] =
/// ((b >> 11) + 1) * 2^-53.  Exact at every level (the 53-bit integer
/// converts to double without rounding).
void u53_to_unit_batch(const std::uint64_t* bits, double* out, std::size_t n);
void u53_to_unit_batch_at(SimdLevel level, const std::uint64_t* bits, double* out, std::size_t n);
void u53_to_unit_pos_batch(const std::uint64_t* bits, double* out, std::size_t n);
void u53_to_unit_pos_batch_at(SimdLevel level, const std::uint64_t* bits, double* out,
                              std::size_t n);

}  // namespace nanocost::exec
