// Chunked parallel loops over an index range.
//
// Both loops decompose [0, n) into fixed-size chunks of `grain`
// iterations.  The chunk grid depends only on (n, grain) -- never on the
// thread count -- and parallel_reduce merges per-chunk scratch in chunk
// order on the calling thread, so even order-sensitive merges (e.g.
// floating-point accumulation) are bitwise-reproducible for a given
// grain regardless of how many threads executed the chunks.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "nanocost/exec/thread_pool.hpp"
#include "nanocost/obs/metrics.hpp"
#include "nanocost/obs/trace.hpp"
#include "nanocost/robust/cancel.hpp"
#include "nanocost/robust/fault_injection.hpp"

namespace nanocost::exec {

/// Injection site evaluated once per chunk of every parallel loop; the
/// unit index is the chunk index.  Off: one relaxed load per chunk.
inline constexpr robust::FaultSite kChunkFaultSite{"exec.chunk"};

namespace detail {

/// Observation evaluated once per chunk (span + counter).  Off: two
/// relaxed loads per chunk, no other work.
inline void observe_chunk_begin(obs::ObsSpan& span, std::int64_t chunk) {
  span.arg("chunk", static_cast<std::uint64_t>(chunk));
  if (obs::metrics_enabled()) {
    static obs::Counter& chunks = obs::counter("exec.chunks");
    chunks.add();
  }
}

}  // namespace detail

/// Number of chunks a range of `n` splits into at a given grain.
[[nodiscard]] constexpr std::int64_t chunk_count(std::int64_t n, std::int64_t grain) noexcept {
  return grain > 0 ? (n + grain - 1) / grain : 0;
}

/// body(begin, end) over [0, n) in chunks of `grain`.  `pool` may be
/// null (global pool).  body must be safe to invoke concurrently from
/// multiple threads on disjoint ranges.
template <typename Body>
void parallel_for(ThreadPool* pool, std::int64_t n, std::int64_t grain, Body&& body) {
  if (n <= 0) return;
  if (grain < 1) throw std::invalid_argument("parallel_for grain must be >= 1");
  const std::int64_t chunks = chunk_count(n, grain);
  if (chunks == 1) {
    obs::ObsSpan span("exec.chunk");
    detail::observe_chunk_begin(span, 0);
    robust::inject(kChunkFaultSite, 0);
    body(std::int64_t{0}, n);
    return;
  }
  pool_or_global(pool).run_tasks(chunks, [&](std::int64_t c) {
    obs::ObsSpan span("exec.chunk");
    detail::observe_chunk_begin(span, c);
    robust::inject(kChunkFaultSite, static_cast<std::uint64_t>(c));
    const std::int64_t begin = c * grain;
    const std::int64_t end = begin + grain < n ? begin + grain : n;
    body(begin, end);
  });
}

/// Chunked loop with per-chunk scratch state:
///   make()                    -> Scratch, called once per chunk
///   body(begin, end, scratch) -> processes one chunk into its scratch
///   merge(scratch)            -> called serially on the caller, in
///                                ascending chunk order, after all
///                                chunks complete
/// The merge order is a function of (n, grain) only, so reductions are
/// deterministic for any thread count.
template <typename MakeScratch, typename Body, typename Merge>
void parallel_reduce(ThreadPool* pool, std::int64_t n, std::int64_t grain, MakeScratch&& make,
                     Body&& body, Merge&& merge) {
  if (n <= 0) return;
  if (grain < 1) throw std::invalid_argument("parallel_reduce grain must be >= 1");
  using Scratch = decltype(make());
  const std::int64_t chunks = chunk_count(n, grain);
  if (chunks == 1) {
    obs::ObsSpan span("exec.chunk");
    detail::observe_chunk_begin(span, 0);
    robust::inject(kChunkFaultSite, 0);
    Scratch scratch = make();
    body(std::int64_t{0}, n, scratch);
    merge(std::move(scratch));
    return;
  }
  std::vector<Scratch> scratches;
  scratches.reserve(static_cast<std::size_t>(chunks));
  for (std::int64_t c = 0; c < chunks; ++c) scratches.push_back(make());
  pool_or_global(pool).run_tasks(chunks, [&](std::int64_t c) {
    obs::ObsSpan span("exec.chunk");
    detail::observe_chunk_begin(span, c);
    robust::inject(kChunkFaultSite, static_cast<std::uint64_t>(c));
    const std::int64_t begin = c * grain;
    const std::int64_t end = begin + grain < n ? begin + grain : n;
    body(begin, end, scratches[static_cast<std::size_t>(c)]);
  });
  for (Scratch& scratch : scratches) merge(std::move(scratch));
}

/// Outcome of a cancellable loop.  `frontier` is the count of leading
/// chunks whose results are usable: chunks [0, frontier) all completed,
/// chunk `frontier` (if any) did not.  Chunks completed *beyond* the
/// frontier out of order are discarded by parallel_reduce_cancellable
/// (never merged), so a partial result is a pure function of the
/// frontier -- bitwise what a fresh run truncated there produces,
/// regardless of thread count.
struct LoopStatus final {
  std::int64_t total_chunks = 0;
  std::int64_t frontier = 0;
  bool cancelled = false;  ///< the token was observed tripped

  [[nodiscard]] bool complete() const noexcept { return frontier == total_chunks; }
  [[nodiscard]] double completeness() const noexcept {
    return total_chunks > 0
               ? static_cast<double>(frontier) / static_cast<double>(total_chunks)
               : 1.0;
  }
};

namespace detail {

/// Frontier = first incomplete chunk; done[] bytes are written only by
/// the lane that ran that chunk and read here after the pool's batch
/// barrier, so no synchronization beyond run_tasks' own is needed.
[[nodiscard]] inline LoopStatus frontier_status(const std::vector<std::uint8_t>& done,
                                                const robust::CancelToken& token) {
  LoopStatus status;
  status.total_chunks = static_cast<std::int64_t>(done.size());
  status.frontier = status.total_chunks;
  for (std::size_t c = 0; c < done.size(); ++c) {
    if (done[c] == 0) {
      status.frontier = static_cast<std::int64_t>(c);
      break;
    }
  }
  status.cancelled = token.expired();
  if (status.cancelled) robust::note_cancel_observed(token);
  return status;
}

}  // namespace detail

/// parallel_for that honors `token` at chunk granularity.  An invalid
/// token (the default when no deadline is active) delegates to the
/// plain loop -- the only added cost on that path is resolving the
/// token, at most one relaxed atomic load.  With a valid token, each
/// chunk polls token.expired() before executing (on the pool *and* on
/// inline lanes), runs under a CancelScope so nested kernels inherit
/// the token ambiently, and the returned status reports the completed
/// chunk frontier.  Callers must discard per-index output at and beyond
/// `frontier * grain` -- chunks past the frontier may have run.
template <typename Body>
LoopStatus parallel_for_cancellable(ThreadPool* pool, std::int64_t n, std::int64_t grain,
                                    const robust::CancelToken& token, Body&& body) {
  if (n <= 0) return {};
  if (grain < 1) throw std::invalid_argument("parallel_for grain must be >= 1");
  const std::int64_t chunks = chunk_count(n, grain);
  if (!token.valid()) {
    parallel_for(pool, n, grain, std::forward<Body>(body));
    return LoopStatus{chunks, chunks, false};
  }
  std::vector<std::uint8_t> done(static_cast<std::size_t>(chunks), 0);
  pool_or_global(pool).run_tasks(
      chunks,
      [&](std::int64_t c) {
        if (token.expired()) return;
        robust::CancelScope scope(token);
        obs::ObsSpan span("exec.chunk");
        detail::observe_chunk_begin(span, c);
        robust::inject(kChunkFaultSite, static_cast<std::uint64_t>(c));
        const std::int64_t begin = c * grain;
        const std::int64_t end = begin + grain < n ? begin + grain : n;
        body(begin, end);
        done[static_cast<std::size_t>(c)] = 1;
      },
      [&token] { return token.expired(); });
  return detail::frontier_status(done, token);
}

/// parallel_reduce that honors `token` at chunk granularity.  Same
/// contract as parallel_for_cancellable; additionally, only scratches
/// of chunks *below* the frontier are merged (ascending), so the merged
/// result never sees out-of-order completions past the first gap.
template <typename MakeScratch, typename Body, typename Merge>
LoopStatus parallel_reduce_cancellable(ThreadPool* pool, std::int64_t n, std::int64_t grain,
                                       const robust::CancelToken& token, MakeScratch&& make,
                                       Body&& body, Merge&& merge) {
  if (n <= 0) return {};
  if (grain < 1) throw std::invalid_argument("parallel_reduce grain must be >= 1");
  if (!token.valid()) {
    parallel_reduce(pool, n, grain, std::forward<MakeScratch>(make), std::forward<Body>(body),
                    std::forward<Merge>(merge));
    const std::int64_t chunks = chunk_count(n, grain);
    return LoopStatus{chunks, chunks, false};
  }
  using Scratch = decltype(make());
  const std::int64_t chunks = chunk_count(n, grain);
  std::vector<Scratch> scratches;
  scratches.reserve(static_cast<std::size_t>(chunks));
  for (std::int64_t c = 0; c < chunks; ++c) scratches.push_back(make());
  std::vector<std::uint8_t> done(static_cast<std::size_t>(chunks), 0);
  pool_or_global(pool).run_tasks(
      chunks,
      [&](std::int64_t c) {
        if (token.expired()) return;
        robust::CancelScope scope(token);
        obs::ObsSpan span("exec.chunk");
        detail::observe_chunk_begin(span, c);
        robust::inject(kChunkFaultSite, static_cast<std::uint64_t>(c));
        const std::int64_t begin = c * grain;
        const std::int64_t end = begin + grain < n ? begin + grain : n;
        body(begin, end, scratches[static_cast<std::size_t>(c)]);
        done[static_cast<std::size_t>(c)] = 1;
      },
      [&token] { return token.expired(); });
  const LoopStatus status = detail::frontier_status(done, token);
  for (std::int64_t c = 0; c < status.frontier; ++c) {
    merge(std::move(scratches[static_cast<std::size_t>(c)]));
  }
  return status;
}

}  // namespace nanocost::exec
