// In-repo uniform random draws with a standard-library-independent stream.
//
// std::uniform_int_distribution and std::uniform_real_distribution are
// implementation-defined: libstdc++ and libc++ consume the engine
// differently and return different values from the same seed, so any
// result produced through them is only reproducible on one standard
// library.  Every nanocost kernel that promises a deterministic stream
// (the placer, multi-start seeds) draws through these helpers instead:
// a splitmix64 engine plus Lemire's debiased multiply-shift bounded
// draw and a 53-bit mantissa unit-interval draw, all fully specified
// here.
#pragma once

#include <cstdint>
#include <limits>

#include "nanocost/exec/seed.hpp"

namespace nanocost::exec {

/// splitmix64 engine (Steele, Lea, Flood 2014): a Weyl sequence through
/// the splitmix64 output function.  Satisfies UniformRandomBitGenerator.
class SplitMix64 final {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9E3779B97F4A7C15ULL;  // golden-ratio increment
    return splitmix64(state_);
  }
  constexpr std::uint64_t operator()() noexcept { return next(); }

  [[nodiscard]] static constexpr std::uint64_t min() noexcept { return 0; }
  [[nodiscard]] static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

namespace detail {

/// Lemire's multiply-shift applied to the 32-bit word `x`, drawing
/// fresh words from `rng` in the (probability < n / 2^32) rejection
/// case.  Factored out so one engine output can seed several draws.
[[nodiscard]] inline std::uint32_t lemire_bounded(SplitMix64& rng, std::uint32_t x,
                                                  std::uint32_t n) {
  std::uint64_t m = static_cast<std::uint64_t>(x) * n;
  auto low = static_cast<std::uint32_t>(m);
  if (low < n) {
    const std::uint32_t threshold = (0u - n) % n;
    while (low < threshold) {
      x = static_cast<std::uint32_t>(rng.next() >> 32);
      m = static_cast<std::uint64_t>(x) * n;
      low = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

}  // namespace detail

/// Uniform draw in [0, n) for n >= 1: Lemire's multiply-shift with
/// rejection of the biased low fraction (Lemire 2019, "Fast Random
/// Integer Generation in an Interval").  Exactly uniform; the rejection
/// loop runs with probability < n / 2^32 per draw.
[[nodiscard]] inline std::uint32_t bounded_u32(SplitMix64& rng, std::uint32_t n) {
  return detail::lemire_bounded(rng, static_cast<std::uint32_t>(rng.next() >> 32), n);
}

/// Uniform draw in [0, n) as a signed 32-bit index (n >= 1).
[[nodiscard]] inline std::int32_t bounded_i32(SplitMix64& rng, std::int32_t n) {
  return static_cast<std::int32_t>(bounded_u32(rng, static_cast<std::uint32_t>(n)));
}

/// Two uniform draws -- first in [0, n0), second in [0, n1) -- paying
/// for one engine output: the high and low halves each go through the
/// debiased multiply-shift above (rejections, essentially never taken,
/// fall back to fresh outputs), so both draws stay exactly uniform.
/// The placer's gate+site pick is the intended caller: it halves the
/// inner loop's engine cost.
struct I32Pair final {
  std::int32_t first = 0, second = 0;
};
[[nodiscard]] inline I32Pair bounded_i32_pair(SplitMix64& rng, std::int32_t n0, std::int32_t n1) {
  const std::uint64_t bits = rng.next();
  const auto a = detail::lemire_bounded(rng, static_cast<std::uint32_t>(bits >> 32),
                                        static_cast<std::uint32_t>(n0));
  const auto b = detail::lemire_bounded(rng, static_cast<std::uint32_t>(bits),
                                        static_cast<std::uint32_t>(n1));
  return I32Pair{static_cast<std::int32_t>(a), static_cast<std::int32_t>(b)};
}

/// Uniform double in [0, 1): the top 53 bits of one engine output
/// scaled by 2^-53 (every representable value equally likely).
[[nodiscard]] inline double uniform_unit(SplitMix64& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

}  // namespace nanocost::exec
