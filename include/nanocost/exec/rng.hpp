// In-repo uniform random draws with a standard-library-independent stream.
//
// std::uniform_int_distribution and std::uniform_real_distribution are
// implementation-defined: libstdc++ and libc++ consume the engine
// differently and return different values from the same seed, so any
// result produced through them is only reproducible on one standard
// library.  Every nanocost kernel that promises a deterministic stream
// (the placer, multi-start seeds) draws through these helpers instead:
// a splitmix64 engine plus Lemire's debiased multiply-shift bounded
// draw and a 53-bit mantissa unit-interval draw, all fully specified
// here.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "nanocost/exec/seed.hpp"

namespace nanocost::exec {

/// splitmix64 engine (Steele, Lea, Flood 2014): a Weyl sequence through
/// the splitmix64 output function.  Satisfies UniformRandomBitGenerator.
///
/// The engine is counter-based: output i of a stream seeded with s is
/// splitmix64(s + (i+1) * gamma), a pure function of (s, i).  That is
/// what makes the batched API in exec/rng_batch.hpp possible -- a
/// vector lane can compute outputs i..i+7 of the *same* stream without
/// serial state chaining, and advance() lets scalar and batched
/// consumers interleave on one stream without drift.
class SplitMix64 final {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9E3779B97F4A7C15ULL;  // golden-ratio increment
    return splitmix64(state_);
  }
  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// The Weyl state; outputs continue at splitmix64(state() + gamma).
  [[nodiscard]] constexpr std::uint64_t state() const noexcept { return state_; }

  /// Skips the next `n` outputs in O(1) -- the Weyl sequence advances
  /// by n * gamma.  Batched draws use this to keep the engine in step.
  constexpr void advance(std::uint64_t n) noexcept {
    state_ += n * 0x9E3779B97F4A7C15ULL;
  }

  [[nodiscard]] static constexpr std::uint64_t min() noexcept { return 0; }
  [[nodiscard]] static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

namespace detail {

/// Lemire's multiply-shift applied to the 32-bit word `x`, drawing
/// fresh words from `rng` in the (probability < n / 2^32) rejection
/// case.  Factored out so one engine output can seed several draws.
[[nodiscard]] inline std::uint32_t lemire_bounded(SplitMix64& rng, std::uint32_t x,
                                                  std::uint32_t n) {
  std::uint64_t m = static_cast<std::uint64_t>(x) * n;
  auto low = static_cast<std::uint32_t>(m);
  if (low < n) {
    const std::uint32_t threshold = (0u - n) % n;
    while (low < threshold) {
      x = static_cast<std::uint32_t>(rng.next() >> 32);
      m = static_cast<std::uint64_t>(x) * n;
      low = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

}  // namespace detail

/// Uniform draw in [0, n) for n >= 1: Lemire's multiply-shift with
/// rejection of the biased low fraction (Lemire 2019, "Fast Random
/// Integer Generation in an Interval").  Exactly uniform; the rejection
/// loop runs with probability < n / 2^32 per draw.
[[nodiscard]] inline std::uint32_t bounded_u32(SplitMix64& rng, std::uint32_t n) {
  return detail::lemire_bounded(rng, static_cast<std::uint32_t>(rng.next() >> 32), n);
}

/// Uniform draw in [0, n) as a signed 32-bit index (n >= 1).
[[nodiscard]] inline std::int32_t bounded_i32(SplitMix64& rng, std::int32_t n) {
  return static_cast<std::int32_t>(bounded_u32(rng, static_cast<std::uint32_t>(n)));
}

/// Two uniform draws -- first in [0, n0), second in [0, n1) -- paying
/// for one engine output: the high and low halves each go through the
/// debiased multiply-shift above (rejections, essentially never taken,
/// fall back to fresh outputs), so both draws stay exactly uniform.
/// The placer's gate+site pick is the intended caller: it halves the
/// inner loop's engine cost.
struct I32Pair final {
  std::int32_t first = 0, second = 0;
};
[[nodiscard]] inline I32Pair bounded_i32_pair(SplitMix64& rng, std::int32_t n0, std::int32_t n1) {
  const std::uint64_t bits = rng.next();
  const auto a = detail::lemire_bounded(rng, static_cast<std::uint32_t>(bits >> 32),
                                        static_cast<std::uint32_t>(n0));
  const auto b = detail::lemire_bounded(rng, static_cast<std::uint32_t>(bits),
                                        static_cast<std::uint32_t>(n1));
  return I32Pair{static_cast<std::int32_t>(a), static_cast<std::int32_t>(b)};
}

/// Uniform double in [0, 1): the top 53 bits of one engine output
/// scaled by 2^-53 (every representable value equally likely).
[[nodiscard]] inline double uniform_unit(SplitMix64& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

/// 2*pi at double precision -- shared by every Box-Muller consumer so
/// scalar and batched draws use the identical constant.
inline constexpr double kTwoPi = 6.283185307179586476925286766559;

/// A pair of independent standard-normal draws.
struct GaussPair final {
  double z0 = 0.0, z1 = 0.0;
};

/// Box-Muller from exactly two engine outputs (fixed consumption: no
/// rejection, so batched and scalar callers stay in lockstep).  u1 is
/// mapped into (0, 1] -- the +1 before scaling -- so the log never sees
/// zero; u2 keeps the standard [0, 1) mapping.  Used instead of
/// std::normal_distribution for the same reason as the draws above: the
/// standard library's algorithm (and hence the stream) is
/// implementation-defined, and its ziggurat/polar rejection loops
/// consume a data-dependent number of outputs.
[[nodiscard]] inline GaussPair gauss_pair(SplitMix64& rng) {
  const double u1 = static_cast<double>((rng.next() >> 11) + 1) * 0x1.0p-53;
  const double u2 = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double t = kTwoPi * u2;
  return GaussPair{r * std::cos(t), r * std::sin(t)};
}

}  // namespace nanocost::exec
