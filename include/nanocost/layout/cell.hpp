// Hierarchical layout cells: rectangles + placed sub-cell instances.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nanocost/layout/types.hpp"

namespace nanocost::layout {

class Cell;

/// A placed (optionally arrayed) reference to another cell.
struct Instance final {
  const Cell* cell = nullptr;  ///< non-owning; the Library owns cells
  Transform transform{};
  /// Array repetition: nx * ny placements stepped by (pitch_x, pitch_y)
  /// *after* orientation.  (1,1) is a single placement.
  std::int32_t nx = 1;
  std::int32_t ny = 1;
  Coord pitch_x = 0;
  Coord pitch_y = 0;

  [[nodiscard]] std::int64_t count() const noexcept {
    return static_cast<std::int64_t>(nx) * ny;
  }
};

/// A layout cell.  Immutable once built into a Library (the builder
/// pattern below); cells may reference only previously-built cells,
/// which makes the hierarchy acyclic by construction.
class Cell final {
 public:
  explicit Cell(std::string name) : name_(std::move(name)) {}

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Rect>& rects() const noexcept { return rects_; }
  [[nodiscard]] const std::vector<Instance>& instances() const noexcept { return instances_; }

  void add_rect(const Rect& r);
  void add_instance(const Instance& inst);

  /// Bounding box over own rects and (transformed) child boxes.
  /// Returns an invalid Rect for an empty cell.
  [[nodiscard]] Rect bounding_box() const;

  /// Total rectangles in the fully flattened cell.
  [[nodiscard]] std::int64_t flat_rect_count() const;

 private:
  std::string name_;
  std::vector<Rect> rects_;
  std::vector<Instance> instances_;
};

/// Owns cells; lookup by name.  Insertion order is a valid bottom-up
/// topological order of the hierarchy.
class Library final {
 public:
  /// Creates an empty cell; throws std::invalid_argument on duplicates.
  Cell& create_cell(const std::string& name);

  [[nodiscard]] const Cell* find(const std::string& name) const noexcept;
  [[nodiscard]] Cell* find(const std::string& name) noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] const std::vector<std::unique_ptr<Cell>>& cells() const noexcept {
    return cells_;
  }

 private:
  std::vector<std::unique_ptr<Cell>> cells_;
  std::unordered_map<std::string, Cell*> by_name_;
};

/// Visits every rectangle of `cell` fully flattened under `transform`;
/// `fn(const Rect&)` receives world-coordinate rectangles.
void for_each_flat_rect(const Cell& cell, const Transform& transform,
                        const std::function<void(const Rect&)>& fn);

}  // namespace nanocost::layout
