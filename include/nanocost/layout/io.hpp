// Plain-text layout interchange.
//
// A minimal, diff-friendly format so generated fabrics can be saved,
// inspected, and reloaded (the GDSII role, without the binary format):
//
//   nanocost-layout v1
//   lambda_um 0.25
//   cell <name>
//     rect <layer> <x0> <y0> <x1> <y1>
//     inst <cell> <orientation> <dx> <dy> [<nx> <ny> <px> <py>]
//   endcell
//   top <name>
//
// Coordinates are half-lambda database units; instances may only
// reference previously defined cells (the writer emits bottom-up, the
// reader enforces it), so hierarchies are acyclic by construction.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "nanocost/layout/design.hpp"

namespace nanocost::layout {

/// Serializes the design (cells reachable from the top, bottom-up).
void save_design(std::ostream& out, const Design& design);
void save_design_file(const std::string& path, const Design& design);

/// Parses a design; throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Design load_design(std::istream& in);
[[nodiscard]] Design load_design_file(const std::string& path);

/// Round-trip helpers for orientation names ("R0", "MX", ...).
[[nodiscard]] std::string orientation_name(Orientation o);
[[nodiscard]] Orientation parse_orientation(const std::string& name);

}  // namespace nanocost::layout
