// Fabric generators: synthetic layouts spanning the design-style
// spectrum the paper's Table A1 covers, from dense regular SRAM
// (s_d ~ 30) through custom datapaths (~100) and standard-cell ASICs
// (several hundred) to sparse gate arrays.
//
// All geometry is drawn in half-lambda database units; every transistor
// is a real poly-over-diffusion crossing, so the counting and density
// machinery measures these fabrics the same way it would measure an
// imported layout.
#pragma once

#include <cstdint>
#include <random>

#include "nanocost/layout/cell.hpp"

namespace nanocost::layout {

/// A 6T SRAM bitcell arrayed rows x cols, plus word/bit-line metal.
/// The densest regular fabric (bitcell ~ 180 lambda^2, s_d ~ 30).
/// Returns the array's top cell, owned by `lib`.
[[nodiscard]] const Cell* make_sram_array(Library& lib, std::int32_t rows, std::int32_t cols);

/// Parameters for the standard-cell block generator.
struct StdCellBlockParams final {
  std::int32_t rows = 16;
  std::int32_t row_width_lambda = 512;     ///< target row width in lambda
  double routing_channel_ratio = 1.0;      ///< channel height / row height
  double placement_utilization = 0.85;     ///< fraction of row width holding cells
  std::uint64_t seed = 1;
};

/// A placed-and-routed-looking standard-cell block: rows of randomly
/// chosen library cells (inv/nand2/nor2/dff) separated by routing
/// channels carrying metal.  s_d lands in the ASIC range (300-700
/// depending on channel ratio and utilization).
[[nodiscard]] const Cell* make_stdcell_block(Library& lib, const StdCellBlockParams& params);

/// The four standard-cell masters (all 16 lambda tall), exposed for
/// flows that place them explicitly (see place::synthesize).
struct StdCellMasters final {
  const Cell* inv = nullptr;    ///< 2 transistors, 12 lambda wide
  const Cell* nand2 = nullptr;  ///< 4 transistors, 20 lambda wide
  const Cell* nor2 = nullptr;   ///< 4 transistors, 20 lambda wide
  const Cell* dff = nullptr;    ///< 20 transistors, 84 lambda wide
};
[[nodiscard]] StdCellMasters make_stdcell_masters(Library& lib);

/// A bit-sliced datapath: one hand-drawn slice cell arrayed `bits` high
/// and `stages` wide -- the regular custom style the paper advocates.
[[nodiscard]] const Cell* make_datapath(Library& lib, std::int32_t bits, std::int32_t stages);

/// A gate-array base: uniform transistor sites arrayed rows x cols, with
/// only `utilization` of sites personalized with metal.  All sites'
/// transistors are fabricated (and counted); utilization matters for
/// cost via the paper's u parameter, not for N_tr.
[[nodiscard]] const Cell* make_gate_array(Library& lib, std::int32_t rows, std::int32_t cols,
                                          double utilization, std::uint64_t seed = 1);

/// An irregular "custom" block: `transistor_count` transistors scattered
/// on a jittered grid sized for decompression index ~ `s_d_target`, with
/// random local metal.  The regularity extractor's worst case.
[[nodiscard]] const Cell* make_random_custom(Library& lib, std::int64_t transistor_count,
                                             double s_d_target, std::uint64_t seed = 1);

}  // namespace nanocost::layout
