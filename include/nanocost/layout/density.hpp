// Design density and the design decompression index (paper eq. (2)).
//
//   T_d = N_tr / A_ch = 1 / (lambda^2 s_d)      [transistors per area]
//   s_d = A_ch / (N_tr lambda^2)                [lambda-squares per transistor]
//   d_d = 1 / s_d
//
// s_d is the paper's central *process-independent* design attribute:
// SRAM ~30, tight custom logic ~100, typical ASICs several hundred.
#pragma once

#include "nanocost/units/area.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::layout {

/// Density figures for one design (or one region of a design).
struct DensityMetrics final {
  double decompression_index = 0.0;        ///< s_d, lambda-squares per transistor
  double density_index = 0.0;              ///< d_d = 1 / s_d
  double transistors_per_cm2 = 0.0;        ///< T_d
};

/// s_d from raw numbers: chip area, transistor count, feature size.
/// Throws std::domain_error on non-positive inputs.
[[nodiscard]] double decompression_index(units::SquareCentimeters area, double transistor_count,
                                         units::Micrometers lambda);

/// All three density figures from raw numbers.
[[nodiscard]] DensityMetrics density_metrics(units::SquareCentimeters area,
                                             double transistor_count, units::Micrometers lambda);

/// Chip area implied by a transistor count at a given s_d and lambda --
/// the inversion used when sizing dies from roadmap transistor counts.
[[nodiscard]] units::SquareCentimeters area_for(double transistor_count, double s_d,
                                                units::Micrometers lambda);

}  // namespace nanocost::layout
