// A Design binds a cell hierarchy to a physical feature size and exposes
// the paper's density figures for it.
#pragma once

#include <memory>

#include "nanocost/layout/cell.hpp"
#include "nanocost/layout/density.hpp"
#include "nanocost/units/area.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::layout {

/// Top-level design: a library, a chosen top cell, and the minimum
/// feature size lambda that scales database units to silicon.
class Design final {
 public:
  Design(std::shared_ptr<Library> library, const Cell* top, units::Micrometers lambda);

  [[nodiscard]] const Cell& top() const noexcept { return *top_; }
  [[nodiscard]] const Library& library() const noexcept { return *library_; }
  [[nodiscard]] units::Micrometers lambda() const noexcept { return lambda_; }

  /// Bounding-box chip area in physical units.
  [[nodiscard]] units::SquareCentimeters area() const;

  /// Transistor count (hierarchical counting; exact for generated
  /// fabrics, see counting.hpp).
  [[nodiscard]] std::int64_t transistor_count() const;

  /// s_d / d_d / T_d for the whole design.
  [[nodiscard]] DensityMetrics density() const;

  /// Total flattened rectangle count (layout size indicator).
  [[nodiscard]] std::int64_t flat_rect_count() const { return top_->flat_rect_count(); }

 private:
  std::shared_ptr<Library> library_;
  const Cell* top_;
  units::Micrometers lambda_;
  // Lazily computed, cached: the hierarchy is immutable once wrapped.
  mutable std::int64_t cached_transistors_ = -1;
};

}  // namespace nanocost::layout
