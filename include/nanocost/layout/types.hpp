// Layout database primitives.
//
// Coordinates are integers in *half-lambda* database units: fine enough
// to draw every pattern this library generates, coarse enough that
// identical geometry hashes identically (which the regularity extractor
// depends on).  The owning Design records the physical size of lambda.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace nanocost::layout {

/// Database unit: half of the minimum feature size lambda.
using Coord = std::int64_t;
inline constexpr Coord kUnitsPerLambda = 2;

/// Mask layers relevant to transistor counting and critical area.
enum class Layer : std::uint8_t {
  kDiffusion = 0,
  kPoly,
  kContact,
  kMetal1,
  kVia1,
  kMetal2,
  kVia2,
  kMetal3,
  kVia3,
  kMetal4,
  kVia4,
  kMetal5,
  kVia5,
  kMetal6,
};
inline constexpr int kLayerCount = 14;

[[nodiscard]] std::string layer_name(Layer layer);

struct Point final {
  Coord x = 0;
  Coord y = 0;
  [[nodiscard]] friend constexpr bool operator==(Point, Point) noexcept = default;
};

/// Axis-aligned rectangle, half-open semantics not needed: [x0,x1]x[y0,y1]
/// with x0 < x1, y0 < y1 enforced by normalize().
struct Rect final {
  Layer layer = Layer::kDiffusion;
  Coord x0 = 0;
  Coord y0 = 0;
  Coord x1 = 0;
  Coord y1 = 0;

  [[nodiscard]] constexpr Coord width() const noexcept { return x1 - x0; }
  [[nodiscard]] constexpr Coord height() const noexcept { return y1 - y0; }
  /// Area in square database units.
  [[nodiscard]] constexpr std::int64_t area() const noexcept { return width() * height(); }
  [[nodiscard]] constexpr bool valid() const noexcept { return x0 < x1 && y0 < y1; }
  [[nodiscard]] constexpr bool intersects(const Rect& o) const noexcept {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }
  /// Intersection rectangle (caller must ensure intersects()).
  [[nodiscard]] constexpr Rect intersection(const Rect& o) const noexcept {
    return Rect{layer, x0 > o.x0 ? x0 : o.x0, y0 > o.y0 ? y0 : o.y0, x1 < o.x1 ? x1 : o.x1,
                y1 < o.y1 ? y1 : o.y1};
  }
  [[nodiscard]] constexpr Rect translated(Coord dx, Coord dy) const noexcept {
    return Rect{layer, x0 + dx, y0 + dy, x1 + dx, y1 + dy};
  }
  [[nodiscard]] friend constexpr bool operator==(const Rect&, const Rect&) noexcept = default;
};

/// Eight layout orientations (the GDSII/OASIS set).
enum class Orientation : std::uint8_t {
  kR0 = 0,
  kR90,
  kR180,
  kR270,
  kMX,        ///< mirror about the x axis
  kMY,        ///< mirror about the y axis
  kMXR90,     ///< mirror about x, then rotate 90
  kMYR90,     ///< mirror about y, then rotate 90
};
inline constexpr int kOrientationCount = 8;

/// Placement transform: orient about the origin, then translate.
struct Transform final {
  Orientation orientation = Orientation::kR0;
  Coord dx = 0;
  Coord dy = 0;

  [[nodiscard]] Point apply(Point p) const noexcept;
  [[nodiscard]] Rect apply(const Rect& r) const noexcept;
  /// Composition: (this ∘ inner), i.e. apply `inner` first.
  [[nodiscard]] Transform compose(const Transform& inner) const noexcept;
};

/// Orientation composition table entry: outer ∘ inner.
[[nodiscard]] Orientation compose(Orientation outer, Orientation inner) noexcept;

}  // namespace nanocost::layout
