// Layout statistics beyond density: per-layer composition, wire-length
// proxies, and interconnect-share metrics.  The paper reads rising s_d
// as "the growing need for more interconnect"; these statistics make
// that interpretation measurable on a layout.
#pragma once

#include <array>
#include <cstdint>

#include "nanocost/layout/cell.hpp"
#include "nanocost/units/area.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::layout {

/// Per-layer accumulation over the flattened design.
struct LayerStats final {
  std::int64_t rect_count = 0;
  std::int64_t area_units2 = 0;      ///< summed rect area, (half-lambda)^2
  std::int64_t wire_length_units = 0;  ///< summed long-dimension of rects
};

/// Whole-design statistics.
struct LayoutStats final {
  std::array<LayerStats, kLayerCount> layers{};
  std::int64_t total_rects = 0;
  Rect bounding_box{};

  [[nodiscard]] const LayerStats& layer(Layer l) const noexcept {
    return layers[static_cast<std::size_t>(l)];
  }
  /// Fraction of bounding-box area drawn on a layer (can exceed 1 for
  /// overlapping multi-rect regions; generators do not overlap).
  [[nodiscard]] double layer_coverage(Layer l) const noexcept;
  /// Summed drawn area over the interconnect layers (metal1 and up)
  /// divided by all drawn area -- the "interconnect share" the paper
  /// blames for rising s_d.
  [[nodiscard]] double interconnect_share() const noexcept;
  /// Total metal wire length in physical units at feature size lambda.
  [[nodiscard]] units::Micrometers total_wire_length(units::Micrometers lambda) const;
};

/// Collects statistics over the flattened cell.
[[nodiscard]] LayoutStats collect_stats(const Cell& top);

}  // namespace nanocost::layout
