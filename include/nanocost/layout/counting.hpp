// Transistor counting.
//
// A MOS transistor is a poly shape crossing a diffusion shape; in a
// rectangle database every positive-area poly∩diffusion overlap is one
// gate.  This is the N_tr that the paper's density measure (eq. 2)
// divides the layout area by.
//
// Precondition (guaranteed by this library's generators, asserted
// nowhere): shapes on the same layer do not overlap each other, so no
// gate is counted twice.
#pragma once

#include <cstdint>
#include <vector>

#include "nanocost/layout/cell.hpp"

namespace nanocost::layout {

/// Counts positive-area poly-over-diffusion overlaps in a flat rectangle
/// soup.  O(n) expected via a uniform spatial hash.
[[nodiscard]] std::int64_t count_gate_overlaps(const std::vector<Rect>& rects);

/// Exact flat count for a cell: flattens the hierarchy, then counts.
/// Memory- and time-proportional to the flattened size.
[[nodiscard]] std::int64_t count_transistors_flat(const Cell& top);

/// Hierarchical count: each cell's own-rect gates plus instance-count-
/// weighted child totals.  Exact when no gate spans a cell boundary
/// (true for all fabrics this library generates); otherwise a lower
/// bound.  Runs in time proportional to the *hierarchy* size, so an
/// SRAM of a million bitcells counts in microseconds.
[[nodiscard]] std::int64_t count_transistors_hierarchical(const Cell& top);

}  // namespace nanocost::layout
