// Minimal ASCII charts so every bench can show the *shape* of the
// figure it reproduces directly in the terminal output.
#pragma once

#include <string>
#include <vector>

namespace nanocost::report {

/// One named series of (x, y) points.
struct Series final {
  std::string name;
  char marker = '*';
  std::vector<std::pair<double, double>> points;
};

/// Axis scaling for the chart.
enum class Scale { kLinear, kLog };

struct ChartOptions final {
  int width = 72;    ///< plot area columns
  int height = 20;   ///< plot area rows
  Scale x_scale = Scale::kLinear;
  Scale y_scale = Scale::kLinear;
  std::string x_label;
  std::string y_label;
};

/// Renders the series as an ASCII scatter chart with axis annotations.
[[nodiscard]] std::string render_chart(const std::vector<Series>& series,
                                       const ChartOptions& options = {});

}  // namespace nanocost::report
