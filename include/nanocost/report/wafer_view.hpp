// ASCII wafer maps: the fab's eye view of a lot, in the terminal.
#pragma once

#include <functional>
#include <string>

#include "nanocost/geometry/wafer_map.hpp"

namespace nanocost::report {

/// Renders the wafer map with one character per die site, provided by
/// `site_char(site_index)`; positions without a die print as spaces
/// inside the wafer outline and the area outside the wafer as blanks.
/// A trailing legend line is the caller's business.
[[nodiscard]] std::string render_wafer_map(
    const geometry::WaferMap& map,
    const std::function<char(std::int64_t)>& site_char);

/// Convenience: good/bad view ('o' good, 'X' bad).
[[nodiscard]] std::string render_good_bad(const geometry::WaferMap& map,
                                          const std::function<bool(std::int64_t)>& is_good);

}  // namespace nanocost::report
