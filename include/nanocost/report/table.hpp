// ASCII tables and CSV emission for benches and examples.
#pragma once

#include <string>
#include <vector>

namespace nanocost::report {

/// Column-aligned ASCII table.
class Table final {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nanocost::report
