// Human-readable campaign health: completeness, retries, quarantine.
#pragma once

#include <string>

#include "nanocost/robust/campaign.hpp"

namespace nanocost::report {

/// Renders a campaign result as an ASCII block: progress counters,
/// completeness fraction, retry count, and -- when units were lost --
/// the quarantined chunks with their unit ranges and errors.
/// `unit_name` names the work unit in the output ("wafer", "sample").
[[nodiscard]] std::string render_campaign(const robust::CampaignResult& result,
                                          const std::string& unit_name = "unit");

}  // namespace nanocost::report
