// Hierarchical reuse statistics: regularity as seen through the cell
// hierarchy rather than the flattened geometry.
//
// The window extractor (extractor.hpp) measures *geometric* repetition;
// this measures *declared* repetition -- how much of the design is
// instances of shared masters.  A perfectly arrayed SRAM is regular by
// both measures; a sea of distinct flat polygons by neither; a design
// that copy-pastes geometry without hierarchy is regular geometrically
// but not hierarchically (and only the extractor catches it).
#pragma once

#include <cstdint>

#include "nanocost/layout/cell.hpp"

namespace nanocost::regularity {

/// Reuse statistics of a cell hierarchy.
struct HierarchyReport final {
  std::int64_t unique_cells = 0;        ///< masters reachable from the top
  std::int64_t total_placements = 0;    ///< flattened instance count (arrays expanded)
  std::int64_t flat_rects = 0;          ///< flattened rectangle count
  std::int64_t master_rects = 0;        ///< rectangles drawn once, in masters

  /// Placements per master: 1 for a flat design, huge for arrays.
  [[nodiscard]] double reuse_factor() const noexcept {
    return unique_cells > 0
               ? static_cast<double>(total_placements) / static_cast<double>(unique_cells)
               : 0.0;
  }
  /// Geometry compression from hierarchy: flat rects per drawn rect.
  [[nodiscard]] double compression() const noexcept {
    return master_rects > 0
               ? static_cast<double>(flat_rects) / static_cast<double>(master_rects)
               : 0.0;
  }
};

/// Walks the hierarchy under `top` (the top cell itself counts as one
/// placement of one master).
[[nodiscard]] HierarchyReport analyze_hierarchy(const layout::Cell& top);

}  // namespace nanocost::regularity
