// Window-size sweep: regularity is scale-dependent.
//
// A std-cell row is irregular at bitcell granularity but regular at row
// granularity; an SRAM is regular at every scale from the bitcell up.
// Sweeping the extractor's window exposes the *characteristic scale* of
// a design's repetition -- the right granularity at which to
// precharacterize patterns (too small: patterns cross windows; too
// large: every window unique).
#pragma once

#include <vector>

#include "nanocost/regularity/extractor.hpp"

namespace nanocost::exec {
class ThreadPool;
}

namespace nanocost::regularity {

/// One sweep sample.
struct WindowSweepPoint final {
  layout::Coord window = 0;
  std::int64_t total_windows = 0;
  std::int64_t unique_patterns = 0;
  double regularity_index = 0.0;
};

/// Runs the extractor at each window size (geometric ladder from
/// `min_window`, doubling, `steps` sizes) and reports the census shape.
/// The geometry is flattened once; the per-size extractions run in
/// parallel on `pool` (null: global pool) -- extraction is pure, so the
/// sweep is deterministic at any thread count.
[[nodiscard]] std::vector<WindowSweepPoint> sweep_windows(
    const layout::Cell& top, layout::Coord min_window, int steps,
    bool orientation_invariant = false, exec::ThreadPool* pool = nullptr);

/// The sweep's best window: the largest window size whose regularity
/// index stays within `tolerance` of the sweep's maximum -- bigger
/// windows amortize more geometry per characterized pattern.
[[nodiscard]] WindowSweepPoint characteristic_scale(
    const std::vector<WindowSweepPoint>& sweep, double tolerance = 0.05);

}  // namespace nanocost::regularity
