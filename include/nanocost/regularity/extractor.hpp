// Repetitive-pattern extraction, after Niewczas/Maly/Strojwas (TCAD'99,
// ref [33] of the paper): determine how much of a layout is built from
// repeated geometric patterns.
//
// Method: tile the flattened layout with a square window grid; each
// window's clipped geometry, normalized to the window origin (and
// optionally canonicalized over the eight layout orientations), is
// fingerprinted.  The census of fingerprints tells how many *unique*
// patterns the design uses and what fraction of the area the most-reused
// patterns cover -- exactly the quantity Sec. 3.2 of the paper argues
// must be kept small to contain nanometer design cost.
#pragma once

#include <cstdint>
#include <vector>

#include "nanocost/layout/cell.hpp"

namespace nanocost::regularity {

/// Extraction parameters.
struct ExtractorParams final {
  /// Window edge in database units; patterns repeat at this granularity.
  layout::Coord window = 64;
  /// Canonicalize each window under the 8 orientations, so a mirrored
  /// row of standard cells matches its unmirrored twin.
  bool orientation_invariant = false;
  /// Skip windows containing no geometry (empty area is trivially
  /// regular and would otherwise inflate regularity scores).
  bool ignore_empty_windows = true;
};

/// One pattern class in the census.
struct PatternClass final {
  std::uint64_t fingerprint = 0;
  std::int64_t occurrences = 0;
  std::int32_t rect_count = 0;  ///< rectangles per occurrence
};

/// Result of a pattern extraction pass.
struct RegularityReport final {
  std::int64_t total_windows = 0;     ///< windows counted (per ignore_empty_windows)
  std::int64_t empty_windows = 0;     ///< geometry-free windows seen
  std::int64_t unique_patterns = 0;   ///< distinct fingerprints
  /// Census sorted by occurrences, descending.
  std::vector<PatternClass> census;

  /// 1 - unique/total: 0 for all-distinct layouts, -> 1 for perfect arrays.
  [[nodiscard]] double regularity_index() const noexcept;
  /// Fraction of (non-empty) windows covered by the k most common patterns.
  [[nodiscard]] double top_k_coverage(std::int64_t k) const noexcept;
  /// Shannon entropy of the pattern distribution, in bits; log2(total)
  /// for all-distinct layouts, 0 for a single repeated pattern.
  [[nodiscard]] double pattern_entropy_bits() const noexcept;
};

/// Extracts the pattern census of `top`, flattened.
[[nodiscard]] RegularityReport extract_patterns(const layout::Cell& top,
                                                const ExtractorParams& params = {});

/// Extracts from an explicit flat rectangle list (world coordinates).
[[nodiscard]] RegularityReport extract_patterns(const std::vector<layout::Rect>& rects,
                                                const ExtractorParams& params = {});

}  // namespace nanocost::regularity
