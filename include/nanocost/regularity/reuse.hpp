// Simulation-reuse economics of regularity (paper Sec. 3.2).
//
// The paper's argument: nanometer-accurate simulation/characterization
// is so expensive that its results must be *reused* across repeated
// patterns ("this way one will be able to increase an effective volume
// used in the computation of C_DE").  We model that as:
//
//   - characterization cost proportional to the number of unique
//     patterns (each unique pattern is simulated once), and
//   - an effective-volume multiplier when patterns are shared across a
//     product family.
#pragma once

#include "nanocost/regularity/extractor.hpp"
#include "nanocost/units/money.hpp"

namespace nanocost::regularity {

/// Cost of precharacterizing a design's pattern set: unique patterns
/// times the per-pattern simulation cost.
[[nodiscard]] units::Money characterization_cost(const RegularityReport& report,
                                                 units::Money cost_per_pattern);

/// Design-effort scale factor in [min_scale, 1]: the fraction of design
/// verification effort that remains after reusing characterized
/// patterns.  A fully regular design (one pattern) approaches
/// `min_scale` (irreducible integration effort); an all-unique design
/// pays full price.  Interpolates on the unique-pattern *fraction*.
[[nodiscard]] double design_effort_scale(const RegularityReport& report,
                                         double min_scale = 0.1);

/// Effective volume multiplier when `products_sharing` products in a
/// family reuse this design's pattern library: per-product
/// characterization cost divides by the sharing count, which is how the
/// paper proposes regularity "increases the effective volume" in eq. (5).
[[nodiscard]] double effective_volume_multiplier(const RegularityReport& report,
                                                 int products_sharing);

}  // namespace nanocost::regularity
