// Slicing floorplanner: chip-level block assembly.
//
// Table A1's interesting rows split a die into memory and logic regions
// with very different densities; composing those regions into a die is
// a floorplanning problem.  This is the classic slicing approach:
// blocks at the leaves of a binary cut tree (Polish expression),
// Stockmeyer shape-curve combination for soft blocks, and simulated
// annealing over the expression.  The output the cost models need is
// the packed die's bounding box -- dead space is silicon you pay
// Cm_sq for but get no transistors from, a direct s_d inflation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nanocost::floorplan {

/// A block to place: fixed area, flexible shape within an aspect range.
struct Block final {
  std::string name;
  double area = 1.0;           ///< in any consistent unit^2
  double min_aspect = 0.5;     ///< width / height lower bound
  double max_aspect = 2.0;     ///< width / height upper bound
  int shape_options = 5;       ///< discrete shapes sampled from the range
};

/// A placed block in the result.
struct PlacedBlock final {
  std::string name;
  double x = 0.0;  ///< lower-left corner
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;
};

struct FloorplanResult final {
  double width = 0.0;
  double height = 0.0;
  std::vector<PlacedBlock> blocks;

  [[nodiscard]] double area() const noexcept { return width * height; }
  [[nodiscard]] double block_area() const noexcept;
  /// Fraction of the bounding box not covered by blocks.
  [[nodiscard]] double dead_space() const noexcept;
};

struct FloorplanParams final {
  double initial_temperature = 0.0;  ///< 0 = auto from initial area
  double cooling = 0.92;
  int moves_per_temperature = 60;
  double stop_temperature_fraction = 1e-4;
  std::uint64_t seed = 1;
};

/// Packs the blocks; throws std::invalid_argument on empty input or
/// degenerate block parameters.
[[nodiscard]] FloorplanResult floorplan(const std::vector<Block>& blocks,
                                        const FloorplanParams& params = {});

}  // namespace nanocost::floorplan
