// Canonical parameter hashing for the deterministic entry points.
//
// A cache key must equal exactly when the computation's observable
// output equals, and must differ whenever any input that shapes the
// output differs.  PRs 1-6 made every major entry point a pure
// function of its full input struct (bitwise thread-count- and
// SIMD-level-invariant), so the key is simply a versioned, field-tagged
// byte serialization of those inputs fed through the in-repo 128-bit
// hash (cache/hash.hpp):
//
//   key = H( magic, schema version, entry-point name,
//            [type code, tag hash, value bytes]* )
//
// Canonicalization rules (DESIGN.md section 13):
//   * every field is written explicitly, tagged with the hash of its
//     name -- no struct memcpy, so padding bytes and layout never leak
//     into the key, and reordering or renaming fields changes it loudly;
//   * floating-point values hash by IEEE-754 bit pattern (bit_cast),
//     so +0.0 / -0.0 and NaN payloads are distinct, exactly like the
//     kernels see them;
//   * integers serialize little-endian at fixed width regardless of
//     host; bools as one byte;
//   * aggregate inputs (roadmap/process tables, netlists, layout cells)
//     hash their full content, not an identity or pointer.
//
// kKeySchemaVersion is the invalidation lever: bump it whenever any
// kernel changes observable output (a new RNG consumption order, a
// reassociated reduction, a changed default), and every old key -- in
// memory or on disk -- misses instead of serving stale bytes.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "nanocost/cache/hash.hpp"
#include "nanocost/core/risk.hpp"
#include "nanocost/core/transistor_cost.hpp"
#include "nanocost/fabsim/simulator.hpp"
#include "nanocost/layout/cell.hpp"
#include "nanocost/netlist/netlist.hpp"
#include "nanocost/place/placer.hpp"

namespace nanocost::cache {

// kKeySchemaVersion -- the invalidation lever described above -- lives
// in cache/hash.hpp next to the pinned hash construction, so the
// on-disk artifact tier (robust/artifact_store.hpp, below this module
// in the link order) can fold it into blob addresses too.

/// FNV-1a over the field tag; constexpr so tags cost nothing at runtime
/// when the compiler folds them.
[[nodiscard]] constexpr std::uint64_t tag_hash(std::string_view tag) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : tag) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Builds one canonical key.  Field order is part of the schema: append
/// fields in declaration order of the input struct.
class KeyBuilder final {
 public:
  /// `entry_point` names the computation (e.g. "core.monte_carlo_cost");
  /// two entry points never share keys even on identical inputs.
  explicit KeyBuilder(std::string_view entry_point) {
    hash_.update("NCKEY");
    hash_.update_u64(kKeySchemaVersion);
    hash_.update_u64(tag_hash(entry_point));
  }

  KeyBuilder& f64(std::string_view tag, double v) {
    field(kF64, tag);
    hash_.update_u64(std::bit_cast<std::uint64_t>(v));
    return *this;
  }
  KeyBuilder& u64(std::string_view tag, std::uint64_t v) {
    field(kU64, tag);
    hash_.update_u64(v);
    return *this;
  }
  KeyBuilder& i64(std::string_view tag, std::int64_t v) {
    field(kI64, tag);
    hash_.update_u64(static_cast<std::uint64_t>(v));
    return *this;
  }
  KeyBuilder& i32(std::string_view tag, std::int32_t v) {
    field(kI32, tag);
    hash_.update_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
    return *this;
  }
  KeyBuilder& boolean(std::string_view tag, bool v) {
    field(kBool, tag);
    const std::uint8_t b = v ? 1 : 0;
    hash_.update(&b, 1);
    return *this;
  }
  KeyBuilder& str(std::string_view tag, std::string_view v) {
    field(kStr, tag);
    hash_.update_u64(v.size());
    hash_.update(v);
    return *this;
  }
  /// Embeds a sub-digest (e.g. a recursively hashed layout cell).
  KeyBuilder& sub(std::string_view tag, const Digest128& d) {
    field(kSub, tag);
    hash_.update_u64(d.hi);
    hash_.update_u64(d.lo);
    return *this;
  }

  [[nodiscard]] Digest128 digest() const { return hash_.digest(); }

 private:
  enum TypeCode : std::uint8_t { kF64 = 1, kU64, kI64, kI32, kBool, kStr, kSub };

  void field(TypeCode code, std::string_view tag) {
    const auto c = static_cast<std::uint8_t>(code);
    hash_.update(&c, 1);
    hash_.update_u64(tag_hash(tag));
  }

  Hash128 hash_;
};

// ---- Entry-point keys ---------------------------------------------------
// One function per deterministic entry point; each hashes the complete
// input closure of the computation (config structs recursively, tables
// and netlists by content).

/// eq. (4) log sweep: core::sweep_eq4.
[[nodiscard]] Digest128 sweep_eq4_key(const core::Eq4Inputs& inputs, double lo, double hi,
                                      int steps);

/// Monte-Carlo risk propagation: core::monte_carlo_cost.
[[nodiscard]] Digest128 monte_carlo_cost_key(const core::UncertainInputs& inputs, double s_d,
                                             int samples, std::uint64_t seed,
                                             double die_budget);

/// Robust density sweep: core::robust_sd.
[[nodiscard]] Digest128 robust_sd_key(const core::UncertainInputs& inputs, double quantile,
                                      double lo, double hi, int steps, int samples,
                                      std::uint64_t seed);

/// Fabline lot simulation: fabsim::FabSimulator::run.  Hashes the full
/// simulator configuration (wafer, die, size distribution, defect
/// field, representative pattern) plus the run shape.
[[nodiscard]] Digest128 fabsim_run_key(const fabsim::FabSimulator& sim, std::int64_t n_wafers,
                                       std::uint64_t seed);

/// Multi-start annealing: place::anneal_place_multistart.  The netlist
/// hashes by content (gates, connectivity), not identity.
[[nodiscard]] Digest128 anneal_place_multistart_key(const netlist::Netlist& netlist,
                                                    std::int32_t rows, std::int32_t cols,
                                                    std::int32_t starts,
                                                    const place::AnnealParams& params);

/// Regularity window sweep: regularity::sweep_windows.  The cell
/// hierarchy hashes recursively by content (rects + instances), with
/// shared sub-cells hashed once.
[[nodiscard]] Digest128 window_sweep_key(const layout::Cell& top, std::int64_t min_window,
                                         int steps, bool orientation_invariant);

/// Content digest of a layout cell hierarchy (exposed for reuse and for
/// the golden-vector tests).
[[nodiscard]] Digest128 cell_content_digest(const layout::Cell& cell);

/// Content digest of a netlist (exposed for the golden-vector tests).
[[nodiscard]] Digest128 netlist_content_digest(const netlist::Netlist& netlist);

}  // namespace nanocost::cache
