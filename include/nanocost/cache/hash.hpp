// In-repo 128-bit content hash for cache keys and artifact addresses.
//
// Cache correctness in this codebase rests on "equal inputs collide by
// construction": two processes (possibly on different machines) must
// derive the same digest from the same canonical byte serialization,
// forever.  That rules out std::hash (unspecified, per-process) and any
// third-party dependency; instead we pin the exact MurmurHash3-style
// x64/128 construction below as part of the repository's on-disk
// format, golden-vectored by tests/cache_test.cpp so an accidental
// change to the mixing breaks loudly instead of silently orphaning
// every stored artifact.
//
// Header-only and dependency-free on purpose: the low-level stores
// (robust/artifact_store.hpp) sit below the cache module in the link
// order and still need Digest128.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace nanocost::cache {

/// Version of the key schema *and* of the kernels' observable outputs.
/// Every digest-derived address (cache keys, artifact-blob chunk keys)
/// folds this in; bump it whenever any kernel changes observable output
/// (a new RNG consumption order, a reassociated reduction, a changed
/// default) and every old key -- in memory or on disk -- misses instead
/// of serving stale bytes.  See cache/key.hpp for the full
/// canonicalization and invalidation policy.
inline constexpr std::uint32_t kKeySchemaVersion = 1;

/// A 128-bit digest.  Ordered and hashable so it can key maps directly.
struct Digest128 final {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] friend constexpr bool operator==(Digest128, Digest128) noexcept = default;
  [[nodiscard]] friend constexpr auto operator<=>(Digest128, Digest128) noexcept = default;

  /// Lowercase fixed-width hex, hi first: the artifact filename form.
  [[nodiscard]] std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
      const std::uint64_t word = i < 8 ? hi : lo;
      const int shift = 8 * (7 - (i & 7));
      const auto byte = static_cast<unsigned>((word >> shift) & 0xFF);
      out[static_cast<std::size_t>(2 * i)] = kDigits[byte >> 4];
      out[static_cast<std::size_t>(2 * i + 1)] = kDigits[byte & 0xF];
    }
    return out;
  }
};

/// std::unordered_map adapter; the digest is already uniform, so the
/// hash is just a lane (mixed with the other so sharding on hi bits and
/// bucketing inside a shard stay independent).
struct DigestHash final {
  [[nodiscard]] std::size_t operator()(const Digest128& d) const noexcept {
    return static_cast<std::size_t>(d.lo ^ (d.hi * 0x9E3779B97F4A7C15ULL));
  }
};

namespace detail {

[[nodiscard]] constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

/// The x64 finalizer: full avalanche over one word.
[[nodiscard]] constexpr std::uint64_t fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace detail

/// Incremental 128-bit hash (the MurmurHash3 x64/128 construction with
/// a fixed seed).  Feed bytes in any increments; the digest depends
/// only on the concatenated byte stream.
class Hash128 final {
 public:
  Hash128() = default;

  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    total_ += n;
    // Top up a partial 16-byte block first.
    if (pending_ > 0) {
      const std::size_t need = 16 - pending_;
      const std::size_t take = n < need ? n : need;
      std::memcpy(block_ + pending_, p, take);
      pending_ += take;
      p += take;
      n -= take;
      if (pending_ == 16) {
        mix_block(block_);
        pending_ = 0;
      }
    }
    while (n >= 16) {
      mix_block(p);
      p += 16;
      n -= 16;
    }
    if (n > 0) {
      std::memcpy(block_, p, n);
      pending_ = n;
    }
  }

  void update(std::string_view s) { update(s.data(), s.size()); }

  void update_u64(std::uint64_t v) {
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    update(buf, 8);
  }

  /// Digest of everything fed so far; the hasher itself is unchanged,
  /// so callers may keep appending after peeking.
  [[nodiscard]] Digest128 digest() const {
    std::uint64_t h1 = h1_;
    std::uint64_t h2 = h2_;
    // Tail: the pending partial block, zero-padded by construction.
    std::uint64_t k1 = 0;
    std::uint64_t k2 = 0;
    for (std::size_t i = 0; i < pending_; ++i) {
      const auto b = static_cast<std::uint64_t>(block_[i]);
      if (i < 8) {
        k1 |= b << (8 * i);
      } else {
        k2 |= b << (8 * (i - 8));
      }
    }
    if (pending_ > 8) {
      k2 *= kC2;
      k2 = detail::rotl64(k2, 33);
      k2 *= kC1;
      h2 ^= k2;
    }
    if (pending_ > 0) {
      k1 *= kC1;
      k1 = detail::rotl64(k1, 31);
      k1 *= kC2;
      h1 ^= k1;
    }
    h1 ^= total_;
    h2 ^= total_;
    h1 += h2;
    h2 += h1;
    h1 = detail::fmix64(h1);
    h2 = detail::fmix64(h2);
    h1 += h2;
    h2 += h1;
    return Digest128{h1, h2};
  }

 private:
  static constexpr std::uint64_t kC1 = 0x87C37B91114253D5ULL;
  static constexpr std::uint64_t kC2 = 0x4CF5AD432745937FULL;
  /// Fixed seed: part of the pinned format (never change without
  /// bumping the key schema version in cache/key.hpp).
  static constexpr std::uint64_t kSeed = 0x6E616E6F636F7374ULL;  // "nanocost"

  void mix_block(const std::uint8_t* p) noexcept {
    std::uint64_t k1 = 0;
    std::uint64_t k2 = 0;
    for (int i = 0; i < 8; ++i) {
      k1 |= static_cast<std::uint64_t>(p[i]) << (8 * i);
      k2 |= static_cast<std::uint64_t>(p[8 + i]) << (8 * i);
    }
    k1 *= kC1;
    k1 = detail::rotl64(k1, 31);
    k1 *= kC2;
    h1_ ^= k1;
    h1_ = detail::rotl64(h1_, 27);
    h1_ += h2_;
    h1_ = h1_ * 5 + 0x52DCE729;
    k2 *= kC2;
    k2 = detail::rotl64(k2, 33);
    k2 *= kC1;
    h2_ ^= k2;
    h2_ = detail::rotl64(h2_, 31);
    h2_ += h1_;
    h2_ = h2_ * 5 + 0x38495AB5;
  }

  std::uint64_t h1_ = kSeed;
  std::uint64_t h2_ = kSeed;
  std::uint64_t total_ = 0;
  std::uint8_t block_[16] = {};
  std::size_t pending_ = 0;
};

/// One-shot convenience.
[[nodiscard]] inline Digest128 hash128(const void* data, std::size_t n) {
  Hash128 h;
  h.update(data, n);
  return h.digest();
}

[[nodiscard]] inline Digest128 hash128(std::string_view s) {
  return hash128(s.data(), s.size());
}

}  // namespace nanocost::cache
