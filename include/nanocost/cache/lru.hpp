// Sharded in-memory LRU result cache.
//
// Values are opaque encoded byte blobs (cache/codec.hpp) keyed by the
// canonical 128-bit parameter digest (cache/key.hpp).  Concurrency is
// handled by mutex striping: the key's high lane selects one of N
// shards, each a classic list+map LRU under its own mutex, so parallel
// lookups of unrelated keys never contend.  Eviction is byte-budgeted
// per shard (budget / shards), oldest first; a blob larger than a
// shard's budget is simply not cached.
//
// Hit/miss/insert/evict counters are relaxed atomics -- they are
// monotonic telemetry, not synchronization -- and are exact: every
// lookup bumps exactly one of hits/misses, every accepted insert bumps
// insertions, every removal for space bumps evictions (verified under
// TSan by tests/cache_test.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "nanocost/cache/hash.hpp"

namespace nanocost::cache {

/// Exact point-in-time counter snapshot.
struct CacheStats final {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;     ///< payload bytes currently resident
  std::uint64_t entries = 0;   ///< entries currently resident
};

class ShardedLruCache final {
 public:
  /// `byte_budget` caps the total payload bytes across all shards;
  /// `shards` is rounded up to a power of two.
  explicit ShardedLruCache(std::size_t byte_budget, std::size_t shards = 16);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Copies the blob into `out` and promotes the entry to
  /// most-recently-used.  Exactly one of hits/misses increments.
  [[nodiscard]] bool lookup(const Digest128& key, std::vector<std::uint8_t>& out);

  /// Inserts (or refreshes) `blob` under `key`, evicting oldest entries
  /// until the shard fits its budget.  Oversized blobs are rejected
  /// without counting as insertions.
  void insert(const Digest128& key, const std::vector<std::uint8_t>& blob);

  /// Drops every entry; counters are preserved.
  void clear();

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t byte_budget() const noexcept { return byte_budget_; }

 private:
  struct Entry {
    Digest128 key;
    std::vector<std::uint8_t> blob;
  };
  /// One stripe: LRU list (front = most recent) + index into it.
  struct Shard {
    std::mutex mutex;
    std::list<Entry> order;
    std::unordered_map<Digest128, std::list<Entry>::iterator, DigestHash> index;
    std::size_t bytes = 0;
  };

  [[nodiscard]] Shard& shard_for(const Digest128& key) noexcept {
    // hi is already uniform; mask selects the stripe.
    return *shards_[static_cast<std::size_t>(key.hi) & shard_mask_];
  }
  [[nodiscard]] const Shard& shard_for(const Digest128& key) const noexcept {
    return *shards_[static_cast<std::size_t>(key.hi) & shard_mask_];
  }

  std::size_t byte_budget_;
  std::size_t shard_budget_;
  std::size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// The process-wide result cache behind the *_cached entry points.
/// 64 MiB default budget -- comfortably holds every result this
/// repository's workloads produce while staying irrelevant next to the
/// working sets of the computations themselves.
[[nodiscard]] ShardedLruCache& global_result_cache();

}  // namespace nanocost::cache
