// Byte codec for cached results.
//
// Cached values travel as flat little-endian byte blobs -- through the
// in-memory LRU and the on-disk artifact tier alike -- because the
// result structs hold std::vectors and unit wrappers whose in-memory
// representation is neither contiguous nor portable.  The encoding is
// the identity on information: decode(encode(r)) reproduces r field
// for field, floats by IEEE bit pattern, so "cache hit equals cold
// recompute" can be checked by memcmp on encoded bytes
// (tests/cache_test.cpp does exactly that).
//
// Layout per type: fields in struct declaration order; f64 by bit
// pattern, integers little-endian fixed-width, vectors as u64 length
// followed by elements.  The encoding is versioned implicitly through
// cache/key.hpp's kKeySchemaVersion -- keys and blobs invalidate
// together.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nanocost/core/optimizer.hpp"
#include "nanocost/core/risk.hpp"
#include "nanocost/fabsim/simulator.hpp"
#include "nanocost/place/placer.hpp"
#include "nanocost/regularity/window_sweep.hpp"

namespace nanocost::cache {

/// Appends little-endian fields to a growing byte vector.
class ByteWriter final {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void f64(double v);
  /// u64 length followed by the raw bytes.
  void bytes(const std::vector<std::uint8_t>& v);
  /// u64 length followed by the raw characters.
  void str(std::string_view v);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Reads the writer's format back; throws std::runtime_error on
/// truncation or trailing garbage (a malformed blob must never decode
/// silently).
class ByteReader final {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& blob) : blob_(blob) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(i64()); }
  [[nodiscard]] double f64();
  /// Counterpart of ByteWriter::bytes(); the declared length is
  /// validated against the bytes remaining before any allocation, so a
  /// corrupted length field throws instead of driving a giant reserve.
  [[nodiscard]] std::vector<std::uint8_t> bytes();
  /// Counterpart of ByteWriter::str(), with the same length validation.
  [[nodiscard]] std::string str();

  /// Throws unless every byte was consumed.
  void expect_end() const;

 private:
  const std::vector<std::uint8_t>& blob_;
  std::size_t pos_ = 0;
};

// ---- Result codecs ------------------------------------------------------
// One encode/decode pair per cached entry-point result type.

[[nodiscard]] std::vector<std::uint8_t> encode(const core::RiskResult& r);
[[nodiscard]] core::RiskResult decode_risk_result(const std::vector<std::uint8_t>& blob);

[[nodiscard]] std::vector<std::uint8_t> encode(const core::RobustOptimum& r);
[[nodiscard]] core::RobustOptimum decode_robust_optimum(const std::vector<std::uint8_t>& blob);

[[nodiscard]] std::vector<std::uint8_t> encode(const std::vector<core::SweepPoint>& r);
[[nodiscard]] std::vector<core::SweepPoint> decode_sweep_points(
    const std::vector<std::uint8_t>& blob);

[[nodiscard]] std::vector<std::uint8_t> encode(
    const std::vector<regularity::WindowSweepPoint>& r);
[[nodiscard]] std::vector<regularity::WindowSweepPoint> decode_window_sweep_points(
    const std::vector<std::uint8_t>& blob);

[[nodiscard]] std::vector<std::uint8_t> encode(const fabsim::LotResult& r);
[[nodiscard]] fabsim::LotResult decode_lot_result(const std::vector<std::uint8_t>& blob);

[[nodiscard]] std::vector<std::uint8_t> encode(const place::MultistartResult& r);
[[nodiscard]] place::MultistartResult decode_multistart_result(
    const std::vector<std::uint8_t>& blob);

}  // namespace nanocost::cache
