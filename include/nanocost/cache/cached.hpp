// Cached spellings of the deterministic entry points.
//
// Each *_cached function is observably identical to its plain
// counterpart -- PRs 1-6 made every one of these a pure function of
// its inputs, bitwise invariant under thread count and SIMD level, so
// a hit can return the memoized bytes without qualifying the answer.
// Keys come from cache/key.hpp (and deliberately exclude the thread
// pool and SIMD level: they do not shape the result); values round-trip
// through cache/codec.hpp and live in the process-wide sharded LRU
// (cache/lru.hpp).
//
// On a miss the plain function runs (on the caller's pool as usual),
// the encoded result is inserted, and the *computed* value is returned
// directly -- a miss is never slower than the uncached call by more
// than the encode.  Telemetry: cache.hits / cache.misses /
// cache.insert_bytes counters, and a "cache.lookup" span when tracing.
#pragma once

#include <cstdint>
#include <vector>

#include "nanocost/core/optimizer.hpp"
#include "nanocost/core/risk.hpp"
#include "nanocost/fabsim/simulator.hpp"
#include "nanocost/place/placer.hpp"
#include "nanocost/regularity/window_sweep.hpp"

namespace nanocost::exec {
class ThreadPool;
}

namespace nanocost::cache {

/// core::sweep_eq4, memoized.
[[nodiscard]] std::vector<core::SweepPoint> sweep_eq4_cached(const core::Eq4Inputs& inputs,
                                                             double lo, double hi, int steps,
                                                             exec::ThreadPool* pool = nullptr);

/// core::monte_carlo_cost, memoized.
[[nodiscard]] core::RiskResult monte_carlo_cost_cached(const core::UncertainInputs& inputs,
                                                       double s_d, int samples = 4000,
                                                       std::uint64_t seed = 1,
                                                       double die_budget = 0.0,
                                                       exec::ThreadPool* pool = nullptr);

/// core::robust_sd, memoized.
[[nodiscard]] core::RobustOptimum robust_sd_cached(const core::UncertainInputs& inputs,
                                                   double quantile, double lo, double hi,
                                                   int steps, int samples = 2000,
                                                   std::uint64_t seed = 1,
                                                   exec::ThreadPool* pool = nullptr);

/// regularity::sweep_windows, memoized (the cell hashes by content).
[[nodiscard]] std::vector<regularity::WindowSweepPoint> sweep_windows_cached(
    const layout::Cell& top, layout::Coord min_window, int steps,
    bool orientation_invariant = false, exec::ThreadPool* pool = nullptr);

/// fabsim::FabSimulator::run, memoized (the simulator hashes by
/// configuration content).
[[nodiscard]] fabsim::LotResult fabsim_run_cached(const fabsim::FabSimulator& sim,
                                                  std::int64_t n_wafers,
                                                  std::uint64_t seed = 42,
                                                  exec::ThreadPool* pool = nullptr);

/// place::anneal_place_multistart, memoized (the netlist hashes by
/// content).
[[nodiscard]] place::MultistartResult anneal_place_multistart_cached(
    const netlist::Netlist& netlist, std::int32_t rows, std::int32_t cols,
    std::int32_t starts, const place::AnnealParams& params = {},
    exec::ThreadPool* pool = nullptr);

}  // namespace nanocost::cache
