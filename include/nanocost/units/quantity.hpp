// Strong scalar-quantity base for physical and economic units.
//
// Every model parameter in this library (lengths, areas, dollars, yields)
// is a distinct C++ type so that, e.g., a wafer cost can never be passed
// where a per-area cost is expected.  The paper's cost formulas mix units
// that are numerically close (dollars, $/cm^2, squares/transistor), which
// makes this worth the small ceremony.
#pragma once

#include <cmath>
#include <compare>
#include <stdexcept>
#include <string>

namespace nanocost::units {

/// CRTP base providing value storage, comparison and same-type linear
/// arithmetic for a strong scalar quantity.
///
/// Derived types get: +, -, unary -, scalar * and /, compound ops,
/// three-way comparison, and a `value()` accessor.  Cross-type products
/// (length*length -> area, area * $/area -> $) are declared next to the
/// types they involve, never here.
template <typename Derived>
class Quantity {
 public:
  constexpr Quantity() noexcept = default;
  constexpr explicit Quantity(double v) noexcept : value_(v) {}

  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  [[nodiscard]] friend constexpr Derived operator+(Derived a, Derived b) noexcept {
    return Derived{a.value_ + b.value_};
  }
  [[nodiscard]] friend constexpr Derived operator-(Derived a, Derived b) noexcept {
    return Derived{a.value_ - b.value_};
  }
  [[nodiscard]] friend constexpr Derived operator-(Derived a) noexcept {
    return Derived{-a.value_};
  }
  [[nodiscard]] friend constexpr Derived operator*(Derived a, double k) noexcept {
    return Derived{a.value_ * k};
  }
  [[nodiscard]] friend constexpr Derived operator*(double k, Derived a) noexcept {
    return Derived{k * a.value_};
  }
  [[nodiscard]] friend constexpr Derived operator/(Derived a, double k) {
    return Derived{a.value_ / k};
  }
  /// Ratio of two same-unit quantities is dimensionless.
  [[nodiscard]] friend constexpr double operator/(Derived a, Derived b) {
    return a.value_ / b.value_;
  }

  friend constexpr Derived& operator+=(Derived& a, Derived b) noexcept {
    a.value_ += b.value_;
    return a;
  }
  friend constexpr Derived& operator-=(Derived& a, Derived b) noexcept {
    a.value_ -= b.value_;
    return a;
  }
  friend constexpr Derived& operator*=(Derived& a, double k) noexcept {
    a.value_ *= k;
    return a;
  }
  friend constexpr Derived& operator/=(Derived& a, double k) {
    a.value_ /= k;
    return a;
  }

  [[nodiscard]] friend constexpr auto operator<=>(Derived a, Derived b) noexcept {
    return a.value_ <=> b.value_;
  }
  [[nodiscard]] friend constexpr bool operator==(Derived a, Derived b) noexcept {
    return a.value_ == b.value_;
  }

  [[nodiscard]] constexpr bool is_finite() const noexcept { return std::isfinite(value_); }
  [[nodiscard]] constexpr bool is_positive() const noexcept { return value_ > 0.0; }
  [[nodiscard]] constexpr bool is_non_negative() const noexcept { return value_ >= 0.0; }

 protected:
  double value_ = 0.0;
};

/// Throws std::domain_error unless `q` is finite and strictly positive.
/// `what` names the offending parameter in the exception message.
template <typename Derived>
constexpr const Derived& require_positive(const Derived& q, const char* what) {
  if (!(q.is_finite() && q.is_positive())) {
    throw std::domain_error(std::string(what) + " must be finite and > 0, got " +
                            std::to_string(q.value()));
  }
  return q;
}

/// Throws std::domain_error unless `q` is finite and >= 0.
template <typename Derived>
constexpr const Derived& require_non_negative(const Derived& q, const char* what) {
  if (!(q.is_finite() && q.is_non_negative())) {
    throw std::domain_error(std::string(what) + " must be finite and >= 0, got " +
                            std::to_string(q.value()));
  }
  return q;
}

/// Plain-double validators used by models whose tuning exponents are
/// intentionally dimensionless.
inline double require_positive(double v, const char* what) {
  if (!(std::isfinite(v) && v > 0.0)) {
    throw std::domain_error(std::string(what) + " must be finite and > 0, got " +
                            std::to_string(v));
  }
  return v;
}

inline double require_non_negative(double v, const char* what) {
  if (!(std::isfinite(v) && v >= 0.0)) {
    throw std::domain_error(std::string(what) + " must be finite and >= 0, got " +
                            std::to_string(v));
  }
  return v;
}

}  // namespace nanocost::units
