// Length units.  IC geometry mixes three natural scales: nanometers for
// feature sizes on a roadmap, micrometers for drawn geometry, and
// centimeters/millimeters for dice and wafers.  Each is a distinct strong
// type with explicit, exact conversions.
#pragma once

#include "nanocost/units/quantity.hpp"

namespace nanocost::units {

class Micrometers;
class Centimeters;
class Millimeters;

/// Feature-size scale length (roadmap nodes: 180 nm, 130 nm, ...).
class Nanometers final : public Quantity<Nanometers> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr Micrometers to_micrometers() const noexcept;
  [[nodiscard]] constexpr Centimeters to_centimeters() const noexcept;
};

/// Drawn-geometry scale length (minimum feature size lambda in the paper
/// is quoted in micrometers, e.g. 0.25 um).
class Micrometers final : public Quantity<Micrometers> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr Nanometers to_nanometers() const noexcept;
  [[nodiscard]] constexpr Centimeters to_centimeters() const noexcept;
  [[nodiscard]] constexpr Millimeters to_millimeters() const noexcept;
};

/// Die-edge / wafer scale length.
class Millimeters final : public Quantity<Millimeters> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr Centimeters to_centimeters() const noexcept;
  [[nodiscard]] constexpr Micrometers to_micrometers() const noexcept;
};

/// Wafer scale length; the paper quotes areas in cm^2.
class Centimeters final : public Quantity<Centimeters> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr Micrometers to_micrometers() const noexcept;
  [[nodiscard]] constexpr Millimeters to_millimeters() const noexcept;
};

constexpr Micrometers Nanometers::to_micrometers() const noexcept {
  return Micrometers{value_ * 1e-3};
}
constexpr Centimeters Nanometers::to_centimeters() const noexcept {
  return Centimeters{value_ * 1e-7};
}
constexpr Nanometers Micrometers::to_nanometers() const noexcept {
  return Nanometers{value_ * 1e3};
}
constexpr Centimeters Micrometers::to_centimeters() const noexcept {
  return Centimeters{value_ * 1e-4};
}
constexpr Millimeters Micrometers::to_millimeters() const noexcept {
  return Millimeters{value_ * 1e-3};
}
constexpr Centimeters Millimeters::to_centimeters() const noexcept {
  return Centimeters{value_ * 1e-1};
}
constexpr Micrometers Millimeters::to_micrometers() const noexcept {
  return Micrometers{value_ * 1e3};
}
constexpr Micrometers Centimeters::to_micrometers() const noexcept {
  return Micrometers{value_ * 1e4};
}
constexpr Millimeters Centimeters::to_millimeters() const noexcept {
  return Millimeters{value_ * 1e1};
}

namespace literals {
constexpr Nanometers operator""_nm(long double v) { return Nanometers{static_cast<double>(v)}; }
constexpr Nanometers operator""_nm(unsigned long long v) {
  return Nanometers{static_cast<double>(v)};
}
constexpr Micrometers operator""_um(long double v) { return Micrometers{static_cast<double>(v)}; }
constexpr Micrometers operator""_um(unsigned long long v) {
  return Micrometers{static_cast<double>(v)};
}
constexpr Millimeters operator""_mm(long double v) { return Millimeters{static_cast<double>(v)}; }
constexpr Millimeters operator""_mm(unsigned long long v) {
  return Millimeters{static_cast<double>(v)};
}
constexpr Centimeters operator""_cm(long double v) { return Centimeters{static_cast<double>(v)}; }
constexpr Centimeters operator""_cm(unsigned long long v) {
  return Centimeters{static_cast<double>(v)};
}
}  // namespace literals

}  // namespace nanocost::units
