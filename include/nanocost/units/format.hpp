// Human-readable formatting for quantities in reports and benches.
#pragma once

#include <string>

#include "nanocost/units/area.hpp"
#include "nanocost/units/length.hpp"
#include "nanocost/units/money.hpp"
#include "nanocost/units/probability.hpp"

namespace nanocost::units {

/// "1.23e-05 $" style for tiny per-transistor costs, "$12.3M" for NRE.
[[nodiscard]] std::string format_money(Money m);

/// Fixed-point with `digits` decimals; no unit suffix.
[[nodiscard]] std::string format_fixed(double v, int digits);

/// Scientific with `digits` significant decimals, e.g. "3.142e-07".
[[nodiscard]] std::string format_sci(double v, int digits);

/// "0.25 um" / "180 nm" -- picks nm below 1 um.
[[nodiscard]] std::string format_feature_size(Micrometers lambda);

/// "1.95 cm^2".
[[nodiscard]] std::string format_area(SquareCentimeters a);

/// "87.3%".
[[nodiscard]] std::string format_percent(Probability p);

/// Engineering notation with SI suffix: 12500000 -> "12.5M".
[[nodiscard]] std::string format_si(double v);

}  // namespace nanocost::units
