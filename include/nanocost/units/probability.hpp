// Probability: a double constrained to [0, 1], used for yields,
// utilization factors, and coverage fractions.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

namespace nanocost::units {

/// A value in [0, 1].  Construction validates; arithmetic that could
/// leave the interval is deliberately not provided -- compose via
/// `value()` and re-wrap, so every re-entry into the type is re-checked.
class Probability final {
 public:
  constexpr Probability() noexcept = default;

  constexpr explicit Probability(double v) : value_(v) {
    if (!(std::isfinite(v) && v >= 0.0 && v <= 1.0)) {
      throw std::domain_error("Probability must lie in [0,1], got " + std::to_string(v));
    }
  }

  /// Clamps instead of throwing; for numerical tails of otherwise-valid
  /// model output (e.g. exp(-x) rounding to 1 + 1e-17).
  [[nodiscard]] static Probability clamped(double v) noexcept {
    if (!(v > 0.0)) return Probability{};      // also maps NaN to 0
    if (v > 1.0) v = 1.0;
    Probability p;
    p.value_ = v;
    return p;
  }

  [[nodiscard]] constexpr double value() const noexcept { return value_; }
  [[nodiscard]] constexpr Probability complement() const noexcept {
    Probability p;
    p.value_ = 1.0 - value_;
    return p;
  }

  /// Product of probabilities (independent events) stays in [0,1].
  [[nodiscard]] friend constexpr Probability operator*(Probability a, Probability b) noexcept {
    Probability p;
    p.value_ = a.value_ * b.value_;
    return p;
  }

  [[nodiscard]] friend constexpr auto operator<=>(Probability a, Probability b) noexcept = default;

 private:
  double value_ = 0.0;
};

namespace literals {
inline Probability operator""_prob(long double v) { return Probability{static_cast<double>(v)}; }
}  // namespace literals

}  // namespace nanocost::units
