// Area units and the length*length products that produce them.
#pragma once

#include "nanocost/units/length.hpp"
#include "nanocost/units/quantity.hpp"

namespace nanocost::units {

class SquareCentimeters;

/// Drawn-geometry scale area.
class SquareMicrometers final : public Quantity<SquareMicrometers> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr SquareCentimeters to_square_centimeters() const noexcept;
};

/// Die/wafer scale area; the unit the paper's C_sq is normalized to.
class SquareCentimeters final : public Quantity<SquareCentimeters> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr SquareMicrometers to_square_micrometers() const noexcept;
};

constexpr SquareCentimeters SquareMicrometers::to_square_centimeters() const noexcept {
  return SquareCentimeters{value_ * 1e-8};
}
constexpr SquareMicrometers SquareCentimeters::to_square_micrometers() const noexcept {
  return SquareMicrometers{value_ * 1e8};
}

[[nodiscard]] constexpr SquareMicrometers operator*(Micrometers a, Micrometers b) noexcept {
  return SquareMicrometers{a.value() * b.value()};
}
[[nodiscard]] constexpr SquareCentimeters operator*(Centimeters a, Centimeters b) noexcept {
  return SquareCentimeters{a.value() * b.value()};
}
[[nodiscard]] constexpr SquareCentimeters operator*(Millimeters a, Millimeters b) noexcept {
  return SquareCentimeters{a.value() * b.value() * 1e-2};
}

/// Area of a lambda^2 square at feature size `lambda` -- the unit in which
/// the paper's design decompression index s_d counts layout area.
[[nodiscard]] constexpr SquareMicrometers lambda_square(Micrometers lambda) noexcept {
  return lambda * lambda;
}

namespace literals {
constexpr SquareCentimeters operator""_cm2(long double v) {
  return SquareCentimeters{static_cast<double>(v)};
}
constexpr SquareCentimeters operator""_cm2(unsigned long long v) {
  return SquareCentimeters{static_cast<double>(v)};
}
constexpr SquareMicrometers operator""_um2(long double v) {
  return SquareMicrometers{static_cast<double>(v)};
}
constexpr SquareMicrometers operator""_um2(unsigned long long v) {
  return SquareMicrometers{static_cast<double>(v)};
}
}  // namespace literals

}  // namespace nanocost::units
