// Economic units: absolute dollars and per-area dollar rates.
//
// The paper's models live at the interface of these two: wafer cost C_w
// and design/mask NRE (C_MA + C_DE) are Money; manufacturing cost per
// unit area Cm_sq and design cost per unit area Cd_sq are CostPerArea;
// their product with an area is Money again.
#pragma once

#include "nanocost/units/area.hpp"
#include "nanocost/units/quantity.hpp"

namespace nanocost::units {

/// Absolute US dollars (the paper's only currency).
class Money final : public Quantity<Money> {
 public:
  using Quantity::Quantity;
};

/// Dollars per square centimeter of fabricated silicon (the paper's
/// C_sq / Cm_sq / Cd_sq).
class CostPerArea final : public Quantity<CostPerArea> {
 public:
  using Quantity::Quantity;
};

[[nodiscard]] constexpr Money operator*(CostPerArea rate, SquareCentimeters area) noexcept {
  return Money{rate.value() * area.value()};
}
[[nodiscard]] constexpr Money operator*(SquareCentimeters area, CostPerArea rate) noexcept {
  return rate * area;
}
/// Amortizing an absolute cost over an area yields a per-area rate
/// (eq. (5): Cd_sq = (C_MA + C_DE) / (N_w * A_w)).
[[nodiscard]] constexpr CostPerArea operator/(Money total, SquareCentimeters area) {
  return CostPerArea{total.value() / area.value()};
}

namespace literals {
constexpr Money operator""_usd(long double v) { return Money{static_cast<double>(v)}; }
constexpr Money operator""_usd(unsigned long long v) { return Money{static_cast<double>(v)}; }
constexpr CostPerArea operator""_usd_per_cm2(long double v) {
  return CostPerArea{static_cast<double>(v)};
}
constexpr CostPerArea operator""_usd_per_cm2(unsigned long long v) {
  return CostPerArea{static_cast<double>(v)};
}
}  // namespace literals

}  // namespace nanocost::units
