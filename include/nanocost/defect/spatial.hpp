// Spatial defect fields on a wafer.
//
// Supplies the Monte-Carlo fab simulator with defect positions.  Two
// regimes matter for yield statistics:
//   - a homogeneous Poisson field      -> die-level Poisson yield
//   - a gamma-mixed (clustered) field  -> die-level negative-binomial
//     yield with clustering parameter alpha
// plus an optional radial profile (defect density rising toward the
// wafer edge), the mechanism behind radial yield models.
#pragma once

#include <cstddef>
#include <random>
#include <vector>

#include "nanocost/defect/size_distribution.hpp"
#include "nanocost/exec/rng.hpp"
#include "nanocost/exec/simd.hpp"
#include "nanocost/geometry/wafer.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::defect {

/// One defect on the wafer plane (positions relative to wafer center).
struct Defect final {
  units::Millimeters x{};
  units::Millimeters y{};
  units::Micrometers size{};
};

/// Structure-of-arrays defect population: the batched fab-simulator
/// pipeline streams positions and sizes through contiguous lanes
/// instead of hopping across Defect structs.  Parallel arrays, always
/// equal length.
struct DefectSoA final {
  std::vector<double> x_mm;
  std::vector<double> y_mm;
  std::vector<double> size_um;

  [[nodiscard]] std::size_t size() const noexcept { return x_mm.size(); }
  void clear() noexcept {
    x_mm.clear();
    y_mm.clear();
    size_um.clear();
  }
};

/// Radial modulation of defect density: multiplier(r) = 1 + edge_boost *
/// (r/R)^sharpness, normalized so the wafer-average multiplier is 1.
class RadialProfile final {
 public:
  RadialProfile() = default;  ///< flat profile
  RadialProfile(double edge_boost, double sharpness);

  /// Density multiplier at normalized radius u = r/R in [0, 1].
  [[nodiscard]] double multiplier(double u) const noexcept;
  [[nodiscard]] bool is_flat() const noexcept { return edge_boost_ == 0.0; }
  [[nodiscard]] double edge_boost() const noexcept { return edge_boost_; }
  [[nodiscard]] double sharpness() const noexcept { return sharpness_; }

 private:
  double edge_boost_ = 0.0;
  double sharpness_ = 2.0;
  double norm_ = 1.0;  // normalizes the area-weighted mean multiplier to 1
};

/// Parameters of a wafer defect field.
struct DefectFieldParams final {
  /// Mean defect density over the wafer, defects per cm^2.
  double density_per_cm2 = 0.5;
  /// Negative-binomial clustering parameter; +infinity (or <= 0 treated
  /// as infinity is NOT allowed -- use `clustered = false`) gives pure
  /// Poisson.  Smaller alpha = heavier wafer-to-wafer clustering.
  double cluster_alpha = 2.0;
  bool clustered = false;
  RadialProfile radial{};
};

/// Samples complete defect populations for one wafer at a time.
class DefectField final {
 public:
  DefectField(const geometry::WaferSpec& wafer, const DefectSizeDistribution& sizes,
              DefectFieldParams params);

  /// Expected defect count per wafer (over full wafer area).
  [[nodiscard]] double expected_count() const noexcept;

  /// Sample one wafer's defects.  With clustering enabled, first draws a
  /// wafer-level gamma multiplier (shape alpha, mean 1), realizing the
  /// gamma-mixed Poisson that yields negative-binomial die statistics.
  [[nodiscard]] std::vector<Defect> sample_wafer(std::mt19937_64& rng) const;

  /// Same draw, but reusing `out` as the defect buffer (cleared, then
  /// filled) -- avoids one allocation per wafer in lot-scale simulation.
  void sample_wafer(std::mt19937_64& rng, std::vector<Defect>& out) const;

  /// SoA wafer draw on the counter-based exec stream.  Positions come
  /// from square rejection against the disc (flat radial profile) with
  /// the candidate uniforms drawn through the vectorized rng_batch
  /// path, or from the scalar envelope rejection (radial profile); the
  /// size column runs through DefectSizeDistribution::sample_batch_at.
  /// Bitwise identical -- values and stream consumption -- at every
  /// SimdLevel (simd_parity_test).
  void sample_wafer(exec::SplitMix64& rng, DefectSoA& out) const;
  void sample_wafer_at(exec::SimdLevel level, exec::SplitMix64& rng, DefectSoA& out) const;

  [[nodiscard]] const DefectFieldParams& params() const noexcept { return params_; }

 private:
  geometry::WaferSpec wafer_;
  DefectSizeDistribution sizes_;
  DefectFieldParams params_;

  /// Rejection-samples a position honoring the radial profile.
  void sample_position(std::mt19937_64& rng, Defect& d) const;
};

}  // namespace nanocost::defect
