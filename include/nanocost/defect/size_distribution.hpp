// Defect size distribution.
//
// The standard particle-size model used in yield analysis (Stapper; also
// the basis of Maly's critical-area work, refs [31],[32] of the paper):
// density rises ~x below a peak size x0 and falls ~1/x^3 above it.
//
//   f(x) = c * x / x0^2          for xmin <= x < x0
//   f(x) = c * x0 / x^3          ... wait -- see implementation notes:
//
// We use the continuous two-branch form
//   f(x) ∝ x / x0^2        (x < x0)
//   f(x) ∝ x0^(q-2) / x^q  (x >= x0),  q = 3 by default
// normalized over [xmin, xmax].
#pragma once

#include <cstddef>
#include <random>

#include "nanocost/exec/rng.hpp"
#include "nanocost/exec/simd.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::defect {

/// Two-branch power-law defect size distribution.
class DefectSizeDistribution final {
 public:
  /// `peak` is the most-likely defect size x0 (typically near the minimum
  /// feature size); `q` is the tail exponent (classically 3).  Support is
  /// [xmin, xmax]; sizes outside are never generated.
  DefectSizeDistribution(units::Micrometers xmin, units::Micrometers peak,
                         units::Micrometers xmax, double q = 3.0);

  /// Period-typical distribution for a process at feature size lambda:
  /// support [lambda/2, 100*lambda], peak at lambda, cubic tail.
  [[nodiscard]] static DefectSizeDistribution for_feature_size(units::Micrometers lambda);

  [[nodiscard]] units::Micrometers xmin() const noexcept { return xmin_; }
  [[nodiscard]] units::Micrometers peak() const noexcept { return peak_; }
  [[nodiscard]] units::Micrometers xmax() const noexcept { return xmax_; }
  [[nodiscard]] double tail_exponent() const noexcept { return q_; }

  /// Probability density at size x (0 outside the support).
  [[nodiscard]] double pdf(units::Micrometers x) const noexcept;
  /// Cumulative distribution P(size <= x).
  [[nodiscard]] double cdf(units::Micrometers x) const noexcept;
  /// Mean defect size.
  [[nodiscard]] units::Micrometers mean() const noexcept;

  /// Inverse-CDF sampling.
  [[nodiscard]] units::Micrometers sample(std::mt19937_64& rng) const;

  /// SoA inverse-CDF sampling: draws n uniforms from `rng` (the
  /// exec/rng.hpp stream) and fills out[0..n) with sizes in
  /// micrometers.  Same distribution as sample(), restructured around
  /// precomputed tail constants so the classic q = 3 tail inverts with
  /// one sqrt + one divide (IEEE-exact, hence vectorizable) instead of
  /// two pow() calls; general q falls back to scalar pow.  Bitwise
  /// identical at every SimdLevel (simd_parity_test).
  void sample_batch(exec::SplitMix64& rng, double* out, std::size_t n) const;
  void sample_batch_at(exec::SimdLevel level, exec::SplitMix64& rng, double* out,
                       std::size_t n) const;

 private:
  units::Micrometers xmin_;
  units::Micrometers peak_;
  units::Micrometers xmax_;
  double q_;
  // Precomputed normalization: f(x) = norm_ * branch(x).
  double norm_ = 0.0;
  double below_mass_ = 0.0;  // unnormalized mass of the rising branch
  double total_mass_ = 0.0;  // unnormalized total mass

  [[nodiscard]] double unnormalized_branch(double x) const noexcept;
  [[nodiscard]] double unnormalized_cdf(double x) const noexcept;
};

}  // namespace nanocost::defect
