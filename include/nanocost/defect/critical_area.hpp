// Critical area: the area in which the center of a defect of a given
// size causes a fault.  Evaluated for the canonical parallel-wire layout
// family (shorts between neighbours, opens along a wire), then averaged
// over a defect size distribution to obtain the average critical area
// that converts defect density into faults per die:
//
//   faults/die = D0 * A_crit_avg
//
// This is the quantity the yield models (Poisson, Murphy, negative
// binomial) exponentiate, and it is how design density s_d enters yield
// in the generalized model (7): denser layout => more critical area per
// cm^2.
#pragma once

#include "nanocost/defect/size_distribution.hpp"
#include "nanocost/units/area.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::defect {

/// A periodic parallel-wire pattern: `wire_count` wires of width `width`,
/// spacing `spacing`, running `length` long.  The workhorse abstraction
/// for interconnect critical-area analysis.
class WireArray final {
 public:
  WireArray(units::Micrometers width, units::Micrometers spacing, units::Micrometers length,
            int wire_count);

  [[nodiscard]] units::Micrometers width() const noexcept { return width_; }
  [[nodiscard]] units::Micrometers spacing() const noexcept { return spacing_; }
  [[nodiscard]] units::Micrometers length() const noexcept { return length_; }
  [[nodiscard]] int wire_count() const noexcept { return wire_count_; }
  [[nodiscard]] units::Micrometers pitch() const noexcept { return width_ + spacing_; }
  /// Bounding-box area of the pattern.
  [[nodiscard]] units::SquareMicrometers footprint() const noexcept;

  /// Critical area for *shorts* for a (circular) defect of diameter x:
  /// zero below the spacing, growing linearly, saturating when the defect
  /// spans multiple pitches (capped at the footprint).
  [[nodiscard]] units::SquareMicrometers short_critical_area(units::Micrometers x) const noexcept;

  /// Critical area for *opens* for a defect of diameter x: zero below the
  /// wire width, growing linearly, capped at the footprint.
  [[nodiscard]] units::SquareMicrometers open_critical_area(units::Micrometers x) const noexcept;

  /// Size-averaged critical area: integral of A_c(x) * f(x) dx over the
  /// distribution's support (composite Simpson on both branches).
  [[nodiscard]] units::SquareMicrometers average_short_critical_area(
      const DefectSizeDistribution& dist) const;
  [[nodiscard]] units::SquareMicrometers average_open_critical_area(
      const DefectSizeDistribution& dist) const;

 private:
  units::Micrometers width_;
  units::Micrometers spacing_;
  units::Micrometers length_;
  int wire_count_;
};

/// Dimensionless sensitivity of a layout style to defects: the ratio of
/// size-averaged critical area (shorts + opens) to layout footprint.
/// Denser styles (smaller s_d) have larger values.
[[nodiscard]] double critical_area_ratio(const WireArray& array,
                                         const DefectSizeDistribution& dist);

/// Model of how the critical-area ratio scales with design density.
/// A layout at decompression index s_d relative to a reference fabric at
/// s_ref has its wire spacing scaled by ~sqrt(s_d / s_ref); the returned
/// ratio feeds the Y(s_d) dependency of the paper's eq. (7).
[[nodiscard]] double density_scaled_critical_area_ratio(double s_d, double s_ref,
                                                        units::Micrometers lambda);

}  // namespace nanocost::defect
