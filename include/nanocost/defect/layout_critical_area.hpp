// Critical-area extraction from real layout geometry.
//
// The WireArray model (critical_area.hpp) prices an idealized pattern;
// this module walks an actual design: for every pair of same-layer
// shapes within interaction range, the short critical area is the
// parallel run length times the expected defect-size excess over their
// gap; for every shape, the open critical area is its length times the
// expected excess over its width.  Averaging over the defect size
// distribution uses a precomputed excess-integral table, so extraction
// is O(n) with a spatial hash -- practical for generated fabrics with
// millions of rectangles.
//
// This is the eq.-(7) Y(s_d, ...) dependency measured from geometry
// instead of modeled: denser layouts really do have more critical area.
#pragma once

#include <array>
#include <vector>

#include "nanocost/defect/size_distribution.hpp"
#include "nanocost/layout/design.hpp"
#include "nanocost/layout/types.hpp"

namespace nanocost::defect {

/// E[max(0, min(X - gap, cap))] over a defect size distribution,
/// tabulated for O(1) lookups.
class SizeExcessIntegral final {
 public:
  explicit SizeExcessIntegral(const DefectSizeDistribution& dist, int table_size = 512);

  /// Expected excess of the defect size over `gap`, capped at `cap`
  /// (micrometers in, micrometers out).
  [[nodiscard]] double operator()(double gap_um, double cap_um) const;

 private:
  [[nodiscard]] double excess(double gap_um) const;  // E[(X - g)+]
  std::vector<double> table_;  // excess at g = i * step_
  double step_ = 0.0;
  double xmax_ = 0.0;
};

/// Per-layer extraction result (areas in cm^2 over the whole design).
struct LayerCriticalArea final {
  layout::Layer layer = layout::Layer::kMetal1;
  double short_area_cm2 = 0.0;
  double open_area_cm2 = 0.0;
  std::int64_t shapes = 0;
  std::int64_t neighbor_pairs = 0;
};

struct LayoutCriticalArea final {
  std::vector<LayerCriticalArea> layers;
  double total_area_cm2 = 0.0;       ///< sum over layers, shorts + opens
  double bounding_box_cm2 = 0.0;
  /// The size-averaged critical-area fraction: multiply by defect
  /// density and die area... no -- multiply by defect density directly:
  /// faults = D0 * total_area_cm2.  The *ratio* to the bounding box is
  /// comparable to critical_area_ratio() of the WireArray model.
  [[nodiscard]] double ratio() const noexcept {
    return bounding_box_cm2 > 0.0 ? total_area_cm2 / bounding_box_cm2 : 0.0;
  }
};

/// Extracts short + open critical area from the flattened design, using
/// the given defect size distribution.  `interaction_lambda` bounds the
/// neighbor search (gaps larger than this many lambda contribute
/// negligibly under the cubic tail).
[[nodiscard]] LayoutCriticalArea extract_critical_area(const layout::Design& design,
                                                       const DefectSizeDistribution& dist,
                                                       double interaction_lambda = 8.0);

}  // namespace nanocost::defect
