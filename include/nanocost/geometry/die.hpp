// Die dimensions.
#pragma once

#include "nanocost/units/area.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::geometry {

/// Rectangular die outline (step size excludes the scribe street; the
/// street is a property of the wafer flow, see WaferSpec).
class DieSize final {
 public:
  DieSize(units::Millimeters width, units::Millimeters height);

  /// A square die of the given area -- how the paper's Table A1 die
  /// sizes (given only as cm^2) are interpreted.
  [[nodiscard]] static DieSize square_of_area(units::SquareCentimeters area);

  /// A die of the given area with the given width:height aspect ratio.
  [[nodiscard]] static DieSize of_area(units::SquareCentimeters area, double aspect_ratio);

  [[nodiscard]] units::Millimeters width() const noexcept { return width_; }
  [[nodiscard]] units::Millimeters height() const noexcept { return height_; }
  [[nodiscard]] units::SquareCentimeters area() const noexcept { return width_ * height_; }
  [[nodiscard]] double aspect_ratio() const noexcept { return width_ / height_; }
  /// Half-perimeter diagonal extent, used for "die fits inside radius" tests.
  [[nodiscard]] units::Millimeters half_diagonal() const noexcept;

 private:
  units::Millimeters width_;
  units::Millimeters height_;
};

}  // namespace nanocost::geometry
