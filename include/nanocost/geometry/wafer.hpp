// Wafer specification: diameter, edge exclusion, scribe street.
#pragma once

#include "nanocost/units/area.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::geometry {

/// Physical wafer parameters relevant to die placement and cost.
///
/// The paper's era spans 150 mm -> 300 mm wafers; wafer diameter enters
/// both the chips-per-wafer count N_ch of eq. (1) and the wafer-cost
/// model C_w(A_w, ...) of eq. (7).
class WaferSpec final {
 public:
  WaferSpec(units::Millimeters diameter, units::Millimeters edge_exclusion,
            units::Millimeters scribe_street);

  /// Common generations with period-typical edge exclusion (3 mm) and
  /// scribe street (0.1 mm).
  [[nodiscard]] static WaferSpec mm150();
  [[nodiscard]] static WaferSpec mm200();
  [[nodiscard]] static WaferSpec mm300();

  [[nodiscard]] units::Millimeters diameter() const noexcept { return diameter_; }
  [[nodiscard]] units::Millimeters radius() const noexcept { return diameter_ / 2.0; }
  [[nodiscard]] units::Millimeters edge_exclusion() const noexcept { return edge_exclusion_; }
  [[nodiscard]] units::Millimeters scribe_street() const noexcept { return scribe_street_; }
  /// Radius of the region in which complete dies may be placed.
  [[nodiscard]] units::Millimeters usable_radius() const noexcept {
    return radius() - edge_exclusion_;
  }
  /// Full-wafer area (the A_w of eq. (5)); by convention the paper
  /// amortizes NRE over fabricated area, not just usable area.
  [[nodiscard]] units::SquareCentimeters area() const noexcept;
  [[nodiscard]] units::SquareCentimeters usable_area() const noexcept;

 private:
  units::Millimeters diameter_;
  units::Millimeters edge_exclusion_;
  units::Millimeters scribe_street_;
};

}  // namespace nanocost::geometry
