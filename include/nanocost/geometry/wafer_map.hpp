// Wafer map: explicit placement of every complete die on a wafer.
//
// The gross die-per-wafer count is the N_ch of the paper's eq. (1).  We
// provide (a) an exact grid-placement enumeration with offset search,
// (b) the classic analytic approximation, and (c) the full map with die
// centers and radial positions, which the Monte-Carlo fab simulator and
// radial yield models consume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nanocost/geometry/die.hpp"
#include "nanocost/geometry/wafer.hpp"

namespace nanocost::geometry {

/// One placed die site on a wafer map.
struct DieSite final {
  std::int32_t row = 0;  ///< grid row index (0 at the bottom-most row)
  std::int32_t col = 0;  ///< grid column index (0 at the left-most column)
  units::Millimeters center_x{};  ///< center x relative to wafer center
  units::Millimeters center_y{};  ///< center y relative to wafer center
  /// Distance from wafer center to die center; radial yield models key on
  /// the normalized value radial_fraction = r / usable_radius.
  [[nodiscard]] units::Millimeters radial_distance() const noexcept;
};

/// How the placement grid is anchored relative to the wafer center.
enum class GridAnchor : std::uint8_t {
  kDieCentered,     ///< a die center coincides with the wafer center
  kStreetCentered,  ///< a street crossing coincides with the wafer center
  kBestOfBoth,      ///< exact: evaluate both anchors per axis, keep the max
};

/// Exact gross die-per-wafer: number of complete dies (including their
/// share of scribe street) whose four corners lie within the usable
/// radius.  Runs in O(rows * cols).
[[nodiscard]] std::int64_t gross_die_per_wafer(const WaferSpec& wafer, const DieSize& die,
                                               GridAnchor anchor = GridAnchor::kBestOfBoth);

/// Classic analytic approximation (de Vries form):
///   N = pi d^2 / (4 A) - pi d / sqrt(2 A)
/// with d the usable diameter and A the stepped die area (die + street).
/// Accurate to a few percent for dies much smaller than the wafer.
[[nodiscard]] double gross_die_per_wafer_analytic(const WaferSpec& wafer, const DieSize& die);

/// Full wafer map: every complete die site with its position.
class WaferMap final {
 public:
  WaferMap(const WaferSpec& wafer, const DieSize& die,
           GridAnchor anchor = GridAnchor::kBestOfBoth);

  [[nodiscard]] const WaferSpec& wafer() const noexcept { return wafer_; }
  [[nodiscard]] const DieSize& die() const noexcept { return die_; }
  [[nodiscard]] const std::vector<DieSite>& sites() const noexcept { return sites_; }
  [[nodiscard]] std::int64_t die_count() const noexcept {
    return static_cast<std::int64_t>(sites_.size());
  }
  /// Fraction of usable wafer area covered by complete dies (excluding
  /// street); a placement-quality metric.
  [[nodiscard]] double area_utilization() const noexcept;

  /// Index of the site containing point (x, y), or -1 if none.
  [[nodiscard]] std::int64_t site_at(units::Millimeters x, units::Millimeters y) const noexcept;

  /// Column form of site_at for the SoA fab-simulator pipeline:
  /// out[i] = site_at(x_mm[i], y_mm[i]).  A plain scalar loop -- the
  /// lookup is grid math plus two indirections, which the batch layout
  /// keeps cache-friendly without needing a vector lane.
  void site_at_batch(const double* x_mm, const double* y_mm, std::int64_t* out,
                     std::size_t n) const noexcept;

 private:
  WaferSpec wafer_;
  DieSize die_;
  std::vector<DieSite> sites_;
  // Cached grid parameters used by site_at().
  double step_x_mm_ = 0.0;
  double step_y_mm_ = 0.0;
  double origin_x_mm_ = 0.0;  // left edge of column 0's step cell
  double origin_y_mm_ = 0.0;  // bottom edge of row 0's step cell
  std::int32_t cols_ = 0;
  std::int32_t rows_ = 0;
  std::vector<std::int64_t> site_index_;  // rows_*cols_ grid -> site index or -1
};

}  // namespace nanocost::geometry
