// Reticle (exposure field) arithmetic.
//
// Lithography cost scales with exposures, not dies: a reticle field holds
// as many die step-cells as fit in the scanner's field, and the stepper
// exposes fields across the wafer.  Mask cost (the paper's C_MA) is per
// mask *set*; exposure count drives the per-wafer lithography component
// of the wafer cost model.
#pragma once

#include <cstdint>

#include "nanocost/geometry/die.hpp"
#include "nanocost/geometry/wafer.hpp"

namespace nanocost::geometry {

/// Scanner exposure-field limits (period-typical default: 25 x 32 mm).
class ReticleSpec final {
 public:
  ReticleSpec(units::Millimeters field_width, units::Millimeters field_height);

  [[nodiscard]] static ReticleSpec typical();

  [[nodiscard]] units::Millimeters field_width() const noexcept { return field_width_; }
  [[nodiscard]] units::Millimeters field_height() const noexcept { return field_height_; }

  /// Number of die step-cells (die + street) per exposure field, allowing
  /// a 90-degree die rotation if that fits more.  Zero if the die exceeds
  /// the field in both orientations.
  [[nodiscard]] std::int64_t dies_per_field(const DieSize& die,
                                            units::Millimeters scribe_street) const;

  /// Approximate exposures needed to cover all complete dies on a wafer:
  /// ceil(gross_die / dies_per_field) plus an edge-field overhead factor.
  [[nodiscard]] std::int64_t fields_per_wafer(const WaferSpec& wafer, const DieSize& die) const;

 private:
  units::Millimeters field_width_;
  units::Millimeters field_height_;
};

}  // namespace nanocost::geometry
