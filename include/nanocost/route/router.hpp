// Global routing over the placement grid.
//
// Completes the physical chain (netlist -> place -> route): each net is
// decomposed into two-pin connections (nearest-connected-pin spanning
// tree) and routed with congestion-aware L-shapes over a capacitated
// grid graph.  The outputs the cost models care about: real routed
// wirelength (HPWL is a lower bound; the inflation is the "need for
// more interconnect" the paper cites), and overflow/congestion, which
// is what forces wider channels and hence larger s_d.
#pragma once

#include <cstdint>
#include <vector>

#include "nanocost/netlist/netlist.hpp"
#include "nanocost/place/placer.hpp"

namespace nanocost::route {

struct RouterParams final {
  /// Tracks per grid-cell boundary, horizontal and vertical layers.
  std::int32_t h_capacity = 8;
  std::int32_t v_capacity = 8;
  /// Cost penalty per unit of overflow when choosing between L-shapes.
  double congestion_penalty = 4.0;
  /// Rip-up-and-reroute passes after the initial routing: connections
  /// crossing overflowed edges are removed and re-routed against the
  /// updated congestion picture.  0 = single-pass routing.
  int rip_up_passes = 0;
};

/// Edge-demand bookkeeping on the rows x cols gcell grid.
class RoutingGrid final {
 public:
  RoutingGrid(std::int32_t rows, std::int32_t cols);

  [[nodiscard]] std::int32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int32_t cols() const noexcept { return cols_; }

  /// Demand on the horizontal edge between (r, c) and (r, c+1).
  [[nodiscard]] std::int32_t h_demand(std::int32_t r, std::int32_t c) const;
  /// Demand on the vertical edge between (r, c) and (r+1, c).
  [[nodiscard]] std::int32_t v_demand(std::int32_t r, std::int32_t c) const;
  void add_h(std::int32_t r, std::int32_t c);
  void add_v(std::int32_t r, std::int32_t c);
  void remove_h(std::int32_t r, std::int32_t c);
  void remove_v(std::int32_t r, std::int32_t c);

 private:
  std::int32_t rows_;
  std::int32_t cols_;
  std::vector<std::int32_t> h_;  // rows x (cols-1)
  std::vector<std::int32_t> v_;  // (rows-1) x cols
};

/// Result of a routing pass.
struct RouteResult final {
  RoutingGrid grid{1, 1};
  std::int64_t total_wirelength_edges = 0;
  std::int64_t connections_routed = 0;
  std::int64_t overflowed_edges = 0;   ///< edges with demand > capacity
  double max_utilization = 0.0;        ///< max demand / capacity over edges
  double average_utilization = 0.0;    ///< mean demand / capacity over used edges
  /// Rip-up passes fully executed.  Under an ambient cancel token
  /// (robust::CancelScope) the router checks the token between passes:
  /// an expired deadline stops refinement after the current pass, so the
  /// result equals a fresh run with rip_up_passes =
  /// completed_rip_up_passes -- a coarser routing, never a torn one.
  int completed_rip_up_passes = 0;
  bool cancelled = false;  ///< a deadline cut the rip-up refinement short

  [[nodiscard]] bool routable() const noexcept { return overflowed_edges == 0; }
};

/// Routes every multi-pin net of `netlist` under `placement`.
[[nodiscard]] RouteResult route(const netlist::Netlist& netlist,
                                const place::Placement& placement,
                                const RouterParams& params = {});

/// Routed-to-HPWL inflation factor (>= 1 for row_weight = 1).
[[nodiscard]] double wirelength_inflation(const netlist::Netlist& netlist,
                                          const place::Placement& placement,
                                          const RouteResult& result);

}  // namespace nanocost::route
