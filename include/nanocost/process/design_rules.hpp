// Design rules: the lambda-normalized geometric constraints of a
// process generation.  Scalable-CMOS-style rules (widths and spacings
// as small integer multiples of lambda) are what make the paper's
// "lambda^2 squares per transistor" a process-independent measure in
// the first place: the same drawn layout is legal at any node.
#pragma once

#include <vector>

#include "nanocost/layout/types.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::process {

/// Per-layer width/spacing rule, in units of lambda.
struct LayerRule final {
  double min_width_lambda = 1.0;
  double min_spacing_lambda = 1.0;

  [[nodiscard]] double min_pitch_lambda() const noexcept {
    return min_width_lambda + min_spacing_lambda;
  }
};

/// A full rule deck for one process generation.
class DesignRules final {
 public:
  /// Scalable-CMOS-style deck at feature size `lambda`: diffusion and
  /// poly at 1 lambda width, metal widening with layer number (upper
  /// metals are thicker and coarser), contacts/vias at 1 lambda.
  [[nodiscard]] static DesignRules scalable_cmos(units::Micrometers lambda);

  [[nodiscard]] units::Micrometers lambda() const noexcept { return lambda_; }
  [[nodiscard]] const LayerRule& rule(layout::Layer layer) const noexcept;

  /// Physical minimum width / spacing / pitch of a layer.
  [[nodiscard]] units::Micrometers min_width(layout::Layer layer) const noexcept;
  [[nodiscard]] units::Micrometers min_spacing(layout::Layer layer) const noexcept;
  [[nodiscard]] units::Micrometers min_pitch(layout::Layer layer) const noexcept;

  /// Routing tracks per mm available on a layer at minimum pitch.
  [[nodiscard]] double tracks_per_mm(layout::Layer layer) const noexcept;

  /// Checks a flat rectangle list against width rules; returns the
  /// number of violations (rectangles narrower than the layer minimum
  /// in either dimension).  Spacing checks need a full DRC engine and
  /// are out of scope; width violations already catch malformed
  /// generator output.
  [[nodiscard]] std::int64_t count_width_violations(
      const std::vector<layout::Rect>& rects) const noexcept;

 private:
  explicit DesignRules(units::Micrometers lambda);
  units::Micrometers lambda_;
  LayerRule rules_[layout::kLayerCount];
};

}  // namespace nanocost::process
