// Interconnect scaling: why timing prediction gets harder every node.
//
// The paper's Sec. 2.4: "timing closure would be much easier ... if it
// were possible during logic synthesis to predict interconnect delays".
// The physics behind that remark is here: as lambda shrinks, wire
// resistance per length grows ~1/lambda^2 while capacitance per length
// stays roughly constant, so RC delay per mm grows ~1/lambda^2 while
// gate delay *falls* ~lambda -- wires take over the critical path and
// a synthesis-time estimate without placement knowledge is off by
// whole gate delays.
#pragma once

#include "nanocost/units/length.hpp"

namespace nanocost::process {

/// First-order electrical model of one process generation's wiring.
class InterconnectModel final {
 public:
  /// Period-typical model at feature size `lambda`: aluminum/copper mix
  /// sheet resistance and plate+fringe capacitance anchored at the
  /// 0.25 um node (R = 60 ohm/mm, C = 0.20 pF/mm, gate delay 80 ps).
  [[nodiscard]] static InterconnectModel for_feature_size(units::Micrometers lambda);

  InterconnectModel(double r_ohm_per_mm, double c_pf_per_mm, double gate_delay_ps);

  [[nodiscard]] double resistance_ohm_per_mm() const noexcept { return r_; }
  [[nodiscard]] double capacitance_pf_per_mm() const noexcept { return c_; }
  [[nodiscard]] double gate_delay_ps() const noexcept { return gate_delay_ps_; }

  /// Elmore delay of a wire of length `mm`, in ps (0.5 R C L^2).
  [[nodiscard]] double wire_delay_ps(double length_mm) const;

  /// Wire length at which wire delay equals one gate delay -- the
  /// radius within which synthesis-time estimates are safe.  Shrinks
  /// with the node.
  [[nodiscard]] double critical_length_mm() const;

  /// Delay of `length_mm` of wire broken by optimally-placed repeaters
  /// (linearizes the quadratic; each repeater costs one gate delay).
  [[nodiscard]] double repeated_wire_delay_ps(double length_mm) const;

 private:
  double r_;              // ohm per mm
  double c_;              // pF per mm
  double gate_delay_ps_;  // FO4-class gate delay
};

}  // namespace nanocost::process
