// DRC-lite: same-layer minimum-spacing checking on flat geometry.
//
// Complements DesignRules::count_width_violations with the harder half
// of a width/space deck: for every layer, no two distinct rectangles
// may be closer than the layer's minimum spacing (touching/abutting
// rectangles are treated as connected and allowed).  Uses the same
// spatial-hash approach as the transistor counter, so it stays O(n)
// on grid-like layouts.
#pragma once

#include <cstdint>
#include <vector>

#include "nanocost/layout/cell.hpp"
#include "nanocost/process/design_rules.hpp"

namespace nanocost::process {

/// One spacing violation: the two offending rectangles and their gap.
struct SpacingViolation final {
  layout::Rect a{};
  layout::Rect b{};
  double gap_lambda = 0.0;       ///< actual gap in lambda
  double required_lambda = 0.0;  ///< the rule
};

/// Result of a DRC pass.
struct DrcResult final {
  std::int64_t rects_checked = 0;
  std::int64_t width_violations = 0;
  std::int64_t spacing_violation_count = 0;
  /// First `max_reported` violations, for diagnosis.
  std::vector<SpacingViolation> spacing_violations;

  [[nodiscard]] bool clean() const noexcept {
    return width_violations == 0 && spacing_violation_count == 0;
  }
};

/// Checks flat geometry against the rule deck.  `max_reported` caps the
/// stored violation list (counting continues).
[[nodiscard]] DrcResult check_rules(const std::vector<layout::Rect>& rects,
                                    const DesignRules& rules,
                                    std::size_t max_reported = 100);

/// Flattens `top` and checks it.
[[nodiscard]] DrcResult check_rules(const layout::Cell& top, const DesignRules& rules,
                                    std::size_t max_reported = 100);

}  // namespace nanocost::process
