// Prediction-quality model: the mechanism behind eq. (6).
//
// Sec. 2.4 of the paper attributes design cost to "the number of design
// iterations ... a direct derivative of our ability to correctly
// predict all the consequences of design decisions", and Sec. 3.2 notes
// the interaction neighborhood that must be simulated "is growing ...
// as minimum feature size decreases".  This module turns those
// sentences into a model:
//
//   - the physical interaction radius (optical proximity, coupling) is
//     fixed in nanometers, so the *neighborhood in lambda units* grows
//     as lambda shrinks;
//   - pre-layout estimate error sigma grows with that neighborhood;
//   - a design iteration succeeds when the realized timing lands inside
//     the margin, P(success) = Phi(margin / sigma);
//   - expected iterations = 1 / P(success) (geometric trials),
//
// which yields a node-dependent calibration of eq. (6)'s A0 and
// quantifies the paper's two escape hatches: relax the margin, or
// shrink the effective sigma by precharacterizing repeated patterns.
#pragma once

#include "nanocost/cost/design_cost.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::process {

/// Parameters of the prediction-quality model.
struct PredictionParams final {
  /// Physical interaction radius (lithography + coupling), fixed per
  /// era in nanometers.
  units::Nanometers interaction_radius{500.0};
  /// Relative estimate error when the neighborhood is one cell
  /// (the "easy" regime of large lambda).
  double base_sigma = 0.04;
  /// Error growth exponent with neighborhood cell count.
  double sigma_exponent = 0.5;
  /// Design margin as a fraction of the target (10% timing slack).
  double margin = 0.15;
};

class PredictionModel final {
 public:
  PredictionModel(units::Micrometers lambda, PredictionParams params = {});

  /// Number of lambda-sized cells inside the interaction radius --
  /// the neighborhood a correct pre-layout estimate must account for.
  [[nodiscard]] double neighborhood_cells() const;

  /// Relative sigma of pre-layout estimates at this node.
  [[nodiscard]] double estimate_sigma() const;

  /// P(one design iteration converges), Phi(margin / sigma).
  [[nodiscard]] double iteration_success_probability() const;
  [[nodiscard]] double iteration_success_probability(double margin) const;

  /// Expected iterations to convergence (geometric distribution).
  [[nodiscard]] double expected_iterations() const;
  [[nodiscard]] double expected_iterations(double margin) const;

  /// Eq.-6 parameters with A0 scaled by the node's expected iteration
  /// count relative to a reference node -- the mechanistic calibration
  /// of the paper's "tuning parameters ... capture the cost of
  /// unsuccessful design iterations".
  [[nodiscard]] cost::DesignCostParams calibrate_design_cost(
      const cost::DesignCostParams& base, units::Micrometers reference_lambda) const;

  /// Effective sigma when a fraction `regular_share` of the layout is
  /// precharacterized repeated patterns whose behavior is *measured*,
  /// not estimated (sigma contribution ~ 0 for that share).
  [[nodiscard]] double sigma_with_regularity(double regular_share) const;

  [[nodiscard]] units::Micrometers lambda() const noexcept { return lambda_; }
  [[nodiscard]] const PredictionParams& params() const noexcept { return params_; }

 private:
  units::Micrometers lambda_;
  PredictionParams params_;
};

}  // namespace nanocost::process
