// Cost-optimal design density.
//
// The paper's Sec. 3.1 conclusion: "Neither the smallest die size nor
// maximum yield ... should be the objective of the cost oriented IC
// design activities" -- the objective is the s_d minimizing C_tr.
// C_tr(s_d) is the sum of a term increasing in s_d (manufacturing,
// ~linear) and one decreasing in s_d (design NRE, eq. 6), hence
// unimodal on (s_d0, inf); golden-section search finds the minimum.
#pragma once

#include <functional>
#include <vector>

#include "nanocost/core/generalized_cost.hpp"
#include "nanocost/core/transistor_cost.hpp"

namespace nanocost::exec {
class ThreadPool;
}

namespace nanocost::core {

/// Result of a density optimization.
struct Optimum final {
  double s_d = 0.0;
  units::Money cost_per_transistor{};
  int evaluations = 0;
};

/// Golden-section minimum of `objective` on [lo, hi] to relative
/// tolerance `tol` on s_d.  Requires lo < hi; assumes unimodality.
[[nodiscard]] Optimum minimize_unimodal(
    const std::function<units::Money(double)>& objective, double lo, double hi,
    double tol = 1e-4);

/// Optimal s_d under eq. (4).  The bracket starts just above the design
/// model's s_d0 wall and extends to `hi`.
[[nodiscard]] Optimum optimal_sd_eq4(const Eq4Inputs& inputs, double hi = 2000.0);

/// Optimal s_d under the generalized model; the bracket is clipped to
/// the wafer-feasible range.
[[nodiscard]] Optimum optimal_sd(const GeneralizedCostModel& model, double hi = 2000.0);

/// One sample of a cost sweep over s_d (Fig. 4's x axis).
struct SweepPoint final {
  double s_d = 0.0;
  Eq4Breakdown breakdown{};
};

/// Logarithmic sweep of eq. (4) over [lo, hi] with `steps` samples.
/// Grid points evaluate in parallel on `pool` (null: global pool); the
/// model is pure, so the sweep is deterministic at any thread count.
[[nodiscard]] std::vector<SweepPoint> sweep_eq4(const Eq4Inputs& inputs, double lo, double hi,
                                                int steps, exec::ThreadPool* pool = nullptr);

/// One sample of a generalized-model sweep.
struct GeneralizedSweepPoint final {
  double s_d = 0.0;
  CostEvaluation evaluation{};
};

[[nodiscard]] std::vector<GeneralizedSweepPoint> sweep_generalized(
    const GeneralizedCostModel& model, double lo, double hi, int steps,
    exec::ThreadPool* pool = nullptr);

}  // namespace nanocost::core
