// Design-style advisor: the paper's closing question made executable.
//
// Sec. 3's argument is that design style (custom vs cells vs arrays vs
// programmable fabrics) should be chosen by *transistor cost*, with
// density, design effort, utilization, and mask sharing all priced in.
// Each style here is a bundle of eq.-4 parameters: the density it can
// achieve, how expensive its flow is per eq.-6 squeeze, how much of the
// fabricated silicon it actually uses, and how much of the mask set it
// shares with other products.
#pragma once

#include <string>
#include <vector>

#include "nanocost/core/transistor_cost.hpp"

namespace nanocost::core {

enum class DesignStyle { kFullCustom, kStandardCell, kGateArray, kFpga };

[[nodiscard]] std::string style_name(DesignStyle style);

/// The eq.-4 parameter bundle of one implementation style.
struct StyleProfile final {
  DesignStyle style = DesignStyle::kStandardCell;
  /// Decompression index the style lands at (its density habitat).
  double typical_sd = 350.0;
  /// Multiplier on the design-effort constant A0 of eq. (6): custom
  /// flows iterate expensively, programmable flows barely at all.
  double design_effort_scale = 1.0;
  /// Fraction of fabricated transistors delivering function (the u of
  /// Sec. 2.5).
  double utilization = 1.0;
  /// Fraction of the mask-set NRE this product pays (gate arrays buy
  /// only personalization masks; FPGAs buy none).
  double mask_cost_share = 1.0;
};

/// The period-typical four-style portfolio.
[[nodiscard]] std::vector<StyleProfile> standard_styles();

/// One style priced for one product.
struct StyleEvaluation final {
  StyleProfile profile{};
  Eq4Breakdown breakdown{};
  [[nodiscard]] units::Money cost_per_useful_transistor() const noexcept {
    return breakdown.total;
  }
};

/// Prices every style for the product described by `base` (its lambda,
/// yield, transistor count, volume, mask cost and design-cost model are
/// used; s_d / utilization / scales come from each profile).  Returns
/// evaluations sorted cheapest-first.
[[nodiscard]] std::vector<StyleEvaluation> advise(const Eq4Inputs& base,
                                                  const std::vector<StyleProfile>& styles =
                                                      standard_styles());

/// Best style per volume: sweeps N_w geometrically over
/// [min_wafers, max_wafers] and records the winner at each point.
struct VolumeCrossover final {
  double n_wafers = 0.0;
  DesignStyle winner = DesignStyle::kStandardCell;
  units::Money winning_cost{};
};

[[nodiscard]] std::vector<VolumeCrossover> volume_crossovers(
    const Eq4Inputs& base, double min_wafers, double max_wafers, int steps,
    const std::vector<StyleProfile>& styles = standard_styles());

}  // namespace nanocost::core
