// The generalized transistor cost model, eq. (7):
//
//            s_d lambda^2 [ Cm_sq(A_w, lambda, N_w) + Cd_sq(A_w, lambda, N_w, N_tr, s_d0) ]
//   C_tr = -----------------------------------------------------------------------------
//                          u * Y(A_w, lambda, N_w, s_d, N_tr)
//
// where every "parameter" of eq. (4) becomes a model: wafer cost from
// the cost-of-ownership model, NRE from mask + design cost models,
// yield from a defect-limited model whose critical area depends on
// design density, optionally with a learning curve over the run.
// The paper calls modeling at this level "the ultimate objective of
// the cost studies"; this class is that objective, executable.
#pragma once

#include <memory>
#include <optional>

#include "nanocost/cost/design_cost.hpp"
#include "nanocost/cost/mask_cost.hpp"
#include "nanocost/cost/wafer_cost.hpp"
#include "nanocost/geometry/wafer.hpp"
#include "nanocost/units/probability.hpp"
#include "nanocost/yield/learning.hpp"
#include "nanocost/yield/models.hpp"

namespace nanocost::core {

/// Scenario for the generalized model: one product on one process.
struct ProductScenario final {
  double transistors = 1e7;                       ///< N_tr
  units::Micrometers lambda{0.25};
  geometry::WaferSpec wafer = geometry::WaferSpec::mm200();
  int mask_count = 24;
  double n_wafers = 50000.0;                      ///< N_w, the production run
  units::Probability utilization{1.0};            ///< u (FPGA-style parts < 1)
  int mask_respins = 1;                           ///< extra full mask sets bought

  cost::WaferCostParams wafer_cost{};
  cost::MaskCostParams mask_cost{};
  cost::DesignCostParams design_cost{};

  /// Functional yield model; defaults to negative binomial, alpha = 2.
  std::shared_ptr<const yield::YieldModel> yield_model{};
  /// Mature defect density (per cm^2); when `learning` is set, the
  /// run-averaged density from the curve is used instead.
  double defect_density = 0.5;
  std::optional<yield::LearningCurve> learning{};
  /// Couple critical area (and hence yield) to design density --
  /// the Y(s_d) dependency of eq. (7).  Off = plain area-driven yield.
  bool density_dependent_yield = true;
  /// Reference s_d for the critical-area density scaling.
  double reference_sd = 100.0;
  /// Critical-area ratio *measured* from real geometry (see
  /// defect::extract_critical_area); when set it overrides the modeled
  /// density scaling entirely.
  std::optional<double> measured_critical_area_ratio{};
};

/// Everything the model computes at one s_d.
struct CostEvaluation final {
  double s_d = 0.0;
  units::SquareCentimeters die_area{};
  std::int64_t dies_per_wafer = 0;
  double critical_area_ratio = 1.0;
  units::Probability yield{};
  units::Money wafer_cost{};
  units::CostPerArea cm_sq{};
  units::CostPerArea cd_sq{};
  units::Money mask_nre{};
  units::Money design_nre{};
  units::Money cost_per_transistor{};        ///< the C_tr of eq. (7)
  units::Money manufacturing_per_transistor{};
  units::Money design_per_transistor{};
  units::Money cost_per_die{};
  double good_dies_per_wafer = 0.0;
};

/// Evaluates eq. (7) over s_d for a fixed scenario.
class GeneralizedCostModel final {
 public:
  explicit GeneralizedCostModel(ProductScenario scenario);

  /// Full evaluation at one decompression index.  Throws
  /// std::domain_error if the implied die does not fit the wafer or
  /// s_d <= s_d0 (design cost wall).
  [[nodiscard]] CostEvaluation evaluate(double s_d) const;

  /// C_tr only (the optimizer's objective).
  [[nodiscard]] units::Money cost_per_transistor(double s_d) const {
    return evaluate(s_d).cost_per_transistor;
  }

  /// Largest s_d at which the implied die still fits on the wafer.
  [[nodiscard]] double max_feasible_sd() const;

  [[nodiscard]] const ProductScenario& scenario() const noexcept { return scenario_; }

 private:
  ProductScenario scenario_;
  cost::WaferCostModel wafer_model_;
  cost::MaskCostModel mask_model_;
  cost::DesignCostModel design_model_;
};

}  // namespace nanocost::core
