// Product planner: the paper's prescription as one API call.
//
// Given a product (transistor count, production volume) and a roadmap,
// jointly choose the technology node, implementation style, and design
// density that minimize cost per useful transistor -- with the NRE,
// yield, utilization, and density trade-offs all priced by the same
// models the rest of the library exposes piecemeal.
#pragma once

#include <string>
#include <vector>

#include "nanocost/core/optimizer.hpp"
#include "nanocost/core/style_advisor.hpp"
#include "nanocost/roadmap/roadmap.hpp"

namespace nanocost::core {

/// What the user wants to build.
struct ProductSpec final {
  double transistors = 1e7;
  double n_wafers = 20000.0;          ///< expected production volume
  units::Probability yield{0.8};      ///< expected mature yield
  units::Money mask_cost_180nm{600000.0};  ///< mask-set anchor; scaled per node
  /// Styles considered; defaults to the standard four.
  std::vector<StyleProfile> styles = standard_styles();
};

/// One evaluated (node, style) candidate.
struct PlanCandidate final {
  int year = 0;
  std::string node;
  DesignStyle style = DesignStyle::kStandardCell;
  double s_d = 0.0;                   ///< the style's density, or the optimum for custom
  units::Money cost_per_transistor{};
  units::Money cost_per_die{};
  units::Money design_nre{};
  units::SquareCentimeters die_area{};
};

/// The full plan: candidates sorted cheapest-first.
struct Plan final {
  std::vector<PlanCandidate> candidates;
  [[nodiscard]] const PlanCandidate& best() const { return candidates.front(); }
};

/// Evaluates every roadmap node x style; for the full-custom style the
/// density is optimized via eq. (4) (custom teams pick their s_d), for
/// the others the style's habitat density is used.  Candidates whose
/// die would not fit a 2.5 x 3.2 cm reticle field are dropped.
[[nodiscard]] Plan plan_product(const ProductSpec& spec, const roadmap::Roadmap& roadmap);

}  // namespace nanocost::core
