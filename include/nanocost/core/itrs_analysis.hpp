// The paper's ITRS analyses: Figure 2 (roadmap-implied s_d) and
// Figure 3 (the s_d required to hold die cost at the 1999 level, and
// the ratio exposing the "cost contradiction").
#pragma once

#include <vector>

#include "nanocost/roadmap/roadmap.hpp"
#include "nanocost/units/money.hpp"
#include "nanocost/units/probability.hpp"

namespace nanocost::core {

/// One point of the Fig. 2 series.
struct ItrsSdPoint final {
  int year = 0;
  units::Micrometers lambda{};
  double implied_sd = 0.0;  ///< s_d from roadmap N_tr and chip area
};

/// Fig. 2: the design decompression index the roadmap's MPU numbers
/// imply at each node.
[[nodiscard]] std::vector<ItrsSdPoint> itrs_implied_sd(const roadmap::Roadmap& roadmap);

/// Assumptions of the Fig. 3 computation (values from the paper's text).
struct ConstantDieCostAssumptions final {
  units::Money max_die_cost{34.0};           ///< 1999 cost/performance MPU die
  units::CostPerArea manufacturing_cost{8.0};
  units::Probability yield{0.8};
};

/// One point of the Fig. 3 series.
struct ConstantDieCostPoint final {
  int year = 0;
  units::Micrometers lambda{};
  double itrs_sd = 0.0;      ///< Fig. 2 value at the node
  double required_sd = 0.0;  ///< s_d keeping the die at max_die_cost
  double ratio = 0.0;        ///< itrs_sd / required_sd -- the contradiction
};

/// Fig. 3: required s_d per node under constant die cost, plus the
/// ratio to the roadmap-implied s_d.  Ratio > 1 means the roadmap's
/// own density targets are not aggressive enough to hold die cost --
/// and the *industrial* trend (Fig. 1) moves the wrong way entirely.
[[nodiscard]] std::vector<ConstantDieCostPoint> constant_die_cost_sd(
    const roadmap::Roadmap& roadmap, const ConstantDieCostAssumptions& assumptions = {});

}  // namespace nanocost::core
