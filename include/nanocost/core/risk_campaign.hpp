// Resumable, fault-tolerant risk Monte-Carlo.
//
// RiskCampaign adapts the eq.-4 uncertainty propagation to the
// robust::CampaignRunner contract: one unit = one scenario, and a chunk
// blob is the raw vector of sampled costs.  Scenario i is a pure
// function of (inputs, s_d, seed, i) via risk_sample_cost, so a resumed
// campaign reproduces monte_carlo_cost bitwise when complete; a
// degraded one summarizes the completed scenarios only and widens the
// mean confidence interval accordingly.
//
// Chunks guard their own output through robust::check_finite_range, so
// a NaN escaping the cost model (or injected at `risk.sample`) becomes
// a retryable chunk failure instead of a poisoned percentile.
#pragma once

#include <cstdint>
#include <vector>

#include "nanocost/core/risk.hpp"
#include "nanocost/robust/campaign.hpp"

namespace nanocost::core {

/// Risk summary over whatever fraction of the campaign completed.
struct PartialRisk final {
  /// Summary of the completed scenarios (monte_carlo_cost's reduction).
  RiskResult result;
  double completeness = 1.0;
  std::int64_t completed_samples = 0;
  std::vector<std::int64_t> failed_samples;  ///< ascending scenario indices
  /// 95% confidence interval on the mean, over the *completed* sample
  /// count -- fewer survivors, wider interval.
  double mean_ci_lo = 0.0;
  double mean_ci_hi = 0.0;
};

/// CampaignTask over risk_sample_cost.
class RiskCampaign final : public robust::CampaignTask {
 public:
  /// Samples per chunk; matches monte_carlo_cost's parallel grain.
  static constexpr std::int64_t kGrain = 128;

  RiskCampaign(const UncertainInputs& inputs, double s_d, std::int64_t samples,
               std::uint64_t seed, double die_budget = 0.0);

  [[nodiscard]] const char* name() const override { return "risk.monte_carlo"; }
  [[nodiscard]] std::uint64_t config_fingerprint() const override;
  [[nodiscard]] std::int64_t unit_count() const override { return samples_; }
  [[nodiscard]] std::int64_t grain() const override { return kGrain; }
  void run_chunk(std::int64_t begin, std::int64_t end,
                 std::vector<std::uint8_t>& blob) const override;

  /// Summarizes the completed scenarios.  Throws std::invalid_argument
  /// when fewer than 2 samples survived.
  [[nodiscard]] PartialRisk assemble(const robust::CampaignResult& result) const;

 private:
  UncertainInputs inputs_;
  double s_d_;
  std::int64_t samples_;
  std::uint64_t seed_;
  double die_budget_;
};

}  // namespace nanocost::core
