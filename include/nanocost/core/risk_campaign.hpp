// Resumable, fault-tolerant risk Monte-Carlo.
//
// RiskCampaign adapts the eq.-4 uncertainty propagation to the
// robust::CampaignRunner contract: one unit = one scenario, and a chunk
// blob is the raw vector of sampled costs.  Scenario i is a pure
// function of (inputs, s_d, seed, i) via risk_sample_cost, so a resumed
// campaign reproduces monte_carlo_cost bitwise when complete; a
// degraded one summarizes the completed scenarios only and widens the
// mean confidence interval accordingly.
//
// Chunks guard their own output through robust::check_finite_range, so
// a NaN escaping the cost model (or injected at `risk.sample`) becomes
// a retryable chunk failure instead of a poisoned percentile.
#pragma once

#include <cstdint>
#include <vector>

#include "nanocost/core/risk.hpp"
#include "nanocost/robust/campaign.hpp"

namespace nanocost::core {

/// Risk summary over whatever fraction of the work completed -- a
/// degraded campaign, or a deadline-truncated monte_carlo_cost_partial.
struct PartialRisk final {
  /// Summary of the completed scenarios (monte_carlo_cost's reduction).
  RiskResult result;
  double completeness = 1.0;
  std::int64_t completed_samples = 0;
  std::vector<std::int64_t> failed_samples;  ///< ascending scenario indices
  /// 95% confidence interval on the mean, over the *completed* sample
  /// count -- fewer survivors, wider interval.
  double mean_ci_lo = 0.0;
  double mean_ci_hi = 0.0;
  /// Completed leading chunks; the summary covers exactly the samples
  /// of chunks [0, frontier_chunks) for deadline-truncated runs.
  std::int64_t frontier_chunks = 0;
  /// true when a cancel token / deadline truncated the run.
  bool cancelled = false;
};

/// Deadline-aware monte_carlo_cost(): honors the caller's ambient
/// cancel token (robust::CancelScope) at chunk (RiskCampaign::kGrain
/// samples) granularity.  On expiry the summary covers exactly the
/// completed leading chunks -- bitwise what monte_carlo_cost over that
/// sample prefix computes, at any thread count -- with the 95% CI on
/// the mean widened by the smaller survivor count.  Fewer than 2
/// completed samples leaves `result` zeroed.  With no ambient token
/// this costs one relaxed atomic load over monte_carlo_cost.
[[nodiscard]] PartialRisk monte_carlo_cost_partial(const UncertainInputs& inputs, double s_d,
                                                   int samples = 4000, std::uint64_t seed = 1,
                                                   double die_budget = 0.0,
                                                   exec::ThreadPool* pool = nullptr);

/// CampaignTask over risk_sample_cost.
class RiskCampaign final : public robust::CampaignTask {
 public:
  /// Samples per chunk; matches monte_carlo_cost's parallel grain.
  static constexpr std::int64_t kGrain = 128;

  RiskCampaign(const UncertainInputs& inputs, double s_d, std::int64_t samples,
               std::uint64_t seed, double die_budget = 0.0);

  [[nodiscard]] const char* name() const override { return "risk.monte_carlo"; }
  [[nodiscard]] std::uint64_t config_fingerprint() const override;
  [[nodiscard]] std::int64_t unit_count() const override { return samples_; }
  [[nodiscard]] std::int64_t grain() const override { return kGrain; }
  void run_chunk(std::int64_t begin, std::int64_t end,
                 std::vector<std::uint8_t>& blob) const override;

  /// Summarizes the completed scenarios.  Throws std::invalid_argument
  /// when fewer than 2 samples survived.
  [[nodiscard]] PartialRisk assemble(const robust::CampaignResult& result) const;

 private:
  UncertainInputs inputs_;
  double s_d_;
  std::int64_t samples_;
  std::uint64_t seed_;
  double die_budget_;
};

}  // namespace nanocost::core
