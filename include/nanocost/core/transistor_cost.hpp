// The paper's transistor cost models, eqs. (1), (3), (4)+(5).
//
// All costs are per *good* transistor: dollars of input divided by
// transistors that end up in fully functional dice.
#pragma once

#include "nanocost/cost/design_cost.hpp"
#include "nanocost/units/area.hpp"
#include "nanocost/units/length.hpp"
#include "nanocost/units/money.hpp"
#include "nanocost/units/probability.hpp"

namespace nanocost::core {

/// Eq. (1): C_tr = C_w / (N_tr * N_ch * Y).
[[nodiscard]] units::Money cost_per_transistor_eq1(units::Money wafer_cost,
                                                   double transistors_per_chip,
                                                   double chips_per_wafer,
                                                   units::Probability yield);

/// Eq. (3): C_tr = C_sq * lambda^2 * s_d / Y.
[[nodiscard]] units::Money cost_per_transistor_eq3(units::CostPerArea manufacturing_cost,
                                                   units::Micrometers lambda, double s_d,
                                                   units::Probability yield);

/// Eq. (5): Cd_sq = (C_MA + C_DE) / (N_w * A_w) -- NRE amortized over
/// all fabricated silicon.
[[nodiscard]] units::CostPerArea design_cost_per_area_eq5(units::Money mask_cost,
                                                          units::Money design_cost,
                                                          double n_wafers,
                                                          units::SquareCentimeters wafer_area);

/// Inversion of eq. (3) for s_d at a fixed per-die cost budget -- the
/// computation behind Fig. 3:
///   s_d = C_die * Y / (C_sq * N_tr * lambda^2)
[[nodiscard]] double sd_for_die_cost(units::Money die_cost_budget, units::Probability yield,
                                     units::CostPerArea manufacturing_cost,
                                     double transistors_per_chip, units::Micrometers lambda);

/// Everything eq. (4) needs, bundled.  `design_model` supplies C_DE as
/// a function of (N_tr, s_d); the rest are scalars of the scenario.
struct Eq4Inputs final {
  units::Micrometers lambda{0.25};
  units::Probability yield{0.9};
  units::CostPerArea manufacturing_cost{8.0};   ///< Cm_sq
  double transistors_per_chip = 1e7;            ///< N_tr
  double n_wafers = 50000.0;                    ///< N_w
  units::SquareCentimeters wafer_area{314.16};  ///< A_w (200 mm wafer)
  units::Money mask_cost{600000.0};             ///< C_MA
  cost::DesignCostModel design_model{};         ///< C_DE(N_tr, s_d), eq. (6)
  units::Probability utilization{1.0};          ///< the u of Sec. 2.5 (uY substitution)
};

/// Per-transistor cost decomposition under eq. (4).
struct Eq4Breakdown final {
  units::Money manufacturing{};  ///< lambda^2 s_d Cm_sq / (u Y)
  units::Money design{};         ///< lambda^2 s_d Cd_sq / (u Y)
  units::Money total{};
  units::CostPerArea cd_sq{};    ///< the eq. (5) intermediate
  units::Money design_nre{};     ///< C_DE at this s_d
  /// Die-level view: total * N_tr.
  units::Money per_die{};
};

/// Eq. (4): C_tr = lambda^2 s_d (Cm_sq + Cd_sq) / (u Y), with Cd_sq
/// from eq. (5) and C_DE from eq. (6).
[[nodiscard]] Eq4Breakdown cost_per_transistor_eq4(const Eq4Inputs& inputs, double s_d);

}  // namespace nanocost::core
