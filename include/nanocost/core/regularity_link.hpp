// Coupling layout regularity into the cost model -- the paper's Sec. 3.2
// prescription made quantitative: a design built from few unique,
// precharacterized patterns needs fewer failed iterations (smaller
// effective A0 in eq. 6) and amortizes characterization across a
// product family (larger effective volume in eq. 5).
#pragma once

#include "nanocost/core/transistor_cost.hpp"
#include "nanocost/regularity/extractor.hpp"

namespace nanocost::core {

/// Knobs of the regularity adjustment.
struct RegularityAdjustment final {
  /// Irreducible share of design effort at perfect regularity.
  double min_effort_scale = 0.1;
  /// Products in the family sharing the pattern library.
  int products_sharing = 1;
};

/// Returns `inputs` with the design cost model's A0 scaled by the
/// measured design-effort factor and N_w scaled by the effective-volume
/// multiplier.  A fully regular design gets both benefits; an
/// all-unique design gets neither.
[[nodiscard]] Eq4Inputs apply_regularity(const Eq4Inputs& inputs,
                                         const regularity::RegularityReport& report,
                                         const RegularityAdjustment& adjustment = {});

}  // namespace nanocost::core
