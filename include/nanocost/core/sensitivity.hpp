// Sensitivity analysis on the eq. (4) cost model: which knob moves
// C_tr most?  Reported as elasticities (d ln C_tr / d ln x), the
// scale-free measure a roadmap discussion needs.
#pragma once

#include <string>
#include <vector>

#include "nanocost/core/transistor_cost.hpp"

namespace nanocost::core {

/// Elasticity of C_tr with respect to one input, at a given (inputs, s_d).
struct Elasticity final {
  std::string parameter;
  double elasticity = 0.0;  ///< % change in C_tr per % change in parameter
};

/// Central-difference elasticities for every continuous input of
/// eq. (4): lambda, yield, Cm_sq, N_w, C_MA, A0 (design cost scale),
/// N_tr, and s_d itself.  Sorted by descending magnitude.
[[nodiscard]] std::vector<Elasticity> eq4_elasticities(const Eq4Inputs& inputs, double s_d,
                                                       double step = 0.01);

}  // namespace nanocost::core
