// Cost risk: eq. (4) under uncertainty.
//
// Every input of the cost model is a forecast -- yield, wafer cost,
// design effort, and most of all volume.  The paper's Sec. 3.1 warns
// that the optimum moves "substantially with the volume and yield";
// this module quantifies how much a *point* optimum is worth when the
// inputs are distributions, and whether a robust (sparser) design
// choice beats the nominal optimum in expectation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nanocost/core/transistor_cost.hpp"
#include "nanocost/exec/simd.hpp"

namespace nanocost::exec {
class ThreadPool;
}

namespace nanocost::core {

/// Relative uncertainties on the eq.-4 inputs.  Multiplicative factors
/// are lognormal (median 1); yield is a clamped normal around nominal.
struct UncertainInputs final {
  Eq4Inputs nominal{};
  double yield_sigma = 0.08;          ///< absolute, on the yield value
  double cm_sq_sigma_rel = 0.15;      ///< lognormal sigma of ln(Cm_sq factor)
  double design_cost_sigma_rel = 0.4; ///< lognormal sigma on A0 (effort risk)
  double volume_sigma_rel = 0.5;      ///< lognormal sigma on N_w (demand risk)
};

/// Distribution summary of C_tr at one s_d.
struct RiskResult final {
  double mean = 0.0;
  double stddev = 0.0;
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  /// Fraction of scenarios whose per-die cost exceeds the budget (0 if
  /// no budget given).
  double prob_over_budget = 0.0;
};

/// C_tr of scenario `index` at density s_d: one lognormal/clamped-normal
/// draw of the eq.-4 inputs priced through the cost model.  A pure
/// function of (inputs, s_d, seed, index) -- the same scenario no matter
/// which thread, grid point, or campaign chunk evaluates it.  This is
/// the unit kernel monte_carlo_cost and core::RiskCampaign both run.
[[nodiscard]] double risk_sample_cost(const UncertainInputs& inputs, double s_d,
                                      std::uint64_t seed, std::uint64_t index);

/// SoA batch form of risk_sample_cost: fills out[0..n) with scenarios
/// index0..index0+n-1, bitwise what n scalar calls return (checked by
/// simd_parity_test).  The batch amortizes everything constant across
/// scenarios -- the eq.-6 pow() terms, validation, the seed derivation
/// -- and draws the per-scenario uniforms through the vectorized
/// rng_batch columns; only the transcendental tail (log/sincos/exp of
/// the Gaussian draws) stays scalar, in all paths.  This is the kernel
/// monte_carlo_cost and robust_sd actually run per chunk.
void risk_sample_cost_batch(const UncertainInputs& inputs, double s_d, std::uint64_t seed,
                            std::uint64_t index0, std::size_t n, double* out);

/// Lane-pinned variant for parity testing; everything else should use
/// risk_sample_cost_batch, which dispatches on exec::simd_level().
void risk_sample_cost_batch_at(exec::SimdLevel level, const UncertainInputs& inputs,
                               double s_d, std::uint64_t seed, std::uint64_t index0,
                               std::size_t n, double* out);

/// Distribution summary over an explicit cost-sample vector (needs >= 2
/// samples): exactly the reduction monte_carlo_cost applies, exposed so
/// partial campaigns summarize their completed samples identically.
[[nodiscard]] RiskResult summarize_cost_samples(std::vector<double> costs,
                                                const UncertainInputs& inputs,
                                                double die_budget = 0.0);

/// Monte-Carlo propagation of the uncertainties through eq. (4) at a
/// fixed s_d.  `die_budget` (optional, <= 0 disables) sets the
/// over-budget probability threshold on per-die cost.  Samples are
/// generated in parallel on `pool` (null: global pool); sample i always
/// consumes the stream seeded with SeedSequence::for_task(seed, i), so
/// the result is identical for every thread count.
[[nodiscard]] RiskResult monte_carlo_cost(const UncertainInputs& inputs, double s_d,
                                          int samples = 4000, std::uint64_t seed = 1,
                                          double die_budget = 0.0,
                                          exec::ThreadPool* pool = nullptr);

/// Robust density choice: the s_d minimizing the `quantile` (e.g. 0.9)
/// of the C_tr distribution over a log grid [lo, hi] with `steps`
/// points.  Compare against optimal_sd_eq4 on the nominal inputs:
/// the robust optimum sits sparser whenever volume risk dominates.
struct RobustOptimum final {
  double s_d = 0.0;
  double quantile_cost = 0.0;
};

/// Grid points run in parallel; every grid point draws the *same*
/// scenario set (seeds derive from `seed` and the sample index, never
/// from the grid point or thread), preserving common random numbers
/// across the grid.
[[nodiscard]] RobustOptimum robust_sd(const UncertainInputs& inputs, double quantile,
                                      double lo, double hi, int steps, int samples = 2000,
                                      std::uint64_t seed = 1,
                                      exec::ThreadPool* pool = nullptr);

/// A robust-density sweep truncated by a deadline: the optimum over the
/// leading `completed_steps` grid points only (the sweep walks the grid
/// low-to-high density, so a partial sweep covers a contiguous density
/// prefix).  completed_steps == 0 leaves `optimum` default (nothing to
/// choose from).
struct PartialSweep final {
  RobustOptimum optimum;
  double completeness = 1.0;
  int completed_steps = 0;
  std::int64_t frontier_chunks = 0;  ///< grid points == chunks (grain 1)
  bool cancelled = false;
};

/// Deadline-aware robust_sd(): honors the caller's ambient cancel token
/// (robust::CancelScope) at grid-point granularity.  On expiry the
/// optimum is taken over exactly the completed leading grid points --
/// bitwise what robust_sd over that prefix would pick, at any thread
/// count.  With no ambient token this is robust_sd plus one relaxed
/// atomic load.
[[nodiscard]] PartialSweep robust_sd_partial(const UncertainInputs& inputs, double quantile,
                                             double lo, double hi, int steps,
                                             int samples = 2000, std::uint64_t seed = 1,
                                             exec::ThreadPool* pool = nullptr);

}  // namespace nanocost::core
