// Resumable, fault-tolerant fabline lots.
//
// FabLotCampaign adapts FabSimulator to the robust::CampaignRunner
// contract: one unit = one wafer, chunks of kGrain wafers, and a chunk
// blob carrying the per-wafer results plus the chunk's die-level fault
// histogram.  Because wafer i's RNG stream derives from i alone, an
// assembled campaign -- interrupted, resumed at another thread count,
// or replayed from a checkpoint -- reproduces FabSimulator::run()
// bitwise whenever nothing was quarantined, and degrades to an honest
// partial lot (completeness < 1, failed-wafer list) when faults stick.
#pragma once

#include <cstdint>
#include <vector>

#include "nanocost/fabsim/simulator.hpp"
#include "nanocost/robust/campaign.hpp"

namespace nanocost::fabsim {

// PartialLot lives in simulator.hpp: it is also what the deadline-aware
// FabSimulator::run_partial returns.

/// CampaignTask over FabSimulator::run_units.
class FabLotCampaign final : public robust::CampaignTask {
 public:
  /// Wafers per chunk -- matches the lot simulator's parallel grain, so
  /// campaign chunks and plain-run chunks cover identical wafer ranges.
  static constexpr std::int64_t kGrain = 4;

  /// `sim` must outlive the campaign.
  FabLotCampaign(const FabSimulator& sim, std::int64_t n_wafers, std::uint64_t seed);

  [[nodiscard]] const char* name() const override { return "fabsim.lot"; }
  [[nodiscard]] std::uint64_t config_fingerprint() const override;
  [[nodiscard]] std::int64_t unit_count() const override { return n_wafers_; }
  [[nodiscard]] std::int64_t grain() const override { return kGrain; }
  void run_chunk(std::int64_t begin, std::int64_t end,
                 std::vector<std::uint8_t>& blob) const override;

  /// Decodes a campaign result back into a lot.  Aggregates (totals,
  /// histogram) are merged in ascending chunk order; on a fully
  /// completed campaign the returned lot equals
  /// sim.run(n_wafers, seed) field for field.
  [[nodiscard]] PartialLot assemble(const robust::CampaignResult& result) const;

 private:
  const FabSimulator* sim_;
  std::int64_t n_wafers_;
  std::uint64_t seed_;
};

}  // namespace nanocost::fabsim
