// Rolling simulated fab output into money: what the lot actually cost
// per good die and per good transistor, with the measured (not modeled)
// yield.  Closes the loop between the fab simulator and eq. (1).
#pragma once

#include "nanocost/cost/wafer_cost.hpp"
#include "nanocost/fabsim/simulator.hpp"
#include "nanocost/units/money.hpp"

namespace nanocost::fabsim {

/// Economics of one simulated run.
struct RunEconomics final {
  units::Money wafer_cost{};            ///< per wafer, from the cost model
  units::Money total_cost{};            ///< wafers x wafer cost
  double measured_yield = 0.0;
  std::int64_t good_dies = 0;
  units::Money cost_per_good_die{};
  units::Money cost_per_good_transistor{};
};

/// Prices a simulated lot with the given wafer cost model and the
/// design's transistor count.  This is eq. (1) evaluated with the
/// simulator's N_ch and Y instead of assumed scalars.
/// `run_wafers` is the production-run volume the per-wafer cost is
/// amortized at (a lot is normally a sample of a much larger run);
/// 0 means "the lot is the whole run".
[[nodiscard]] RunEconomics price_lot(const LotResult& lot,
                                     const cost::WaferCostModel& wafer_model,
                                     double transistors_per_die, double run_wafers = 0.0);

}  // namespace nanocost::fabsim
