// Speed binning: the parametric-yield counterpart of the kill
// simulator.  Each functional die gets a realized speed -- a systematic
// radial component (center dies are faster) plus random within-wafer
// variation -- and is sold into the fastest bin it clears.  Converts
// parametric spread into revenue per wafer, the quantity that decides
// whether chasing the last speed bin is worth a denser design.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "nanocost/geometry/wafer_map.hpp"
#include "nanocost/units/money.hpp"
#include "nanocost/units/probability.hpp"

namespace nanocost::fabsim {

/// Speed model and price book for a binned product.
struct BinningParams final {
  double nominal_frequency_mhz = 500.0;
  /// Relative sigma of random per-die variation.
  double sigma_random = 0.05;
  /// Fractional slowdown of the outermost die vs the center
  /// (systematic radial process gradient).
  double radial_slowdown = 0.08;
  /// Bin floors in MHz, descending (a die sells into the first bin
  /// whose floor it meets); dies below the last floor are scrap.
  std::vector<double> bin_floors_mhz{500.0, 450.0, 400.0};
  /// Price per bin, same order as bin_floors_mhz.
  std::vector<units::Money> bin_prices{units::Money{600.0}, units::Money{400.0},
                                       units::Money{250.0}};
};

/// Outcome of a binning run.
struct BinningResult final {
  std::vector<std::int64_t> bin_counts;  ///< per bin, then scrap appended last
  std::int64_t functional_dies = 0;
  double mean_frequency_mhz = 0.0;
  units::Money revenue{};

  [[nodiscard]] std::int64_t scrap() const noexcept { return bin_counts.back(); }
  [[nodiscard]] units::Money revenue_per_functional_die() const {
    return functional_dies > 0 ? revenue / static_cast<double>(functional_dies)
                               : units::Money{};
  }
};

/// Simulates `n_wafers` of binning.  `functional_yield` thins the map's
/// sites to functional dies first (defect losses are the kill
/// simulator's job; pass its measured yield here).
[[nodiscard]] BinningResult simulate_binning(const geometry::WaferMap& map,
                                             const BinningParams& params,
                                             units::Probability functional_yield,
                                             std::int64_t n_wafers, std::uint64_t seed = 42);

}  // namespace nanocost::fabsim
