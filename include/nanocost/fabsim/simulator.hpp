// Monte-Carlo fabline simulator.
//
// The paper's cost models take yield Y as an input; a real fab produces
// it.  Lacking a fab, we simulate one end-to-end: wafers receive
// spatially-distributed defects (optionally clustered and radially
// skewed), each defect landing on a die kills it with a probability set
// by the die's critical-area profile at that defect size, and yield is
// whatever survives.  The simulator validates the analytic yield models
// (Poisson / negative binomial emerge from the defect statistics) and
// feeds measured yields back into the cost models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "nanocost/defect/critical_area.hpp"
#include "nanocost/defect/spatial.hpp"
#include "nanocost/exec/rng.hpp"
#include "nanocost/exec/simd.hpp"
#include "nanocost/geometry/wafer_map.hpp"
#include "nanocost/units/probability.hpp"
#include "nanocost/yield/learning.hpp"

namespace nanocost::exec {
class ThreadPool;
}

namespace nanocost::fabsim {

/// Probability that a defect of a given size landing uniformly on the
/// die is fatal: size-resolved critical area over die area, using a
/// representative wire-array pattern scaled to the die's density.
class DieKillModel final {
 public:
  /// `array` is the representative layout pattern; `die_area` the die
  /// it stands for.  The per-area fault sensitivity of the array is
  /// applied uniformly across the die.
  DieKillModel(defect::WireArray array, units::SquareCentimeters die_area);

  /// P(fatal | defect of size x landed somewhere on the die body).
  [[nodiscard]] double kill_probability(units::Micrometers size) const;

  /// Expected faults per die at defect density D: D * A_die * ratio,
  /// where ratio is the size-averaged critical-area fraction.  This is
  /// the lambda the analytic models should be driven with.
  [[nodiscard]] double mean_faults_per_die(double defect_density_per_cm2,
                                           const defect::DefectSizeDistribution& sizes) const;

  /// The representative pattern -- part of the simulator's input
  /// closure, exposed for content-hashed cache keys.
  [[nodiscard]] const defect::WireArray& array() const noexcept { return array_; }

 private:
  defect::WireArray array_;
  units::SquareCentimeters die_area_;
};

/// Log-spaced lookup table over defect size for DieKillModel::
/// kill_probability.  Built once per simulator; evaluating a defect then
/// costs one log + one linear interpolation instead of two critical-area
/// evaluations.  The kill probability is piecewise linear in the defect
/// size, so bins verified linear at construction interpolate *exactly*;
/// the handful of bins containing a slope breakpoint (spacing/width
/// onsets, saturation, the probability cap) fall back to direct
/// evaluation -- the table agrees with the model to rounding error
/// everywhere on the support.
class KillProbabilityLut final {
 public:
  KillProbabilityLut(const DieKillModel& model, units::Micrometers xmin,
                     units::Micrometers xmax, int bins = 2048);

  /// P(fatal | defect size); sizes outside [xmin, xmax] use the model.
  [[nodiscard]] double operator()(units::Micrometers size) const noexcept;

  /// Column form for the SoA wafer pipeline: out[i] = (*this)(size_um[i])
  /// for sizes in micrometers.  Bin location goes through an
  /// exponent-keyed hint table (no log per lookup); the AVX2 lane
  /// gathers nodes and interpolates four sizes at once, bitwise what the
  /// scalar path returns (simd_parity_test).
  void evaluate_batch(const double* size_um, double* out, std::size_t n) const noexcept;
  void evaluate_batch_at(exec::SimdLevel level, const double* size_um, double* out,
                         std::size_t n) const noexcept;

  [[nodiscard]] int bins() const noexcept { return static_cast<int>(slope_.size()); }
  /// Bins served by interpolation (the rest fall back to the model).
  [[nodiscard]] int interpolated_bins() const noexcept;

 private:
  DieKillModel model_;
  std::vector<double> node_x_;
  std::vector<double> node_p_;
  std::vector<double> slope_;
  std::vector<std::uint8_t> interp_ok_;
  // Bin-location hint table, keyed on the upper bits of the size's IEEE
  // representation (monotone for the positive finite support):
  // hint_[(bits(x) - bits_min_) >> hint_shift_] underestimates the
  // bracketing bin by at most a step or two, fixed by an upward nudge.
  std::int64_t bits_min_ = 0;
  int hint_shift_ = 0;
  std::vector<std::int32_t> hint_;

  /// Scalar reference lookup: the value operator() and every batch lane
  /// must reproduce bitwise.
  [[nodiscard]] double evaluate(double x) const noexcept;
};

/// One simulated wafer.
struct WaferResult final {
  std::int64_t gross_dies = 0;
  std::int64_t good_dies = 0;
  std::int64_t defects = 0;
  std::int64_t defects_on_dies = 0;
  [[nodiscard]] double yield() const noexcept {
    return gross_dies > 0 ? static_cast<double>(good_dies) / static_cast<double>(gross_dies)
                          : 0.0;
  }
};

/// Aggregate over a lot / run.
struct LotResult final {
  std::vector<WaferResult> wafers;
  std::int64_t total_dies = 0;
  std::int64_t good_dies = 0;
  /// Die-level fault-count histogram (index = faults on die).
  std::vector<std::int64_t> fault_histogram;

  [[nodiscard]] double yield() const noexcept {
    return total_dies > 0 ? static_cast<double>(good_dies) / static_cast<double>(total_dies)
                          : 0.0;
  }
  /// Mean and variance of per-die fault counts; variance/mean > 1
  /// indicates clustering (negative-binomial statistics).
  [[nodiscard]] double fault_mean() const noexcept;
  [[nodiscard]] double fault_variance() const noexcept;
  /// Wafer-to-wafer standard deviation of yield.
  [[nodiscard]] double yield_stddev() const noexcept;
};

/// A lot assembled from a partial source: a degraded campaign
/// (fabsim::FabLotCampaign::assemble) or a deadline-truncated
/// FabSimulator::run_partial.
struct PartialLot final {
  /// Wafer slots of quarantined/uncompleted chunks stay
  /// default-initialised; the aggregate fields count completed wafers
  /// only.
  LotResult lot;
  double completeness = 1.0;
  std::int64_t completed_wafers = 0;
  std::vector<std::int64_t> failed_wafers;  ///< ascending wafer indices
  /// Completed leading chunks (the cancellation frontier); the lot is
  /// bitwise a fresh run truncated at frontier_chunks * grain wafers.
  std::int64_t frontier_chunks = 0;
  /// true when a cancel token / deadline truncated the run.
  bool cancelled = false;
};

/// The simulator: one die product on one process.
class FabSimulator final {
 public:
  FabSimulator(geometry::WaferSpec wafer, geometry::DieSize die,
               defect::DefectSizeDistribution sizes, defect::DefectFieldParams field,
               defect::WireArray representative_pattern);

  /// Simulate `n_wafers` at constant defect density.  Wafers execute in
  /// parallel on `pool` (null: the global pool); wafer i always consumes
  /// the RNG stream seeded with SeedSequence::for_task(seed, i), so the
  /// result is identical for every thread count and schedule.
  [[nodiscard]] LotResult run(std::int64_t n_wafers, std::uint64_t seed = 42,
                              exec::ThreadPool* pool = nullptr) const;

  /// Deadline-aware run(): honors the caller's ambient cancel token
  /// (robust::CancelScope) at wafer-chunk granularity.  On expiry the
  /// returned lot covers exactly the completed chunk frontier --
  /// bitwise what run() on frontier_chunks * grain wafers produces, at
  /// any thread count -- with completeness and the frontier reported.
  /// With no ambient token this is run() plus one relaxed atomic load.
  [[nodiscard]] PartialLot run_partial(std::int64_t n_wafers, std::uint64_t seed = 42,
                                       exec::ThreadPool* pool = nullptr) const;

  /// Simulates wafers [begin, end) of the lot seeded with `seed`
  /// serially on the calling thread: results[i - begin] receives wafer
  /// i, and the chunk's die-level fault counts fold into `histogram`.
  /// Wafer i consumes exactly the stream it consumes under run(), so a
  /// union of ranges reproduces run() bitwise -- this is the campaign
  /// engine's chunk kernel (fabsim::FabLotCampaign).
  void run_units(std::int64_t begin, std::int64_t end, std::uint64_t seed,
                 WaferResult* results, std::vector<std::int64_t>& histogram) const;

  /// Simulate a maturity ramp: defect density follows the learning
  /// curve as cumulative wafers accrue.  Returns one LotResult per
  /// checkpoint of `checkpoint_wafers` wafers.  Parallel and
  /// deterministic like run(); wafer seeds are derived from the global
  /// (cross-checkpoint) wafer index.
  [[nodiscard]] std::vector<LotResult> run_ramp(const yield::LearningCurve& curve,
                                                std::int64_t total_wafers,
                                                std::int64_t checkpoint_wafers,
                                                std::uint64_t seed = 42,
                                                exec::ThreadPool* pool = nullptr) const;

  [[nodiscard]] const geometry::WaferMap& wafer_map() const noexcept { return map_; }
  // Configuration accessors: the full input closure of run()/run_ramp(),
  // exposed so cache keys (cache/key.hpp) can hash the simulator by
  // content instead of identity.
  [[nodiscard]] const geometry::WaferSpec& wafer_spec() const noexcept { return wafer_; }
  [[nodiscard]] const geometry::DieSize& die() const noexcept { return die_; }
  [[nodiscard]] const defect::DefectSizeDistribution& size_distribution() const noexcept {
    return sizes_;
  }
  [[nodiscard]] const defect::DefectFieldParams& field_params() const noexcept {
    return field_params_;
  }
  [[nodiscard]] const DieKillModel& kill_model() const noexcept { return kill_; }
  [[nodiscard]] const KillProbabilityLut& kill_lut() const noexcept { return lut_; }
  /// The analytic mean faults per die this configuration implies.
  [[nodiscard]] double analytic_mean_faults() const;

  /// Per-site fault counts of one simulated wafer -- for wafer-map
  /// visualization and spatial statistics.  Indexed like
  /// wafer_map().sites().
  [[nodiscard]] std::vector<std::int32_t> snapshot_faults(std::uint64_t seed) const;

 private:
  geometry::WaferSpec wafer_;
  geometry::DieSize die_;
  defect::DefectSizeDistribution sizes_;
  defect::DefectFieldParams field_params_;
  geometry::WaferMap map_;
  DieKillModel kill_;
  KillProbabilityLut lut_;

  /// Per-chunk scratch for the SoA wafer pipeline: one set of columns
  /// reused across a chunk's wafers, so a lot run allocates O(chunks).
  struct WaferScratch {
    defect::DefectSoA defects;
    std::vector<std::int64_t> sites;     ///< site per defect (-1 off-die)
    std::vector<double> on_die_size;     ///< compacted sizes of on-die defects
    std::vector<std::int64_t> on_die_site;
    std::vector<double> kill_p;          ///< LUT kill probability column
    std::vector<double> kill_u;          ///< kill-draw uniform column
    std::vector<std::int32_t> faults;    ///< per-site fault counts
    std::vector<std::int64_t> histogram = std::vector<std::int64_t>(4, 0);
  };

  /// One wafer through the SoA pipeline: sample the defect population in
  /// column form, locate every defect's site in one pass, batch-evaluate
  /// the kill LUT over the on-die sizes, draw all kill uniforms through
  /// the batched RNG, then scatter the kills into per-site fault counts.
  void simulate_wafer(exec::SplitMix64& rng, const defect::DefectField& field,
                      WaferResult& result, WaferScratch& scratch) const;
};

}  // namespace nanocost::fabsim
