// Fabline capital model: where the title's "high-cost" comes from.
//
// A fab is a set of tool groups (lithography, etch, deposition,
// implant, metrology, ...) sized to a wafer-start capacity.  Tool
// prices escalate steeply with the node (lithography most of all) and
// capacity is bought in whole tools.  Depreciating the capex over the
// equipment's service life produces the fixed monthly cost that
// WaferCostParams::fab_fixed_per_month abstracts -- this module derives
// that number from first principles instead of assuming it.
#pragma once

#include <string>
#include <vector>

#include "nanocost/cost/wafer_cost.hpp"
#include "nanocost/units/length.hpp"
#include "nanocost/units/money.hpp"

namespace nanocost::cost {

/// One tool group in the fab.
struct ToolGroup final {
  std::string name;
  units::Money unit_price{};          ///< per tool, at the 180 nm anchor node
  double wafers_per_month_per_tool = 0.0;
  /// Price escalation per 0.7x node shrink (litho ~1.6, others lower).
  double escalation_per_node = 1.3;
};

/// The period-typical tool set of a logic fab (anchored at 180 nm).
[[nodiscard]] std::vector<ToolGroup> reference_tool_set();

/// A fab sized for a target capacity at a given node.
class FabModel final {
 public:
  FabModel(units::Micrometers lambda, double wafer_starts_per_month,
           std::vector<ToolGroup> tools = reference_tool_set());

  /// Tools needed per group (ceil of capacity / per-tool throughput).
  [[nodiscard]] int tool_count(const ToolGroup& group) const;

  /// Total equipment capital for the fab at this node.
  [[nodiscard]] units::Money total_capex() const;

  /// Monthly fixed cost: straight-line depreciation over
  /// `depreciation_years` plus `facilities_overhead` of capex per year.
  [[nodiscard]] units::Money monthly_fixed_cost(double depreciation_years = 5.0,
                                                double facilities_overhead = 0.08) const;

  /// Wafer cost parameters whose fixed component comes from this fab --
  /// plug into WaferCostModel for a first-principles wafer cost.
  [[nodiscard]] WaferCostParams derive_wafer_cost_params(
      WaferCostParams base = {}) const;

  [[nodiscard]] units::Micrometers lambda() const noexcept { return lambda_; }
  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] const std::vector<ToolGroup>& tools() const noexcept { return tools_; }

 private:
  units::Micrometers lambda_;
  double capacity_;
  std::vector<ToolGroup> tools_;
  double nodes_below_anchor_ = 0.0;
};

}  // namespace nanocost::cost
