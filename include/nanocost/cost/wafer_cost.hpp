// Wafer manufacturing cost of ownership, in the spirit of Maly/Jacobs/
// Kersch (IEDM'93, ref [30] of the paper): the fabricated-wafer cost
// C_w -- and hence the per-area cost Cm_sq of eqs. (3),(4),(7) -- is a
// function of wafer diameter, process complexity (mask count, itself a
// function of feature size), production volume, and process maturity.
//
//   C_w(N_w) = processing(masks, diameter)            [variable]
//            + fab_fixed_cost_per_month / wafer_starts [amortized fixed]
//
// with processing cost per layer escalating as feature size shrinks and
// fixed costs dominated by equipment depreciation for the node.
#pragma once

#include "nanocost/geometry/wafer.hpp"
#include "nanocost/units/length.hpp"
#include "nanocost/units/money.hpp"

namespace nanocost::cost {

/// Parameters of the wafer cost model.  Defaults are calibrated so a
/// mature, high-volume 200 mm, 180 nm, 22-mask process lands near the
/// paper's 8 $/cm^2 -- the Fig. 3 anchor.
struct WaferCostParams final {
  /// Per-layer processing cost for the 180 nm reference node on 200 mm
  /// wafers (materials, labor, consumables, equipment time).
  units::Money base_cost_per_layer{45.0};
  /// Per-layer cost escalation factor per 0.7x feature-size shrink
  /// (finer lithography is disproportionately expensive).
  double layer_cost_escalation = 1.35;
  /// Monthly fab fixed cost for the 180 nm reference node (depreciation
  /// + facilities), dollars.  Scales with the same escalation, squared:
  /// nanometer fablines are the "billions of dollars" of the title.
  units::Money fab_fixed_per_month{30e6};
  /// Wafer starts per month at full fab utilization.
  double full_capacity_wafers_per_month = 20000.0;
  /// Production run length in months over which N_w is spread.
  double run_months = 12.0;
  /// Processing-cost maturity discount: immature processes scrap and
  /// rework; cost per wafer falls by up to this fraction at maturity 1.
  double maturity_discount = 0.25;
};

/// Wafer cost model for one technology generation.
class WaferCostModel final {
 public:
  /// `lambda` selects the node; `wafer` the substrate; `mask_count` the
  /// process complexity.
  WaferCostModel(units::Micrometers lambda, geometry::WaferSpec wafer, int mask_count,
                 WaferCostParams params = {});

  /// Fabricated-wafer cost for a production run of `n_wafers` at the
  /// given process maturity in [0, 1] (0 = pilot, 1 = fully ramped).
  [[nodiscard]] units::Money wafer_cost(double n_wafers, double maturity = 1.0) const;

  /// The paper's Cm_sq: wafer cost divided by full wafer area.
  [[nodiscard]] units::CostPerArea cost_per_cm2(double n_wafers, double maturity = 1.0) const;

  /// Variable (processing) component only, per wafer.
  [[nodiscard]] units::Money processing_cost(double maturity = 1.0) const;
  /// Fixed component per wafer at the given run size.
  [[nodiscard]] units::Money fixed_cost_per_wafer(double n_wafers) const;

  [[nodiscard]] const geometry::WaferSpec& wafer() const noexcept { return wafer_; }
  [[nodiscard]] units::Micrometers lambda() const noexcept { return lambda_; }
  [[nodiscard]] int mask_count() const noexcept { return mask_count_; }

 private:
  units::Micrometers lambda_;
  geometry::WaferSpec wafer_;
  int mask_count_;
  WaferCostParams params_;
  double node_escalation_ = 1.0;  ///< escalation^(nodes below 180 nm)
  double area_scale_ = 1.0;       ///< wafer area relative to 200 mm
};

}  // namespace nanocost::cost
