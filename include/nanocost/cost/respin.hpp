// Silicon respins: when a design iteration fails *after* tapeout.
//
// The paper warns of "loops of unsuccessful design iterations, that may
// involve failing manufacturing experiments".  Pre-tapeout loops cost
// engineering time (eq. 6); post-tapeout loops additionally buy a new
// mask set and weeks of fab time.  This model splits verification
// escapes from the iteration model and produces the expected respin
// count and its NRE, feeding MaskCostModel::total_cost.
#pragma once

#include "nanocost/cost/mask_cost.hpp"
#include "nanocost/units/money.hpp"
#include "nanocost/units/probability.hpp"

namespace nanocost::cost {

/// First-silicon-success model.
struct RespinParams final {
  /// Probability that verification catches any given fatal bug before
  /// tapeout (coverage of the verification flow).
  double verification_coverage = 0.95;
  /// Expected fatal bugs in a 1M-transistor design before verification.
  double bugs_per_mtr = 3.0;
  /// Sub-linear growth of bug count with design size.
  double size_exponent = 0.8;
  /// Each respin's verification also has this coverage on what's left.
  /// (Same coverage each spin; bugs are whittled geometrically.)
};

class RespinModel final {
 public:
  explicit RespinModel(RespinParams params = {});

  /// Expected fatal bugs escaping to first silicon (Poisson mean).
  [[nodiscard]] double escaped_bugs(double transistors) const;

  /// P(first silicon works) = exp(-escaped): no escaped fatal bug.
  [[nodiscard]] units::Probability first_silicon_success(double transistors) const;

  /// Expected number of *extra* mask sets bought: each spin fixes the
  /// found escapes and re-runs verification on a shrinking population.
  [[nodiscard]] double expected_respins(double transistors) const;

  /// Mask NRE including expected respins (fractional respins priced
  /// linearly -- the ensemble average over many projects).
  [[nodiscard]] units::Money expected_mask_nre(const MaskCostModel& masks,
                                               double transistors) const;

  [[nodiscard]] const RespinParams& params() const noexcept { return params_; }

 private:
  RespinParams params_;
};

}  // namespace nanocost::cost
