// Design cost model -- the paper's eq. (6):
//
//   C_DE = A0 * N_tr^p1 / (s_d0 - s_d)^p2
//
// Design effort explodes as the achieved decompression index s_d
// approaches the "best possible" s_d0 (~100, the densest full-custom
// microprocessors): squeezing a design toward custom density costs
// ever more (mostly failed) iterations.  Valid for s_d > s_d0.
//
// The paper's computations use A0 = 1000, p1 = 1.0, p2 = 1.2, derived
// from the author's private cost data (footnote 1); those exact values
// are this module's defaults.
#pragma once

#include "nanocost/units/money.hpp"

namespace nanocost::cost {

/// Tuning parameters of eq. (6).
struct DesignCostParams final {
  double a0 = 1000.0;   ///< scale, dollars per transistor^p1 per squeeze
  double p1 = 1.0;      ///< complexity exponent on transistor count
  double p2 = 1.2;      ///< squeeze exponent on (s_d0 - s_d)
  double s_d0 = 100.0;  ///< best achievable decompression index
};

class DesignCostModel final {
 public:
  explicit DesignCostModel(DesignCostParams params = {});

  /// C_DE for a design of `transistors` at decompression index `s_d`.
  /// Throws std::domain_error unless s_d > s_d0 (the model diverges at
  /// the custom-density wall).
  [[nodiscard]] units::Money cost(double transistors, double s_d) const;

  /// Smallest s_d at which the design cost stays within `budget`:
  /// inverts eq. (6).  Returns s_d0 + ((a0 N^p1)/budget)^(1/p2).
  [[nodiscard]] double densest_affordable_sd(double transistors, units::Money budget) const;

  /// Rough design-iteration count behind a given effort level, assuming
  /// `cost_per_iteration` per loop (tools, engineers, possibly masks).
  [[nodiscard]] double implied_iterations(double transistors, double s_d,
                                          units::Money cost_per_iteration) const;

  [[nodiscard]] const DesignCostParams& params() const noexcept { return params_; }

  /// Calibrates A0 from one observed project: a design of `transistors`
  /// at `s_d` that cost `observed`.  Returns a model with p1/p2/s_d0
  /// kept and A0 solved.
  [[nodiscard]] static DesignCostModel calibrated(double transistors, double s_d,
                                                  units::Money observed,
                                                  DesignCostParams base = {});

 private:
  DesignCostParams params_;
};

/// Engineering-team framing of the same budget: headcount x loaded cost
/// x time.  Used by examples to translate C_DE into team-months.
struct TeamCostModel final {
  double loaded_cost_per_engineer_year = 250000.0;

  /// Team-years of effort represented by a design budget.
  [[nodiscard]] double team_years(units::Money design_cost) const {
    return design_cost.value() / loaded_cost_per_engineer_year;
  }
  /// Engineers needed to spend `design_cost` in `months`.
  [[nodiscard]] double engineers_for(units::Money design_cost, double months) const {
    return team_years(design_cost) * 12.0 / months;
  }
};

}  // namespace nanocost::cost
