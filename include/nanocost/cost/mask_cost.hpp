// Lithography mask-set cost (the paper's C_MA of eq. (5)).
//
// Mask sets are pure NRE: paid once per design revision, amortized over
// the production run.  Per-set cost escalates steeply with shrinking
// feature size (more layers, finer writing, OPC decoration) -- the
// canonical period estimate is ~0.5 M$ at 180 nm roughly doubling per
// node, which these defaults reproduce.
#pragma once

#include "nanocost/units/length.hpp"
#include "nanocost/units/money.hpp"

namespace nanocost::cost {

struct MaskCostParams final {
  /// Cost of one *critical* mask at the 180 nm reference node.
  units::Money base_cost_per_mask{25000.0};
  /// Per-mask escalation per 0.7x shrink.
  double escalation_per_node = 1.8;
  /// Non-critical layers (implants, thick metal) cost this fraction of a
  /// critical mask.
  double non_critical_fraction = 0.4;
  /// Fraction of layers that are critical at the reference node.
  double critical_share = 0.5;
};

/// Mask-set cost model for one node.
class MaskCostModel final {
 public:
  MaskCostModel(units::Micrometers lambda, int mask_count, MaskCostParams params = {});

  /// Full mask-set cost, one revision.
  [[nodiscard]] units::Money set_cost() const;

  /// Total mask NRE including `respins` full extra sets -- failed
  /// design iterations buy whole new mask sets, which is how the
  /// paper's "loops of unsuccessful design iterations ... may involve
  /// failing manufacturing experiments" turns into dollars.
  [[nodiscard]] units::Money total_cost(int respins) const;

  [[nodiscard]] units::Micrometers lambda() const noexcept { return lambda_; }
  [[nodiscard]] int mask_count() const noexcept { return mask_count_; }

 private:
  units::Micrometers lambda_;
  int mask_count_;
  MaskCostParams params_;
};

}  // namespace nanocost::cost
