// Test cost -- the extension the paper explicitly flags in Sec. 2.5
// ("cost of test ... could be easily included within the proposed
// cost-modeling framework").
//
// Per-die test cost = tester seconds x tester rate; test time grows
// sub-linearly with transistor count (structural/BIST compression) and
// with the coverage target.  Escapes (untested fault population) reduce
// effective yield, coupling test back into eq. (4) via the uY channel.
#pragma once

#include "nanocost/units/money.hpp"
#include "nanocost/units/probability.hpp"

namespace nanocost::cost {

struct TestCostParams final {
  /// Loaded tester cost per second (machine depreciation + handler).
  units::Money tester_cost_per_second{0.05};
  /// Seconds to test a 1M-transistor die at the reference 95% coverage.
  double base_seconds_per_mtr = 0.8;
  /// Sub-linear growth of test time with transistor count.
  double size_exponent = 0.7;
  /// Reference fault coverage the base time achieves.
  double base_coverage = 0.95;
};

class TestCostModel final {
 public:
  explicit TestCostModel(TestCostParams params = {});

  /// Tester seconds for a die of `transistors` at `coverage` in
  /// [base_coverage_floor, 1): time diverges logarithmically as
  /// coverage -> 1 (each extra 9 costs a constant factor).
  [[nodiscard]] double test_seconds(double transistors, double coverage) const;

  /// Per-die test cost.
  [[nodiscard]] units::Money cost_per_die(double transistors, double coverage) const;

  /// Fraction of shipped parts that are actually defective given die
  /// yield `y` and fault `coverage` (Williams-Brown defect level):
  ///   DL = 1 - y^(1 - coverage)
  [[nodiscard]] units::Probability defect_level(units::Probability yield,
                                                double coverage) const;

  [[nodiscard]] const TestCostParams& params() const noexcept { return params_; }

 private:
  TestCostParams params_;
};

}  // namespace nanocost::cost
