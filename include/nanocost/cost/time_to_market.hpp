// Time-to-market economics: the force the paper blames for the Fig.-1
// trend ("it is fair to assume that the time to market pressure must be
// a factor deciding about compactness of modern custom-designed ICs").
//
// Squeezing a design denser (smaller s_d) takes more iterations (eq. 6
// mechanics), and iterations take calendar time.  Entering a finite
// market window late forfeits revenue.  Adding that opportunity cost to
// the eq.-4 objective moves the optimum toward *sparser* designs than
// the pure-cost optimum -- i.e. it reproduces the industry behavior the
// paper observes, and quantifies what that behavior costs in silicon.
#pragma once

#include "nanocost/cost/design_cost.hpp"
#include "nanocost/units/money.hpp"

namespace nanocost::cost {

/// A triangular market window: revenue ramps to a peak at half the
/// window, then decays to zero.  Entering `delay` months late forfeits
/// the head of the triangle *and* cedes share (late entrants never
/// recover the peak).
class MarketWindowModel final {
 public:
  MarketWindowModel(double window_months, units::Money total_market_revenue,
                    double share_at_launch = 0.4);

  /// Revenue captured entering `entry_month` after the window opens.
  [[nodiscard]] units::Money revenue(double entry_month) const;

  /// Revenue forfeited relative to a day-one entry.
  [[nodiscard]] units::Money delay_cost(double entry_month) const;

  [[nodiscard]] double window_months() const noexcept { return window_; }

 private:
  double window_;
  units::Money total_revenue_{};
  double share_;
};

/// Maps design effort to calendar time: a team of `engineers` burns
/// budget at their loaded rate, so C_DE dollars take
/// C_DE / (engineers * monthly rate) months, bounded below by
/// `minimum_months` (you cannot parallelize past the critical path).
struct ScheduleModel final {
  double engineers = 50.0;
  units::Money loaded_cost_per_engineer_month{21000.0};
  double minimum_months = 6.0;

  [[nodiscard]] double months_for(units::Money design_cost) const;
};

/// The combined objective: eq.-4 silicon cost per transistor plus the
/// forfeited-revenue opportunity cost per shipped transistor, as a
/// function of s_d.
struct TimeToMarketInputs final {
  DesignCostModel design_model{};
  ScheduleModel schedule{};
  MarketWindowModel market{18.0, units::Money{500e6}};
  double transistors = 1e7;
  /// Good transistors shipped over the product life (units amortizing
  /// the opportunity cost).
  double shipped_transistors = 1e13;
};

struct TimeToMarketPoint final {
  double s_d = 0.0;
  units::Money design_cost{};
  double schedule_months = 0.0;
  units::Money forfeited_revenue{};
  units::Money opportunity_per_transistor{};
};

/// Evaluates the schedule/revenue consequences of targeting `s_d`.
[[nodiscard]] TimeToMarketPoint time_to_market_cost(const TimeToMarketInputs& inputs,
                                                    double s_d);

}  // namespace nanocost::cost
