// Synthetic netlist generation with tunable locality.
//
// Real logic is *local*: most nets connect gates that end up near each
// other (the empirical basis of Rent's rule).  The generator grows a
// netlist gate by gate, wiring each new gate's inputs to recent outputs
// with geometrically decaying reach -- high locality yields short
// placed wirelength, low locality approaches a random graph whose
// wirelength no pre-placement estimate can predict well.  That knob is
// exactly what the wirelength-prediction experiments sweep.
#pragma once

#include <cstdint>

#include "nanocost/netlist/netlist.hpp"

namespace nanocost::netlist {

struct GeneratorParams final {
  std::int32_t gate_count = 1000;
  std::int32_t primary_inputs = 32;
  /// Locality in (0, 1]: probability mass of choosing inputs near the
  /// current frontier.  1.0 -> almost chain-like; 0.05 -> near-random.
  double locality = 0.7;
  /// Gate-type mix (inv, nand2, nor2, dff), normalized internally.
  double type_weights[kGateTypeCount] = {0.3, 0.3, 0.2, 0.2};
  std::uint64_t seed = 1;
};

/// Generates a connected netlist per the parameters.
[[nodiscard]] Netlist generate_random_logic(const GeneratorParams& params);

}  // namespace nanocost::netlist
