// Gate-level netlist.
//
// The design-side substrate for the paper's Sec.-2.4 story: logic
// exists before layout, interconnect estimates must be made on the
// netlist alone, and the gap between those estimates and placed
// reality drives design iterations.  Gate types mirror the layout
// module's standard cells, so a netlist can be synthesized into real
// geometry and measured with the same density machinery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nanocost::netlist {

/// Gate types; transistor counts and layout footprints match the
/// layout module's standard-cell set.
enum class GateType : std::uint8_t { kInv = 0, kNand2, kNor2, kDff };
inline constexpr int kGateTypeCount = 4;

[[nodiscard]] std::string gate_type_name(GateType type);
/// Transistors per gate (inv 2, nand2/nor2 4, dff 20).
[[nodiscard]] int transistors_in(GateType type);
/// Fan-in pin count (inv 1, nand2/nor2 2, dff 2: data + clock).
[[nodiscard]] int fanin_of(GateType type);

/// A signal net: one driver (a gate or a primary input) and its sinks.
struct Net final {
  std::int32_t driver_gate = -1;     ///< -1 = primary input
  std::vector<std::int32_t> sink_gates;

  [[nodiscard]] int pin_count() const noexcept {
    return static_cast<int>(sink_gates.size()) + 1;
  }
};

/// One gate instance.
struct Gate final {
  GateType type = GateType::kInv;
  std::vector<std::int32_t> input_nets;
  std::int32_t output_net = -1;
};

/// A flat combinational/sequential netlist.
class Netlist final {
 public:
  /// Creates a primary-input net; returns its id.
  std::int32_t add_primary_input();

  /// Creates a gate driving a fresh net; `inputs` must be existing net
  /// ids with the type's fan-in arity.  Returns the gate id.
  std::int32_t add_gate(GateType type, const std::vector<std::int32_t>& inputs);

  [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }
  [[nodiscard]] const std::vector<Net>& nets() const noexcept { return nets_; }
  [[nodiscard]] std::int32_t gate_count() const noexcept {
    return static_cast<std::int32_t>(gates_.size());
  }
  [[nodiscard]] std::int32_t net_count() const noexcept {
    return static_cast<std::int32_t>(nets_.size());
  }
  [[nodiscard]] std::int32_t output_net_of(std::int32_t gate) const {
    return gates_.at(static_cast<std::size_t>(gate)).output_net;
  }

  /// Total transistors across all gates.
  [[nodiscard]] std::int64_t transistor_count() const;
  /// Gates per type.
  [[nodiscard]] std::vector<std::int32_t> type_histogram() const;
  /// Mean sinks per driven net.
  [[nodiscard]] double average_fanout() const;

 private:
  std::vector<Gate> gates_;
  std::vector<Net> nets_;
};

}  // namespace nanocost::netlist
