// Pre-placement wirelength estimation -- the "prediction" of the
// paper's Sec. 2.4.
//
// Before placement exists, interconnect length can only be estimated
// from netlist statistics.  The classic approach (Donath, after Rent's
// rule) says average wirelength grows like a power of the block size.
// We expose the per-net estimator
//
//   L_net ~ k * (pins - 1) * sqrt(sites)^(2p - 1)      (p = Rent exponent)
//
// summed over nets, in placement-site units, with a calibration hook.
// Its *error* against the placed reality -- which the place module
// measures -- is the quantity that drives eq.-6 iterations.
#pragma once

#include "nanocost/netlist/netlist.hpp"

namespace nanocost::netlist {

struct EstimateParams final {
  double rent_exponent = 0.6;   ///< typical random logic: 0.5-0.7
  /// Proportionality calibration; the default is fitted against the
  /// annealing placer on generated logic at locality ~0.5.
  double k = 1.0;
};

/// Estimated total wirelength in site units for a block of `sites`
/// placement sites.
[[nodiscard]] double estimate_total_wirelength(const Netlist& netlist, double sites,
                                               const EstimateParams& params = {});

/// Estimated average net length in site units.
[[nodiscard]] double estimate_average_net_length(const Netlist& netlist, double sites,
                                                 const EstimateParams& params = {});

}  // namespace nanocost::netlist
