// Fault-tolerant, resumable Monte-Carlo campaigns.
//
// A campaign is `unit_count` independent work units (wafers, MC samples)
// processed in fixed chunks of `grain` units.  Each chunk is a pure
// function of its index -- per-unit RNG streams derive from the unit
// index (exec/seed.hpp) -- which buys three properties at once:
//
//  * determinism: chunk results do not depend on thread count or
//    schedule, and the final merge walks chunks in ascending order;
//  * resumability: a checkpoint is just the completed-chunk blobs
//    (robust/checkpoint.hpp) -- no RNG or scheduler state to capture;
//  * graceful degradation: a failing chunk is retried a bounded number
//    of times (with robust::AttemptScope advancing the transient-fault
//    schedule) and then quarantined, so one poisoned unit costs one
//    chunk of coverage instead of the whole run.
//
// The engine runs chunks in waves on the thread pool, checkpointing
// between waves, and reports completeness plus the quarantined-chunk
// list instead of rethrowing first-failure (the `allow_partial = false`
// mode restores strict semantics: the lowest-index failure is
// rethrown after the run drains).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nanocost/robust/cancel.hpp"

namespace nanocost::exec {
class ThreadPool;
}

namespace nanocost::robust {

/// A campaign workload.  Implementations must make run_chunk a pure
/// function of [begin, end): same range, same bytes -- on any thread,
/// at any time, in any process.  The produced blob must be non-empty.
class CampaignTask {
 public:
  virtual ~CampaignTask() = default;

  /// Stable campaign name; part of the checkpoint fingerprint.
  [[nodiscard]] virtual const char* name() const = 0;
  /// Hash of everything that shapes the results (seed, model config).
  /// Mixed with name/unit_count/grain into the checkpoint fingerprint.
  [[nodiscard]] virtual std::uint64_t config_fingerprint() const = 0;
  [[nodiscard]] virtual std::int64_t unit_count() const = 0;
  /// Units per chunk; also the quarantine blast radius.
  [[nodiscard]] virtual std::int64_t grain() const = 0;
  /// Computes units [begin, end) into `blob` (serialized accumulator).
  virtual void run_chunk(std::int64_t begin, std::int64_t end,
                         std::vector<std::uint8_t>& blob) const = 0;
};

struct CampaignOptions final {
  /// Checkpoint file; empty disables persistence (in-memory run only).
  std::string checkpoint_path;
  /// Content-addressed artifact directory (robust/artifact_store.hpp);
  /// empty disables the tier.  Before computing, each pending chunk is
  /// looked up by its content address (campaign fingerprint + chunk
  /// index under the cache key schema version) and a stored blob is
  /// accepted verbatim -- chunks are pure functions of their index, so
  /// the bytes are what run_chunk would produce.  Completed chunks
  /// publish back into the directory (atomic rename; publish failures
  /// are counted, never fatal).  Unlike a checkpoint, the directory is
  /// shared: any campaign with the same fingerprint reuses the blobs,
  /// across processes and runs.
  std::string artifact_dir;
  /// Chunks per scheduling wave; a checkpoint is written after each
  /// wave, so this is also the persistence cadence.
  std::int64_t wave_chunks = 64;
  /// Total tries per chunk (1 = no retry) before quarantine.
  int max_attempts = 3;
  /// true: quarantine persistent failures and report partial results.
  /// false: strict mode -- rethrow the lowest-index chunk failure after
  /// the run drains.
  bool allow_partial = true;
  /// Stop (checkpoint and return, `interrupted` set) after processing
  /// this many pending chunks; 0 means run to completion.  This is the
  /// hook kill/resume tests and demos use to interrupt mid-campaign.
  std::int64_t max_chunks_this_run = 0;
  /// null: the global pool.
  exec::ThreadPool* pool = nullptr;
  /// Deadline / cancellation for this run.  An invalid token (the
  /// default) falls back to the caller's ambient token
  /// (current_cancel_token()).  Expiry stops the run on a chunk
  /// boundary: completed chunks are checkpointed, pending ones stay
  /// pending, and the result comes back with `expired` set -- resumable
  /// exactly like a killed run.
  CancelToken cancel;
  /// Soft per-wave wall-clock deadline in ms (0 disables).  A wave that
  /// overruns it halves the next wave's chunk count (floor 1), tightening
  /// the checkpoint/cancellation cadence under overload; a wave back
  /// under it restores `wave_chunks`.  Purely a scheduling knob -- chunk
  /// results are unaffected.
  double wave_soft_deadline_ms = 0.0;
  /// Base backoff before retry attempt a: sleep retry_backoff_ms *
  /// 2^(a-1) ms (0 disables).  A backoff that does not fit in the
  /// remaining cancel-token budget is not taken: the chunk abandons its
  /// retries and stays *pending* (not quarantined), so a resume with a
  /// fresh budget retries it.
  double retry_backoff_ms = 0.0;
};

/// One chunk that exhausted its attempts.
struct ChunkFailure final {
  std::int64_t chunk = 0;
  std::int64_t unit_begin = 0;
  std::int64_t unit_end = 0;
  std::string error;  ///< what() of the last attempt's exception
};

struct CampaignResult final {
  /// Indexed by chunk; empty blob = not completed (quarantined or not
  /// yet run).  Merge in ascending index for deterministic assembly.
  std::vector<std::vector<std::uint8_t>> chunks;
  std::vector<ChunkFailure> quarantined;  ///< sorted by chunk index
  std::int64_t total_chunks = 0;
  std::int64_t completed_chunks = 0;
  std::int64_t total_units = 0;
  std::int64_t completed_units = 0;
  /// Chunks restored from the checkpoint instead of recomputed.
  std::int64_t resumed_chunks = 0;
  /// Chunks served by the artifact tier instead of recomputed.
  std::int64_t artifact_hits = 0;
  /// Chunks published into the artifact tier this run.
  std::int64_t artifact_stores = 0;
  /// Extra attempts spent beyond each chunk's first try.
  std::int64_t retries = 0;
  /// true when max_chunks_this_run or the cancel token stopped the run
  /// early (not every chunk was attempted).
  bool interrupted = false;
  /// true when the cancel token / deadline stopped the run.
  bool expired = false;
  /// First chunk without a result (== total_chunks on a full run): the
  /// exact frontier a deadline-truncated assembly is deterministic
  /// against.
  std::int64_t frontier_chunks = 0;

  /// Fraction of units with results: 1.0 for a clean complete run.
  [[nodiscard]] double completeness() const noexcept {
    return total_units > 0
               ? static_cast<double>(completed_units) / static_cast<double>(total_units)
               : 1.0;
  }
  /// Unit indices covered by quarantined chunks, ascending.
  [[nodiscard]] std::vector<std::int64_t> failed_units() const;
};

/// Fingerprint binding a checkpoint to one campaign configuration.
[[nodiscard]] std::uint64_t campaign_fingerprint(const CampaignTask& task);

/// Runs (or resumes) `task` under `options`.  Always returns a result;
/// throws only on checkpoint identity mismatch or corruption, I/O
/// failure, or -- in strict mode -- the lowest-index chunk failure.
/// Deadline expiry never throws: it checkpoints and returns a partial
/// result with `expired` set.
[[nodiscard]] CampaignResult run_campaign(const CampaignTask& task,
                                          const CampaignOptions& options = {});

}  // namespace nanocost::robust
