// Overload protection: a bounded admission queue over the campaign
// engine.
//
// A production engine serving heavy traffic cannot run every request to
// completion; it has to shed or shrink load *deterministically*, so two
// replicas given the same submission sequence degrade identically.  Two
// policies:
//
//  * kRejectNewest: the queue holds at most `capacity` campaigns; a
//    submission past capacity is shed at submit() with a clear error
//    message and never executed.  Admission depends only on submission
//    order.
//  * kDegradeBudgets: everything is admitted, but when the queue is
//    oversubscribed each campaign's per-run chunk budget
//    (max_chunks_this_run) is scaled by capacity / queued, so the queue
//    drains in roughly the time `capacity` full campaigns would --
//    every result partial-but-resumable instead of a tail of rejects.
//
// The whole queue drains under one optional wall-clock budget
// (total_budget_ms) and/or an external CancelToken; each campaign runs
// under a child token, so one slow campaign cannot eat the budget of
// the ones behind it silently -- they come back kExpired, resumable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nanocost/robust/campaign.hpp"
#include "nanocost/robust/cancel.hpp"

namespace nanocost::robust {

/// What to do with work beyond `capacity`.
enum class ShedPolicy : std::uint8_t {
  kRejectNewest,    ///< shed at submit() with a clear error
  kDegradeBudgets,  ///< admit all, shrink per-campaign chunk budgets
};

struct AdmissionOptions final {
  /// Campaigns the queue is sized for; also the degrade-policy divisor.
  std::size_t capacity = 8;
  ShedPolicy policy = ShedPolicy::kRejectNewest;
  /// Wall-clock budget for draining the whole queue, ms; 0 = none.
  double total_budget_ms = 0.0;
  /// External kill switch (e.g. shutdown); combined with the budget via
  /// a child token.  Invalid = none.
  CancelToken cancel;
};

enum class SubmissionStatus : std::uint8_t {
  kQueued,     ///< admitted, not yet run
  kShed,       ///< rejected at submit() (kRejectNewest at capacity)
  kCompleted,  ///< ran to full completeness
  kPartial,    ///< ran, returned a partial result (budget/quarantine)
  kExpired,    ///< the queue deadline tripped before or during the run
};

struct SubmissionOutcome final {
  SubmissionStatus status = SubmissionStatus::kQueued;
  /// Populated for kCompleted/kPartial/kExpired-during-run; default for
  /// kShed and for kExpired campaigns that never started.
  CampaignResult result;
  std::string message;  ///< shed/expired reason, empty otherwise
};

/// Bounded FIFO of campaigns with deterministic load shedding.  Not
/// thread-safe: one thread submits and runs; the parallelism lives
/// inside each campaign.
class CampaignQueue final {
 public:
  explicit CampaignQueue(AdmissionOptions options);

  /// Admits (or sheds) `task`; returns its outcome slot index.  `task`
  /// must outlive run().  Under kRejectNewest a full queue sheds the
  /// submission immediately: outcome kShed, message naming the
  /// capacity.  `options.cancel` and `options.max_chunks_this_run` may
  /// be overridden by the queue at run() time (child deadline token,
  /// degraded budget); everything else passes through.
  std::size_t submit(const CampaignTask& task, CampaignOptions options = {});

  /// Drains admitted campaigns in submission order and returns all
  /// outcomes (indexed like submit()).  Callable once; later submits
  /// require a new queue.
  const std::vector<SubmissionOutcome>& run();

  [[nodiscard]] const std::vector<SubmissionOutcome>& outcomes() const noexcept {
    return outcomes_;
  }
  [[nodiscard]] std::size_t shed_count() const noexcept;
  [[nodiscard]] std::size_t expired_count() const noexcept;
  [[nodiscard]] std::size_t partial_count() const noexcept;
  [[nodiscard]] std::size_t completed_count() const noexcept;

 private:
  struct Admitted {
    const CampaignTask* task = nullptr;
    CampaignOptions options;
    std::size_t slot = 0;
  };

  AdmissionOptions options_;
  std::vector<Admitted> admitted_;
  std::vector<SubmissionOutcome> outcomes_;
  bool ran_ = false;
};

}  // namespace nanocost::robust
