// Overload protection: a bounded admission queue over the campaign
// engine.
//
// A production engine serving heavy traffic cannot run every request to
// completion; it has to shed or shrink load *deterministically*, so two
// replicas given the same submission sequence degrade identically.  Two
// policies:
//
//  * kRejectNewest: the queue holds at most `capacity` outstanding
//    campaigns; a submission past capacity is shed at submit() with a
//    clear error message and never executed.  Admission depends only on
//    the submission order and on which earlier campaigns have drained.
//  * kDegradeBudgets: everything is admitted, but a campaign that
//    starts while the queue is oversubscribed has its per-run chunk
//    budget (max_chunks_this_run) scaled by capacity / outstanding at
//    that moment, so the backlog drains in roughly the time `capacity`
//    full campaigns would -- each result partial-but-resumable instead
//    of a tail of rejects, and a campaign running alone keeps its full
//    budget.
//
// The whole queue drains under one optional wall-clock budget
// (total_budget_ms, measured from the first drain) and/or an external
// CancelToken; each campaign runs under a child token, so one slow
// campaign cannot eat the budget of the ones behind it silently -- they
// come back kExpired, resumable.
//
// Two usage shapes share this class:
//  * batch (the original API): submit() everything, then run() once --
//    run() closes submissions and drains.
//  * long-lived (the serve daemon): submit() and drain() interleave
//    from different threads; stop() trips the queue's own token so a
//    shutdown path gets a final outcome for every admitted campaign
//    (kStopped for the ones that never started) without having to own
//    an external CancelToken.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "nanocost/robust/campaign.hpp"
#include "nanocost/robust/cancel.hpp"

namespace nanocost::robust {

/// What to do with work beyond `capacity`.
enum class ShedPolicy : std::uint8_t {
  kRejectNewest,    ///< shed at submit() with a clear error
  kDegradeBudgets,  ///< admit all, shrink per-campaign chunk budgets
};

struct AdmissionOptions final {
  /// Outstanding campaigns the queue is sized for; also the
  /// degrade-policy divisor.
  std::size_t capacity = 8;
  ShedPolicy policy = ShedPolicy::kRejectNewest;
  /// Wall-clock budget for draining the whole queue, ms; 0 = none.
  /// The clock starts at the first drain()/run().
  double total_budget_ms = 0.0;
  /// External kill switch (e.g. shutdown); combined with the budget via
  /// a child token.  Invalid = none.
  CancelToken cancel;
};

enum class SubmissionStatus : std::uint8_t {
  kQueued,     ///< admitted, not yet run
  kShed,       ///< rejected at submit() (kRejectNewest at capacity)
  kCompleted,  ///< ran to full completeness
  kPartial,    ///< ran, returned a partial result (budget/quarantine)
  kExpired,    ///< the queue deadline tripped before or during the run
  kStopped,    ///< stop() tripped before or during the run
};

struct SubmissionOutcome final {
  SubmissionStatus status = SubmissionStatus::kQueued;
  /// Populated for kCompleted/kPartial/kExpired-or-kStopped-during-run;
  /// default for kShed and for campaigns that never started.
  CampaignResult result;
  std::string message;  ///< shed/expired/stopped reason, empty otherwise
};

/// Bounded FIFO of campaigns with deterministic load shedding.
/// submit(), drain(), and stop() may be called from different threads
/// (the serve daemon's readers submit while its runner drains); the
/// parallelism *within* each campaign still lives in the campaign.
/// outcomes()/run()/drain() return a reference that is only stable
/// while no concurrent submit() is in flight -- concurrent consumers
/// should take their copies from drain()'s per-campaign callback.
class CampaignQueue final {
 public:
  explicit CampaignQueue(AdmissionOptions options);

  /// Admits (or sheds) `task`; returns its outcome slot index.  `task`
  /// must outlive the drain that runs it.  Under kRejectNewest a full
  /// queue sheds the submission immediately: outcome kShed, message
  /// naming the capacity.  After stop() every submission comes back
  /// kStopped; after run() submissions throw (the batch API closes the
  /// queue).  `options.cancel` and `options.max_chunks_this_run` may be
  /// overridden at drain time (child deadline token, degraded budget);
  /// everything else passes through.
  std::size_t submit(const CampaignTask& task, CampaignOptions options = {});

  /// Runs every admitted-but-not-yet-run campaign in submission order
  /// and returns all outcomes (indexed like submit()).  Callable
  /// repeatedly; a drain that finds nothing pending returns
  /// immediately.  `on_complete`, when given, is invoked -- with no
  /// internal lock held -- after each campaign's outcome is recorded,
  /// with the slot index and a stable copy of the outcome; this is how
  /// a long-lived server responds per request without waiting for the
  /// whole cycle.  Concurrent drains serialize.
  using CompletionFn = std::function<void(std::size_t, const SubmissionOutcome&)>;
  const std::vector<SubmissionOutcome>& drain(const CompletionFn& on_complete = {});

  /// Batch spelling: closes submissions, then drains.  Idempotent.
  const std::vector<SubmissionOutcome>& run();

  /// Trips the queue's own stop token: the running campaign (if any)
  /// stops at its next chunk boundary and comes back kStopped with a
  /// resumable partial result; campaigns that never started drain as
  /// kStopped without running; later submissions are rejected as
  /// kStopped.  Thread-safe, idempotent.
  void stop() noexcept;
  [[nodiscard]] bool stop_requested() const noexcept;

  /// Admitted campaigns not yet finished (queued + running).
  [[nodiscard]] std::size_t outstanding() const noexcept;

  [[nodiscard]] const std::vector<SubmissionOutcome>& outcomes() const noexcept {
    return outcomes_;
  }
  /// Thread-safe snapshot of one slot's outcome -- how a concurrent
  /// submitter learns a submission was shed/stopped at submit() time
  /// (those slots never reach drain()'s callback).
  [[nodiscard]] SubmissionOutcome outcome_copy(std::size_t slot) const;
  [[nodiscard]] std::size_t shed_count() const noexcept;
  [[nodiscard]] std::size_t expired_count() const noexcept;
  [[nodiscard]] std::size_t partial_count() const noexcept;
  [[nodiscard]] std::size_t completed_count() const noexcept;
  [[nodiscard]] std::size_t stopped_count() const noexcept;

 private:
  struct Admitted {
    const CampaignTask* task = nullptr;
    CampaignOptions options;
    std::size_t slot = 0;
  };

  [[nodiscard]] std::size_t outstanding_locked() const noexcept {
    return admitted_.size() - next_ + (running_ ? 1 : 0);
  }
  std::size_t count_status(SubmissionStatus status) const noexcept;

  AdmissionOptions options_;
  /// Child of the external token (or an independent root): stop()
  /// cancels it without touching the caller's token; the budget chain
  /// and every per-campaign token hang off it.
  CancelToken stop_root_;
  mutable std::mutex mu_;
  std::condition_variable drain_done_;
  std::vector<Admitted> admitted_;
  std::vector<SubmissionOutcome> outcomes_;
  std::size_t next_ = 0;      ///< first admitted_ entry not yet picked up
  bool running_ = false;      ///< a campaign is executing right now
  bool draining_ = false;     ///< a drain cycle owns the queue
  bool closed_ = false;       ///< run() called; submissions throw
  bool stop_requested_ = false;
  bool budget_armed_ = false; ///< total_budget_ms chained (first drain)
  CancelToken governed_;      ///< stop_root_ (+ budget once armed)
};

}  // namespace nanocost::robust
