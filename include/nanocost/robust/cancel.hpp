// Cooperative cancellation and time budgets.
//
// A CancelToken is a shared trip flag plus an optional absolute
// deadline.  Kernels never get preempted: they poll the token at chunk
// boundaries (exec/parallel.hpp) and stop claiming work once it trips,
// so a cancelled loop always stops on a chunk boundary -- the *chunk
// frontier* -- and its partial output is a pure function of that
// frontier, bitwise-identical to a fresh run truncated there at any
// thread count.
//
// Tokens form a hierarchy: child tokens trip when the parent trips (a
// request-level budget fans out to per-phase budgets that can only be
// tighter), but cancelling a child never touches the parent.  Expiry is
// latched: the first observation of a passed deadline trips the flag
// permanently, and the trip time is recorded once, so cancel latency
// (trip to loop return) is measurable (robust.cancel_latency_us).
//
// Tokens reach kernels two ways: explicitly (CampaignOptions::cancel)
// or ambiently through a thread-local CancelScope that deadline-aware
// entry points (`FabSimulator::run_partial`, `monte_carlo_cost_partial`,
// ...) snapshot on entry.  With no scope installed anywhere in the
// process, that snapshot costs one relaxed atomic load -- the same
// three-state gating budget as fault injection and metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace nanocost::robust {

namespace detail {

/// Shared state of one token; children hold a strong ref to the parent
/// chain, so a parent outlives every token that can observe it.
struct CancelState final {
  std::shared_ptr<CancelState> parent;
  std::atomic<bool> tripped{false};
  /// steady-clock ns of the first trip (the deadline instant for
  /// deadline trips, the cancel() call for manual ones); 0 = not
  /// tripped.  Written once, under the tripped latch.
  std::atomic<std::uint64_t> trip_ns{0};
  std::uint64_t deadline_ns = 0;  ///< steady-clock ns; 0 = no deadline
};

/// Count of CancelScopes alive across all threads; the one relaxed
/// load current_cancel_token() pays when no deadline is anywhere.
extern std::atomic<int> g_active_scopes;

[[nodiscard]] std::uint64_t steady_now_ns() noexcept;

}  // namespace detail

/// An absolute point on the steady clock; the value type deadlines are
/// carried around as (CancelToken::with_deadline stores one).
struct Deadline final {
  std::uint64_t at_ns = 0;  ///< steady-clock ns; 0 = no deadline

  /// A deadline `budget_ms` from now (<= 0: already passed).
  [[nodiscard]] static Deadline in_ms(double budget_ms) noexcept;
  [[nodiscard]] static constexpr Deadline none() noexcept { return {}; }
  [[nodiscard]] bool unset() const noexcept { return at_ns == 0; }
  [[nodiscard]] bool passed() const noexcept;
  /// Milliseconds left; +inf when unset, 0 when passed.
  [[nodiscard]] double remaining_ms() const noexcept;
};

/// Shared cancellation handle.  Copies observe the same flag.  A
/// default-constructed token is *invalid*: it never trips, and
/// cancellation-aware loops that receive one run the plain
/// (zero-overhead) path.
class CancelToken final {
 public:
  CancelToken() = default;

  /// A token that trips only via cancel().
  [[nodiscard]] static CancelToken manual();
  /// A token that trips `budget_ms` from now (or at `deadline`).
  [[nodiscard]] static CancelToken with_deadline(double budget_ms);
  [[nodiscard]] static CancelToken with_deadline(Deadline deadline);

  /// A child: trips when this token trips or when cancel()ed itself;
  /// cancelling the child leaves this token untouched.  Children of an
  /// invalid token are independent roots.
  [[nodiscard]] CancelToken child() const;
  /// A child with its own (necessarily tighter-or-equal effective)
  /// deadline `budget_ms` from now.
  [[nodiscard]] CancelToken child_with_deadline(double budget_ms) const;

  /// Trips the flag.  No-op on an invalid token.  Idempotent.
  void cancel() const noexcept;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  /// True once this token or any ancestor tripped (manually or by
  /// deadline).  Latches deadline expiry as a side effect.  Invalid
  /// tokens are never expired.
  [[nodiscard]] bool expired() const noexcept;
  /// Milliseconds until the tightest deadline in the chain; +inf when
  /// no deadline exists, 0 once expired.
  [[nodiscard]] double remaining_ms() const noexcept;
  /// steady-clock ns of the earliest trip in the chain; 0 if none.
  [[nodiscard]] std::uint64_t trip_time_ns() const noexcept;

 private:
  explicit CancelToken(std::shared_ptr<detail::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelState> state_;
};

/// RAII install of `token` as the calling thread's ambient token;
/// deadline-aware kernels snapshot it via current_cancel_token().
/// Scopes nest (the previous ambient token is restored on destruction);
/// installing an invalid token is a no-op scope.
class CancelScope final {
 public:
  explicit CancelScope(CancelToken token);
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken saved_;
  bool installed_ = false;
};

/// The calling thread's ambient token (invalid when no CancelScope is
/// active).  One relaxed atomic load when no scope exists process-wide.
[[nodiscard]] CancelToken current_cancel_token() noexcept;

/// Records cancel-latency observability for a loop that just noticed
/// `token` tripped: bumps robust.cancelled_loops and records trip-to-now
/// in the robust.cancel_latency_us histogram.  No-op when metrics are
/// off or the token has not tripped.
void note_cancel_observed(const CancelToken& token) noexcept;

}  // namespace nanocost::robust
