// Shared exponential-backoff-with-budget policy.
//
// Both the campaign retry path (robust::run_campaign) and the serve
// retry client (serve::ResilientClient) need the same three decisions
// between attempts:
//
//   1. how long to sleep before attempt N (exponential, optionally
//      capped, optionally jittered),
//   2. whether that sleep even fits in the remaining deadline budget
//      ("abandon instead of sleeping into a guaranteed expiry"), and
//   3. how to make the schedule *deterministic* so fault-injection
//      tests replay bit-for-bit.
//
// The jitter is seeded: delay_ms(attempt) is a pure function of
// (policy, attempt), derived from splitmix64, so two processes with the
// same policy produce the same schedule.  jitter == 0 keeps the exact
// base * multiplier^attempt ladder the campaign engine has always used.
#pragma once

#include <cstdint>

#include "nanocost/robust/cancel.hpp"

namespace nanocost::robust {

struct BackoffPolicy {
  /// Delay before the first retry (attempt 0 -> base_ms).  <= 0
  /// disables backoff entirely: delay_ms() is always 0.
  double base_ms = 0.0;
  /// Upper clamp on any single delay; 0 means uncapped.
  double cap_ms = 0.0;
  /// Growth factor per attempt (2.0 = classic doubling).
  double multiplier = 2.0;
  /// Jitter fraction in [0, 1): the delay is scaled by a deterministic
  /// factor drawn from [1 - jitter, 1 + jitter).  0 = no jitter.
  double jitter = 0.0;
  /// Seed for the jitter draw; same seed => same schedule.
  std::uint64_t seed = 0;

  /// Delay before retry `attempt` (0-based), in milliseconds.  Pure:
  /// same (policy, attempt) always yields the same value.
  [[nodiscard]] double delay_ms(int attempt) const noexcept;

  /// True when sleeping delay_ms(attempt) cannot pay off: the token's
  /// deadline has already passed, or the sleep is at least as long as
  /// the remaining budget.  A caller that sees true should abandon the
  /// retry (leaving the work pending for a resume with fresh budget)
  /// instead of sleeping into a guaranteed expiry.  Tokens without a
  /// deadline never overrun.
  [[nodiscard]] bool overruns_budget(int attempt, const CancelToken& token) const noexcept;
};

/// Sleeps for delay_ms(attempt) (no-op when it is 0) and records the
/// slept duration in the `robust.backoff_sleep_ms` histogram when
/// metrics are enabled.  Returns the delay actually slept, in ms.
double backoff_sleep(const BackoffPolicy& policy, int attempt);

}  // namespace nanocost::robust
