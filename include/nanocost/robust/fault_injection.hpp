// Deterministic fault injection for long Monte-Carlo campaigns.
//
// Every parallel workload in nanocost derives per-unit state (RNG
// streams, output slots) from the unit index alone, so the only way to
// *test* the failure paths honestly is to schedule faults the same way:
// a fault at site S for unit i on attempt a fires iff a pure hash of
// (plan seed, S, i, a) falls under the configured rate.  The schedule is
// therefore bitwise-identical at any thread count, and a retried unit
// sees a fresh draw (transient faults heal; persistent ones ignore the
// attempt and keep firing until the unit is quarantined).
//
// Injection sites are named constants (`fabsim.wafer`, `risk.sample`,
// `exec.chunk`, `route.pass`, ...) compiled into the hot paths.  When no
// plan is installed the whole machinery is one relaxed atomic load and a
// predictable branch per site evaluation -- measured indistinguishable
// from the pre-injection binaries (see EXPERIMENTS.md).
//
// Plans come from code (`install_fault_plan`) or from the environment:
//   NANOCOST_FAULTS="fabsim.wafer=1e-3:throw:persistent;risk.sample=2e-3:nan"
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nanocost::robust {

/// What happens when a scheduled fault fires.
enum class FaultKind : std::uint8_t {
  kThrow,    ///< inject() throws FaultInjected
  kNaN,      ///< observe() returns quiet NaN instead of the real value
  kLatency,  ///< inject() sleeps `latency_us` (a deterministic straggler)
};

/// One site's fault configuration.
struct FaultSpec final {
  double rate = 0.0;  ///< per-evaluation firing probability in [0, 1]
  FaultKind kind = FaultKind::kThrow;
  /// Transient faults mix the retry attempt into the schedule hash, so a
  /// retried unit usually heals; persistent faults fire on every attempt.
  bool transient = true;
  std::uint32_t latency_us = 200;  ///< sleep for kLatency faults
};

/// Thrown by inject() when a kThrow fault fires.  Carries the site name
/// and unit index so degradation layers can report exactly what failed.
class FaultInjected final : public std::runtime_error {
 public:
  FaultInjected(const char* site, std::uint64_t index);
  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  [[nodiscard]] std::uint64_t index() const noexcept { return index_; }

 private:
  std::string site_;
  std::uint64_t index_ = 0;
};

/// FNV-1a over a string -- constexpr so site hashes resolve at compile
/// time and the slow path does integer compares, never string compares.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// A named injection point.  Construct as a constexpr constant next to
/// the code that evaluates it.
struct FaultSite final {
  const char* name;
  std::uint64_t hash;
  constexpr explicit FaultSite(const char* n) : name(n), hash(fnv1a(n)) {}
};

/// A set of site -> FaultSpec rules plus the schedule seed.
class FaultPlan final {
 public:
  FaultPlan() = default;

  FaultPlan& add(std::string_view site, FaultSpec spec);
  FaultPlan& seed(std::uint64_t s) noexcept {
    seed_ = s;
    return *this;
  }

  /// Parses the NANOCOST_FAULTS grammar:
  ///   plan  := entry (';' entry)*
  ///   entry := site '=' rate (':' flag)*        | 'seed' '=' integer
  ///   flag  := 'throw' | 'nan' | 'latency' | 'persistent' | 'transient'
  /// Throws std::invalid_argument on malformed input.
  [[nodiscard]] static FaultPlan parse(std::string_view text);

  [[nodiscard]] bool empty() const noexcept { return sites_.empty(); }
  [[nodiscard]] std::uint64_t schedule_seed() const noexcept { return seed_; }
  [[nodiscard]] const FaultSpec* find(std::uint64_t site_hash) const noexcept;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    FaultSpec spec;
  };
  std::uint64_t seed_ = 0x0FA417;
  // A handful of sites at most: linear scan beats any map.
  std::vector<Entry> sites_;
};

/// Installs `plan` process-wide (an empty plan disables injection).
/// Not safe to call concurrently with in-flight injected work; install
/// before launching a campaign.
void install_fault_plan(FaultPlan plan);

/// Disables injection (equivalent to installing an empty plan).
void clear_fault_plan();

/// The retry attempt ambient to the current thread; campaign engines set
/// it around each chunk attempt so transient-fault schedules can heal.
class AttemptScope final {
 public:
  explicit AttemptScope(std::uint32_t attempt) noexcept;
  ~AttemptScope();
  AttemptScope(const AttemptScope&) = delete;
  AttemptScope& operator=(const AttemptScope&) = delete;

  [[nodiscard]] static std::uint32_t current() noexcept;

 private:
  std::uint32_t saved_ = 0;
};

namespace detail {

/// 0 = not yet initialised (env not read), 1 = disabled, 2 = enabled.
extern std::atomic<int> g_fault_state;

/// Reads NANOCOST_FAULTS once and settles g_fault_state; returns whether
/// injection is enabled.
bool init_fault_state_from_env();

/// Full schedule evaluation; only reached when a plan is installed.
/// Throws / sleeps as configured; returns true when the value at this
/// site should be poisoned to NaN.
bool inject_slow(const FaultSite& site, std::uint64_t index);

}  // namespace detail

/// True when a non-empty fault plan is active.  The off path is a single
/// relaxed load plus compare.
[[nodiscard]] inline bool faults_enabled() noexcept {
  const int s = detail::g_fault_state.load(std::memory_order_relaxed);
  if (s == 0) [[unlikely]] {
    return detail::init_fault_state_from_env();
  }
  return s == 2;
}

/// The injection point for control-flow sites.  May throw FaultInjected
/// or sleep; NaN faults at control-flow sites are no-ops (use observe()
/// where a value crosses the site).
inline void inject(const FaultSite& site, std::uint64_t index) {
  if (!faults_enabled()) return;
  (void)detail::inject_slow(site, index);
}

/// The injection point for value sites: returns `value`, or quiet NaN
/// when a kNaN fault fires here.  Throw/latency faults behave as in
/// inject().
[[nodiscard]] inline double observe(const FaultSite& site, std::uint64_t index, double value) {
  if (!faults_enabled()) return value;
  return detail::inject_slow(site, index)
             ? std::numeric_limits<double>::quiet_NaN()
             : value;
}

}  // namespace nanocost::robust
