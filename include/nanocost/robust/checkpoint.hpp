// Campaign checkpoint files.
//
// Because every chunk of a campaign is a pure function of its chunk
// index, a checkpoint needs no RNG state and no scheduler state: it is
// the set of completed chunks plus each chunk's serialized partial
// accumulator.  Resuming recomputes only the missing chunks and merges
// everything in ascending chunk order, which is why a killed-and-resumed
// campaign reproduces an uninterrupted one bitwise -- at any thread
// count.
//
// File layout (little-endian, see DESIGN.md section 9):
//   magic   "NCCKPT01"                     8 bytes
//   u64     fingerprint (campaign identity: name/config/seed hash)
//   i64     unit_count
//   i64     grain (units per chunk)
//   i64     record count
//   records i64 chunk_index, i64 blob_size, blob bytes, u64 fnv1a(blob)
//
// Loading is strict: saves go through a temp file plus atomic rename,
// so a checkpoint either exists whole or not at all -- any truncation,
// torn record, out-of-range field, or per-chunk checksum failure is
// therefore real corruption (disk fault, concurrent writer, bit flip)
// and throws CheckpointCorrupt with the offending record named, rather
// than silently resuming from bytes that were never written as a unit.
// A fingerprint mismatch throws CheckpointMismatch -- resuming someone
// else's campaign would silently corrupt results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace nanocost::robust {

/// Identity + partial state of a campaign on disk.
struct Checkpoint final {
  std::uint64_t fingerprint = 0;
  std::int64_t unit_count = 0;
  std::int64_t grain = 0;
  /// Indexed by chunk; an empty blob means "not completed yet".
  std::vector<std::vector<std::uint8_t>> chunks;

  [[nodiscard]] std::int64_t completed_chunks() const noexcept;
};

/// Thrown when a checkpoint on disk belongs to a different campaign
/// configuration (fingerprint / unit count / grain mismatch).
class CheckpointMismatch final : public std::runtime_error {
 public:
  explicit CheckpointMismatch(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a checkpoint file is structurally damaged: truncated
/// header or record, record fields out of range for the declared
/// campaign shape, a blob failing its fnv1a checksum, or trailing
/// garbage.  The message names the file and the first bad record.
class CheckpointCorrupt final : public std::runtime_error {
 public:
  explicit CheckpointCorrupt(const std::string& what) : std::runtime_error(what) {}
};

/// Writes `ckpt` to `path` atomically (temp file + rename) and returns
/// the number of bytes written.  Throws std::runtime_error on I/O
/// failure.
std::size_t save_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// Loads `path` into `out`.  Returns false when the file does not exist.
/// Throws CheckpointMismatch when the header disagrees with `expected`
/// (fingerprint, unit_count, grain) and CheckpointCorrupt when the file
/// is truncated, a record is malformed or fails its checksum, or bytes
/// trail the last record.  `out` is untouched on error.
bool load_checkpoint(const std::string& path, const Checkpoint& expected, Checkpoint& out);

}  // namespace nanocost::robust
