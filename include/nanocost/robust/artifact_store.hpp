// Content-addressed on-disk artifact tier.
//
// Extends the NCCKPT01 checkpoint machinery downward: where a
// checkpoint is one file holding a whole campaign's partial state, the
// artifact store is a directory of independently addressable blobs,
// one file per 128-bit content digest:
//
//   <dir>/<32-hex-digest>.ncblob
//
// Each blob file (little-endian, DESIGN.md section 13):
//   magic   "NCBLOB01"                     8 bytes
//   u64     digest hi, u64 digest lo       (self-identifying)
//   i64     payload size
//   payload bytes
//   u64     fnv1a(payload)
//
// The same durability contract as checkpoints: stores publish through
// a temp file plus atomic rename, so a blob either exists whole or not
// at all, and loading is strict -- truncation, a digest that disagrees
// with the filename's, a bad checksum, or trailing bytes throw
// robust::CheckpointCorrupt naming the file.  Content addressing makes
// stores idempotent (same digest => same bytes) and sharing free: any
// campaign whose chunk hashes to an existing blob reuses it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nanocost/cache/hash.hpp"
#include "nanocost/robust/checkpoint.hpp"

namespace nanocost::robust {

/// What one eviction sweep did.
struct SweepReport final {
  std::uint64_t scanned_blobs = 0;
  std::uint64_t scanned_bytes = 0;
  std::uint64_t evicted_blobs = 0;
  std::uint64_t evicted_bytes = 0;
};

class ArtifactStore final {
 public:
  /// Creates `dir` (and parents) if absent; throws std::runtime_error
  /// when the directory cannot be created.  `byte_cap` bounds the total
  /// on-disk blob bytes sweep() enforces; 0 leaves the store unbounded
  /// (the pre-existing behaviour).
  explicit ArtifactStore(std::string dir, std::uint64_t byte_cap = 0);

  /// Blob path for a digest: <dir>/<hex>.ncblob.
  [[nodiscard]] std::string path_for(const cache::Digest128& key) const;

  /// Loads the blob for `key` into `payload`.  Returns false when no
  /// blob exists; throws CheckpointCorrupt (naming the file) on any
  /// structural damage.  `payload` is untouched on miss or error.
  [[nodiscard]] bool load(const cache::Digest128& key, std::vector<std::uint8_t>& payload) const;

  /// Publishes `payload` under `key` atomically (temp file + rename).
  /// Idempotent: an existing blob is left untouched (content addressing
  /// guarantees it holds the same bytes).  Throws std::runtime_error on
  /// I/O failure.
  void store(const cache::Digest128& key, const std::vector<std::uint8_t>& payload) const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t byte_cap() const noexcept { return byte_cap_; }

  /// Sum of all committed blob bytes on disk (in-flight .tmp files are
  /// not blobs and do not count).
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Evicts committed blobs -- highest digest first, a pure function of
  /// the directory contents, so two replicas holding the same blobs
  /// evict the same ones -- until total bytes fit under byte_cap().
  /// A no-op (scan only) when the cap is 0 or already satisfied.
  /// Eviction is a plain unlink: a concurrent run_campaign consult that
  /// already opened the blob keeps reading it, and one that misses the
  /// evicted file simply recomputes the chunk -- never an error.
  SweepReport sweep() const;

 private:
  std::string dir_;
  std::uint64_t byte_cap_ = 0;
};

/// Artifact key of one campaign chunk: the campaign identity
/// (fingerprint/unit_count/grain, exactly the NCCKPT01 header) plus the
/// chunk index, under the cache key schema version so kernel-output
/// changes orphan old blobs instead of serving them.
[[nodiscard]] cache::Digest128 chunk_artifact_key(std::uint64_t fingerprint,
                                                  std::int64_t unit_count, std::int64_t grain,
                                                  std::int64_t chunk);

}  // namespace nanocost::robust
