// NaN/Inf tripwires at module boundaries.
//
// A NaN that escapes one model silently poisons every downstream mean,
// percentile, and optimum -- the campaign "succeeds" and reports
// garbage.  FiniteGuard turns that into an immediate diagnostic naming
// the boundary (site) and the offending value, at the cost of one
// std::isfinite per checked value.  Guards sit where data crosses
// modules: fabsim -> economics, risk -> optimizer, yield -> cost.
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace nanocost::robust {

/// Thrown when a guarded boundary sees a non-finite value.
class NonFiniteError final : public std::domain_error {
 public:
  NonFiniteError(const char* site, double value, std::ptrdiff_t index = -1)
      : std::domain_error(format(site, value, index)),
        site_(site),
        value_(value),
        index_(index) {}

  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  [[nodiscard]] double value() const noexcept { return value_; }
  /// Element index for range checks, -1 for scalar checks.
  [[nodiscard]] std::ptrdiff_t index() const noexcept { return index_; }

 private:
  static std::string format(const char* site, double value, std::ptrdiff_t index) {
    std::string msg = "non-finite value " + std::to_string(value) + " at boundary " + site;
    if (index >= 0) msg += " [element " + std::to_string(index) + "]";
    return msg;
  }

  std::string site_;
  double value_ = 0.0;
  std::ptrdiff_t index_ = -1;
};

/// Passes `value` through unless it is NaN/Inf, in which case it throws
/// NonFiniteError naming the boundary.
inline double check_finite(double value, const char* site) {
  if (!std::isfinite(value)) [[unlikely]] {
    throw NonFiniteError(site, value);
  }
  return value;
}

/// Checks every element of [values, values + n); the diagnostic names
/// the first offending element.
inline void check_finite_range(const double* values, std::size_t n, const char* site) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(values[i])) [[unlikely]] {
      throw NonFiniteError(site, values[i], static_cast<std::ptrdiff_t>(i));
    }
  }
}

/// A named boundary: bind the site once, check many values through it.
class FiniteGuard final {
 public:
  constexpr explicit FiniteGuard(const char* site) noexcept : site_(site) {}

  double operator()(double value) const { return check_finite(value, site_); }
  void range(const double* values, std::size_t n) const {
    check_finite_range(values, n, site_);
  }
  [[nodiscard]] constexpr const char* site() const noexcept { return site_; }

 private:
  const char* site_;
};

}  // namespace nanocost::robust
