// Prometheus text exposition (format 0.0.4) of a MetricsSnapshot.
//
// Metric names in the registry use dots ("serve.queue_depth"); the
// exposition format allows only [a-zA-Z0-9_:], so names are sanitized
// (every illegal byte becomes '_', a leading digit gets a '_' prefix).
// Counters and gauges render as one sample each; histograms render in
// the cumulative `_bucket{le="..."}` / `_sum` / `_count` form Prometheus
// expects -- bucket counts accumulate left to right and the "+Inf"
// bucket always equals `_count`.  Each metric is preceded by a `# TYPE`
// line; scrapers compute rates themselves (the daemon never resets on
// scrape, DESIGN.md section 15).
#pragma once

#include <string>
#include <string_view>

#include "nanocost/obs/metrics.hpp"

namespace nanocost::obs {

/// "serve.queue_depth" -> "serve_queue_depth"; "9lives" -> "_9lives".
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Renders `snap` as Prometheus exposition text.
[[nodiscard]] std::string render_metrics_prometheus(const MetricsSnapshot& snap);

/// Convenience: snapshot the live registry and render it.
[[nodiscard]] std::string render_metrics_prometheus();

}  // namespace nanocost::obs
