// Span tracer: RAII scopes -> Chrome trace-event JSON.
//
// An ObsSpan marks one timed scope (a thread-pool batch, a campaign
// wave, an anneal temperature level).  When tracing is off -- the
// default -- constructing a span costs one relaxed atomic load and a
// predictable branch, mirroring robust's fault-injection gate.  When
// tracing is on, each span records (name, thread, start, duration, up
// to two integer args) into a per-thread buffer; stop_trace() (or the
// atexit hook installed when NANOCOST_TRACE enables tracing from the
// environment) merges the buffers and writes Chrome trace-event JSON
// loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Tracing is observational only: it reads clocks and writes buffers,
// never engine state, so traced runs are bitwise-identical to untraced
// ones (tests/obs_test.cpp).
//
// Span and arg names must be string literals (or otherwise outlive the
// trace); the tracer stores the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace nanocost::obs {

namespace detail {

/// 0 = not yet initialised (env not read), 1 = disabled, 2 = enabled.
extern std::atomic<int> g_trace_state;

/// Reads NANOCOST_TRACE once and settles g_trace_state.  An empty value
/// prints one stderr diagnostic and disables tracing.
bool init_trace_state_from_env();

/// Nanoseconds since the trace epoch (the moment tracing started).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

struct SpanRecord final {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;
  std::uint64_t dur_ns = 0;
  const char* arg_key[2] = {nullptr, nullptr};
  std::uint64_t arg_val[2] = {0, 0};
  int n_args = 0;
};

/// Appends one finished span to the calling thread's buffer.
void record_span(const SpanRecord& record) noexcept;

}  // namespace detail

/// True when span tracing is on.  The off path is a single relaxed load
/// plus compare.
[[nodiscard]] inline bool trace_enabled() noexcept {
  const int s = detail::g_trace_state.load(std::memory_order_relaxed);
  if (s == 0) [[unlikely]] {
    return detail::init_trace_state_from_env();
  }
  return s == 2;
}

/// Starts tracing into `path` (overwrites any previous trace target and
/// discards buffered events from earlier sessions).  Programmatic
/// equivalent of NANOCOST_TRACE=<path>.
void start_trace(std::string path);

/// Stops tracing and writes the collected events to the configured
/// path.  Returns false (with one stderr diagnostic) when the file
/// cannot be written.  A no-op returning true when tracing is off.
bool stop_trace();

/// The path the current/last trace session writes to (empty when
/// tracing was never enabled).
[[nodiscard]] std::string trace_path();

/// RAII timed scope.  Destruction records the span; arg() attaches up
/// to two named integer arguments (shown in the trace viewer).
class ObsSpan final {
 public:
  explicit ObsSpan(const char* name) noexcept : name_(name) {
    if (trace_enabled()) [[unlikely]] {
      armed_ = true;
      t0_ns_ = detail::trace_now_ns();
    }
  }
  ~ObsSpan() {
    if (armed_) [[unlikely]] {
      finish();
    }
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// `key` must be a string literal; at most two args are kept.
  void arg(const char* key, std::uint64_t value) noexcept {
    if (armed_ && n_args_ < 2) {
      arg_key_[n_args_] = key;
      arg_val_[n_args_] = value;
      ++n_args_;
    }
  }

  /// Whether this span is recording (tracing was on at construction).
  [[nodiscard]] bool armed() const noexcept { return armed_; }

 private:
  void finish() noexcept;

  const char* name_;
  std::uint64_t t0_ns_ = 0;
  const char* arg_key_[2] = {nullptr, nullptr};
  std::uint64_t arg_val_[2] = {0, 0};
  int n_args_ = 0;
  bool armed_ = false;
};

}  // namespace nanocost::obs
