// Thread-safe metrics registry: named counters, gauges, fixed-bucket
// histograms.
//
// The engine's long campaigns (fabsim lots, risk sweeps, anneals) are
// invisible without instrumentation, but instrumentation must be free
// when nobody is looking.  The contract mirrors robust's fault
// injection: every site first checks `metrics_enabled()` -- one relaxed
// atomic load plus a predictable branch when metrics are off -- and
// only then touches a metric.  Hot-path updates on enabled metrics are
// lock-free relaxed atomics; registration (first lookup of a name) takes
// a mutex once per site.
//
// Metrics are observational only: no engine output may depend on a
// metric value, so enabling them cannot perturb results (enforced by
// tests/obs_test.cpp bitwise-determinism checks).
//
// Enable via code (`set_metrics_enabled(true)`) or the environment
// (`NANOCOST_METRICS=1`).  A malformed NANOCOST_METRICS value prints
// one diagnostic to stderr and leaves metrics disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nanocost::obs {

/// Monotone event count.  add() is a relaxed fetch_add: lock-free, and
/// safe from any thread.
class Counter final {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (a level, not a count).  Stores a double via
/// relaxed atomic store; add() is a CAS loop (rare path, still
/// lock-free).
class Gauge final {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over non-negative integer samples (durations
/// in microseconds, byte counts, ...).  Bucket i counts samples
/// `v <= bounds[i]` (first match); larger samples land in the overflow
/// bucket.  All updates are relaxed atomics; record() is wait-free
/// except the min/max CAS loops (which converge in a handful of steps).
class Histogram final {
 public:
  Histogram(std::string name, std::vector<std::uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;  ///< 0 when empty
  [[nodiscard]] std::uint64_t max() const noexcept;  ///< 0 when empty
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  void reset() noexcept;

 private:
  std::string name_;
  std::vector<std::uint64_t> bounds_;  ///< ascending upper bounds
  /// bounds_.size() + 1 slots; the last is the overflow bucket.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// Looks up (or registers) a metric by name.  References stay valid for
/// the process lifetime; idiomatic sites cache them in a function-local
/// static so the registry mutex is paid once per site:
///   static obs::Counter& c = obs::counter("fabsim.wafers");
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
/// `bounds` must be non-empty and strictly ascending; a second lookup of
/// an existing histogram returns it unchanged (bounds ignored).
[[nodiscard]] Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds);

/// Value of a registered counter, or 0 when no such counter exists --
/// for report surfaces that must not create metrics as a side effect.
[[nodiscard]] std::uint64_t counter_value(std::string_view name);
/// The registered histogram, or nullptr.
[[nodiscard]] const Histogram* find_histogram(std::string_view name);

/// Forces metrics on or off, overriding (and settling) the environment.
void set_metrics_enabled(bool enabled);

/// Zeroes every registered metric.  Not atomic with respect to
/// concurrent updates; call between runs (tests, benches), not during.
void reset_metrics();

/// Point-in-time copy of every registered metric, sorted by name.
struct HistogramSnapshot final {
  std::string name;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};
struct MetricsSnapshot final {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};
[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Human-readable snapshot block (one metric per line).  The snapshot
/// overloads render a caller-held copy (e.g. one decoded from NCSTAT01,
/// obs/stats.hpp); the zero-arg forms snapshot the live registry.
[[nodiscard]] std::string render_metrics_text(const MetricsSnapshot& snap);
[[nodiscard]] std::string render_metrics_text();
/// The same snapshot as a JSON object:
///   {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}
[[nodiscard]] std::string render_metrics_json(const MetricsSnapshot& snap);
[[nodiscard]] std::string render_metrics_json();

namespace detail {

/// 0 = not yet initialised (env not read), 1 = disabled, 2 = enabled.
extern std::atomic<int> g_metrics_state;

/// Reads NANOCOST_METRICS once and settles g_metrics_state.  A value
/// that is not a recognised boolean prints one stderr diagnostic and
/// disables metrics.
bool init_metrics_state_from_env();

}  // namespace detail

/// True when metrics collection is on.  The off path is a single
/// relaxed load plus compare -- cheap enough for every hot-path site.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  const int s = detail::g_metrics_state.load(std::memory_order_relaxed);
  if (s == 0) [[unlikely]] {
    return detail::init_metrics_state_from_env();
  }
  return s == 2;
}

}  // namespace nanocost::obs
