// NCSTAT01: the portable binary encoding of a MetricsSnapshot, plus the
// snapshot math remote scrapers need (quantiles, deltas).
//
// The serve daemon answers a kStatsRequest with this blob, so it is a
// *wire format* and held to the NCCKPT01/NCWIRE01 strictness standard:
// versioned magic, per-entry field tags, every declared length validated
// against the remaining bytes before any allocation, trailing bytes
// rejected, and a trailing fnv1a checksum so a single bit flip anywhere
// after the magic is caught.  One NCSTAT01 blob (little-endian):
//
//   magic   "NCSTAT01"                      8 bytes
//   u32     version (kStatVersion)
//   u64     counter count,   each: u8 tag 0x01, str name, u64 value
//   u64     gauge count,     each: u8 tag 0x02, str name, f64 value (IEEE bits)
//   u64     histogram count, each: u8 tag 0x03, str name,
//             u64 bound count, u64 bounds[] (strictly ascending),
//             u64 buckets[bounds+1] (overflow last),
//             u64 count, u64 sum, u64 min, u64 max
//   u64     fnv1a over everything after the magic (version .. last bucket)
//
// Quantile estimation reconstructs percentiles from the fixed buckets:
// the target rank q*count is located in its bucket and linearly
// interpolated between the bucket's lower and upper bound, then clamped
// to the histogram's exact [min, max]; ranks landing in the overflow
// bucket report the exact max (DESIGN.md section 15 states the rule).
//
// Deltas subtract an older scrape from a newer one so scrapers can
// compute rates; the daemon itself never resets counters on scrape.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "nanocost/obs/metrics.hpp"

namespace nanocost::obs {

inline constexpr char kStatMagic[8] = {'N', 'C', 'S', 'T', 'A', 'T', '0', '1'};
inline constexpr std::uint32_t kStatVersion = 1;
/// Decode-side sanity caps: a corrupt length past these is rejected
/// before any allocation is attempted.
inline constexpr std::uint64_t kMaxStatNameBytes = 4096;
inline constexpr std::uint64_t kMaxStatBounds = 4096;

/// Thrown on any structural damage to an NCSTAT01 blob.  The message
/// names the field and the offense.
class StatError final : public std::runtime_error {
 public:
  explicit StatError(const std::string& what) : std::runtime_error(what) {}
};

/// Serializes a snapshot.  Throws StatError on a malformed snapshot
/// (bucket/bound count mismatch) -- encode never produces bytes decode
/// would reject.
[[nodiscard]] std::vector<std::uint8_t> encode_stats(const MetricsSnapshot& snap);

/// Strict decode; throws StatError on truncation, bad magic/version,
/// unknown field tags, corrupt lengths, non-ascending bounds, trailing
/// bytes, or a checksum mismatch.
[[nodiscard]] MetricsSnapshot decode_stats(const std::vector<std::uint8_t>& blob);

/// Estimated value at quantile `q` in [0, 1] (clamped).  0 on an empty
/// histogram; see the interpolation rule above.
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& h, double q) noexcept;

struct HistogramQuantiles final {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};
[[nodiscard]] HistogramQuantiles histogram_quantiles(const HistogramSnapshot& h) noexcept;

/// The change from `older` to `newer`: counters and histogram
/// buckets/count/sum subtract (a shrunk value means the server
/// restarted, and the newer value is reported whole); gauges and
/// histogram min/max are levels/lifetime extremes and pass through from
/// `newer`.  Metrics absent from `older` are treated as previously
/// zero; metrics absent from `newer` are dropped.
[[nodiscard]] MetricsSnapshot delta_stats(const MetricsSnapshot& newer,
                                          const MetricsSnapshot& older);

}  // namespace nanocost::obs
