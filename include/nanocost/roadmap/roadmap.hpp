// Technology roadmap in the shape of the 1999 ITRS.
//
// The paper computes Figures 2 and 3 from the ITRS-1999 MPU tables
// (transistor counts, chip sizes, feature sizes per node-year).  The
// original tables are not redistributable, so this module carries a
// *reconstruction* from the publicly quoted executive-summary numbers:
// cost-performance MPU at introduction, transistor count roughly
// doubling per node, chip size creeping ~10% per node, feature size
// scaling 0.7x per node.  The shapes that matter for the paper's
// argument (declining ITRS-implied s_d, the constant-die-cost squeeze)
// are properties of these scaling laws, not of any individual cell in
// the original table.  See DESIGN.md "Substitutions".
#pragma once

#include <span>
#include <string>
#include <vector>

#include "nanocost/units/area.hpp"
#include "nanocost/units/length.hpp"
#include "nanocost/units/money.hpp"

namespace nanocost::roadmap {

/// One roadmap node (a technology generation).
struct TechnologyNode final {
  int year = 0;
  std::string name;                         ///< e.g. "180nm"
  units::Nanometers half_pitch{};           ///< minimum feature size lambda
  double mpu_transistors = 0.0;             ///< cost-performance MPU, at introduction
  units::SquareCentimeters mpu_chip_area{}; ///< at introduction
  units::Millimeters wafer_diameter{};
  int metal_layers = 0;
  int mask_count = 0;
  /// Manufacturing cost per cm^2 of fabricated wafer (the paper's
  /// optimistic scenario holds this constant at 8 $/cm^2).
  units::CostPerArea cost_per_cm2{};

  /// Feature size as the micrometer value used throughout the models.
  [[nodiscard]] units::Micrometers lambda() const noexcept {
    return half_pitch.to_micrometers();
  }
  /// s_d implied by this node's MPU numbers (paper Fig. 2).
  [[nodiscard]] double implied_decompression_index() const;
};

/// An ordered set of technology nodes.
class Roadmap final {
 public:
  explicit Roadmap(std::vector<TechnologyNode> nodes);

  /// The ITRS-1999 reconstruction: 180 nm (1999) through 35 nm (2014).
  [[nodiscard]] static Roadmap itrs1999();

  /// Same trajectory but with cost per cm^2 escalating `rate` per node
  /// (the paper's "highly unlikely" optimistic scenario relaxed).
  [[nodiscard]] static Roadmap itrs1999_with_cost_escalation(double rate_per_node);

  [[nodiscard]] std::span<const TechnologyNode> nodes() const noexcept { return nodes_; }
  [[nodiscard]] const TechnologyNode& front() const noexcept { return nodes_.front(); }
  [[nodiscard]] const TechnologyNode& back() const noexcept { return nodes_.back(); }

  /// Node introduced in `year`; throws std::out_of_range if absent.
  [[nodiscard]] const TechnologyNode& at_year(int year) const;

  /// Node whose half pitch is nearest to `half_pitch`.
  [[nodiscard]] const TechnologyNode& nearest(units::Nanometers half_pitch) const;

  /// Geometric interpolation of the trajectory at an arbitrary year
  /// between the first and last nodes (clamped outside).
  [[nodiscard]] TechnologyNode interpolate(double year) const;

 private:
  std::vector<TechnologyNode> nodes_;  // ascending year
};

}  // namespace nanocost::roadmap
