// Aggregate statistics over the Table A1 dataset, and the quantified
// Fig.-1-vs-Fig.-2 divergence: how far the industry's measured density
// sits from what the roadmap assumes at the same feature size.
#pragma once

#include <span>
#include <vector>

#include "nanocost/data/table_a1.hpp"
#include "nanocost/roadmap/roadmap.hpp"

namespace nanocost::data {

/// Summary of one group of rows.
struct GroupStats final {
  int count = 0;
  double mean_sd = 0.0;
  double median_sd = 0.0;
  double min_sd = 0.0;
  double max_sd = 0.0;
  double min_lambda_um = 0.0;
  double max_lambda_um = 0.0;
};

/// Statistics of the logic s_d over a row set; throws on empty input.
[[nodiscard]] GroupStats group_stats(std::span<const DesignRecord* const> rows);

/// Per-device-class statistics over the whole table.
struct ClassStats final {
  DeviceClass device_class = DeviceClass::kCpu;
  GroupStats stats;
};
[[nodiscard]] std::vector<ClassStats> stats_by_class();

/// The industry-vs-roadmap divergence at one node: the trend-fitted
/// industrial s_d at the node's feature size over the roadmap-implied
/// s_d.  > 1 means industry is sparser than the roadmap needs -- Fig. 1
/// colliding with Fig. 2.
struct DivergencePoint final {
  int year = 0;
  units::Micrometers lambda{};
  double industrial_sd = 0.0;  ///< from the all-rows trend fit
  double roadmap_sd = 0.0;     ///< node-implied (Fig. 2)
  double ratio = 0.0;
};

[[nodiscard]] std::vector<DivergencePoint> industry_vs_roadmap(
    const roadmap::Roadmap& roadmap);

}  // namespace nanocost::data
