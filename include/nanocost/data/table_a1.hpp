// Table A1 of the paper: 49 published industrial designs (die size,
// feature size, transistor counts, memory/logic split) and the design
// decompression indices derived from them.
//
// Transcription note: the available scan of the paper's appendix table
// is noisy; for every row we carry the raw fields reconciled so that
// eq. (2) reproduces the printed s_d where that value is legible, and
// the device's published ISSCC/CICC data where it is not (see
// EXPERIMENTS.md, "Table A1 provenance").  `reconstructed` marks rows
// where any cell had to be rederived.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nanocost/units/area.hpp"
#include "nanocost/units/length.hpp"

namespace nanocost::data {

enum class Vendor {
  kIntel,
  kAmd,
  kIbm,
  kMotorola,
  kDec,     ///< Alpha
  kHp,      ///< PA-RISC
  kMips,
  kSun,     ///< MAJC
  kCyrix,
  kTi,      ///< DSPs
  kOther,
};

enum class DeviceClass {
  kCpu,        ///< custom microprocessors
  kDsp,
  kAsic,
  kMpeg,       ///< MPEG codec ASICs
  kNetwork,    ///< ATM / telecom
  kVideoGame,
};

[[nodiscard]] std::string vendor_name(Vendor v);
[[nodiscard]] std::string device_class_name(DeviceClass c);

/// One row of Table A1.  Transistor counts are absolute (not millions).
/// Memory/logic splits are present only where the paper prints them.
struct DesignRecord final {
  int id = 0;                               ///< row number in the paper's table
  std::string device;                       ///< e.g. "Pentium II (P6)"
  Vendor vendor = Vendor::kOther;
  DeviceClass device_class = DeviceClass::kCpu;
  units::SquareCentimeters die_area{};
  units::Micrometers feature_size{};
  double total_transistors = 0.0;
  std::optional<double> memory_transistors;
  std::optional<double> logic_transistors;
  std::optional<units::SquareCentimeters> memory_area;
  std::optional<units::SquareCentimeters> logic_area;
  bool reconstructed = false;               ///< any cell rederived from s_d / device data

  /// s_d over the whole die (eq. 2).
  [[nodiscard]] double overall_sd() const;
  /// s_d of the memory portion; nullopt without a split.
  [[nodiscard]] std::optional<double> memory_sd() const;
  /// s_d of the logic portion; for rows without a split this equals
  /// overall_sd() (the paper plots these as "logic").
  [[nodiscard]] double logic_sd() const;
  [[nodiscard]] bool has_split() const noexcept {
    return memory_transistors.has_value() && memory_area.has_value();
  }
};

/// The full 49-row dataset, ordered by the paper's row ids.
[[nodiscard]] std::span<const DesignRecord> table_a1();

/// Rows matching a vendor / device class.
[[nodiscard]] std::vector<const DesignRecord*> rows_by_vendor(Vendor v);
[[nodiscard]] std::vector<const DesignRecord*> rows_by_class(DeviceClass c);

/// Log-linear trend fit of logic s_d against feature size:
///   ln(s_d) = intercept + slope * ln(lambda_um)
/// Negative slope means s_d *grows* as feature size shrinks -- the
/// "worsening design density" trend of Fig. 1.
struct TrendFit final {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  int points = 0;

  /// Predicted s_d at the given feature size.
  [[nodiscard]] double predict(units::Micrometers lambda) const;
};

/// Fits the trend over the given rows (needs >= 2 distinct lambdas).
[[nodiscard]] TrendFit fit_sd_trend(std::span<const DesignRecord* const> rows);
/// Fits over the whole table.
[[nodiscard]] TrendFit fit_sd_trend_all();

}  // namespace nanocost::data
