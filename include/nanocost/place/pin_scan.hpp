// Pin-set extent scans for the HPWL cache.
//
// A net's half-perimeter needs the min/max column and row over its
// pins.  The pin coordinates live as (c, r) float pairs -- small
// integers, exact in float -- so the scan is a pure min/max reduction,
// and float min/max is associative and commutative on them (no NaNs,
// no signed zeros: coordinates are non-negative integers).  Every lane
// width therefore produces the *same* floats no matter how the
// reduction is grouped, which is what lets the SSE2 pair scan and the
// AVX 4-pin (8-float) scan sit behind one contract: bitwise equal to
// scan_span_scalar on every input (simd_parity_test).
//
// All variants use the clamped-index idiom for their preamble and
// tails: reading the last pin again for padding lanes cannot change a
// min or a max.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "nanocost/exec/simd.hpp"

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define NANOCOST_PIN_SCAN_SSE2 1
#endif
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define NANOCOST_PIN_SCAN_AVX2 1
#endif

// The dispatcher must land inline in the annealer's inner loop: the
// call it contains to the target("avx2") scan makes GCC's heuristics
// refuse to inline it on their own, which costs ~9% of the whole
// anneal.
#if defined(__GNUC__) || defined(__clang__)
#define NANOCOST_PIN_SCAN_INLINE inline __attribute__((always_inline))
#else
#define NANOCOST_PIN_SCAN_INLINE inline
#endif

namespace nanocost::place::detail {

/// Gate coordinates as a float pair: column and row are tiny integers
/// (exact in float far beyond any realistic grid, < 2^24), and packing
/// them into adjacent lanes lets the vector scans min/max both axes at
/// once -- there is no SSE2 *integer* 32-bit min/max.  Aligned to 8 so
/// a pair loads as one 64-bit lane.
struct alignas(8) PinPos {
  float c = 0.0F, r = 0.0F;
};

/// Column/row extents of a pin set (max - min per axis, still float
/// and exact).
struct PinSpan {
  float span_c = 0.0F, span_r = 0.0F;
};

/// Scalar oracle: clamped 4-pin unroll plus a serial remainder.
inline PinSpan scan_span_scalar(const PinPos* pos, const std::int32_t* pin_gate,
                                std::int32_t begin, std::int32_t end) {
  const std::int32_t last = end - 1;
  const auto pin = [&](std::int32_t i) {
    return pos[static_cast<std::size_t>(pin_gate[static_cast<std::size_t>(std::min(i, last))])];
  };
  const PinPos p0 = pin(begin);
  const PinPos p1 = pin(begin + 1);
  const PinPos p2 = pin(begin + 2);
  const PinPos p3 = pin(begin + 3);
  float min_c = std::min(std::min(p0.c, p1.c), std::min(p2.c, p3.c));
  float max_c = std::max(std::max(p0.c, p1.c), std::max(p2.c, p3.c));
  float min_r = std::min(std::min(p0.r, p1.r), std::min(p2.r, p3.r));
  float max_r = std::max(std::max(p0.r, p1.r), std::max(p2.r, p3.r));
  for (std::int32_t i = begin + 4; i < end; ++i) {
    const PinPos p = pos[static_cast<std::size_t>(pin_gate[static_cast<std::size_t>(i)])];
    min_c = std::min(min_c, p.c);
    max_c = std::max(max_c, p.c);
    min_r = std::min(min_r, p.r);
    max_r = std::max(max_r, p.r);
  }
  return PinSpan{max_c - min_c, max_r - min_r};
}

#if defined(NANOCOST_PIN_SCAN_SSE2)

/// Two pins per register: minps/maxps reduce both axes of four pins in
/// two ops, then odd pins stream through the low pair.
inline PinSpan scan_span_sse2(const PinPos* pos, const std::int32_t* pin_gate,
                              std::int32_t begin, std::int32_t end) {
  const std::int32_t last = end - 1;
  const auto pin_pd = [&](std::int32_t i) {
    return reinterpret_cast<const double*>(
        &pos[static_cast<std::size_t>(pin_gate[static_cast<std::size_t>(std::min(i, last))])]);
  };
  const __m128 v01 =
      _mm_castpd_ps(_mm_loadh_pd(_mm_load_sd(pin_pd(begin)), pin_pd(begin + 1)));
  const __m128 v23 =
      _mm_castpd_ps(_mm_loadh_pd(_mm_load_sd(pin_pd(begin + 2)), pin_pd(begin + 3)));
  __m128 mn = _mm_min_ps(v01, v23);
  __m128 mx = _mm_max_ps(v01, v23);
  for (std::int32_t i = begin + 4; i < end; ++i) {
    const __m128 p = _mm_castpd_ps(_mm_load_sd(reinterpret_cast<const double*>(
        &pos[static_cast<std::size_t>(pin_gate[static_cast<std::size_t>(i)])])));
    const __m128 pp = _mm_movelh_ps(p, p);
    mn = _mm_min_ps(mn, pp);
    mx = _mm_max_ps(mx, pp);
  }
  mn = _mm_min_ps(mn, _mm_movehl_ps(mn, mn));
  mx = _mm_max_ps(mx, _mm_movehl_ps(mx, mx));
  const __m128 span = _mm_sub_ps(mx, mn);  // [span_c, span_r, ..]
  return PinSpan{_mm_cvtss_f32(span),
                 _mm_cvtss_f32(_mm_shuffle_ps(span, span, 1))};
}

#endif  // NANOCOST_PIN_SCAN_SSE2

#if defined(NANOCOST_PIN_SCAN_AVX2)

/// Clamped 4-pin (8-float) load: two 128-bit halves stitched with
/// insertf128, no gathers.  A free function because GCC lambdas do not
/// inherit the enclosing function's target attribute.
__attribute__((target("avx2"))) inline __m256 load_pin_quad_avx2(const PinPos* pos,
                                                                 const std::int32_t* pin_gate,
                                                                 std::int32_t i,
                                                                 std::int32_t last) {
  const auto pin_pd = [&](std::int32_t j) {
    return reinterpret_cast<const double*>(
        &pos[static_cast<std::size_t>(pin_gate[static_cast<std::size_t>(std::min(j, last))])]);
  };
  const __m128d lo = _mm_loadh_pd(_mm_load_sd(pin_pd(i)), pin_pd(i + 1));
  const __m128d hi = _mm_loadh_pd(_mm_load_sd(pin_pd(i + 2)), pin_pd(i + 3));
  return _mm256_castpd_ps(_mm256_insertf128_pd(_mm256_castpd128_pd256(lo), hi, 1));
}

/// Four pins (8 floats) per register: an 8-pin clamped preamble built
/// from two 128-bit halves, then 4 pins per iteration with a clamped
/// final quad.
__attribute__((target("avx2"), cold, noinline)) inline PinSpan scan_span_avx2(const PinPos* pos,
                                                              const std::int32_t* pin_gate,
                                                              std::int32_t begin,
                                                              std::int32_t end) {
  const std::int32_t last = end - 1;
  const auto quad = [&](std::int32_t i) { return load_pin_quad_avx2(pos, pin_gate, i, last); };
  const __m256 q0 = quad(begin);
  const __m256 q1 = quad(begin + 4);
  __m256 mn = _mm256_min_ps(q0, q1);
  __m256 mx = _mm256_max_ps(q0, q1);
  for (std::int32_t i = begin + 8; i < end; i += 4) {
    const __m256 q = quad(i);  // clamped: a short final quad re-reads the last pin
    mn = _mm256_min_ps(mn, q);
    mx = _mm256_max_ps(mx, q);
  }
  __m128 mn4 = _mm_min_ps(_mm256_castps256_ps128(mn), _mm256_extractf128_ps(mn, 1));
  __m128 mx4 = _mm_max_ps(_mm256_castps256_ps128(mx), _mm256_extractf128_ps(mx, 1));
  mn4 = _mm_min_ps(mn4, _mm_movehl_ps(mn4, mn4));
  mx4 = _mm_max_ps(mx4, _mm_movehl_ps(mx4, mx4));
  const __m128 span = _mm_sub_ps(mx4, mn4);
  return PinSpan{_mm_cvtss_f32(span),
                 _mm_cvtss_f32(_mm_shuffle_ps(span, span, 1))};
}

#endif  // NANOCOST_PIN_SCAN_AVX2

/// Level-pinned dispatch; callers cache the level once (a per-scan
/// simd_level() call would dwarf the scan).  The AVX2 scan only pays
/// for itself past its 8-pin preamble, so smaller nets -- the common
/// case -- take the SSE2 pair scan even at kAvx2; every level is
/// bitwise-identical, so the per-size choice cannot perturb results.
NANOCOST_PIN_SCAN_INLINE PinSpan scan_span(exec::SimdLevel level, const PinPos* pos,
                                           const std::int32_t* pin_gate, std::int32_t begin,
                                           std::int32_t end) {
#if defined(NANOCOST_PIN_SCAN_AVX2)
  if (__builtin_expect(level == exec::SimdLevel::kAvx2 && end - begin > 8, 0)) {
    return scan_span_avx2(pos, pin_gate, begin, end);
  }
#endif
#if defined(NANOCOST_PIN_SCAN_SSE2)
  if (level >= exec::SimdLevel::kSse2) return scan_span_sse2(pos, pin_gate, begin, end);
#endif
  return scan_span_scalar(pos, pin_gate, begin, end);
}

}  // namespace nanocost::place::detail
