// Incremental per-net bounding-box cache for the annealing placer.
//
// The placer's inner loop needs the weighted-HPWL delta of a swap.
// Recomputing each affected net's bounding box from its pins through
// the placement (site -> row/col division per pin) makes a move cost
// O(sum of affected-net pin counts) twice per move; this cache keeps
// every gate's coordinates and every net's box extremes plus the
// number of pins sitting on each extreme, so a proposed swap is
// evaluated in O(1) per affected net in the common case: removing the
// moved pin cannot shrink an extreme it does not sit on (or one still
// held by other pins), so the new value is the surviving extremes
// stretched to the destination.  Only a pin that is the last on one
// of its extremes triggers a rescan of the net's cached coordinates
// (recompute-on-shrink), and 2-pin nets -- the bulk of real netlists
// -- bypass the box entirely.  Rejection, the overwhelmingly common
// annealing outcome, costs a coordinate restore and nothing else; all
// box/value writes happen on commit.
//
// Invariant (cross-checked by place_incremental_test and, when the
// NANOCOST_PLACE_CHECK environment variable is set, by the placer
// itself every N moves): after any sequence of committed swaps, the
// cached boxes equal the boxes recomputed from scratch, and resum()
// equals total_weighted_hpwl of the tracked placement bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "nanocost/exec/simd.hpp"
#include "nanocost/netlist/netlist.hpp"
#include "nanocost/place/pin_scan.hpp"
#include "nanocost/place/placer.hpp"

namespace nanocost::place {

/// Tracks per-net half-perimeter boxes under gate moves.
class HpwlCache final {
 public:
  /// Snapshots `placement`'s coordinates; `net_weights` may be null
  /// (all nets weigh 1) and is indexed by net id with missing entries
  /// defaulting to 1, matching total_weighted_hpwl.
  HpwlCache(const netlist::Netlist& netlist, const Placement& placement,
            double row_weight = 2.0, const std::vector<double>* net_weights = nullptr);

  /// Running weighted-HPWL total over committed swaps.  Subject to
  /// floating-point drift over many commits; resync with resum().
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Exact weighted HPWL re-summed from the cached integer boxes in
  /// net order: O(nets), drift-free, bitwise-equal to
  /// total_weighted_hpwl of the tracked placement.
  [[nodiscard]] double resum() const;

  /// Proposes moving `gate` to (row, col), with `other_gate` (>= 0 for
  /// a swap, -1 for a move to an empty site) taking gate's old
  /// position.  Returns the weighted-HPWL delta and leaves the
  /// proposal pending: follow with commit() to adopt it or discard()
  /// to drop it.  At most one proposal may be pending.  Defined inline
  /// below: this and discard() are the annealer's per-move costs.
  double peek_swap(std::int32_t gate, std::int32_t row, std::int32_t col,
                   std::int32_t other_gate);

  /// Adopts the pending proposal (boxes and running total).
  void commit() {
    // Rebuild every affected net's box from the (already moved)
    // coordinates.  A net shared by both gates is scanned twice, which
    // is idempotent; commits are the rare annealing outcome, so the
    // *peek* path stays write-free and all bookkeeping lands here.
    refresh_nets_of(pending_gate_);
    if (pending_other_ >= 0) refresh_nets_of(pending_other_);
    total_ += pending_delta_;
    pending_gate_ = -1;
  }

  /// Drops the pending proposal (restores the moved coordinates).
  void discard() {
    const auto ga = static_cast<std::size_t>(pending_gate_);
    if (pending_other_ >= 0) {
      // The partner returns to the proposal site, i.e. gate's current spot.
      pos_[static_cast<std::size_t>(pending_other_)] = pos_[ga];
    }
    pos_[ga] = Pos{static_cast<float>(pending_old_c_), static_cast<float>(pending_old_r_)};
    pending_gate_ = -1;
  }

  /// peek_swap + commit in one call.  Calling again with the original
  /// position reverts, and the returned delta is the exact negation.
  double apply_swap(std::int32_t gate, std::int32_t row, std::int32_t col,
                    std::int32_t other_gate) {
    const double delta = peek_swap(gate, row, col, other_gate);
    commit();
    return delta;
  }

  [[nodiscard]] std::int32_t row_of(std::int32_t gate) const {
    return static_cast<std::int32_t>(pos_[static_cast<std::size_t>(gate)].r);
  }
  [[nodiscard]] std::int32_t col_of(std::int32_t gate) const {
    return static_cast<std::int32_t>(pos_[static_cast<std::size_t>(gate)].c);
  }
  /// Cached HPWL of one net (unweighted).
  [[nodiscard]] double net_hpwl(std::int32_t net) const;

 private:
  // Gate coordinates as (c, r) float pairs -- see pin_scan.hpp, which
  // owns the layout and the vector scans over it.
  using Pos = detail::PinPos;
  struct Box {
    std::int32_t min_c = 0, max_c = 0, min_r = 0, max_r = 0;
    std::int32_t cnt_min_c = 0, cnt_max_c = 0, cnt_min_r = 0, cnt_max_r = 0;
  };

  /// Pin count at or below which a net's value is always rescanned from
  /// its cached coordinates instead of going through the committed box:
  /// at a handful of pins the register min/max scan is cheaper than the
  /// box load and extreme tests.
  static constexpr std::int32_t kSmallNetPins = 8;

  [[nodiscard]] Box scan_box(std::int32_t net) const;
  // Force-inlined: with three scan variants reachable from the
  // dispatch, GCC's size heuristics otherwise stop inlining this
  // into the annealer's move loop, costing ~10% of the anneal.
  [[nodiscard]] NANOCOST_PIN_SCAN_INLINE double scan_value(std::int32_t net) const;
  [[nodiscard]] double box_value(const Box& box) const {
    return static_cast<double>(box.max_c - box.min_c) +
           row_weight_ * static_cast<double>(box.max_r - box.min_r);
  }
  void refresh_nets_of(std::int32_t gate);

  double row_weight_;
  // Scan lane width, resolved once at construction (scan_value runs per
  // affected net per move; a dispatch call there would dominate it).
  exec::SimdLevel simd_level_ = exec::simd_level();
  // Gate coordinates (the cache's own copy of the placement), packed
  // so a pin visit touches one cache line, not two.
  std::vector<Pos> pos_;
  // CSR gate -> (net, pin multiplicity in that net).
  std::vector<std::int32_t> gate_net_offset_;
  std::vector<std::int32_t> gate_net_id_;
  std::vector<std::int32_t> gate_net_mult_;
  // CSR net -> gate pin occurrences (driver + sinks).
  std::vector<std::int32_t> net_pin_offset_;
  std::vector<std::int32_t> net_pin_gate_;
  std::vector<Box> box_;
  // box_value of the committed box, kept in lockstep so the delta loop
  // never recomputes the "old" side.
  std::vector<double> value_;
  std::vector<double> weight_;
  double total_ = 0.0;
  // Pending-proposal state: evaluation writes nothing but the moved
  // coordinates, so this is all a discard has to undo.
  double pending_delta_ = 0.0;
  std::int32_t pending_gate_ = -1;
  std::int32_t pending_other_ = -1;
  std::int32_t pending_old_r_ = 0;
  std::int32_t pending_old_c_ = 0;
};

NANOCOST_PIN_SCAN_INLINE double HpwlCache::scan_value(std::int32_t net) const {
  const auto n = static_cast<std::size_t>(net);
  const std::int32_t begin = net_pin_offset_[n];
  const std::int32_t end = net_pin_offset_[n + 1];
  if (begin == end) return 0.0;
  // The scan variants (pin_scan.hpp) share one clamped-unroll contract:
  // coordinates are small integers, min/max on them is order-free, and
  // the float spans (and their widening to double) are exact, so every
  // lane width returns the same value bitwise.
  const detail::PinSpan s =
      detail::scan_span(simd_level_, pos_.data(), net_pin_gate_.data(), begin, end);
  return static_cast<double>(s.span_c) + row_weight_ * static_cast<double>(s.span_r);
}

inline double HpwlCache::peek_swap(std::int32_t gate, std::int32_t row, std::int32_t col,
                                   std::int32_t other_gate) {
  const auto ga = static_cast<std::size_t>(gate);
  const Pos old_pos = pos_[ga];
  const auto old_r = static_cast<std::int32_t>(old_pos.r);
  const auto old_c = static_cast<std::int32_t>(old_pos.c);
  pending_gate_ = gate;
  pending_other_ = other_gate;
  pending_old_r_ = old_r;
  pending_old_c_ = old_c;

  // Move the coordinates up front: value scans read them directly.
  pos_[ga] = Pos{static_cast<float>(col), static_cast<float>(row)};
  if (other_gate >= 0) {
    pos_[static_cast<std::size_t>(other_gate)] = old_pos;
  }

  // Each affected net's new value: small nets (the bulk of real
  // netlists) are min/max-scanned from their cached pin coordinates in
  // registers -- all pins of one net are contiguous in the CSR, and at
  // a handful of pins a scan beats any bookkeeping.  High-fanout nets
  // go O(1) through their committed box: removing the moved pin
  // cannot shrink an extreme it does not sit on (or one still held by
  // other pins, per the extreme counts), so the new value is the
  // surviving extremes stretched to the destination; only a pin that
  // is the last on one of its extremes forces a rescan
  // (recompute-on-shrink).  The old value is the cached value_[n].
  // Nothing is written on the peek path.
  const auto eval_moved = [&](std::size_t n, std::int32_t fc, std::int32_t fr, std::int32_t tc,
                              std::int32_t tr, std::int32_t mult) -> double {
    if (net_pin_offset_[n + 1] - net_pin_offset_[n] <= kSmallNetPins) {
      return scan_value(static_cast<std::int32_t>(n));
    }
    const Box& box = box_[n];
    if ((fc == box.min_c && box.cnt_min_c == mult) ||
        (fc == box.max_c && box.cnt_max_c == mult) ||
        (fr == box.min_r && box.cnt_min_r == mult) ||
        (fr == box.max_r && box.cnt_max_r == mult)) {
      return scan_value(static_cast<std::int32_t>(n));
    }
    const std::int32_t min_c = std::min(box.min_c, tc);
    const std::int32_t max_c = std::max(box.max_c, tc);
    const std::int32_t min_r = std::min(box.min_r, tr);
    const std::int32_t max_r = std::max(box.max_r, tr);
    return static_cast<double>(max_c - min_c) + row_weight_ * static_cast<double>(max_r - min_r);
  };

  double delta = 0.0;
  const auto gi = static_cast<std::size_t>(gate);
  const std::int32_t gb = gate_net_offset_[gi];
  const std::int32_t ge = gate_net_offset_[gi + 1];

  if (other_gate < 0) {
    // Move to an empty site: one gate, distinct nets, no dedup needed.
    for (std::int32_t i = gb; i < ge; ++i) {
      const auto n = static_cast<std::size_t>(gate_net_id_[static_cast<std::size_t>(i)]);
      const double change = eval_moved(n, old_c, old_r, col, row,
                                       gate_net_mult_[static_cast<std::size_t>(i)]) -
                            value_[n];
      // Unit weights multiply by exactly 1.0, so one unconditional
      // multiply is branchless and bitwise-identical either way.
      delta += weight_[n] * change;
    }
  } else {
    // Swap: each gate's net list is ascending (built in net order), so
    // a two-pointer merge visits every affected net once and catches
    // nets shared by both gates (counted once, scanned with both
    // coordinates already in place) without any marking state.
    const auto oi = static_cast<std::size_t>(other_gate);
    const std::int32_t ob = gate_net_offset_[oi];
    const std::int32_t oe = gate_net_offset_[oi + 1];
    std::int32_t i = gb;
    std::int32_t j = ob;
    constexpr std::int32_t kEnd = std::numeric_limits<std::int32_t>::max();
    while (i < ge || j < oe) {
      const std::int32_t ni = i < ge ? gate_net_id_[static_cast<std::size_t>(i)] : kEnd;
      const std::int32_t nj = j < oe ? gate_net_id_[static_cast<std::size_t>(j)] : kEnd;
      double value;
      std::size_t n;
      if (ni < nj) {
        n = static_cast<std::size_t>(ni);
        value = eval_moved(n, old_c, old_r, col, row,
                           gate_net_mult_[static_cast<std::size_t>(i)]);
        ++i;
      } else if (nj < ni) {
        n = static_cast<std::size_t>(nj);
        value = eval_moved(n, col, row, old_c, old_r,
                           gate_net_mult_[static_cast<std::size_t>(j)]);
        ++j;
      } else {
        n = static_cast<std::size_t>(ni);
        value = scan_value(ni);
        ++i;
        ++j;
      }
      const double change = value - value_[n];
      delta += weight_[n] * change;
    }
  }

  pending_delta_ = delta;
  return delta;
}

}  // namespace nanocost::place
