// Netlist-to-layout synthesis: the bridge from the design world to the
// manufacturing world.
//
// Takes a placed netlist and emits real geometry -- each gate's
// standard-cell master placed in its row, routing channels sized by the
// placement's *measured* wiring demand -- so the resulting Design's
// decompression index s_d is a consequence of the logic and the
// placement quality, not an assumption.  This closes the paper's loop:
// netlist -> placement -> layout -> s_d -> transistor cost.
#pragma once

#include <memory>

#include "nanocost/layout/design.hpp"
#include "nanocost/netlist/netlist.hpp"
#include "nanocost/place/placer.hpp"

namespace nanocost::place {

struct SynthesisParams final {
  units::Micrometers lambda{0.25};
  /// Channel tracks provisioned per unit of average per-site wiring
  /// demand (hpwl / sites); calibrated so ordinary placed logic lands
  /// in the Table-A1 ASIC density range.
  double tracks_per_channel_row = 4.0;
  /// Minimum channel height in half-lambda units.
  layout::Coord min_channel = 8;
};

/// Result of synthesis.
struct SynthesisResult final {
  layout::Design design;
  double placed_hpwl_sites = 0.0;     ///< HPWL of the input placement
  layout::Coord channel_height = 0;   ///< chosen channel height (units)
};

/// Emits geometry for `netlist` under `placement`.  Gates are packed
/// left-to-right in their placement rows with their real cell widths.
[[nodiscard]] SynthesisResult synthesize(const netlist::Netlist& netlist,
                                         const Placement& placement,
                                         const SynthesisParams& params = {});

}  // namespace nanocost::place
