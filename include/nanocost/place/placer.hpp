// Row-based standard-cell placement by simulated annealing on HPWL.
//
// The minimal real placer the Sec.-2.4 experiments need: gates occupy
// unit sites in rows; the optimizer swaps/moves gates to minimize total
// half-perimeter wirelength.  Deterministic per seed.  Placed HPWL is
// the ground truth that pre-placement estimates are judged against.
#pragma once

#include <cstdint>
#include <vector>

#include "nanocost/netlist/netlist.hpp"

namespace nanocost::exec {
class ThreadPool;
}

namespace nanocost::place {

/// A legal placement: every gate assigned to a distinct site on a
/// rows x cols grid.
class Placement final {
 public:
  Placement(std::int32_t rows, std::int32_t cols, std::int32_t gate_count);

  [[nodiscard]] std::int32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int32_t site_count() const noexcept { return rows_ * cols_; }
  [[nodiscard]] std::int32_t gate_count() const noexcept {
    return static_cast<std::int32_t>(site_of_gate_.size());
  }

  [[nodiscard]] std::int32_t site_of(std::int32_t gate) const {
    return site_of_gate_.at(static_cast<std::size_t>(gate));
  }
  [[nodiscard]] std::int32_t gate_at(std::int32_t site) const {
    return gate_of_site_.at(static_cast<std::size_t>(site));  // -1 = empty
  }
  [[nodiscard]] std::int32_t row_of(std::int32_t gate) const { return site_of(gate) / cols_; }
  [[nodiscard]] std::int32_t col_of(std::int32_t gate) const { return site_of(gate) % cols_; }

  void assign(std::int32_t gate, std::int32_t site);
  void swap_sites(std::int32_t site_a, std::int32_t site_b);

  /// Identity placement: gate i at site i (the netlist's creation order,
  /// which is already locality-friendly for generated logic).
  [[nodiscard]] static Placement ordered(const netlist::Netlist& netlist, std::int32_t rows,
                                         std::int32_t cols);
  /// Uniform random permutation placement.
  [[nodiscard]] static Placement random(const netlist::Netlist& netlist, std::int32_t rows,
                                        std::int32_t cols, std::uint64_t seed);

 private:
  std::int32_t rows_;
  std::int32_t cols_;
  std::vector<std::int32_t> site_of_gate_;
  std::vector<std::int32_t> gate_of_site_;
};

/// Total half-perimeter wirelength in site units; `row_weight` converts
/// a row step into site-width units (row pitch / site pitch).
[[nodiscard]] double total_hpwl(const netlist::Netlist& netlist, const Placement& placement,
                                double row_weight = 2.0);

/// Annealing parameters.
struct AnnealParams final {
  double initial_temperature = 0.0;  ///< 0 = auto (from initial cost)
  double cooling = 0.95;
  std::int32_t moves_per_temperature_per_gate = 8;
  double stop_temperature_fraction = 1e-4;
  double row_weight = 2.0;
  std::uint64_t seed = 1;
};

/// Result of a placement run.
struct PlaceResult final {
  Placement placement;
  double initial_hpwl = 0.0;
  double final_hpwl = 0.0;
  std::int64_t moves_tried = 0;
  std::int64_t moves_accepted = 0;
};

/// Anneals from the ordered placement.  The inner loop keeps
/// incremental per-net bounding-box caches (see hpwl_cache.hpp), so a
/// move's delta-HPWL costs O(affected nets) with an O(1) per-net
/// common case; setting the NANOCOST_PLACE_CHECK environment variable
/// to a move interval N cross-validates the cache against a full
/// recomputation every N moves (throws std::logic_error on mismatch).
[[nodiscard]] PlaceResult anneal_place(const netlist::Netlist& netlist, std::int32_t rows,
                                       std::int32_t cols, const AnnealParams& params = {});

/// Result of a multi-start annealing run.
struct MultistartResult final {
  PlaceResult best;                ///< the winning start's result
  std::int32_t best_start = 0;     ///< index of the winning start
  std::int32_t starts = 0;         ///< number of independent starts
  std::vector<double> start_hpwls; ///< final HPWL of every start
};

/// Deterministic parallel multi-start annealing: `starts` independent
/// anneals fan out across `pool` (null = global pool), start i seeded
/// with SeedSequence::for_task(params.seed, i); start 0 anneals from
/// the ordered placement, the rest from seed-derived random
/// placements.  The winner minimizes (final_hpwl, start index), so the
/// result is bitwise-identical for any thread count.
[[nodiscard]] MultistartResult anneal_place_multistart(const netlist::Netlist& netlist,
                                                       std::int32_t rows, std::int32_t cols,
                                                       std::int32_t starts,
                                                       const AnnealParams& params = {},
                                                       exec::ThreadPool* pool = nullptr);

/// A multi-start run truncated by a deadline: the winner over the
/// leading `completed_starts` starts only.  completed_starts == 0 falls
/// back to the un-annealed ordered placement (best_start == -1), so the
/// caller always holds a legal placement.
struct PartialMultistart final {
  MultistartResult result;
  double completeness = 1.0;
  std::int32_t completed_starts = 0;
  bool cancelled = false;
};

/// Deadline-aware anneal_place_multistart(): honors the caller's
/// ambient cancel token (robust::CancelScope) at start granularity.
/// On expiry the winner is chosen over exactly the completed leading
/// starts -- bitwise what a fresh run with that many starts picks, at
/// any thread count.  With no ambient token this costs one relaxed
/// atomic load over anneal_place_multistart.
[[nodiscard]] PartialMultistart anneal_place_multistart_partial(
    const netlist::Netlist& netlist, std::int32_t rows, std::int32_t cols,
    std::int32_t starts, const AnnealParams& params = {}, exec::ThreadPool* pool = nullptr);

/// Net-weighted HPWL: sum of per-net HPWL times weight (weights indexed
/// by net id; missing entries default to 1).  Weighting critical nets
/// above 1 is how timing-driven placement biases the optimizer.
[[nodiscard]] double total_weighted_hpwl(const netlist::Netlist& netlist,
                                         const Placement& placement,
                                         const std::vector<double>& net_weights,
                                         double row_weight = 2.0);

/// Anneals minimizing the weighted HPWL -- timing-driven placement when
/// the weights come from an STA's critical path.
[[nodiscard]] PlaceResult anneal_place_weighted(const netlist::Netlist& netlist,
                                                std::int32_t rows, std::int32_t cols,
                                                const std::vector<double>& net_weights,
                                                const AnnealParams& params = {});

/// Warm-start refinement: anneals the weighted objective *from* an
/// existing placement at a low temperature, preserving its structure
/// while pulling the heavily-weighted (critical) nets tighter.  The
/// timing-closure iteration uses this, not a from-scratch re-anneal.
[[nodiscard]] PlaceResult anneal_refine_weighted(const netlist::Netlist& netlist,
                                                 const Placement& start,
                                                 const std::vector<double>& net_weights,
                                                 const AnnealParams& params = {});

}  // namespace nanocost::place
