// Client side of nanocost::serve: NCWIRE01 framing over a socket or
// pipe pair, request-id bookkeeping, and typed submit/wait calls.
//
// The client is single-threaded by design (one connection, one caller);
// concurrency tests run one Client per thread.  Responses may arrive
// out of submission order -- identical jobs coalesce server-side and
// campaigns finish on their own cadence -- so wait() parks non-matching
// responses until their id is asked for.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "nanocost/serve/jobs.hpp"
#include "nanocost/serve/wire.hpp"

namespace nanocost::serve {

class Client final {
 public:
  /// Adopts pipe/socket descriptors (closed on destruction).
  Client(int read_fd, int write_fd);

  /// Connects to a Unix-domain socket; throws std::runtime_error when
  /// the daemon is not there.
  [[nodiscard]] static Client connect_unix(const std::string& path);

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  /// Submits a job; a zero request_id is replaced with a fresh one.
  /// Returns the id to wait() on.  Throws WireError on transport
  /// failure.
  std::uint64_t submit(Eq4Job job);
  std::uint64_t submit(RiskJob job);
  std::uint64_t submit(CampaignJob job);

  /// Blocks until the response for `request_id` arrives (parking any
  /// others).  Throws WireError on transport failure or unexpected
  /// stream close, std::runtime_error when the server answers with an
  /// error *frame* (connection-fatal diagnostics; job-level failures
  /// come back as a Response with status kError instead).
  [[nodiscard]] Response wait(std::uint64_t request_id);

  /// Round-trips a ping frame; false when the stream closed instead.
  [[nodiscard]] bool ping();

  /// Scrapes the server: sends kStatsRequest and blocks for the
  /// kStatsResponse (parking any job responses that arrive first).
  /// The report's `stats` bytes are NCSTAT01 (obs::decode_stats).
  [[nodiscard]] StatsReport stats();

  /// Arms the server-side span tracer remotely.  The server answers
  /// with a plain Response: kOk with message "trace armed", or kError
  /// when a capture is already live.
  [[nodiscard]] Response trace_start();

  /// Stops a remote capture.  On kOk the Response's result bytes are
  /// the Chrome trace-event JSON; kError when nothing was armed or the
  /// capture was too large to return in-band (message names the file).
  [[nodiscard]] Response trace_stop();

 private:
  std::unique_ptr<FdStream> stream_;
  std::map<std::uint64_t, Response> parked_;
  std::uint64_t next_id_ = 1;

  std::uint64_t fresh_id(std::uint64_t requested);
};

}  // namespace nanocost::serve
