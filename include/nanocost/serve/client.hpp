// Client side of nanocost::serve: NCWIRE01 framing over a socket or
// pipe pair, request-id bookkeeping, and typed submit/wait calls.
//
// The client is single-threaded by design (one connection, one caller);
// concurrency tests run one Client per thread.  Responses may arrive
// out of submission order -- identical jobs coalesce server-side and
// campaigns finish on their own cadence -- so wait() parks non-matching
// responses until their id is asked for.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "nanocost/serve/jobs.hpp"
#include "nanocost/serve/wire.hpp"

namespace nanocost::serve {

class Client final {
 public:
  /// Adopts pipe/socket descriptors (closed on destruction).
  Client(int read_fd, int write_fd);

  /// Connects to a Unix-domain socket; throws std::runtime_error when
  /// the daemon is not there.
  [[nodiscard]] static Client connect_unix(const std::string& path);

  /// Connects to a TCP daemon (IPv4; empty host means 127.0.0.1).
  /// Throws std::runtime_error when nothing is listening.
  [[nodiscard]] static Client connect_tcp(const std::string& host, int port);

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  /// Performs the NCWIRE01 version handshake: sends kHello with this
  /// build's versions, `tenant`, and the reconnect ordinal `attempt`,
  /// and blocks for the kHelloAck.  Must be the first exchange on the
  /// connection.  Throws std::runtime_error containing "handshake
  /// rejected" when the server refuses (version mismatch), WireError on
  /// transport failure.
  HelloAck handshake(const std::string& tenant, std::uint32_t attempt = 0);

  /// Arms a read deadline on every subsequent blocking receive: a wait
  /// that sees no reply frame start (or finish) within `ms` throws
  /// WireTimeout instead of blocking forever on a hung server.  0
  /// disarms.
  void arm_timeouts(double ms) noexcept;

  /// Submits a job; a zero request_id is replaced with a fresh one.
  /// Returns the id to wait() on.  Throws WireError on transport
  /// failure.
  std::uint64_t submit(Eq4Job job);
  std::uint64_t submit(RiskJob job);
  std::uint64_t submit(CampaignJob job);

  /// Blocks until the response for `request_id` arrives (parking any
  /// others).  Throws WireError on transport failure or unexpected
  /// stream close, std::runtime_error when the server answers with an
  /// error *frame* (connection-fatal diagnostics; job-level failures
  /// come back as a Response with status kError instead).
  [[nodiscard]] Response wait(std::uint64_t request_id);

  /// Round-trips a ping frame; false when the stream closed instead.
  [[nodiscard]] bool ping();

  /// Scrapes the server: sends kStatsRequest and blocks for the
  /// kStatsResponse (parking any job responses that arrive first).
  /// The report's `stats` bytes are NCSTAT01 (obs::decode_stats).
  [[nodiscard]] StatsReport stats();

  /// Arms the server-side span tracer remotely.  The server answers
  /// with a plain Response: kOk with message "trace armed", or kError
  /// when a capture is already live.
  [[nodiscard]] Response trace_start();

  /// Stops a remote capture.  On kOk the Response's result bytes are
  /// the Chrome trace-event JSON; kError when nothing was armed or the
  /// capture was too large to return in-band (message names the file).
  [[nodiscard]] Response trace_stop();

 private:
  std::unique_ptr<FdStream> stream_;
  std::map<std::uint64_t, Response> parked_;
  std::uint64_t next_id_ = 1;

  std::uint64_t fresh_id(std::uint64_t requested);

  /// The one receive pump every blocking call routes through: reads
  /// frames until one of type `want` carrying `request_id` arrives.
  /// Late out-of-band frames are handled uniformly -- job responses
  /// park for their wait(), stale pongs / stats reports / hello acks
  /// are skipped, error frames for this (or no specific) request throw
  /// -- so no wait can be derailed by the leftovers of an earlier
  /// timed-out exchange.
  Frame await_frame(FrameType want, std::uint64_t request_id, const char* what);
};

}  // namespace nanocost::serve
