// The nanocost::serve daemon: a crash-tolerant multi-tenant job server.
//
// One long-lived Server accepts NCWIRE01 connections -- a Unix-domain
// socket in production, pipe pairs in tests -- and runs the three job
// families end to end:
//
//   * light jobs (eq4 sweeps, risk Monte-Carlo) dispatch to a small
//     worker pool, each under the per-request budget via the
//     Deadline/CancelToken hierarchy; a slow request returns a typed
//     resumable partial, never a hung connection;
//   * campaigns are admitted synchronously -- in arrival order -- into
//     a robust::CampaignQueue, so overload sheds or degrades
//     deterministically (acceptance depends only on the submission
//     sequence), and run one at a time on a dedicated runner thread
//     with checkpoints and the content-addressed artifact tier
//     underneath: kill the server mid-campaign, restart, resubmit, and
//     the completed chunks replay from blobs with zero recompute;
//   * identical in-flight requests coalesce on their canonical cache
//     key: one computation, every waiter gets the same bytes.
//
// Failure containment: a malformed frame kills its *connection* with a
// diagnostic error frame (WireError naming the offense); a semantically
// invalid job gets an error *response* on a healthy connection; an
// injected fault (serve.accept / serve.read / serve.write /
// serve.dispatch under NANOCOST_FAULTS) exercises each of those paths
// deterministically.  The server itself dies only by shutdown().
//
// shutdown() is a graceful drain: stop accepting, finish (or, past
// drain_budget_ms, checkpoint-and-stop) everything in flight, send a
// final outcome for every admitted request, flush/sweep the artifact
// tier, and report what happened.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "nanocost/robust/admission.hpp"
#include "nanocost/robust/artifact_store.hpp"

namespace nanocost::exec {
class ThreadPool;
}

namespace nanocost::serve {

struct ServerOptions final {
  /// Worker threads for light jobs (eq4/risk).  Campaigns run on their
  /// own runner thread regardless.
  int worker_threads = 2;
  /// Campaign admission capacity and policy (robust/admission.hpp).
  std::size_t campaign_capacity = 4;
  robust::ShedPolicy campaign_policy = robust::ShedPolicy::kRejectNewest;
  /// Artifact tier root; empty disables checkpoints and blobs.
  std::string artifact_dir;
  /// Byte cap the shutdown sweep enforces on the artifact tier; 0 =
  /// unbounded.
  std::uint64_t artifact_byte_cap = 0;
  /// Per-request wall-clock budget for light jobs, ms; 0 = none.
  double request_budget_ms = 0.0;
  /// Grace period shutdown() gives in-flight campaigns before stopping
  /// them at a chunk boundary (checkpointed, resumable); 0 = wait for
  /// them to finish.
  double drain_budget_ms = 0.0;
  /// CampaignOptions::wave_chunks for served campaigns.
  std::int64_t campaign_wave_chunks = 64;
  /// Compute pool for kernels (null: the global pool).
  exec::ThreadPool* pool = nullptr;
  /// Reap a connection that starts no frame for this long, ms (0 =
  /// never).  Connections with responses still owed are exempt -- a
  /// quiet client waiting on a long campaign is not idle.
  double idle_timeout_ms = 0.0;
  /// Reap a connection that starts a frame but does not finish it
  /// within this budget, ms (0 = never) -- the slow-loris cutoff.  A
  /// stalled peer delays nobody else, and at most this long itself.
  double read_deadline_ms = 0.0;
  /// Live-connection cap (0 = unlimited).  At the cap, accepting a new
  /// connection deterministically evicts the least-recently-active
  /// existing one (ties: lowest connection id) with a diagnostic error
  /// frame.
  std::size_t max_connections = 0;
  /// Max campaigns one tenant may have in flight (admitted or queued);
  /// 0 = unlimited.  Excess submissions are shed with kShed naming the
  /// tenant and quota.  Tenants declare themselves in the kHello frame;
  /// connections that skip the handshake share the "" tenant.
  std::size_t tenant_campaign_quota = 0;
};

/// What a graceful drain found and did.
struct DrainReport final {
  std::uint64_t requests_served = 0;   ///< responses written (all types)
  std::uint64_t wire_errors = 0;       ///< connections killed by WireError
  std::uint64_t coalesced = 0;         ///< requests served from an in-flight twin
  std::uint64_t campaigns_completed = 0;
  std::uint64_t campaigns_stopped = 0;  ///< checkpointed + resumable at drain
  std::uint64_t campaigns_shed = 0;
  std::uint64_t handshake_rejects = 0;    ///< kHello frames refused (version/decode)
  std::uint64_t connections_reaped = 0;   ///< idle/read-deadline kills
  std::uint64_t connections_evicted = 0;  ///< max-connections oldest-idle kills
  std::uint64_t tenant_shed = 0;          ///< campaigns refused by tenant quota
  robust::SweepReport artifact_sweep;  ///< the shutdown eviction sweep
};

class Server final {
 public:
  explicit Server(ServerOptions options);
  /// Destruction drains (shutdown() if not already called).
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Adopts an accepted byte stream as one client connection: spawns
  /// its reader.  `read_fd`/`write_fd` may be pipe ends (tests) or one
  /// socket fd.  Thread-safe; throws std::logic_error after shutdown.
  void add_connection(int read_fd, int write_fd);

  /// Binds a Unix-domain socket at `path` (unlinking any stale one) and
  /// accepts connections until shutdown.  Throws std::runtime_error on
  /// bind failure.  May be called alongside listen_tcp (and repeatedly):
  /// the server runs one accept loop per listener.
  void listen_unix(const std::string& path);

  /// Binds a TCP socket on `host`:`port` (IPv4; host "" / "*" /
  /// "0.0.0.0" binds all interfaces; port 0 picks a free port) and
  /// accepts connections until shutdown.  Returns the bound port.
  /// Throws std::runtime_error on bind failure.
  int listen_tcp(const std::string& host, int port);

  /// Graceful drain; idempotent (the second call returns the first
  /// report).  See the header comment for the sequence.
  DrainReport shutdown();

  [[nodiscard]] const ServerOptions& options() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nanocost::serve
